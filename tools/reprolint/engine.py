"""The reprolint analysis engine: one AST parse per file, rules fan out.

The engine owns everything rule-independent:

* file discovery over the analysis roots (``src/``, ``tools/``,
  ``benchmarks/`` by default),
* one :func:`ast.parse` per file, shared by every rule through a
  :class:`FileContext`,
* the rule registry (:func:`register`, :func:`all_rules`),
* inline ``# reprolint: disable=RULE[,RULE...]`` suppressions, honored only
  on the exact line a finding points at — an unknown rule id inside a
  suppression comment is itself a finding (:data:`META_RULE_ID`), so typos
  cannot silently disable nothing.

Baseline handling (grandfathered findings) lives in :mod:`.baseline`;
output rendering lives in :mod:`.sarif` and the CLI.  Rules live under
:mod:`tools.reprolint.rules`, one module per invariant.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

#: Rule id used for engine-level diagnostics (unparseable files, unknown rule
#: names inside suppression comments).  Not suppressible and never baselined:
#: these indicate the analysis itself is being subverted, not a code smell.
META_RULE_ID = "RL000"

_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_,]+)")

_RULE_ID_RE = re.compile(r"^RL\d{3}$")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: str  # "error" | "warning"
    path: str  # repo-relative POSIX path
    line: int
    column: int
    message: str

    @property
    def baseline_key(self) -> Tuple[str, str, str]:
        """Identity used by the baseline: line numbers are deliberately
        excluded so unrelated edits above a grandfathered finding do not
        churn the baseline file."""
        return (self.rule, self.path, self.message)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.column}: {self.rule} [{self.severity}] {self.message}"


class FileContext:
    """Everything a rule needs about one file: parsed once, shared by all."""

    def __init__(self, path: Path, relpath: str, module: str, text: str, tree: ast.Module):
        self.path = path
        self.relpath = relpath
        self.module = module
        self.text = text
        self.lines = text.splitlines()
        self.tree = tree

    @property
    def filename(self) -> str:
        return self.path.name

    def finding(
        self, rule: "Rule", node: ast.AST | int, message: str, column: Optional[int] = None
    ) -> Finding:
        if isinstance(node, int):
            line, col = node, 1 if column is None else column
        else:
            line = getattr(node, "lineno", 1)
            col = (getattr(node, "col_offset", 0) + 1) if column is None else column
        return Finding(
            rule=rule.id,
            severity=rule.severity,
            path=self.relpath,
            line=line,
            column=col,
            message=message,
        )


class Rule:
    """Base class for reprolint rules.

    Subclasses set the class attributes and implement :meth:`check`; they are
    added to the registry with the :func:`register` decorator.  ``applies_to``
    scopes a rule to the modules whose contract it enforces — the engine still
    parses every file once, but only fans out the rules that claim it.
    """

    id: str = ""
    name: str = ""
    severity: str = "error"
    description: str = ""

    def applies_to(self, ctx: FileContext) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: Dict[str, Rule] = {}


def register(cls: type) -> type:
    """Class decorator: instantiate and add a :class:`Rule` to the registry."""
    rule = cls()
    if not _RULE_ID_RE.match(rule.id) or rule.id == META_RULE_ID:
        raise ValueError(f"invalid rule id {rule.id!r}")
    if rule.severity not in ("error", "warning"):
        raise ValueError(f"invalid severity {rule.severity!r} for {rule.id}")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id}")
    _REGISTRY[rule.id] = rule
    return cls


def all_rules() -> List[Rule]:
    """Every registered rule, in id order (imports the rule modules)."""
    from . import rules  # noqa: F401 - importing registers the rules

    return [_REGISTRY[rid] for rid in sorted(_REGISTRY)]


def get_rules(ids: Optional[Iterable[str]] = None) -> List[Rule]:
    rules = all_rules()
    if ids is None:
        return rules
    wanted = list(ids)
    unknown = sorted(set(wanted) - {r.id for r in rules})
    if unknown:
        known = ", ".join(r.id for r in rules)
        raise KeyError(f"unknown rule id(s) {', '.join(unknown)} (known: {known})")
    return [r for r in rules if r.id in set(wanted)]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None (calls, subscripts...)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def module_name(path: Path, src_root: Path) -> str:
    """Dotted module name of ``path`` relative to ``src_root``.

    A leading ``src`` component is dropped, so files under ``<root>/src/repro``
    get their import name (``repro...``) while ``tools/`` and ``benchmarks/``
    files are named by their path (``tools.reprolint.engine``).
    """
    try:
        rel = path.resolve().relative_to(src_root.resolve())
    except ValueError:
        return path.stem
    parts = list(rel.with_suffix("").parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    files: Set[Path] = set()
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            files.add(path.resolve())
        elif path.is_dir():
            for sub in path.rglob("*.py"):
                if any(part.startswith(".") or part == "__pycache__" for part in sub.parts):
                    continue
                files.add(sub.resolve())
    return sorted(files)


def parse_suppressions(ctx: FileContext) -> Tuple[Dict[int, Set[str]], List[Finding]]:
    """``line -> suppressed rule ids`` plus findings for unknown rule names.

    Suppressions are honored on the flagged line only; the comment may carry
    a free-form reason after the rule list::

        except Exception:  # reprolint: disable=RL004 degrade-to-miss is the contract
    """
    # Fast textual prefilter; only files containing the pattern pay for a
    # tokenize pass, which is what distinguishes a real comment from the
    # pattern appearing inside a string/docstring (e.g. this module's docs).
    if not any(_SUPPRESS_RE.search(line) for line in ctx.lines):
        return {}, []
    known = {rule.id for rule in all_rules()}
    suppressed: Dict[int, Set[str]] = {}
    meta: List[Finding] = []
    for lineno, line in _comment_lines(ctx):
        match = _SUPPRESS_RE.search(line)
        if not match:
            continue
        ids = {token.strip() for token in match.group(1).split(",") if token.strip()}
        for rule_id in sorted(ids):
            if rule_id not in known:
                meta.append(
                    Finding(
                        rule=META_RULE_ID,
                        severity="error",
                        path=ctx.relpath,
                        line=lineno,
                        column=line.index("#") + 1,
                        message=(
                            f"suppression names unknown rule {rule_id!r} — it disables "
                            f"nothing (known rules: {', '.join(sorted(known))})"
                        ),
                    )
                )
        suppressed.setdefault(lineno, set()).update(ids & known)
    return suppressed, meta


def _comment_lines(ctx: FileContext) -> Iterator[Tuple[int, str]]:
    """``(line, comment text)`` for every real comment token in the file."""
    try:
        tokens = tokenize.generate_tokens(io.StringIO(ctx.text).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except tokenize.TokenError:  # pragma: no cover - file already parsed
        for lineno, line in enumerate(ctx.lines, start=1):
            yield lineno, line


def load_context(path: Path, root: Path) -> Tuple[Optional[FileContext], Optional[Finding]]:
    rel = relpath(path, root)
    text = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as exc:
        return None, Finding(
            rule=META_RULE_ID,
            severity="error",
            path=rel,
            line=exc.lineno or 1,
            column=exc.offset or 1,
            message=f"file does not parse: {exc.msg}",
        )
    return FileContext(path, rel, module_name(path, root), text, tree), None


def relpath(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def default_paths(root: Path) -> List[Path]:
    """The analysis roots: ``src/``, ``tools/``, ``benchmarks/`` where present."""
    return [root / name for name in ("src", "tools", "benchmarks") if (root / name).exists()]


def analyze_paths(
    root: Path,
    paths: Optional[Sequence[Path]] = None,
    rule_ids: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Run the selected rules over every Python file under ``paths``.

    Returns suppression-filtered findings (including :data:`META_RULE_ID`
    diagnostics) sorted by location.  ``paths`` defaults to ``src/``,
    ``tools/`` and ``benchmarks/`` under ``root``.
    """
    root = root.resolve()
    if paths is None:
        paths = default_paths(root)
    rules = get_rules(rule_ids)
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        ctx, parse_error = load_context(path, root)
        if ctx is None:
            if parse_error is not None:
                findings.append(parse_error)
            continue
        suppressed, meta = parse_suppressions(ctx)
        findings.extend(meta)
        for rule in rules:
            if not rule.applies_to(ctx):
                continue
            for finding in rule.check(ctx):
                if finding.rule in suppressed.get(finding.line, set()):
                    continue
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.column, f.rule))
    return findings

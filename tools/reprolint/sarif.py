"""SARIF 2.1.0 rendering (and a structural validator for CI/tests).

The emitted document is the minimal conforming shape: one run, the tool's
rule metadata under ``tool.driver.rules``, one result per finding with a
physical location.  Grandfathered (baselined) findings ride along as
suppressed results (``suppressions: [{kind: "external"}]``) so SARIF viewers
show the whole picture while CI only fails on live results.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .engine import META_RULE_ID, Finding, Rule

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

_LEVELS = {"error": "error", "warning": "warning"}


def _result(finding: Finding, suppressed: bool) -> Dict[str, object]:
    result: Dict[str, object] = {
        "ruleId": finding.rule,
        "level": _LEVELS.get(finding.severity, "warning"),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {"startLine": finding.line, "startColumn": finding.column},
                }
            }
        ],
    }
    if suppressed:
        result["suppressions"] = [{"kind": "external"}]
    return result


def render(
    findings: Sequence[Finding],
    rules: Sequence[Rule],
    baselined: Sequence[Finding] = (),
) -> Dict[str, object]:
    rule_meta = [
        {
            "id": rule.id,
            "name": rule.name,
            "shortDescription": {"text": rule.description},
            "defaultConfiguration": {"level": _LEVELS.get(rule.severity, "warning")},
        }
        for rule in rules
    ]
    rule_meta.append(
        {
            "id": META_RULE_ID,
            "name": "reprolint-meta",
            "shortDescription": {
                "text": "engine diagnostics: unparseable files, unknown rules in suppressions"
            },
            "defaultConfiguration": {"level": "error"},
        }
    )
    results: List[Dict[str, object]] = [_result(f, suppressed=False) for f in findings]
    results.extend(_result(f, suppressed=True) for f in baselined)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "informationUri": "https://example.invalid/reprolint",
                        "rules": rule_meta,
                    }
                },
                "results": results,
            }
        ],
    }


def validate(doc: Dict[str, object]) -> None:
    """Raise ``ValueError`` unless ``doc`` is structurally valid SARIF 2.1.0.

    Not a full schema check (zero-dependency constraint), but pins every
    field CI and the GitHub code-scanning importer actually consume.
    """
    if doc.get("version") != SARIF_VERSION:
        raise ValueError(f"version must be {SARIF_VERSION!r}, got {doc.get('version')!r}")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        raise ValueError("runs must be a non-empty list")
    for run in runs:
        driver = run.get("tool", {}).get("driver", {})
        if not driver.get("name"):
            raise ValueError("tool.driver.name is required")
        rule_ids = {rule.get("id") for rule in driver.get("rules", [])}
        results = run.get("results")
        if not isinstance(results, list):
            raise ValueError("results must be a list")
        for result in results:
            if result.get("ruleId") not in rule_ids:
                raise ValueError(f"result ruleId {result.get('ruleId')!r} not in driver.rules")
            if result.get("level") not in ("error", "warning", "note", "none"):
                raise ValueError(f"invalid result level {result.get('level')!r}")
            if not result.get("message", {}).get("text"):
                raise ValueError("result message.text is required")
            for location in result.get("locations", []):
                physical = location.get("physicalLocation", {})
                if not physical.get("artifactLocation", {}).get("uri"):
                    raise ValueError("physicalLocation.artifactLocation.uri is required")
                region = physical.get("region", {})
                if not isinstance(region.get("startLine"), int) or region["startLine"] < 1:
                    raise ValueError("region.startLine must be a positive integer")

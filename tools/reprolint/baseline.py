"""Baseline handling: grandfathered findings that may only ever shrink.

The baseline is a committed JSON document (``tools/reprolint/baseline.json``)
listing findings that predate a rule and are accepted until someone fixes
them.  Matching is by ``(rule, path, message)`` with an occurrence count —
line numbers are excluded on purpose, so editing unrelated code above a
grandfathered finding does not churn the file.

Two invariants keep the baseline honest:

* a finding *not* in the baseline fails the run (new debt is rejected), and
* a baseline entry whose finding no longer occurs ("stale") also fails the
  run, forcing the entry's removal — the baseline can only shrink, never
  silently accumulate dead weight.  ``--write-baseline`` regenerates it.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from .engine import META_RULE_ID, Finding

SCHEMA = "reprolint-baseline/v1"

BaselineKey = Tuple[str, str, str]


def load(path: Path) -> Counter:
    """``(rule, path, message) -> count`` from a baseline document.

    A missing file is an empty baseline — the state before the first
    ``--write-baseline`` run.
    """
    if not path.exists():
        return Counter()
    doc = json.loads(path.read_text(encoding="utf-8"))
    if doc.get("schema") != SCHEMA:
        raise ValueError(f"{path}: not a {SCHEMA} document (schema={doc.get('schema')!r})")
    counts: Counter = Counter()
    for entry in doc.get("findings", []):
        key = (entry["rule"], entry["path"], entry["message"])
        counts[key] += int(entry.get("count", 1))
    return counts


def write(path: Path, findings: Sequence[Finding]) -> None:
    """Write the baseline that would make ``findings`` pass.

    Engine diagnostics (``RL000``) are never baselined: a typoed suppression
    or an unparseable file must be fixed, not grandfathered.
    """
    counts: Counter = Counter(
        f.baseline_key for f in findings if f.rule != META_RULE_ID
    )
    entries = [
        {"rule": rule, "path": rel, "message": message, "count": count}
        for (rule, rel, message), count in sorted(counts.items())
    ]
    doc = {"schema": SCHEMA, "findings": entries}
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8")


def split(
    findings: Sequence[Finding], baseline: Counter
) -> Tuple[List[Finding], List[Finding], List[Dict[str, object]]]:
    """Partition findings into ``(new, baselined)`` plus stale entries.

    The first ``count`` occurrences of a baselined key are grandfathered;
    any excess is new.  Baseline entries with fewer occurrences than their
    count are returned as stale descriptors (with the shortfall) so the
    caller can fail the run until the baseline is shrunk.
    """
    used: Counter = Counter()
    new: List[Finding] = []
    grandfathered: List[Finding] = []
    for finding in findings:
        key = finding.baseline_key
        if finding.rule != META_RULE_ID and used[key] < baseline.get(key, 0):
            used[key] += 1
            grandfathered.append(finding)
        else:
            new.append(finding)
    stale: List[Dict[str, object]] = []
    for key, count in sorted(baseline.items()):
        if used[key] < count:
            rule, rel, message = key
            stale.append(
                {"rule": rule, "path": rel, "message": message, "count": count - used[key]}
            )
    return new, grandfathered, stale

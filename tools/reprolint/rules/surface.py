"""RL008 — the public surface stays consistent.

Two checks keep the PR-8 API consolidation from rotting:

* every name in a module's ``__all__`` must resolve — either defined/imported
  statically, or reachable through the module's lazy PEP-562 export table
  (a literal dict whose keys are the lazy names, when ``__getattr__`` is
  defined).  ``__all__ = list(_EXPORTS)`` and ``[..., *_EXPORTS]`` are
  understood.
* deprecation shims in ``repro.serve`` stay paired with their ``_``-prefixed
  real module, in both directions: a shim whose target module vanished is
  dead code, and a private ``_mod.py`` without its ``mod.py`` shim silently
  breaks the "old deep paths keep working" promise.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from ..engine import FileContext, Finding, Rule, register

#: Serve-package private modules that are implementation detail *without* a
#: public shim counterpart (no pre-rename public path ever existed for them).
_SHIMLESS_PRIVATE = frozenset({"__init__"})


def _literal_str_elements(node: ast.AST, lazy_tables: dict) -> Optional[List[str]]:
    """Resolve an ``__all__`` value to a list of names, if statically possible."""
    if isinstance(node, (ast.List, ast.Tuple)):
        names: List[str] = []
        for element in node.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                names.append(element.value)
            elif isinstance(element, ast.Starred):
                inner = _literal_str_elements(element.value, lazy_tables)
                if inner is None:
                    return None
                names.extend(inner)
            else:
                return None
        return names
    if isinstance(node, ast.Name) and node.id in lazy_tables:
        return list(lazy_tables[node.id])
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("list", "sorted", "tuple")
        and len(node.args) == 1
    ):
        return _literal_str_elements(node.args[0], lazy_tables)
    return None


def _lazy_export_tables(tree: ast.Module) -> dict:
    """Top-level ``NAME = {literal str keys: ...}`` assignments."""
    tables = {}
    for node in tree.body:
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Dict):
            continue
        keys = []
        for key in node.value.keys:
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                keys.append(key.value)
            else:
                keys = None
                break
        if keys is None:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                tables[target.id] = keys
    return tables


def _defined_names(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
                elif isinstance(target, (ast.Tuple, ast.List)):
                    names.update(
                        element.id for element in target.elts if isinstance(element, ast.Name)
                    )
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                names.add(alias.asname or alias.name)
        elif isinstance(node, (ast.If, ast.Try)):
            # names bound on either branch count (TYPE_CHECKING blocks, guards)
            names.update(_defined_names(ast.Module(body=_branch_bodies(node), type_ignores=[])))
    return names


def _branch_bodies(node: ast.AST) -> List[ast.stmt]:
    bodies: List[ast.stmt] = []
    for attr in ("body", "orelse", "finalbody"):
        bodies.extend(getattr(node, attr, []) or [])
    for handler in getattr(node, "handlers", []) or []:
        bodies.extend(handler.body)
    return bodies


@register
class PublicSurfaceRule(Rule):
    id = "RL008"
    name = "public-surface-consistency"
    severity = "error"
    description = (
        "__all__ names must resolve (statically or via the lazy export table) "
        "and serve deprecation shims stay paired with their _private modules"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.module == "repro" or ctx.module.startswith("repro.")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        yield from self._check_all_resolves(ctx)
        if ctx.module.startswith("repro.serve"):
            yield from self._check_shim_pairing(ctx)

    def _check_all_resolves(self, ctx: FileContext) -> Iterator[Finding]:
        tree = ctx.tree
        lazy_tables = _lazy_export_tables(tree)
        has_getattr = any(
            isinstance(node, ast.FunctionDef) and node.name == "__getattr__"
            for node in tree.body
        )
        resolvable = _defined_names(tree)
        if has_getattr:
            for keys in lazy_tables.values():
                resolvable.update(keys)
        for node in tree.body:
            if not isinstance(node, ast.Assign):
                continue
            if not any(
                isinstance(target, ast.Name) and target.id == "__all__"
                for target in node.targets
            ):
                continue
            names = _literal_str_elements(node.value, lazy_tables)
            if names is None:
                continue  # dynamically built __all__: out of static reach
            for name in names:
                if name not in resolvable:
                    yield ctx.finding(
                        self,
                        node,
                        f"__all__ exports {name!r} but nothing in the module defines "
                        f"it (statically or via the lazy export table)",
                    )

    def _check_shim_pairing(self, ctx: FileContext) -> Iterator[Finding]:
        stem = ctx.path.stem
        if ctx.path.parent.name != "serve":
            return
        if stem.startswith("_") and stem not in _SHIMLESS_PRIVATE:
            shim = ctx.path.with_name(stem.lstrip("_") + ".py")
            if not shim.exists():
                yield ctx.finding(
                    self,
                    1,
                    f"private module {ctx.path.name!r} has no deprecation shim "
                    f"{shim.name!r} — the old public deep path silently broke",
                )
        elif not stem.startswith("_") and stem != "__init__":
            target = ctx.path.with_name("_" + stem + ".py")
            imports_private = any(
                isinstance(node, ast.ImportFrom)
                and node.level == 1
                and any(alias.name == f"_{stem}" for alias in node.names)
                for node in ast.walk(ctx.tree)
            )
            if not target.exists():
                yield ctx.finding(
                    self,
                    1,
                    f"deprecation shim {ctx.path.name!r} points at missing private "
                    f"module {target.name!r}",
                )
            elif not imports_private:
                yield ctx.finding(
                    self,
                    1,
                    f"module {ctx.path.name!r} shadows private module {target.name!r} "
                    f"but does not re-export it (expected 'from . import _{stem}')",
                )

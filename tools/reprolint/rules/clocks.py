"""RL002 — no wall-clock reads on the serve path.

Every time source in the request path must be an injectable *monotonic*
clock: a wall-clock step (NTP correction, DST, manual reset) must not flush
batches early, expire cache entries, shed deadlines, or distort latency
percentiles.  PR 4 fixed a family of exactly these bugs; this rule absorbs
and widens the textual ``time.time()`` audit that used to live in
``tests/test_serve_monotonic.py``.

Allowlist: the disk-cache modules compare against file *mtimes*, which the
OS stamps with the wall clock — ``time.time()`` is the correct clock there
(ages are clamped at 0 against backwards steps, tested separately).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import FileContext, Finding, Rule, dotted_name, register

#: Modules on the serve path (prefix match).  Wider than the old audit: the
#: observability layer and the latency recorder feed serve metrics, so a
#: wall clock there distorts the same percentiles.  The delta-stream engine
#: and the correlated-replay load generator are included too: both time
#: frames (runtime_seconds, inter-arrival pacing) and both feed the same
#: serve metrics, so a wall-clock step there corrupts reuse/throughput
#: numbers the benchmark tripwire gates on.
SERVE_PATH_PREFIXES = (
    "repro.serve",
    "repro.obs",
    "repro.metrics.runtime",
    "repro.engine.delta",
    "benchmarks.loadgen",
)

#: Wall clock is legitimate where values are compared against file mtimes.
ALLOWLISTED_MODULES = frozenset({"repro.serve.diskcache", "repro.serve._diskcache"})

_WALL_CLOCK_CALLS = frozenset({"time.time", "datetime.utcnow", "datetime.datetime.utcnow"})
_NOW_CALLS = frozenset({"datetime.now", "datetime.datetime.now"})


@register
class WallClockRule(Rule):
    id = "RL002"
    name = "serve-monotonic-clock"
    severity = "error"
    description = (
        "serve-path code must use injectable monotonic clocks — time.time() and "
        "naive datetime.now()/utcnow() are wall clocks that step under NTP/DST"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.module in ALLOWLISTED_MODULES:
            return False
        return any(
            ctx.module == prefix or ctx.module.startswith(prefix + ".")
            for prefix in SERVE_PATH_PREFIXES
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            if name in _WALL_CLOCK_CALLS:
                yield ctx.finding(
                    self,
                    node,
                    f"wall-clock {name}() on the serve path — use an injectable "
                    f"monotonic clock (time.monotonic / the component's clock= parameter)",
                )
            elif name in _NOW_CALLS and not node.args and not node.keywords:
                yield ctx.finding(
                    self,
                    node,
                    f"argless {name}() is a naive wall-clock read — pass an explicit "
                    f"tz for formatting, or use a monotonic clock for durations",
                )

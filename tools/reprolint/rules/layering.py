"""RL001 — the serve layer imports compute only via the ``repro.engine`` surface.

The architecture is a strict stack (``repro.backend -> repro.engine ->
repro.serve -> fleet/CLI``); serve code importing ``repro.core.*`` or an
engine *submodule* couples the serving stack to compute internals and makes
the public-surface promise in ``repro/__init__.py`` unenforceable.  This rule
absorbs the former ``tools/check_layering.py`` (PR 8), which remains as a
thin CLI shim over :func:`check_layering`.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, List, Tuple

from ..engine import FileContext, Finding, Rule, module_name, register

#: Module prefixes the serve layer must not import (exact module or any
#: submodule).  ``repro.engine`` itself is NOT listed: the package surface
#: is the sanctioned route; only its submodules are internal.
FORBIDDEN_PREFIXES = ("repro.core",)

#: Packages whose *submodules* are internal even though the package surface
#: is public: ``from repro.engine import X`` is fine, ``from
#: repro.engine.engine import X`` is not.
SURFACE_ONLY_PACKAGES = ("repro.engine",)


def _resolve_relative(module: str, level: int, importing_module: str) -> str:
    """Absolute dotted name for a ``from ...module import`` statement."""
    package_parts = importing_module.split(".")[:-1]  # containing package
    if level > 1:
        package_parts = package_parts[: len(package_parts) - (level - 1)]
    base = ".".join(package_parts)
    if module:
        return f"{base}.{module}" if base else module
    return base


def imported_modules(tree: ast.AST, importing_module: str) -> Iterator[Tuple[int, str]]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield node.lineno, alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                yield (
                    node.lineno,
                    _resolve_relative(node.module or "", node.level, importing_module),
                )
            elif node.module:
                yield node.lineno, node.module


def violation_messages(tree: ast.AST, importing_module: str) -> Iterator[Tuple[int, str]]:
    for lineno, target in imported_modules(tree, importing_module):
        for prefix in FORBIDDEN_PREFIXES:
            if target == prefix or target.startswith(prefix + "."):
                yield (
                    lineno,
                    f"imports {target!r} — the serve layer must go through the "
                    f"repro.engine surface, never repro.core",
                )
        for package in SURFACE_ONLY_PACKAGES:
            if target.startswith(package + "."):
                yield (
                    lineno,
                    f"imports {target!r} — import from the {package!r} package "
                    f"surface instead of its submodules",
                )


@register
class LayeringRule(Rule):
    id = "RL001"
    name = "serve-layering"
    severity = "error"
    description = (
        "serve-layer modules must import compute only through the repro.engine "
        "package surface — never repro.core or engine submodules"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.module == "repro.serve" or ctx.module.startswith("repro.serve.")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for lineno, message in violation_messages(ctx.tree, ctx.module):
            yield ctx.finding(self, lineno, message)


def check_layering(src_root: Path) -> List[str]:
    """Compatibility surface for the ``tools/check_layering.py`` shim.

    Walks ``<src_root>/repro/serve`` and returns the legacy one-line-per-
    violation strings (absolute path, line, message) the old checker printed.
    """
    serve_dir = Path(src_root) / "repro" / "serve"
    out: List[str] = []
    for path in sorted(serve_dir.rglob("*.py")):
        importing_module = module_name(path, Path(src_root))
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        for lineno, message in violation_messages(tree, importing_module):
            out.append(f"{path}:{lineno}: {message}")
    return out

"""Rule modules — importing this package registers every rule.

One module per invariant; each module documents *why* the contract exists
(usually a bug the repo already paid for) next to the detection logic.
"""

from . import (  # noqa: F401 - imported for their registration side effect
    async_blocking,
    atomic_publish,
    clocks,
    exceptions,
    layering,
    locks,
    serialization,
    surface,
)

"""RL004 — broad exception handlers must not swallow errors silently.

``except Exception`` is sometimes the right tool (per-request isolation,
degrade-to-miss cache reads, supervision loops) — but only when the error
still leaves a trace: re-raised, attached to a future, logged through
:class:`repro.obs.log.StructuredLogger`, or counted in a metric.  A broad
handler that does none of these turns real failures into silence; PR 6's
"swallowed client resets" bug is the canonical example.

The handler body is accepted if it contains any of:

* a ``raise`` (re-raise or translate),
* an augmented assignment (counter increment, e.g. ``self._errors += 1``),
* a call to a logging/counting method (``log/debug/info/warning/error/
  exception/critical/emit/record/increment/inc``), or
* a call to ``Future.set_exception`` (the error reaches the caller).

Everything else is a finding — to be fixed, suppressed with a reason, or
grandfathered in the baseline.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import FileContext, Finding, Rule, register

BROAD_TYPES = frozenset({"Exception", "BaseException"})

_HANDLED_ATTRS = frozenset(
    {
        "debug",
        "info",
        "warning",
        "error",
        "exception",
        "critical",
        "log",
        "emit",
        "record",
        "increment",
        "inc",
        "set_exception",
    }
)


def _broad_type_name(handler: ast.ExceptHandler) -> str | None:
    if handler.type is None:
        return ""  # bare except
    types = handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    for node in types:
        if isinstance(node, ast.Name) and node.id in BROAD_TYPES:
            return node.id
        if isinstance(node, ast.Attribute) and node.attr in BROAD_TYPES:
            return node.attr
    return None


def _handler_accounts_for_error(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(ast.Module(body=handler.body, type_ignores=[])):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.AugAssign):
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _HANDLED_ATTRS
        ):
            return True
    return False


@register
class BroadExceptRule(Rule):
    id = "RL004"
    name = "no-silent-broad-except"
    severity = "warning"
    description = (
        "bare/broad except handlers must re-raise, log via StructuredLogger, "
        "attach the error to a future, or increment a counter"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for handler in ast.walk(ctx.tree):
            if not isinstance(handler, ast.ExceptHandler):
                continue
            caught = _broad_type_name(handler)
            if caught is None:
                continue
            if _handler_accounts_for_error(handler):
                continue
            label = "bare 'except:'" if caught == "" else f"broad 'except {caught}'"
            yield ctx.finding(
                self,
                handler,
                f"{label} neither re-raises, logs, sets a future exception, nor "
                f"increments a counter — the error vanishes silently",
            )

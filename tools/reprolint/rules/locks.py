"""RL007 — lock discipline: scoped acquisition, never await under a sync lock.

Two failure shapes the fleet has to be immune to:

* a ``lock.acquire()`` with no ``try/finally`` release leaks the lock on any
  exception between acquire and release — every later waiter deadlocks
  (prefer ``with lock:``, which is what the whole codebase uses);
* an ``await`` while *holding* a ``threading.Lock`` parks the coroutine with
  the lock held — any other task (or executor thread) touching that lock
  stalls the event loop, which is the one thing the serve layer promises
  never happens.  Hold sync locks across straight-line code only, or use
  ``asyncio.Lock``.

Detection is name-based: an attribute/variable whose name contains ``lock``
(case-insensitive) is treated as a lock, which matches this repo's naming
convention everywhere (``_lock``, ``_write_lock``, ``_stats_lock``...).
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..engine import FileContext, Finding, Rule, dotted_name, register


def _is_lockish(name: str | None) -> bool:
    return name is not None and "lock" in name.lower()


def _released_names(func: ast.AST) -> Set[str]:
    """Dotted names released inside any ``finally`` block of ``func``."""
    released: Set[str] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Try) or not node.finalbody:
            continue
        for sub in ast.walk(ast.Module(body=node.finalbody, type_ignores=[])):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "release"
            ):
                name = dotted_name(sub.func.value)
                if name is not None:
                    released.add(name)
    return released


@register
class LockDisciplineRule(Rule):
    id = "RL007"
    name = "lock-discipline"
    severity = "error"
    description = (
        "locks are held via 'with' or try/finally-released acquire, and never "
        "held across an await"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        yield from self._check_unscoped_acquires(ctx)
        yield from self._check_awaits_under_sync_lock(ctx)

    def _check_unscoped_acquires(self, ctx: FileContext) -> Iterator[Finding]:
        functions = [
            node
            for node in ast.walk(ctx.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        scopes = functions or [ctx.tree]
        seen: Set[int] = set()
        for scope in scopes:
            released = _released_names(scope)
            for node in ast.walk(scope):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "acquire"
                    and id(node) not in seen
                ):
                    seen.add(id(node))
                    target = dotted_name(node.func.value)
                    if not _is_lockish(target):
                        continue
                    if target in released:
                        continue
                    yield ctx.finding(
                        self,
                        node,
                        f"{target}.acquire() without a matching release in a finally "
                        f"block — an exception leaks the lock; prefer 'with {target}:'",
                    )

    def _check_awaits_under_sync_lock(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.With):  # ast.AsyncWith (asyncio.Lock) is fine
                continue
            lock_name = None
            for item in node.items:
                expr = item.context_expr
                if isinstance(expr, ast.Call):
                    expr = expr.func
                name = dotted_name(expr)
                if _is_lockish(name):
                    lock_name = name
                    break
            if lock_name is None:
                continue
            for sub in ast.walk(ast.Module(body=node.body, type_ignores=[])):
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                    continue
                if isinstance(sub, (ast.Await, ast.AsyncFor, ast.AsyncWith)):
                    yield ctx.finding(
                        self,
                        sub,
                        f"await while holding synchronous lock {lock_name!r} — the "
                        f"coroutine parks with the lock held and can stall the loop; "
                        f"release first or use asyncio.Lock",
                    )

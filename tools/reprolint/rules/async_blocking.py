"""RL003 — no blocking calls inside ``async def`` bodies.

The event-loop contract (ROADMAP PR 3: "the event loop never blocks") is
what keeps HIGH-lane tail latency bounded: one synchronous sleep, file read,
or subprocess call inside a coroutine stalls *every* in-flight request on
the loop.  Blocking work belongs in ``loop.run_in_executor`` (passing the
callable, not calling it) or behind the async equivalents.

Nested *sync* ``def`` bodies inside a coroutine are exempt — they are
usually exactly the executor thunks the fix calls for.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from ..engine import FileContext, Finding, Rule, dotted_name, register

#: Dotted call names that block the thread (and with it, the whole loop).
BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "open",
        "os.system",
        "os.popen",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "socket.create_connection",
        "urllib.request.urlopen",
    }
)

#: Blocking method names on common objects (pathlib.Path I/O).
BLOCKING_ATTRS = frozenset({"read_text", "write_text", "read_bytes", "write_bytes"})


def _direct_statements(func: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Walk a coroutine body without descending into nested function defs.

    Nested ``async def``\\ s are visited when the outer walk reaches them as
    tree nodes in their own right; nested sync ``def``\\ s run on an executor
    thread by construction and are deliberately out of scope.
    """
    stack: List[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


@register
class AsyncBlockingRule(Rule):
    id = "RL003"
    name = "async-no-blocking-calls"
    severity = "error"
    description = (
        "async def bodies must not call blocking primitives (time.sleep, open, "
        "subprocess, sync sockets) — run them in an executor instead"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.module == "repro" or ctx.module.startswith("repro.")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for func in ast.walk(ctx.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            for node in _direct_statements(func):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func)
                blocking = name in BLOCKING_CALLS
                if not blocking and isinstance(node.func, ast.Attribute):
                    blocking = node.func.attr in BLOCKING_ATTRS
                    name = node.func.attr
                if blocking:
                    yield ctx.finding(
                        self,
                        node,
                        f"blocking call {name}(...) inside 'async def {func.name}' stalls "
                        f"the event loop — await loop.run_in_executor(...) or use the "
                        f"async equivalent",
                    )

"""RL005 — pickle/marshal are banned in cache, shared-memory, and IPC modules.

The serve tiers share bytes across processes and restarts (disk ``.npz``
entries, the shm ring, HTTP ``.npy`` transport).  The formats are pickle-free
by contract: pickle deserialization executes arbitrary code, so one corrupt
or adversarial cache entry would become code execution in every worker that
reads it.  This rule bans the importers *and* requires every ``np.load`` /
``np.save`` in the serve layer to pass an explicit ``allow_pickle=False``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import FileContext, Finding, Rule, dotted_name, register

BANNED_MODULES = frozenset({"pickle", "cPickle", "marshal", "shelve", "dill"})

_NP_IO_CALLS = frozenset({"np.load", "np.save", "numpy.load", "numpy.save"})


@register
class SerializationRule(Rule):
    id = "RL005"
    name = "no-pickle-in-cache-ipc"
    severity = "error"
    description = (
        "cache/shm/IPC modules must not use pickle or marshal, and numpy "
        "load/save must pass allow_pickle=False explicitly"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.module == "repro.serve" or ctx.module.startswith("repro.serve.")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in BANNED_MODULES:
                        yield ctx.finding(
                            self,
                            node,
                            f"import of {alias.name!r} in a cache/IPC module — the "
                            f"shared formats are pickle-free by contract (npz/npy/JSON)",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.module.split(".")[0] in BANNED_MODULES:
                    yield ctx.finding(
                        self,
                        node,
                        f"import from {node.module!r} in a cache/IPC module — the "
                        f"shared formats are pickle-free by contract (npz/npy/JSON)",
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)

    def _check_call(self, ctx: FileContext, node: ast.Call) -> Iterator[Finding]:
        for keyword in node.keywords:
            if (
                keyword.arg == "allow_pickle"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            ):
                yield ctx.finding(
                    self, node, "allow_pickle=True re-enables pickle deserialization"
                )
                return
        name = dotted_name(node.func)
        if name in _NP_IO_CALLS:
            explicit_false = any(
                keyword.arg == "allow_pickle"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is False
                for keyword in node.keywords
            )
            if not explicit_false:
                yield ctx.finding(
                    self,
                    node,
                    f"{name}(...) without allow_pickle=False — be explicit so the "
                    f"pickle-free contract survives numpy default changes",
                )

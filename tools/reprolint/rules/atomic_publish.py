"""RL006 — cache entries are published atomically (write temp, ``os.replace``).

The disk cache is shared by every worker in the fleet: a reader may open an
entry at any byte offset of a concurrent write.  The contract (ROADMAP PR 3)
is write-to-temp-then-``os.replace`` — the only atomic publish POSIX gives
us.  This rule flags any function in a cache module that opens a file for
writing (or uses ``Path.write_*``) without an ``os.replace``/``Path.replace``
in the same function.

``open(..., "x")`` is exempt: ``O_EXCL`` creation is itself atomic and is the
basis of the lock-file protocol.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from ..engine import FileContext, Finding, Rule, dotted_name, register

_WRITE_ATTRS = frozenset({"write_bytes", "write_text"})


def _write_mode(node: ast.Call) -> str | None:
    """The mode string of an ``open()`` call, if statically known."""
    if dotted_name(node.func) not in ("open", "io.open", "os.fdopen"):
        return None
    mode_node: ast.AST | None = None
    if len(node.args) >= 2:
        mode_node = node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode_node = keyword.value
    if mode_node is None:
        return "r"
    if isinstance(mode_node, ast.Constant) and isinstance(mode_node.value, str):
        return mode_node.value
    return None  # dynamic mode: give it the benefit of the doubt


@register
class AtomicPublishRule(Rule):
    id = "RL006"
    name = "atomic-cache-publish"
    severity = "error"
    description = (
        "functions in cache modules that open files for writing must publish "
        "via os.replace (write temp, rename into place)"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        if not (ctx.module == "repro.serve" or ctx.module.startswith("repro.serve.")):
            return False
        return "cache" in ctx.module.rsplit(".", 1)[-1]

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            writes: List[ast.Call] = []
            has_replace = False
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func)
                if name in ("os.replace", "os.rename") or (
                    isinstance(node.func, ast.Attribute) and node.func.attr == "replace"
                ):
                    has_replace = True
                mode = _write_mode(node)
                if mode is not None and any(flag in mode for flag in ("w", "a", "+")):
                    writes.append(node)
                elif isinstance(node.func, ast.Attribute) and node.func.attr in _WRITE_ATTRS:
                    writes.append(node)
            if has_replace:
                continue
            for call in writes:
                yield ctx.finding(
                    self,
                    call,
                    f"file written in cache module function {func.name!r} without an "
                    f"os.replace publish — concurrent readers can observe a torn entry",
                )

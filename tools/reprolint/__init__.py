"""reprolint — repo-native static analysis for the serve stack's contracts.

Zero-dependency, AST-based: one parse per file, a registry of rules that
each enforce an invariant this codebase learned the hard way (monotonic
clocks on the serve path, a never-blocked event loop, strict
backend → engine → serve layering, pickle-free shared caches, atomic cache
publishes, lock discipline, accountable broad excepts, a consistent public
surface).  Run ``python -m tools.reprolint`` from the repo root;
``--list-rules`` prints the rule table, ``--format sarif`` emits SARIF for
CI, and ``tools/reprolint/baseline.json`` grandfathers pre-existing
findings (the baseline only shrinks — stale entries fail the run).

New serve-layer invariants should land here as rules, not as ad-hoc
scripts — see CONTRIBUTING.md.
"""

from .cli import main
from .engine import (
    META_RULE_ID,
    FileContext,
    Finding,
    Rule,
    all_rules,
    analyze_paths,
    get_rules,
    register,
)

__all__ = [
    "META_RULE_ID",
    "FileContext",
    "Finding",
    "Rule",
    "all_rules",
    "analyze_paths",
    "get_rules",
    "main",
    "register",
]

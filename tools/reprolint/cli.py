"""``python -m tools.reprolint`` — run the rules, report, gate.

Exit codes: 0 clean (with the baseline applied), 1 findings or stale
baseline entries, 2 usage errors.  ``--write-baseline`` regenerates the
committed grandfather file; ``--no-baseline`` reports everything (the
nightly job uses it to track grandfathered-debt counts over time).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from collections import Counter
from pathlib import Path
from typing import List, Optional, Sequence

from . import baseline as baseline_mod
from . import sarif as sarif_mod
from .engine import (
    Finding,
    all_rules,
    analyze_paths,
    default_paths,
    get_rules,
    iter_python_files,
    relpath,
)

REPORT_SCHEMA = "reprolint-report/v1"

_DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"


def _repo_root() -> Path:
    return Path(__file__).resolve().parent.parent.parent


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description="repo-native static analysis for the serve stack's contracts",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files/directories to analyze (default: src/ tools/ benchmarks/ under --root)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="repository root findings are reported relative to (default: this repo)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument("--output", type=Path, default=None, help="write the report to a file")
    parser.add_argument(
        "--rules",
        default=None,
        metavar="RL001,RL002,...",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline file of grandfathered findings (default: {_DEFAULT_BASELINE.name} "
        f"next to the engine, when it exists)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: report every finding (nightly debt tracking)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="regenerate the baseline from the current findings and exit 0",
    )
    parser.add_argument("--list-rules", action="store_true", help="print the rule table and exit")
    return parser


def _list_rules() -> str:
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.id}  {rule.severity:<7}  {rule.name}")
        lines.append(f"       {rule.description}")
    return "\n".join(lines)


def _emit(text: str, output: Optional[Path]) -> None:
    if output is None:
        print(text)
    else:
        output.parent.mkdir(parents=True, exist_ok=True)
        output.write_text(text + "\n", encoding="utf-8")


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parser().parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0

    root = (args.root or _repo_root()).resolve()
    paths = [p if p.is_absolute() else root / p for p in args.paths] or default_paths(root)
    rule_ids = None
    if args.rules:
        rule_ids = [token.strip() for token in args.rules.split(",") if token.strip()]

    started = time.monotonic()
    try:
        findings = analyze_paths(root, paths, rule_ids)
        selected_rules = {rule.id for rule in get_rules(rule_ids)}
    except KeyError as exc:
        print(f"reprolint: {exc.args[0]}", file=sys.stderr)
        return 2
    elapsed = time.monotonic() - started

    baseline_path = args.baseline or (_DEFAULT_BASELINE if _DEFAULT_BASELINE.exists() else None)
    if args.write_baseline:
        target = args.baseline or _DEFAULT_BASELINE
        baseline_mod.write(target, findings)
        print(f"reprolint: wrote {len(findings)} finding(s) to {target}")
        return 0

    baselined: List[Finding] = []
    stale: List[dict] = []
    if baseline_path is not None and not args.no_baseline:
        counts = baseline_mod.load(baseline_path)
        # Partial runs (a path subset, a rule subset) must not report the
        # out-of-scope remainder of the baseline as stale — staleness is
        # only meaningful for entries this run could have re-found.
        analyzed = {relpath(path, root) for path in iter_python_files(paths)}
        counts = Counter(
            {
                key: count
                for key, count in counts.items()
                if key[0] in selected_rules and key[1] in analyzed
            }
        )
        findings, baselined, stale = baseline_mod.split(findings, counts)

    if args.format == "sarif":
        doc = sarif_mod.render(findings, all_rules(), baselined)
        _emit(json.dumps(doc, indent=2), args.output)
    elif args.format == "json":
        doc = {
            "schema": REPORT_SCHEMA,
            "root": str(root),
            "elapsed_seconds": round(elapsed, 3),
            "counts": {
                "new": len(findings),
                "baselined": len(baselined),
                "stale_baseline": len(stale),
                "by_rule": dict(sorted(Counter(f.rule for f in findings).items())),
            },
            "findings": [f.to_dict() for f in findings],
            "baselined": [f.to_dict() for f in baselined],
            "stale_baseline": stale,
        }
        _emit(json.dumps(doc, indent=2), args.output)
    else:
        lines = [f.render() for f in findings]
        for entry in stale:
            lines.append(
                f"{entry['path']}: stale baseline entry ({entry['rule']} ×{entry['count']}): "
                f"{entry['message']} — the finding no longer occurs; shrink the baseline "
                f"(--write-baseline)"
            )
        summary = (
            f"reprolint: {len(findings)} finding(s), {len(baselined)} baselined, "
            f"{len(stale)} stale baseline entr{'y' if len(stale) == 1 else 'ies'} "
            f"({elapsed:.2f}s)"
        )
        _emit("\n".join(lines + [summary]) if lines else summary, args.output)

    return 1 if findings or stale else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())

"""Repo tooling namespace (``tools.reprolint``, ``tools.check_layering``).

Nothing here ships in the wheel — the package exists so the static-analysis
engine can be invoked as ``python -m tools.reprolint`` from the repo root
and imported by the test suite.
"""

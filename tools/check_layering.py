#!/usr/bin/env python
"""Layering check: the serving layer must not reach into compute internals.

The architecture is a strict stack (see README's "Architecture" section)::

    repro.backend  ->  repro.engine  ->  repro.serve  ->  fleet / CLI

The serving layer talks to the compute core exclusively through the
:mod:`repro.engine` package surface — never ``repro.core.*`` directly and
never an engine *submodule* (``repro.engine.engine``, ...).  This keeps the
engine free to reorganise its internals without breaking the serving stack,
and it is what makes the public-surface promise in ``repro/__init__.py``
enforceable rather than aspirational.

This script walks every module under ``src/repro/serve/`` with ``ast`` and
fails (exit 1) on:

* any import of ``repro.core`` or its submodules, and
* any import of a ``repro.engine`` *submodule* (importing names from the
  ``repro.engine`` package itself is the sanctioned route).

Relative imports are resolved against the package layout, so ``from
..engine import X`` (allowed) and ``from ..core.lut import Y`` (forbidden)
are both seen.  CI runs this from the lint job; ``tests/test_layering.py``
runs it in the tier-1 suite so a violation fails locally too.

Usage::

    python tools/check_layering.py [--root src/repro]
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

#: Module prefixes the serve layer must not import (exact module or any
#: submodule).  ``repro.engine`` itself is NOT listed: the package surface
#: is the sanctioned route; only its submodules are internal.
FORBIDDEN_PREFIXES = ("repro.core",)

#: Packages whose *submodules* are internal even though the package surface
#: is public: ``from repro.engine import X`` is fine, ``from
#: repro.engine.engine import X`` is not.
SURFACE_ONLY_PACKAGES = ("repro.engine",)


def _module_name(path: Path, src_root: Path) -> str:
    rel = path.relative_to(src_root).with_suffix("")
    parts = list(rel.parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _resolve_relative(module: str, level: int, importing_module: str) -> str:
    """Absolute dotted name for a ``from ...module import`` statement."""
    package_parts = importing_module.split(".")[:-1]  # containing package
    if level > 1:
        package_parts = package_parts[: len(package_parts) - (level - 1)]
    base = ".".join(package_parts)
    if module:
        return f"{base}.{module}" if base else module
    return base


def _imported_modules(tree: ast.AST, importing_module: str) -> Iterator[Tuple[int, str]]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield node.lineno, alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                yield node.lineno, _resolve_relative(
                    node.module or "", node.level, importing_module
                )
            elif node.module:
                yield node.lineno, node.module


def _violations_in(path: Path, src_root: Path) -> List[str]:
    importing_module = _module_name(path, src_root)
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    out = []
    for lineno, target in _imported_modules(tree, importing_module):
        for prefix in FORBIDDEN_PREFIXES:
            if target == prefix or target.startswith(prefix + "."):
                out.append(
                    f"{path}:{lineno}: imports {target!r} — the serve layer must go "
                    f"through the repro.engine surface, never repro.core"
                )
        for package in SURFACE_ONLY_PACKAGES:
            if target.startswith(package + "."):
                out.append(
                    f"{path}:{lineno}: imports {target!r} — import from the "
                    f"{package!r} package surface instead of its submodules"
                )
    return out


def check_layering(src_root: Path) -> List[str]:
    serve_dir = src_root / "repro" / "serve"
    violations: List[str] = []
    for path in sorted(serve_dir.rglob("*.py")):
        violations.extend(_violations_in(path, src_root))
    return violations


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        default=str(Path(__file__).resolve().parent.parent / "src"),
        help="source root containing the repro package (default: <repo>/src)",
    )
    args = parser.parse_args(argv)
    src_root = Path(args.root)
    if not (src_root / "repro" / "serve").is_dir():
        print(f"check_layering: no repro/serve package under {src_root}", file=sys.stderr)
        return 2
    violations = check_layering(src_root)
    if violations:
        print("layering violations (serve layer reaching into compute internals):")
        for line in violations:
            print(f"  {line}")
        return 1
    print("layering ok: repro.serve imports compute only via the repro.engine surface")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

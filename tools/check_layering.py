#!/usr/bin/env python
"""Layering check — thin shim over reprolint rule RL001.

The serving layer talks to the compute core exclusively through the
:mod:`repro.engine` package surface — never ``repro.core.*`` and never an
engine submodule.  The detection logic lives in
:mod:`tools.reprolint.rules.layering` (rule **RL001**) together with the
rest of the repo's machine-checked invariants; this script survives only so
existing invocations (CI snippets, muscle memory) keep working.

Prefer::

    python -m tools.reprolint --rules RL001

Usage::

    python tools/check_layering.py [--root src/repro]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List

_REPO_ROOT = Path(__file__).resolve().parent.parent
if str(_REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(_REPO_ROOT))

from tools.reprolint.rules.layering import check_layering  # noqa: E402


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        default=str(_REPO_ROOT / "src"),
        help="source root containing the repro package (default: <repo>/src)",
    )
    args = parser.parse_args(argv)
    src_root = Path(args.root)
    if not (src_root / "repro" / "serve").is_dir():
        print(f"check_layering: no repro/serve package under {src_root}", file=sys.stderr)
        return 2
    violations = check_layering(src_root)
    if violations:
        print("layering violations (serve layer reaching into compute internals):")
        for line in violations:
            print(f"  {line}")
        return 1
    print("layering ok: repro.serve imports compute only via the repro.engine surface")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Feature-space IQFT segmentation: beyond three RGB channels.

Section IV-C of the paper notes the approach "is not limited by the image
color space".  :class:`FeatureIQFTSegmenter` generalizes Algorithm 1 to any
per-pixel feature vector of ``n`` components (one qubit per feature, ``2^n``
possible segments):

* an arbitrary number of channels (multispectral imagery, RGBA, ...),
* derived colour spaces (the built-in ``"hsv"`` mode reproduces the RGB
  segmenter's machinery on hue/saturation/value features),
* arbitrary user-supplied feature extractors (e.g. intensity + gradient
  magnitude + local variance), turning the method into a generic
  phase-encoded feature classifier.

The per-feature angle parameters play the same role as ``(θ1, θ2, θ3)``; every
feature must be normalized to ``[0, 1]`` by the extractor (the built-ins do
this automatically).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Sequence, Union

import numpy as np

from ..base import BaseSegmenter
from ..errors import ParameterError, ShapeError
from ..imaging.color import rgb_to_hsv
from ..imaging.filters import sobel_magnitude
from ..imaging.image import as_float_image
from .classifier import IQFTClassifier
from .phase_encoding import pixel_phases

__all__ = ["FeatureIQFTSegmenter", "FEATURE_EXTRACTORS"]

FeatureExtractor = Callable[[np.ndarray], np.ndarray]


def _identity_features(image: np.ndarray) -> np.ndarray:
    """Use the image channels themselves as features (grayscale becomes 1 feature)."""
    arr = as_float_image(image)
    if arr.ndim == 2:
        return arr[..., np.newaxis]
    return arr


def _hsv_features(image: np.ndarray) -> np.ndarray:
    """Hue / saturation / value features (requires RGB input)."""
    arr = as_float_image(image)
    if arr.ndim != 3:
        raise ShapeError("the 'hsv' feature extractor requires an RGB image")
    return rgb_to_hsv(arr)


def _intensity_edge_features(image: np.ndarray) -> np.ndarray:
    """Two features: mean intensity and Sobel gradient magnitude."""
    arr = as_float_image(image)
    intensity = arr if arr.ndim == 2 else arr.mean(axis=-1)
    edges = sobel_magnitude(arr)
    return np.stack([intensity, edges], axis=-1)


#: Built-in feature extractors selectable by name.
FEATURE_EXTRACTORS: Dict[str, FeatureExtractor] = {
    "channels": _identity_features,
    "hsv": _hsv_features,
    "intensity+edges": _intensity_edge_features,
}


class FeatureIQFTSegmenter(BaseSegmenter):
    """IQFT phase classification over arbitrary per-pixel feature vectors.

    Parameters
    ----------
    features:
        Either the name of a built-in extractor (``"channels"``, ``"hsv"``,
        ``"intensity+edges"``) or a callable mapping an image to an
        ``(H, W, n)`` float feature array in ``[0, 1]``.
    thetas:
        A scalar angle applied to every feature or a sequence of per-feature
        angles; its length fixes the number of qubits when a callable
        extractor is supplied (otherwise it must match the extractor's output).
    chunk_size:
        Pixels per internal matrix product.
    """

    name = "iqft-features"

    def __init__(
        self,
        features: Union[str, FeatureExtractor] = "channels",
        thetas: Union[float, Sequence[float]] = float(np.pi),
        chunk_size: Optional[int] = None,
    ):
        super().__init__()
        if isinstance(features, str):
            try:
                self._extractor = FEATURE_EXTRACTORS[features]
            except KeyError as exc:
                raise ParameterError(
                    f"unknown feature extractor {features!r}; "
                    f"available: {sorted(FEATURE_EXTRACTORS)}"
                ) from exc
            self._extractor_name = features
        elif callable(features):
            self._extractor = features
            self._extractor_name = getattr(features, "__name__", "custom")
        else:
            raise ParameterError("features must be a name or a callable")
        theta_arr = np.atleast_1d(np.asarray(thetas, dtype=np.float64))
        if np.any(theta_arr < 0):
            raise ParameterError("angle parameters must be non-negative")
        self._thetas = theta_arr
        self._chunk_size = chunk_size
        self._classifiers: Dict[int, IQFTClassifier] = {}
        self._last_extras: Dict[str, Any] = {}
        self.name = f"iqft-features[{self._extractor_name}]"

    # ------------------------------------------------------------------ #
    def _classifier_for(self, num_features: int) -> IQFTClassifier:
        if num_features not in self._classifiers:
            if num_features > 10:
                raise ParameterError(
                    f"{num_features} features would need 2^{num_features} classes; "
                    "reduce the feature count"
                )
            self._classifiers[num_features] = IQFTClassifier(
                num_qubits=num_features, chunk_size=self._chunk_size
            )
        return self._classifiers[num_features]

    def _thetas_for(self, num_features: int) -> np.ndarray:
        if self._thetas.size == 1:
            return np.full(num_features, float(self._thetas[0]))
        if self._thetas.size != num_features:
            raise ParameterError(
                f"got {self._thetas.size} angle parameter(s) for {num_features} feature(s)"
            )
        return self._thetas

    def _segment(self, image: np.ndarray) -> np.ndarray:
        features = np.asarray(self._extractor(np.asarray(image)), dtype=np.float64)
        if features.ndim != 3:
            raise ShapeError(
                f"feature extractor must return an (H, W, n) array, got {features.shape}"
            )
        if features.size and (features.min() < -1e-9 or features.max() > 1.0 + 1e-9):
            raise ParameterError("features must be normalized to [0, 1]")
        num_features = features.shape[2]
        thetas = self._thetas_for(num_features)
        classifier = self._classifier_for(num_features)
        phases = pixel_phases(np.clip(features, 0.0, 1.0), thetas)
        labels = classifier.classify(phases.reshape(-1, num_features))
        self._last_extras = {
            "extractor": self._extractor_name,
            "num_features": num_features,
            "num_classes": classifier.num_classes,
            "thetas": thetas.tolist(),
        }
        return labels.reshape(features.shape[:2])

    def _extras(self) -> Dict[str, Any]:
        return dict(self._last_extras)

"""Algorithm 1: the IQFT-inspired RGB image segmenter.

Pipeline per pixel (all steps vectorized over the whole image, chunked to keep
the working set cache-friendly):

1. normalize the RGB intensities to ``[0, 1]`` (skippable, to reproduce the
   Figure-5 ablation showing why normalization matters),
2. map channels to phases ``γ = R·θ1``, ``β = G·θ2``, ``α = B·θ3``,
3. build the 8-component phase vector ``F`` of equation (11),
4. compute the probabilities ``|W·F/8|²``,
5. label the pixel with the argmax basis state (an integer in 0..7).

The maximum number of segments is therefore 8, and the *actual* number adapts
to the image content and to θ (Table II / Figure 6 of the paper).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple, Union

import numpy as np

from ..base import BaseSegmenter
from ..errors import ParameterError, ShapeError
from .classifier import IQFTClassifier
from .lut import (
    MAX_CACHED_PALETTE_COLORS,
    apply_lut,
    lut_eligible,
    pack_rgb_codes,
    rgb_palette_label_lut,
    unique_codes,
    unpack_rgb_codes,
)
from .phase_encoding import DEFAULT_THETA, normalize_pixels, pixel_phases

__all__ = ["IQFTSegmenter"]

ThetaLike = Union[float, Sequence[float]]


class IQFTSegmenter(BaseSegmenter):
    """IQFT-inspired segmenter for RGB images (the paper's Algorithm 1).

    Parameters
    ----------
    thetas:
        Either a single angle (used for all three channels, as in the paper's
        main experiments where ``θ1 = θ2 = θ3 = π``) or a triple
        ``(θ1, θ2, θ3)``.
    normalize:
        Whether to apply the line-1 normalization (divide by 255).  Disabling
        it reproduces the "noisy segments" ablation of Figure 5.  When the
        input is already float in ``[0, 1]``, normalization is a no-op.
    max_value:
        The raw intensity ceiling used by the normalization (255 for 8-bit
        images).
    chunk_size:
        Pixels per internal matrix product; ``None`` uses the library default.
    store_probabilities:
        When True, the per-pixel 8-way probability maps are attached to the
        result's ``extras["probabilities"]`` (memory: ``8 × H × W`` floats).
    """

    name = "iqft-rgb"
    pointwise = True

    def __init__(
        self,
        thetas: ThetaLike = DEFAULT_THETA,
        normalize: bool = True,
        max_value: float = 255.0,
        chunk_size: Optional[int] = None,
        store_probabilities: bool = False,
    ):
        super().__init__()
        self._thetas = self._validate_thetas(thetas)
        self.normalize = bool(normalize)
        if max_value <= 0:
            raise ParameterError("max_value must be positive")
        self.max_value = float(max_value)
        self._classifier = IQFTClassifier(num_qubits=3, chunk_size=chunk_size)
        self.store_probabilities = bool(store_probabilities)
        self._last_extras: Dict[str, Any] = {}

    @staticmethod
    def _validate_thetas(thetas: ThetaLike) -> Tuple[float, float, float]:
        arr = np.atleast_1d(np.asarray(thetas, dtype=np.float64))
        if arr.size == 1:
            arr = np.repeat(arr, 3)
        if arr.size != 3:
            raise ParameterError("thetas must be a scalar or a sequence of three angles")
        if np.any(arr < 0):
            raise ParameterError("angle parameters must be non-negative")
        return (float(arr[0]), float(arr[1]), float(arr[2]))

    # ------------------------------------------------------------------ #
    @property
    def thetas(self) -> Tuple[float, float, float]:
        """The angle parameters ``(θ1, θ2, θ3)``."""
        return self._thetas

    @property
    def num_classes(self) -> int:
        """Maximum number of segments the method can produce (8)."""
        return self._classifier.num_classes

    def with_thetas(self, thetas: ThetaLike) -> "IQFTSegmenter":
        """Return a copy of this segmenter with different angle parameters."""
        return IQFTSegmenter(
            thetas=thetas,
            normalize=self.normalize,
            max_value=self.max_value,
            chunk_size=self._classifier._chunk_size,
            store_probabilities=self.store_probabilities,
        )

    # ------------------------------------------------------------------ #
    def pixel_probabilities(self, image: np.ndarray) -> np.ndarray:
        """Return the ``(H, W, 8)`` per-pixel probability maps (line 4)."""
        phases = self._phases(np.asarray(image))
        flat = phases.reshape(-1, 3)
        probs = self._classifier.probabilities(flat)
        return probs.reshape(phases.shape[0], phases.shape[1], self.num_classes)

    def _phases(self, arr: np.ndarray) -> np.ndarray:
        if arr.ndim != 3 or arr.shape[2] != 3:
            raise ShapeError(
                f"{self.name} expects an (H, W, 3) RGB image, got shape {arr.shape}"
            )
        if self.normalize:
            values = normalize_pixels(arr, max_value=self.max_value)
        else:
            # Figure-5 ablation: feed raw intensities straight into the phase
            # mapping.  uint8 input is only cast to float, not rescaled.
            values = arr.astype(np.float64)
        return pixel_phases(values, self._thetas)

    def _segment(self, image: np.ndarray) -> np.ndarray:
        arr = np.asarray(image)
        phases = self._phases(arr)
        height, width = phases.shape[:2]
        flat = phases.reshape(-1, 3)
        self._last_extras = {"thetas": self._thetas, "normalize": self.normalize}
        if self.store_probabilities:
            probs = self._classifier.probabilities(flat)
            labels = np.argmax(probs, axis=-1).astype(np.int64)
            self._last_extras["probabilities"] = probs.reshape(height, width, self.num_classes)
        else:
            labels = self._classifier.classify(flat)
        return labels.reshape(height, width)

    def labels_from_lut(
        self,
        image: np.ndarray,
        extras: Optional[Dict[str, Any]] = None,
        backend: Optional[Any] = None,
    ) -> Optional[np.ndarray]:
        """Palette-LUT fast path: exact labels via per-colour lookup, or ``None``.

        The 3-qubit rule is a pure function of the ``(R, G, B)`` triple, so an
        8-bit image only needs one classifier evaluation per *distinct colour*
        (its palette) instead of one per pixel.  Colours are deduplicated on
        packed 24-bit codes, classified through the exact
        phase-encoding + matmul path, and scattered back — bit-identical to
        :meth:`segment` by construction, on every backend: dedup and the
        final per-pixel gather are integer kernels under the bit-exact
        contract, so an :class:`~repro.backend.base.ArrayBackend` offloads
        the memory-bound halves while the per-*colour* classification stays
        on the exact reference path.  Non-integer or out-of-range input
        returns ``None`` (callers fall back to the matrix path), as does
        ``store_probabilities`` mode: the fast path computes no per-pixel
        probability maps, so it must not swallow that contract.  Diagnostics
        go into the caller-owned ``extras`` dict when one is passed.
        """
        if self.store_probabilities:
            return None
        arr = np.asarray(image)
        if arr.ndim != 3 or arr.shape[2] != 3:
            return None
        if not lut_eligible(arr, normalize=self.normalize):
            return None
        codes = pack_rgb_codes(arr)
        palette, inverse = unique_codes(codes, backend=backend)
        cacheable = palette.size <= MAX_CACHED_PALETTE_COLORS
        if cacheable:
            # Cross-image cache: identical palettes (synthetic scenes, video
            # frames, label imagery) classify their colours exactly once.
            palette_labels = rgb_palette_label_lut(
                self._thetas,
                palette,
                normalize=self.normalize,
                max_value=self.max_value,
                dtype=arr.dtype,
            )
        else:
            # Preserve the raw dtype so the palette rows take the exact same
            # normalization branch as the full image would.
            colors = unpack_rgb_codes(palette).astype(arr.dtype).reshape(-1, 1, 3)
            phases = self._phases(colors).reshape(-1, self._classifier.num_qubits)
            palette_labels = self._classifier.classify(phases)
        info = {
            "thetas": self._thetas,
            "normalize": self.normalize,
            "fast_path": "palette-lut",
            "palette_size": int(palette.size),
            "palette_cached": cacheable,
        }
        self._last_extras = info
        if extras is not None:
            extras.update(info)
        scattered = apply_lut(palette_labels, np.asarray(inverse).reshape(-1), backend=backend)
        return scattered.reshape(arr.shape[:2])

    def _extras(self) -> Dict[str, Any]:
        return dict(self._last_extras)

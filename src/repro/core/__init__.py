"""The paper's primary contribution: the IQFT-inspired segmentation algorithms.

Public surface
--------------
* :class:`IQFTClassifier` — the generic ``n``-qubit phase-pattern classifier
  underlying both algorithms (equation (11) of the paper generalized to any
  number of qubits).
* :class:`IQFTSegmenter` — Algorithm 1, the RGB segmenter (3 qubits, up to
  8 segments).
* :class:`IQFTGrayscaleSegmenter` — the single-qubit grayscale variant of
  Section IV-C, equivalent to (multi-)thresholding via equation (15).
* θ ↔ threshold calculus (:mod:`repro.core.thresholds`), segment-count
  analysis and per-image θ tuning (:mod:`repro.core.theta_search`).
* Label utilities (:mod:`repro.core.labels`) and an end-to-end
  :class:`SegmentationPipeline`.
"""

from .iqft_matrix import (
    iqft_classification_matrix,
    iqft_unitary_matrix,
    basis_bit_matrix,
    basis_phase_patterns,
    bit_reversed_index,
    bit_reversal_permutation,
)
from .phase_encoding import (
    normalize_pixels,
    pixel_phases,
    phase_vector,
    phase_vectors,
    DEFAULT_THETA,
)
from .classifier import IQFTClassifier
from .lut import (
    grayscale_label_lut,
    grayscale_probability_lut,
    rgb_palette_label_lut,
    lut_eligible,
    lut_cache_info,
    clear_lut_cache,
    pack_rgb_codes,
    unpack_rgb_codes,
)
from .rgb_segmenter import IQFTSegmenter
from .grayscale_segmenter import IQFTGrayscaleSegmenter
from .thresholds import (
    thresholds_for_theta,
    theta_for_threshold,
    grayscale_class_probabilities,
    classify_intensity,
    paper_table1,
)
from .theta_search import (
    max_segments_for_theta,
    segment_count_table,
    tune_theta_supervised,
    tune_theta_unsupervised,
    ThetaSearchResult,
)
from .labels import (
    relabel_consecutive,
    count_segments,
    binarize_by_overlap,
    binarize_largest_background,
    segment_sizes,
)
from .pipeline import SegmentationPipeline, PipelineResult
from .sampling_segmenter import ShotBasedIQFTSegmenter, effective_depolarizing_strength
from .feature_segmenter import FeatureIQFTSegmenter, FEATURE_EXTRACTORS
from .postprocess import majority_smooth, merge_small_segments, SmoothedSegmenter

__all__ = [
    "iqft_classification_matrix",
    "iqft_unitary_matrix",
    "basis_bit_matrix",
    "basis_phase_patterns",
    "bit_reversed_index",
    "bit_reversal_permutation",
    "normalize_pixels",
    "pixel_phases",
    "phase_vector",
    "phase_vectors",
    "DEFAULT_THETA",
    "IQFTClassifier",
    "IQFTSegmenter",
    "IQFTGrayscaleSegmenter",
    "grayscale_label_lut",
    "grayscale_probability_lut",
    "rgb_palette_label_lut",
    "lut_eligible",
    "lut_cache_info",
    "clear_lut_cache",
    "pack_rgb_codes",
    "unpack_rgb_codes",
    "thresholds_for_theta",
    "theta_for_threshold",
    "grayscale_class_probabilities",
    "classify_intensity",
    "paper_table1",
    "max_segments_for_theta",
    "segment_count_table",
    "tune_theta_supervised",
    "tune_theta_unsupervised",
    "ThetaSearchResult",
    "relabel_consecutive",
    "count_segments",
    "binarize_by_overlap",
    "binarize_largest_background",
    "segment_sizes",
    "SegmentationPipeline",
    "PipelineResult",
    "ShotBasedIQFTSegmenter",
    "effective_depolarizing_strength",
    "FeatureIQFTSegmenter",
    "FEATURE_EXTRACTORS",
    "majority_smooth",
    "merge_small_segments",
    "SmoothedSegmenter",
]

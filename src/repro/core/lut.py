"""Value-level lookup tables: the analytical fast path of the batch engine.

Equation (15) of the paper shows that the grayscale classifier is a pure
function of the *intensity value*: the label only depends on the sign pattern
of ``cos(I·θ)``, so two pixels with equal raw value always receive equal
labels.  For 8-bit storage there are at most 256 distinct values per channel,
which means an entire image can be labelled by (1) evaluating the exact
classifier once per distinct value and (2) fancy-indexing the resulting table
with the raw image.  Because step (1) runs the *same* code path as the exact
segmenter (same normalization, same phase encoding, same chunked matmul, same
argmax tie-breaking), the fast path is bit-identical to the matrix path — the
property tests in ``tests/test_engine_lut_property.py`` assert exactly that.

This module owns the table construction and its LRU cache; the segmenters
expose the fast path through their ``labels_from_lut`` hooks and
:class:`repro.engine.BatchSegmentationEngine` decides when to take it.
"""

from __future__ import annotations

import functools
from typing import NamedTuple, Optional, Sequence, Tuple, Union

import numpy as np

from ..backend.base import ArrayBackend
from ..errors import ParameterError

__all__ = [
    "DEFAULT_NUM_LEVELS",
    "MAX_CACHED_PALETTE_COLORS",
    "grayscale_label_lut",
    "grayscale_probability_lut",
    "rgb_palette_label_lut",
    "lut_eligible",
    "apply_lut",
    "unique_codes",
    "pack_rgb_codes",
    "unpack_rgb_codes",
    "lut_cache_info",
    "clear_lut_cache",
    "LutCacheInfo",
]

#: Number of distinct raw values covered by a default lookup table (8-bit).
DEFAULT_NUM_LEVELS = 256

#: Largest palette (distinct 24-bit colours) kept in the cross-image cache.
#: Bigger palettes are still classified exactly, just not retained: one cache
#: entry stores 8 bytes per colour for the key plus 8 per label, so the cap
#: bounds the cache at ~32 MiB even when every slot holds a worst-case entry.
MAX_CACHED_PALETTE_COLORS = 65536


# --------------------------------------------------------------------------- #
# Eligibility
# --------------------------------------------------------------------------- #
def lut_eligible(
    image: np.ndarray, num_levels: int = DEFAULT_NUM_LEVELS, normalize: bool = True
) -> bool:
    """True when ``image`` can be labelled through a value lookup table.

    Eligible inputs are integer-typed arrays whose values lie in
    ``[0, num_levels)``.  Float images fall back to the exact classifier (the
    continuum of values defeats a table).  One subtlety: with ``normalize``
    enabled, :func:`repro.core.phase_encoding.normalize_pixels` treats a
    non-``uint8`` array whose maximum is ≤ 1 as *already normalized*, a branch
    the value table (built from the full ``0..num_levels-1`` ramp) cannot
    reproduce — such degenerate images are declared ineligible and take the
    exact path instead.
    """
    arr = np.asarray(image)
    if arr.size == 0:
        return False
    if arr.dtype == np.uint8:
        return num_levels >= 256
    if not np.issubdtype(arr.dtype, np.integer):
        return False
    vmin = int(arr.min())
    vmax = int(arr.max())
    if vmin < 0 or vmax >= num_levels:
        return False
    if normalize and vmax <= 1:
        return False
    return True


# --------------------------------------------------------------------------- #
# Backend dispatch (table *apply*; table *construction* stays on the exact CPU
# reference path regardless of backend, since it runs the exact classifier)
# --------------------------------------------------------------------------- #
def _dispatchable(backend: Optional[ArrayBackend], npixels: int) -> bool:
    """True when the gather is worth routing to ``backend``'s substrate.

    The reference backend is never "dispatched to" — its gather *is* plain
    fancy indexing, and skipping the indirection keeps the default path's
    cost byte-for-byte what it was before backends existed.  Accelerators
    additionally set a ``gather_min_pixels`` cost hint: below it, transfer
    overhead dwarfs the gather and the host does it faster.
    """
    if backend is None or backend.name == "numpy":
        return False
    return npixels >= backend.cost_hints().get("gather_min_pixels", 0.0)


def apply_lut(
    table: np.ndarray, indices: np.ndarray, backend: Optional[ArrayBackend] = None
) -> np.ndarray:
    """Apply a value table to an integer image, optionally on a backend.

    Bit-exact on every backend (the integer-gather contract of
    :class:`~repro.backend.base.ArrayBackend`); ``backend=None`` — or any
    image below the backend's ``gather_min_pixels`` cost hint — gathers on
    the host.
    """
    arr = np.asarray(indices)
    if _dispatchable(backend, arr.size):
        return backend.gather(table, arr)
    return table[arr]


def unique_codes(
    codes: np.ndarray, backend: Optional[ArrayBackend] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """``(sorted unique, inverse)`` of packed colour codes, optionally on a backend.

    The RGB palette path's dedup — the sort over one int64 code per pixel —
    is its memory-bound half; the same dispatch rule as :func:`apply_lut`
    applies, and the result is bit-exact everywhere.
    """
    arr = np.asarray(codes)
    if _dispatchable(backend, arr.size):
        return backend.unique_inverse(arr)
    unique, inverse = np.unique(arr, return_inverse=True)
    return unique, np.asarray(inverse).reshape(-1)


# --------------------------------------------------------------------------- #
# Grayscale tables (256 entries per (θ, normalize, max_value, multiband) key)
# --------------------------------------------------------------------------- #
@functools.lru_cache(maxsize=64)
def _grayscale_tables(
    theta: float,
    normalize: bool,
    max_value: float,
    multiband: bool,
    num_levels: int,
    uint8_values: bool,
) -> Tuple[np.ndarray, np.ndarray]:
    # Local import: the grayscale segmenter imports this module for its hook.
    from .grayscale_segmenter import IQFTGrayscaleSegmenter

    segmenter = IQFTGrayscaleSegmenter(
        theta=theta, normalize=normalize, max_value=max_value, multiband=multiband
    )
    # The value ramp is fed through the segmenter's own code path (as an
    # (num_levels, 1) image) so every per-value float operation — division,
    # phase encoding, matmul, argmax — is the one the exact path performs.
    values = np.arange(num_levels, dtype=np.int64).reshape(-1, 1)
    if uint8_values:
        values = values.astype(np.uint8)
    labels = segmenter._segment(values).reshape(-1).astype(np.int64)
    probs = segmenter.pixel_probabilities(values).reshape(num_levels, 2)
    labels.flags.writeable = False
    probs.flags.writeable = False
    return labels, probs


def _validated_key(theta, max_value, num_levels):
    if theta <= 0:
        raise ParameterError("theta must be positive")
    if max_value <= 0:
        raise ParameterError("max_value must be positive")
    if num_levels < 2:
        raise ParameterError("num_levels must be >= 2")
    return float(theta), float(max_value), int(num_levels)


def grayscale_label_lut(
    theta: float,
    normalize: bool = True,
    max_value: float = 255.0,
    multiband: bool = False,
    num_levels: int = DEFAULT_NUM_LEVELS,
    uint8_values: bool = True,
) -> np.ndarray:
    """The ``(num_levels,)`` value → label table for the grayscale segmenter.

    ``uint8_values`` selects which raw storage the table models: ``uint8``
    input is always divided by 255 by the normalization, while wider integer
    input is divided by ``max_value`` — the two tables differ whenever
    ``max_value != 255``.  Tables are cached (LRU, shared process-wide) and
    returned as read-only views.
    """
    theta, max_value, num_levels = _validated_key(theta, max_value, num_levels)
    labels, _ = _grayscale_tables(
        theta, bool(normalize), max_value, bool(multiband), num_levels, bool(uint8_values)
    )
    return labels


def grayscale_probability_lut(
    theta: float,
    normalize: bool = True,
    max_value: float = 255.0,
    num_levels: int = DEFAULT_NUM_LEVELS,
    uint8_values: bool = True,
) -> np.ndarray:
    """The ``(num_levels, 2)`` value → class-probability table (equation (14))."""
    theta, max_value, num_levels = _validated_key(theta, max_value, num_levels)
    _, probs = _grayscale_tables(
        theta, bool(normalize), max_value, False, num_levels, bool(uint8_values)
    )
    return probs


# --------------------------------------------------------------------------- #
# RGB palette tables (cross-image: keyed on the palette itself)
# --------------------------------------------------------------------------- #
ThetaTriple = Union[float, Sequence[float]]


@functools.lru_cache(maxsize=32)
def _rgb_palette_tables(
    thetas: Tuple[float, float, float],
    normalize: bool,
    max_value: float,
    dtype_str: str,
    palette_bytes: bytes,
) -> np.ndarray:
    # Local import: the RGB segmenter imports this module for its hook.
    from .rgb_segmenter import IQFTSegmenter

    segmenter = IQFTSegmenter(thetas=thetas, normalize=normalize, max_value=max_value)
    codes = np.frombuffer(palette_bytes, dtype=np.int64)
    # Rebuild the colour rows in the original raw dtype so they take the exact
    # same normalization branch as the full image would.
    colors = unpack_rgb_codes(codes).astype(np.dtype(dtype_str)).reshape(-1, 1, 3)
    phases = segmenter._phases(colors).reshape(-1, 3)
    labels = segmenter._classifier.classify(phases).astype(np.int64)
    labels.flags.writeable = False
    return labels


def _normalized_thetas(thetas: ThetaTriple) -> Tuple[float, float, float]:
    # Reuse the segmenter's own validation so the cache key and the exact
    # path can never disagree on what a valid θ triple is.
    from .rgb_segmenter import IQFTSegmenter

    return IQFTSegmenter._validate_thetas(thetas)


def rgb_palette_label_lut(
    thetas: ThetaTriple,
    palette: np.ndarray,
    normalize: bool = True,
    max_value: float = 255.0,
    dtype: Union[str, np.dtype, type] = np.uint8,
) -> np.ndarray:
    """Labels for a palette of packed 24-bit colour codes, cached across images.

    ``palette`` is a 1-D array of :func:`pack_rgb_codes` codes (the distinct
    colours of an image, in any order).  The table is keyed on
    ``(θ1, θ2, θ3, normalize, max_value, dtype, palette bytes)`` so two
    different images sharing a palette — synthetic scenes, screenshots,
    label-like imagery, video frames — classify the colours once and hit the
    LRU thereafter.  ``dtype`` must be the raw storage dtype of the source
    image: it selects the normalization branch (uint8 always divides by 255,
    wider integers divide by ``max_value``).  Entries are exact classifier
    output and read-only; :func:`lut_cache_info` reports hits/misses.
    """
    thetas = _normalized_thetas(thetas)
    if max_value <= 0:
        raise ParameterError("max_value must be positive")
    codes = np.ascontiguousarray(np.asarray(palette, dtype=np.int64).reshape(-1))
    if codes.size == 0:
        raise ParameterError("palette must contain at least one colour code")
    if int(codes.min()) < 0 or int(codes.max()) >= (1 << 24):
        raise ParameterError("palette codes must be packed 24-bit values")
    return _rgb_palette_tables(
        thetas,
        bool(normalize),
        float(max_value),
        str(np.dtype(dtype)),
        codes.tobytes(),
    )


class LutCacheInfo(NamedTuple):
    """Aggregate cache statistics across the value and palette table caches.

    The first four fields mirror :class:`functools` ``CacheInfo`` (summed over
    both caches) so existing callers keep working; ``grayscale`` and
    ``palette`` carry the individual ``CacheInfo`` of each table cache.
    """

    hits: int
    misses: int
    maxsize: int
    currsize: int
    grayscale: object
    palette: object


def lut_cache_info() -> LutCacheInfo:
    """Hit/miss statistics of the shared table caches (value + palette)."""
    gray = _grayscale_tables.cache_info()
    pal = _rgb_palette_tables.cache_info()
    return LutCacheInfo(
        hits=gray.hits + pal.hits,
        misses=gray.misses + pal.misses,
        maxsize=(gray.maxsize or 0) + (pal.maxsize or 0),
        currsize=gray.currsize + pal.currsize,
        grayscale=gray,
        palette=pal,
    )


def clear_lut_cache() -> None:
    """Drop every cached lookup table (used by tests and benchmarks)."""
    _grayscale_tables.cache_clear()
    _rgb_palette_tables.cache_clear()


# --------------------------------------------------------------------------- #
# RGB palette codes (the 3-channel analogue: dedupe on 24-bit colour codes)
# --------------------------------------------------------------------------- #
def pack_rgb_codes(image: np.ndarray) -> np.ndarray:
    """Pack an integer ``(H, W, 3)`` image into flat 24-bit colour codes."""
    arr = np.asarray(image)
    if arr.ndim != 3 or arr.shape[2] != 3:
        raise ParameterError(f"expected an (H, W, 3) image, got shape {arr.shape}")
    flat = arr.reshape(-1, 3).astype(np.int64)
    return (flat[:, 0] << 16) | (flat[:, 1] << 8) | flat[:, 2]


def unpack_rgb_codes(codes: np.ndarray) -> np.ndarray:
    """Invert :func:`pack_rgb_codes`: ``(U,)`` codes → ``(U, 3)`` channel values."""
    codes = np.asarray(codes, dtype=np.int64).reshape(-1)
    return np.stack(((codes >> 16) & 0xFF, (codes >> 8) & 0xFF, codes & 0xFF), axis=1)

"""Label-map utilities: relabeling, counting, and binarization for evaluation.

The IQFT RGB segmenter (and the K-means baseline with ``k > 2``) produce
multi-way label maps, while the paper's evaluation is binary
foreground/background mIOU.  The mapping from predicted segments to the two
evaluation classes is done by **majority overlap with the ground truth**
(:func:`binarize_by_overlap`) — each predicted segment is assigned to whichever
ground-truth class covers the larger share of its (non-void) pixels.  This is
the standard protocol for scoring unsupervised segmentations against binary
masks and is applied identically to every method, so the comparison stays fair.

An unsupervised alternative (:func:`binarize_largest_background`) is provided
for applications with no ground truth at all: the largest segment is declared
background and everything else foreground.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..errors import MetricError, ShapeError

__all__ = [
    "relabel_consecutive",
    "count_segments",
    "segment_sizes",
    "binarize_by_overlap",
    "binarize_largest_background",
]


def _check_label_map(labels: np.ndarray) -> np.ndarray:
    arr = np.asarray(labels)
    if arr.ndim != 2:
        raise ShapeError(f"label map must be 2-D, got shape {arr.shape}")
    if not np.issubdtype(arr.dtype, np.integer):
        if not np.all(np.equal(np.mod(arr, 1), 0)):
            raise ShapeError("label map must contain integers")
        arr = arr.astype(np.int64)
    return arr.astype(np.int64, copy=False)


def relabel_consecutive(labels: np.ndarray) -> np.ndarray:
    """Map the labels present in the map onto ``0..K-1`` preserving order."""
    arr = _check_label_map(labels)
    _, inverse = np.unique(arr, return_inverse=True)
    return inverse.reshape(arr.shape).astype(np.int64)


def count_segments(labels: np.ndarray) -> int:
    """Number of distinct labels present in the map."""
    return int(np.unique(_check_label_map(labels)).size)


def segment_sizes(labels: np.ndarray) -> Dict[int, int]:
    """Mapping ``label -> pixel count`` for every label present."""
    arr = _check_label_map(labels)
    values, counts = np.unique(arr, return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts)}


def binarize_by_overlap(
    predicted: np.ndarray,
    ground_truth: np.ndarray,
    void_mask: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Collapse a multi-way prediction to binary fg/bg by majority overlap.

    Parameters
    ----------
    predicted:
        ``(H, W)`` integer label map from any segmenter.
    ground_truth:
        ``(H, W)`` binary mask (0 = background, non-zero = foreground).
    void_mask:
        Optional boolean mask of pixels to ignore when computing overlaps
        (the VOC 'void' border band).  Void pixels still receive a label in
        the output (whatever their segment majority is), but they do not
        influence the segment-to-class assignment and are excluded again by
        the mIOU computation.

    Returns
    -------
    binary:
        ``(H, W)`` array of 0/1 labels.
    """
    pred = _check_label_map(predicted)
    gt = np.asarray(ground_truth)
    if gt.shape != pred.shape:
        raise MetricError(
            f"prediction shape {pred.shape} does not match ground truth {gt.shape}"
        )
    gt_binary = (gt != 0).astype(np.int64)
    valid = np.ones(pred.shape, dtype=bool)
    if void_mask is not None:
        void = np.asarray(void_mask, dtype=bool)
        if void.shape != pred.shape:
            raise MetricError("void mask shape does not match the prediction")
        valid &= ~void

    out = np.zeros_like(pred)
    for label in np.unique(pred):
        segment = pred == label
        scoped = segment & valid
        if not scoped.any():
            # A segment living entirely inside the void band: fall back to the
            # unscoped majority so the pixel still gets a sensible class.
            scoped = segment
        foreground_votes = int(gt_binary[scoped].sum())
        background_votes = int(scoped.sum()) - foreground_votes
        out[segment] = 1 if foreground_votes > background_votes else 0
    return out


def binarize_largest_background(predicted: np.ndarray) -> np.ndarray:
    """Unsupervised binarization: the largest segment becomes background (0).

    Every other segment is marked foreground (1).  Useful when no ground truth
    exists; not used for the paper-comparison tables.
    """
    pred = _check_label_map(predicted)
    sizes = segment_sizes(pred)
    if not sizes:
        raise MetricError("empty label map")
    background_label = max(sizes, key=lambda k: sizes[k])
    return (pred != background_label).astype(np.int64)

"""θ-dependent behaviour: segment-count analysis (Table II) and θ tuning (Fig. 10).

Two distinct questions are answered here:

* *How many segments can a given θ produce?*  The paper samples 100,000 random
  normalized RGB triples and reports the maximum number of distinct labels
  (Table II).  :func:`max_segments_for_theta` reproduces exactly that protocol;
  :func:`segment_count_table` sweeps the θ values listed in the paper.
* *Which θ should be used for a given image?*  The paper fixes θ = π for the
  headline comparison but shows (Figure 10) that adjusting θ per image rescues
  failure cases.  :func:`tune_theta_supervised` grid-searches θ against a
  ground-truth mask (upper bound / oracle tuning, the protocol behind
  Figure 10), and :func:`tune_theta_unsupervised` picks θ by an internal
  balance criterion that needs no labels.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from ..config import SeedLike, as_generator
from ..errors import ParameterError
from ..metrics.iou import mean_iou
from .labels import binarize_by_overlap, count_segments
from .rgb_segmenter import IQFTSegmenter

__all__ = [
    "PAPER_TABLE2_THETAS",
    "max_segments_for_theta",
    "segment_count_table",
    "ThetaSearchResult",
    "tune_theta_supervised",
    "tune_theta_unsupervised",
    "DEFAULT_THETA_GRID",
]

ThetaTriple = Tuple[float, float, float]

#: θ configurations of Table II: nine rows, the last being the "mixed" setting.
PAPER_TABLE2_THETAS: Tuple[ThetaTriple, ...] = tuple(
    (t, t, t)
    for t in (
        np.pi / 4,
        np.pi / 2,
        3 * np.pi / 4,
        np.pi,
        5 * np.pi / 4,
        3 * np.pi / 2,
        7 * np.pi / 4,
        2 * np.pi,
    )
) + ((np.pi / 4, np.pi / 2, np.pi),)

#: Candidate θ values used by the tuning helpers (the values discussed in the
#: paper's Figures 6 and 10 plus a slightly finer grid around them).
DEFAULT_THETA_GRID: Tuple[float, ...] = (
    np.pi / 2,
    3 * np.pi / 4,
    np.pi,
    5 * np.pi / 4,
    3 * np.pi / 2,
    7 * np.pi / 4,
    2 * np.pi,
)


def max_segments_for_theta(
    thetas: Union[float, Sequence[float]],
    num_samples: int = 100_000,
    seed: SeedLike = 0,
) -> int:
    """Maximum number of distinct labels over random normalized RGB samples.

    Reproduces the Table-II protocol: draw ``num_samples`` RGB triples
    uniformly from ``[0, 1]³``, classify each with the IQFT RGB rule under the
    given θ configuration, and count the distinct labels observed.
    """
    if num_samples < 1:
        raise ParameterError("num_samples must be positive")
    rng = as_generator(seed)
    samples = rng.random((int(num_samples), 3))
    segmenter = IQFTSegmenter(thetas=thetas, normalize=True, max_value=1.0)
    # Classify the flat sample list by shaping it as a 1-pixel-high image.
    labels = segmenter.segment(samples.reshape(1, -1, 3)).labels
    return int(np.unique(labels).size)


def segment_count_table(
    theta_rows: Iterable[ThetaTriple] = PAPER_TABLE2_THETAS,
    num_samples: int = 100_000,
    seed: SeedLike = 0,
) -> Dict[ThetaTriple, int]:
    """Regenerate Table II: θ configuration → maximum number of segments."""
    return {
        tuple(float(t) for t in row): max_segments_for_theta(row, num_samples, seed)
        for row in theta_rows
    }


@dataclasses.dataclass
class ThetaSearchResult:
    """Outcome of a θ search.

    Attributes
    ----------
    best_theta:
        The selected angle (scalar; applied to all three channels).
    best_score:
        The criterion value achieved at ``best_theta`` (mIOU for the
        supervised search, the balance score for the unsupervised one).
    scores:
        Mapping of every candidate θ to its score.
    """

    best_theta: float
    best_score: float
    scores: Dict[float, float]


def tune_theta_supervised(
    image: np.ndarray,
    ground_truth: np.ndarray,
    void_mask: Optional[np.ndarray] = None,
    candidates: Sequence[float] = DEFAULT_THETA_GRID,
    segmenter: Optional[IQFTSegmenter] = None,
) -> ThetaSearchResult:
    """Oracle θ tuning: pick the candidate maximizing mIOU against the mask.

    This is the protocol behind Figure 10: the paper picks θ = 3π/4 instead of
    π for images where π fails badly, showing the headline numbers are a lower
    bound on what per-image tuning achieves.
    """
    if len(candidates) == 0:
        raise ParameterError("need at least one candidate theta")
    base = segmenter or IQFTSegmenter()
    scores: Dict[float, float] = {}
    for theta in candidates:
        seg = base.with_thetas(theta)
        labels = seg.segment(image).labels
        binary = binarize_by_overlap(labels, ground_truth, void_mask)
        scores[float(theta)] = float(
            mean_iou(binary, ground_truth, void_mask=void_mask)
        )
    best_theta = max(scores, key=lambda t: scores[t])
    return ThetaSearchResult(best_theta=best_theta, best_score=scores[best_theta], scores=scores)


def tune_theta_unsupervised(
    image: np.ndarray,
    candidates: Sequence[float] = DEFAULT_THETA_GRID,
    target_segments: int = 2,
    segmenter: Optional[IQFTSegmenter] = None,
) -> ThetaSearchResult:
    """Label-free θ selection by a segment-balance criterion.

    For each candidate θ the image is segmented and scored by how well the
    result matches a foreground/background decomposition:

    * the number of segments should be close to ``target_segments``;
    * the entropy of the segment-size distribution should be high (a
      degenerate everything-in-one-segment output scores 0).

    The score is ``entropy / log(max(segments, 2)) − |segments − target| / 8``,
    a bounded heuristic that prefers a small number of well-populated segments.
    """
    if len(candidates) == 0:
        raise ParameterError("need at least one candidate theta")
    base = segmenter or IQFTSegmenter()
    scores: Dict[float, float] = {}
    for theta in candidates:
        seg = base.with_thetas(theta)
        labels = seg.segment(image).labels
        k = count_segments(labels)
        _, counts = np.unique(labels, return_counts=True)
        fractions = counts / counts.sum()
        entropy = float(-(fractions * np.log(fractions + 1e-12)).sum())
        norm = np.log(max(k, 2))
        balance = entropy / norm if norm > 0 else 0.0
        penalty = abs(k - target_segments) / 8.0
        scores[float(theta)] = balance - penalty
    best_theta = max(scores, key=lambda t: scores[t])
    return ThetaSearchResult(best_theta=best_theta, best_score=scores[best_theta], scores=scores)

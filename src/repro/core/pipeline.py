"""End-to-end segmentation pipeline: preprocess → segment → binarize → score.

The pipeline packages the bookkeeping that every experiment needs — optional
resizing, optional grayscale conversion, running a segmenter, collapsing the
multi-way output to foreground/background and computing metrics against a
ground-truth mask — so that examples and the harness stay short and identical
across methods.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..base import BaseSegmenter, SegmentationResult
from ..errors import ParameterError
from ..imaging.color import rgb_to_gray
from ..imaging.transform import resize
from ..metrics.accuracy import dice_coefficient, pixel_accuracy
from ..metrics.iou import mean_iou
from .labels import binarize_by_overlap, binarize_largest_background

__all__ = ["PipelineResult", "SegmentationPipeline"]


@dataclasses.dataclass
class PipelineResult:
    """Everything produced by one pipeline run on one image.

    Attributes
    ----------
    segmentation:
        The raw :class:`~repro.base.SegmentationResult` from the segmenter.
    binary:
        The foreground/background mask derived from the raw labels (always
        present; equals the raw labels for binary methods).
    metrics:
        ``{"miou": ..., "pixel_accuracy": ..., "dice": ...}`` when a ground
        truth was supplied, empty otherwise.
    """

    segmentation: SegmentationResult
    binary: np.ndarray
    metrics: Dict[str, float] = dataclasses.field(default_factory=dict)

    @property
    def labels(self) -> np.ndarray:
        """Shortcut to the raw label map."""
        return self.segmentation.labels

    @property
    def miou(self) -> Optional[float]:
        """The mIOU when ground truth was provided, else ``None``."""
        return self.metrics.get("miou")


class SegmentationPipeline:
    """Compose preprocessing, a segmenter, binarization and metric computation.

    Parameters
    ----------
    segmenter:
        Any :class:`~repro.base.BaseSegmenter`.
    to_grayscale:
        Convert RGB input to grayscale (equation (17)) before segmenting —
        used when running the grayscale IQFT variant or Otsu on RGB datasets.
    target_shape:
        Optional ``(H, W)`` to resize inputs to before segmenting (ground
        truth masks are resized with nearest-neighbour to stay crisp).
    """

    def __init__(
        self,
        segmenter: BaseSegmenter,
        to_grayscale: bool = False,
        target_shape: Optional[Tuple[int, int]] = None,
    ):
        if not isinstance(segmenter, BaseSegmenter):
            raise ParameterError("segmenter must be a BaseSegmenter instance")
        self.segmenter = segmenter
        self.to_grayscale = bool(to_grayscale)
        self.target_shape = tuple(int(v) for v in target_shape) if target_shape else None

    # ------------------------------------------------------------------ #
    def _prepare(self, image: np.ndarray) -> np.ndarray:
        arr = np.asarray(image)
        if self.target_shape is not None:
            arr = resize(arr, self.target_shape, method="bilinear")
        if self.to_grayscale and arr.ndim == 3:
            arr = rgb_to_gray(arr)
        return arr

    def _prepare_mask(self, mask: Optional[np.ndarray]) -> Optional[np.ndarray]:
        if mask is None:
            return None
        arr = np.asarray(mask)
        if self.target_shape is not None:
            arr = resize(arr.astype(np.float64), self.target_shape, method="nearest")
            arr = (arr > 0.5).astype(np.int64)
        return arr

    def score(
        self,
        result: SegmentationResult,
        ground_truth: Optional[np.ndarray] = None,
        void_mask: Optional[np.ndarray] = None,
    ) -> PipelineResult:
        """Binarize an existing segmentation and score it against a raw mask.

        ``ground_truth`` / ``void_mask`` are given in *input* coordinates (the
        same preprocessing as :meth:`run` is applied to them here).  Splitting
        this out of :meth:`run` lets the batch engine substitute its fast label
        paths while reusing the exact evaluation protocol.
        """
        gt = self._prepare_mask(ground_truth)
        void = self._prepare_mask(void_mask)
        void_bool = void.astype(bool) if void is not None else None

        if gt is not None:
            binary = binarize_by_overlap(result.labels, gt, void_bool)
        else:
            binary = binarize_largest_background(result.labels)

        metrics: Dict[str, float] = {}
        if gt is not None:
            metrics["miou"] = mean_iou(binary, gt, void_mask=void_bool)
            metrics["pixel_accuracy"] = pixel_accuracy(binary, gt, void_mask=void_bool)
            metrics["dice"] = dice_coefficient(binary, gt, void_mask=void_bool)
        return PipelineResult(segmentation=result, binary=binary, metrics=metrics)

    def run(
        self,
        image: np.ndarray,
        ground_truth: Optional[np.ndarray] = None,
        void_mask: Optional[np.ndarray] = None,
    ) -> PipelineResult:
        """Segment one image and (optionally) score it against a binary mask."""
        prepared = self._prepare(image)
        result = self.segmenter.segment(prepared)
        return self.score(result, ground_truth, void_mask)

    def run_many(
        self,
        images,
        ground_truths=None,
        void_masks=None,
        executor=None,
        use_lut: bool = True,
    ) -> list:
        """Run the pipeline over an iterable of images (batched).

        Delegates to :class:`repro.engine.BatchSegmentationEngine`, which takes
        the exact-equivalent LUT fast path for quantized inputs and can spread
        the batch over an executor (``executor=get_executor("process")`` for
        process parallelism; the default stays serial and deterministic).
        """
        from ..engine import BatchSegmentationEngine  # local import: engine builds on pipeline

        engine = BatchSegmentationEngine.from_pipeline(
            self, use_lut=use_lut, executor=executor
        )
        return engine.map(images, ground_truths, void_masks)

    def describe(self) -> Dict[str, Any]:
        """A JSON-friendly description of the pipeline configuration."""
        return {
            "segmenter": self.segmenter.name,
            "to_grayscale": self.to_grayscale,
            "target_shape": self.target_shape,
        }

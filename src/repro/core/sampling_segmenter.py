"""Shot-based IQFT segmentation: what running the method on hardware would yield.

The paper's Algorithm 1 uses the exact probabilities ``|W·F/N|²``.  On a
quantum device those probabilities are not available directly; each pixel's
label would be estimated from a finite number of measurement *shots* of the
encode-then-IQFT circuit, possibly corrupted by gate and readout noise.
:class:`ShotBasedIQFTSegmenter` emulates exactly that pipeline:

* exact per-pixel probabilities are computed with the classical kernel (this
  is mathematically identical to simulating the noiseless circuit, see the
  quantum-equivalence tests),
* gate noise is folded in by mixing the exact distribution toward the uniform
  distribution with an *effective depolarizing strength* calibrated from the
  supplied :class:`~repro.quantum.noise_models.NoiseModel` (per-qubit error
  probabilities compound over the 3-qubit IQFT circuit's gate count),
* readout error applies independent bit flips to each sampled outcome,
* the pixel label is the majority vote over the shots.

With ``shots → ∞`` and a noiseless model the output converges to the exact
Algorithm-1 labels (a property test asserts this); with few shots or strong
noise the label map degrades gracefully, which is what the shots-convergence
benchmark measures.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple, Union

import numpy as np

from ..base import BaseSegmenter
from ..config import SeedLike, as_generator
from ..errors import ParameterError
from ..quantum.noise_models import NoiseModel
from ..quantum.qft import iqft_circuit
from .classifier import IQFTClassifier
from .phase_encoding import DEFAULT_THETA, normalize_pixels, pixel_phases

__all__ = ["ShotBasedIQFTSegmenter", "effective_depolarizing_strength"]

ThetaLike = Union[float, Sequence[float]]


def effective_depolarizing_strength(noise_model: NoiseModel, num_qubits: int = 3) -> float:
    """Collapse a per-gate noise model into one circuit-level mixing weight.

    Each gate of the encode+IQFT circuit applies the configured channels to the
    qubits it touches; to first order the state picks up an error with
    probability ``p_gate = depolarizing + phase_damping + amplitude_damping``
    per touched qubit, and the probability that *no* error happened across all
    ``G`` touched-qubit events is ``(1 − p_gate)^G``.  The returned value is
    ``1 − (1 − p_gate)^G``: the weight with which the exact outcome
    distribution is mixed toward the uniform distribution.
    """
    per_event = min(
        1.0,
        noise_model.depolarizing + noise_model.phase_damping + noise_model.amplitude_damping,
    )
    if per_event <= 0.0:
        return 0.0
    # Touched-qubit events: encoding applies H and P on every qubit (2n), the
    # IQFT applies n Hadamards, n(n-1)/2 controlled-phase gates touching two
    # qubits each, and ⌊n/2⌋ SWAPs touching two qubits each.
    encode_events = 2 * num_qubits
    iqft_events = num_qubits + 2 * (num_qubits * (num_qubits - 1) // 2) + 2 * (num_qubits // 2)
    total_events = encode_events + iqft_events
    return float(1.0 - (1.0 - per_event) ** total_events)


class ShotBasedIQFTSegmenter(BaseSegmenter):
    """Algorithm 1 executed with finite measurement shots and optional noise.

    Parameters
    ----------
    shots:
        Measurement shots per pixel.  ``shots=1`` gives a single-sample label
        (very noisy); a few hundred shots recover the exact labels on almost
        every pixel.
    thetas:
        Angle parameters, as in :class:`~repro.core.rgb_segmenter.IQFTSegmenter`.
    noise_model:
        Optional hardware noise description; ``None`` means a perfect device.
    seed:
        Seed for the shot sampling (and readout errors).
    normalize / max_value / chunk_size:
        As in the exact segmenter.
    """

    name = "iqft-rgb-shots"

    def __init__(
        self,
        shots: int = 256,
        thetas: ThetaLike = DEFAULT_THETA,
        noise_model: Optional[NoiseModel] = None,
        seed: SeedLike = 0,
        normalize: bool = True,
        max_value: float = 255.0,
        chunk_size: Optional[int] = None,
    ):
        super().__init__()
        if shots < 1:
            raise ParameterError("shots must be >= 1")
        self.shots = int(shots)
        arr = np.atleast_1d(np.asarray(thetas, dtype=np.float64))
        if arr.size == 1:
            arr = np.repeat(arr, 3)
        if arr.size != 3 or np.any(arr < 0):
            raise ParameterError("thetas must be a non-negative scalar or triple")
        self._thetas: Tuple[float, float, float] = (float(arr[0]), float(arr[1]), float(arr[2]))
        self.noise_model = noise_model or NoiseModel()
        self.seed = seed
        self.normalize = bool(normalize)
        if max_value <= 0:
            raise ParameterError("max_value must be positive")
        self.max_value = float(max_value)
        self._classifier = IQFTClassifier(num_qubits=3, chunk_size=chunk_size)
        self._circuit = iqft_circuit(3)
        self._last_extras: Dict[str, Any] = {}

    # ------------------------------------------------------------------ #
    @property
    def thetas(self) -> Tuple[float, float, float]:
        """The angle parameters ``(θ1, θ2, θ3)``."""
        return self._thetas

    def exact_labels(self, image: np.ndarray) -> np.ndarray:
        """The infinite-shot (noiseless Algorithm 1) labels, for comparison."""
        probs, shape = self._pixel_probabilities(np.asarray(image))
        return np.argmax(probs, axis=-1).reshape(shape).astype(np.int64)

    def _pixel_probabilities(self, arr: np.ndarray) -> Tuple[np.ndarray, Tuple[int, int]]:
        if arr.ndim != 3 or arr.shape[2] != 3:
            raise ParameterError(
                f"{self.name} expects an (H, W, 3) RGB image, got shape {arr.shape}"
            )
        if self.normalize:
            values = normalize_pixels(arr, max_value=self.max_value)
        else:
            values = arr.astype(float)
        phases = pixel_phases(values, self._thetas)
        shape = phases.shape[:2]
        probs = self._classifier.probabilities(phases.reshape(-1, 3))
        return probs, shape

    def _noisy_distribution(self, probs: np.ndarray) -> np.ndarray:
        strength = effective_depolarizing_strength(self.noise_model, num_qubits=3)
        if strength <= 0:
            return probs
        uniform = 1.0 / probs.shape[-1]
        return (1.0 - strength) * probs + strength * uniform

    def _apply_readout_error(self, samples: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        p_read = self.noise_model.readout_error
        if p_read <= 0:
            return samples
        flips = rng.random(samples.shape + (3,)) < p_read
        flip_values = (flips * np.array([4, 2, 1])).sum(axis=-1)
        return samples ^ flip_values.astype(samples.dtype)

    def _segment(self, image: np.ndarray) -> np.ndarray:
        arr = np.asarray(image)
        probs, shape = self._pixel_probabilities(arr)
        probs = self._noisy_distribution(probs)
        # Guard against rows summing to 1 + ε (floating error), which
        # Generator.multinomial rejects; the 1e-12 deficit is absorbed by the
        # last category and is far below the shot-sampling noise floor.
        probs = probs / probs.sum(axis=1, keepdims=True)
        probs = probs * (1.0 - 1e-12)
        rng = as_generator(self.seed)

        num_pixels, num_states = probs.shape
        # Vectorized multinomial sampling: counts[pixel, state] out of `shots`.
        counts = np.zeros((num_pixels, num_states), dtype=np.int64)
        if self.noise_model.readout_error > 0:
            # Readout errors act on individual outcomes, so sample them explicitly.
            cdf = np.cumsum(probs, axis=1)
            draws = rng.random((num_pixels, self.shots))
            samples = (draws[..., None] > cdf[:, None, :]).sum(axis=-1)
            samples = self._apply_readout_error(samples.astype(np.int64), rng)
            for state in range(num_states):
                counts[:, state] = (samples == state).sum(axis=1)
        else:
            # rng.multinomial broadcasts over the pixel axis.
            counts = rng.multinomial(self.shots, probs)
        labels = np.argmax(counts, axis=1)
        self._last_extras = {
            "shots": self.shots,
            "thetas": self._thetas,
            "noise": self.noise_model,
            "effective_depolarizing": effective_depolarizing_strength(self.noise_model),
        }
        return labels.reshape(shape).astype(np.int64)

    def _extras(self) -> Dict[str, Any]:
        return dict(self._last_extras)

    def agreement_with_exact(self, image: np.ndarray) -> float:
        """Fraction of pixels whose shot-based label equals the exact label."""
        exact = self.exact_labels(image)
        sampled = self.segment(image).labels
        return float(np.mean(exact == sampled))

"""Pixel-intensity → relative-phase encoding (lines 1–3 of Algorithm 1).

The encoding is deliberately split out of the segmenters so that it can be
tested, benchmarked and reused (e.g. by the quantum-circuit equivalence
checks) independently of the classification step.

Conventions
-----------
* Channel order for RGB pixels is ``(R, G, B)``.
* Following Algorithm 1, ``γ = R·θ1``, ``β = G·θ2``, ``α = B·θ3``.
* Phase vectors list the **most significant qubit first**: ``(α, β, γ)`` for
  the 3-qubit RGB case, matching the tensor-product order of equation (11)
  and :func:`repro.core.iqft_matrix.basis_bit_matrix`.
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

import numpy as np

from ..errors import ParameterError, ShapeError
from .iqft_matrix import basis_bit_matrix

__all__ = [
    "DEFAULT_THETA",
    "normalize_pixels",
    "pixel_phases",
    "phase_vector",
    "phase_vectors",
]

#: The θ used for the paper's main Table-III experiments (θ1 = θ2 = θ3 = π).
DEFAULT_THETA: Tuple[float, float, float] = (np.pi, np.pi, np.pi)


def normalize_pixels(pixels: np.ndarray, max_value: float = 255.0) -> np.ndarray:
    """Line 1 of Algorithm 1: scale raw intensities into ``[0, 1]``.

    * ``uint8`` input is divided by 255.
    * Floating-point input whose maximum is ≤ 1 is treated as already
      normalized (returned clipped to ``[0, 1]``), so the segmenters accept
      either storage convention without double-scaling.
    * Other numeric input is divided by ``max_value``.
    """
    if max_value <= 0:
        raise ParameterError("max_value must be positive")
    arr = np.asarray(pixels)
    if arr.dtype == np.uint8:
        return arr.astype(np.float64) / 255.0
    out = arr.astype(np.float64)
    if out.size == 0 or float(out.max()) <= 1.0 + 1e-12:
        return np.clip(out, 0.0, 1.0)
    return np.clip(out / float(max_value), 0.0, 1.0)


def _as_thetas(thetas: Union[float, Sequence[float]], channels: int) -> np.ndarray:
    arr = np.atleast_1d(np.asarray(thetas, dtype=np.float64))
    if arr.size == 1:
        arr = np.full(channels, float(arr[0]), dtype=np.float64)
    if arr.size != channels:
        raise ParameterError(
            f"expected {channels} angle parameter(s), got {arr.size}"
        )
    if np.any(arr < 0):
        raise ParameterError("angle parameters must be non-negative")
    return arr


def pixel_phases(
    normalized: np.ndarray, thetas: Union[float, Sequence[float]] = DEFAULT_THETA
) -> np.ndarray:
    """Line 2 of Algorithm 1: map normalized channels to phases.

    Parameters
    ----------
    normalized:
        ``(..., C)`` array of normalized channel intensities in ``[0, 1]``
        with channel order ``(R, G, B)`` for ``C = 3`` (or a ``(...,)`` /
        ``(..., 1)`` array for grayscale).
    thetas:
        A scalar or ``C`` angle parameters ``(θ1, ..., θC)``; ``θ1``
        multiplies the first channel (R), as in Algorithm 1.

    Returns
    -------
    phases:
        ``(..., C)`` array ordered **most significant qubit first**, i.e. the
        channel order is reversed so that for RGB the result is
        ``(α, β, γ) = (B·θ3, G·θ2, R·θ1)``.
    """
    arr = np.asarray(normalized, dtype=np.float64)
    theta_seq = np.atleast_1d(np.asarray(thetas, dtype=np.float64))
    if theta_seq.size == 1:
        # Scalar θ: interpret the entire input as single-channel intensities.
        arr = arr[..., np.newaxis]
        channels = 1
    else:
        channels = int(theta_seq.size)
        if arr.ndim == 0 or arr.shape[-1] != channels:
            raise ShapeError(
                f"expected a trailing channel axis of size {channels}, "
                f"got input shape {np.shape(normalized)}"
            )
    theta_arr = _as_thetas(thetas, channels)
    phases = arr * theta_arr  # broadcasting over the channel axis
    return phases[..., ::-1]  # reverse: last channel becomes the most significant qubit


def phase_vector(phases: Sequence[float]) -> np.ndarray:
    """Line 3 of Algorithm 1 for a single pixel: the ``2^n``-component vector.

    Given ``n`` phases ``(α, β, γ, ...)`` (most significant first), returns the
    unnormalized column vector ``F`` of equation (11) with
    ``F_k = exp(i · bits(k)·phases)``.
    """
    phi = np.asarray(phases, dtype=np.float64).reshape(-1)
    if phi.size < 1:
        raise ShapeError("need at least one phase")
    bits = basis_bit_matrix(phi.size)
    return np.exp(1j * (bits @ phi))


def phase_vectors(phases: np.ndarray) -> np.ndarray:
    """Vectorized form of :func:`phase_vector` for ``(N, n)`` phase arrays.

    Returns an ``(N, 2^n)`` complex array whose ``m``-th row is the pixel-``m``
    column vector of equation (11).  This is the memory-dominant intermediate
    of the algorithm (``16 · N · 2^n`` bytes), which is why the segmenters
    process pixels in chunks.
    """
    arr = np.asarray(phases, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr[np.newaxis, :]
    if arr.ndim != 2:
        raise ShapeError(f"phases must be an (N, n) array, got shape {arr.shape}")
    bits = basis_bit_matrix(arr.shape[1])
    return np.exp(1j * (arr @ bits.T))

"""The single-qubit IQFT-inspired segmenter for grayscale images (Sec. IV-C).

A grayscale pixel with normalized intensity ``I`` is encoded as the one-qubit
state ``(|0⟩ + e^{i I θ}|1⟩)/√2``; applying the 2×2 IQFT (a Hadamard) yields
class probabilities ``(1 ± cos Iθ)/2``, so the method is exactly a
(multi-)thresholding of the intensity at the points where ``cos(Iθ)`` changes
sign (equations (12)–(16)).

Setting ``θ`` from an Otsu threshold via
:func:`repro.core.thresholds.theta_for_threshold` makes the output *identical*
to Otsu's (Figure 7); choosing larger θ (e.g. 4π) produces several thresholds
from a single parameter (Figure 4), which a single-threshold method cannot do.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from ..base import BaseSegmenter
from ..errors import ParameterError
from ..imaging.color import rgb_to_gray
from .classifier import IQFTClassifier
from .lut import apply_lut, grayscale_label_lut, lut_eligible
from .phase_encoding import normalize_pixels
from .thresholds import thresholds_for_theta

__all__ = ["IQFTGrayscaleSegmenter"]


class IQFTGrayscaleSegmenter(BaseSegmenter):
    """IQFT-inspired grayscale segmenter (single qubit, two classes).

    Parameters
    ----------
    theta:
        The angle parameter θ.  Via equation (15) it is equivalent to the set
        of intensity thresholds returned by
        :func:`repro.core.thresholds.thresholds_for_theta`.
    normalize:
        Divide raw intensities by ``max_value`` before encoding.
    max_value:
        Raw intensity ceiling (255 for 8-bit input).
    multiband:
        When False (default) the output is the binary argmax label of
        equation (14) — class 0 vs class 1 — matching the paper's evaluation.
        When True, consecutive intensity bands between thresholds receive
        distinct labels (0, 1, 2, ...), exposing the multi-threshold behaviour
        of Figure 4 as separate segments instead of the alternating binary
        pattern.
    chunk_size:
        Pixels per internal matrix product; ``None`` uses the library default.
    """

    name = "iqft-gray"
    pointwise = True

    def __init__(
        self,
        theta: float = float(np.pi),
        normalize: bool = True,
        max_value: float = 255.0,
        multiband: bool = False,
        chunk_size: Optional[int] = None,
    ):
        super().__init__()
        if theta <= 0:
            raise ParameterError("theta must be positive")
        self.theta = float(theta)
        self.normalize = bool(normalize)
        if max_value <= 0:
            raise ParameterError("max_value must be positive")
        self.max_value = float(max_value)
        self.multiband = bool(multiband)
        self._classifier = IQFTClassifier(num_qubits=1, chunk_size=chunk_size)
        self._last_extras: Dict[str, Any] = {}

    # ------------------------------------------------------------------ #
    @property
    def thresholds(self) -> list:
        """The equivalent intensity thresholds implied by θ (equation (15))."""
        return thresholds_for_theta(self.theta)

    def with_theta(self, theta: float) -> "IQFTGrayscaleSegmenter":
        """Return a copy of this segmenter with a different θ."""
        return IQFTGrayscaleSegmenter(
            theta=theta,
            normalize=self.normalize,
            max_value=self.max_value,
            multiband=self.multiband,
            chunk_size=self._classifier._chunk_size,
        )

    def _intensity(self, image: np.ndarray) -> np.ndarray:
        arr = np.asarray(image)
        if arr.ndim == 3:
            # RGB input: the paper converts to grayscale with eq. (17) first.
            gray = rgb_to_gray(arr)
            return gray if self.normalize else gray * self.max_value
        if self.normalize:
            return normalize_pixels(arr, max_value=self.max_value)
        return arr.astype(np.float64)

    def pixel_probabilities(self, image: np.ndarray) -> np.ndarray:
        """Return the ``(H, W, 2)`` class probabilities of equation (14)."""
        intensity = self._intensity(image)
        phases = (intensity * self.theta).reshape(-1, 1)
        probs = self._classifier.probabilities(phases)
        return probs.reshape(intensity.shape[0], intensity.shape[1], 2)

    def _segment(self, image: np.ndarray) -> np.ndarray:
        intensity = self._intensity(image)
        phases = (intensity * self.theta).reshape(-1, 1)
        binary = self._classifier.classify(phases).reshape(intensity.shape)
        self._last_extras = {
            "theta": self.theta,
            "thresholds": self.thresholds,
            "multiband": self.multiband,
        }
        if not self.multiband:
            return binary
        # Multiband mode: label each inter-threshold intensity band separately.
        thresholds = np.asarray(self.thresholds, dtype=np.float64)
        if thresholds.size == 0:
            return np.zeros_like(binary)
        bands = np.digitize(intensity, thresholds, right=False)
        return bands.astype(np.int64)

    def labels_from_lut(
        self,
        image: np.ndarray,
        extras: Optional[Dict[str, Any]] = None,
        backend: Optional[Any] = None,
    ) -> Optional[np.ndarray]:
        """LUT fast path: exact labels via a 256-entry value table, or ``None``.

        Eligible inputs are 2-D integer images (see
        :func:`repro.core.lut.lut_eligible`); everything else — float images,
        RGB input routed through the grayscale conversion — returns ``None``
        so callers fall back to :meth:`segment`.  When the table applies, the
        result is bit-identical to the matrix path because the table itself is
        built by the exact classifier — on *every* backend: the table gather
        is an integer kernel under the bit-exact contract, so passing an
        :class:`~repro.backend.base.ArrayBackend` moves the memory-bound
        apply to its substrate without changing a single label.  Diagnostics
        go into the caller-owned ``extras`` dict when one is passed (so
        concurrent callers sharing this segmenter don't race on its internal
        state).
        """
        arr = np.asarray(image)
        if arr.ndim != 2 or not lut_eligible(arr, normalize=self.normalize):
            return None
        lut = grayscale_label_lut(
            theta=self.theta,
            normalize=self.normalize,
            max_value=self.max_value,
            multiband=self.multiband,
            uint8_values=arr.dtype == np.uint8,
        )
        info = {
            "theta": self.theta,
            "thresholds": self.thresholds,
            "multiband": self.multiband,
            "fast_path": "lut",
        }
        self._last_extras = info
        if extras is not None:
            extras.update(info)
        return apply_lut(lut, arr, backend=backend)

    def _extras(self) -> Dict[str, Any]:
        return dict(self._last_extras)

"""The generic ``n``-qubit IQFT phase-pattern classifier.

This class is the mathematical heart of the paper: given per-sample phase
vectors ``(α, β, γ, ...)`` it computes the amplitudes of equation (11)
(``(1/N)·W·F``), their squared moduli (the probability that the input pattern
matches each basis-state pattern), and the argmax label.  The RGB and
grayscale segmenters are thin wrappers that add image handling and θ-based
phase encoding on top.

The implementation is fully vectorized: a batch of ``N`` samples requires a
single ``(N, 2^n) @ (2^n, 2^n)`` complex matrix product, processed in chunks
to bound peak memory (see ``chunk_pixels`` in :mod:`repro.config`).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..backend.base import ArrayBackend
from ..config import get_config
from ..errors import ParameterError, ShapeError
from .iqft_matrix import basis_bit_matrix, iqft_classification_matrix

__all__ = ["IQFTClassifier"]


def _reference_backend() -> ArrayBackend:
    # Deferred: keeps the (tiny) registry import off the module-load path of
    # every core import without making callers pass a backend explicitly.
    from ..backend.registry import get_backend

    return get_backend("numpy")


class IQFTClassifier:
    """Classify phase patterns into computational-basis states via the IQFT.

    Parameters
    ----------
    num_qubits:
        Number of qubits ``n``; inputs have ``n`` phases and outputs are
        labels in ``{0, ..., 2^n − 1}``.
    chunk_size:
        Maximum number of samples per internal matrix product.  ``None`` uses
        the library default (:func:`repro.config.get_config`).
    backend:
        An :class:`~repro.backend.base.ArrayBackend` to run the float kernel
        on, or ``None`` (default) for the bit-exact NumPy reference.  The
        reference is deliberately *not* overridable through the environment:
        a non-reference backend changes float results within its documented
        tolerance, so routing compute there is an explicit decision made by
        the engine (``float_compute="backend"``), never ambient state.
    """

    def __init__(
        self,
        num_qubits: int = 3,
        chunk_size: Optional[int] = None,
        backend: Optional[ArrayBackend] = None,
    ):
        if num_qubits < 1:
            raise ParameterError("num_qubits must be >= 1")
        self._num_qubits = int(num_qubits)
        self._dim = 2**self._num_qubits
        # W with entries ω^{-jk}; the 1/N scaling of eq. (11) is applied in
        # amplitudes().  The matrix is symmetric, so no transpose is needed in
        # the row-vector formulation used below.
        self._matrix = iqft_classification_matrix(self._num_qubits)
        self._bits = basis_bit_matrix(self._num_qubits)
        self._chunk_size = chunk_size
        self._backend = self._checked_backend(backend)

    @staticmethod
    def _checked_backend(backend: Optional[ArrayBackend]) -> Optional[ArrayBackend]:
        if backend is not None and not isinstance(backend, ArrayBackend):
            raise ParameterError("backend must be an ArrayBackend instance or None")
        return backend

    def use_backend(self, backend: Optional[ArrayBackend]) -> None:
        """Route the float kernel through ``backend`` (``None`` = reference).

        The integer/label contract is unaffected — labels remain the argmax
        of the probabilities this classifier computes, with NumPy's
        tie-breaking — but amplitudes are then only tolerance-exact (see the
        backend's ``float_rtol``/``float_atol``).
        """
        self._backend = self._checked_backend(backend)

    @property
    def backend(self) -> Optional[ArrayBackend]:
        """The kernel backend, or ``None`` for the built-in NumPy reference."""
        return self._backend

    # ------------------------------------------------------------------ #
    @property
    def num_qubits(self) -> int:
        """Number of qubits (phases per sample)."""
        return self._num_qubits

    @property
    def num_classes(self) -> int:
        """Number of output classes, ``2**num_qubits``."""
        return self._dim

    @property
    def matrix(self) -> np.ndarray:
        """The unscaled classification matrix ``W`` (read-only view)."""
        view = self._matrix.view()
        view.flags.writeable = False
        return view

    def _effective_chunk(self) -> int:
        if self._chunk_size is not None:
            if self._chunk_size < 1:
                raise ParameterError("chunk_size must be positive")
            return int(self._chunk_size)
        return int(get_config().chunk_pixels)

    @staticmethod
    def _as_batch(phases: np.ndarray, num_qubits: int) -> np.ndarray:
        arr = np.asarray(phases, dtype=np.float64)
        single = arr.ndim == 1
        if single:
            arr = arr[np.newaxis, :]
        if arr.ndim != 2 or arr.shape[1] != num_qubits:
            raise ShapeError(
                f"phases must have shape (N, {num_qubits}) or ({num_qubits},); "
                f"got {np.shape(phases)}"
            )
        return arr

    # ------------------------------------------------------------------ #
    def amplitudes(self, phases: np.ndarray) -> np.ndarray:
        """Return the ``(N, 2^n)`` complex amplitudes ``(1/N)·W·F`` (eq. 11).

        ``phases`` is an ``(N, n)`` array (or a single ``(n,)`` vector, in
        which case the output is ``(2^n,)``), ordered most-significant qubit
        first as produced by :func:`repro.core.phase_encoding.pixel_phases`.
        """
        arr = self._as_batch(phases, self._num_qubits)
        out = np.empty((arr.shape[0], self._dim), dtype=np.complex128)
        chunk = self._effective_chunk()
        # The kernel (phase vectors + fixed-order accumulation against W)
        # lives on the backend; the reference keeps the historical bit-exact
        # order, adapters trade that for device throughput within their
        # documented tolerance.  Chunking stays here so every backend sees
        # the same bounded working set.
        kernel = self._backend if self._backend is not None else _reference_backend()
        for start in range(0, arr.shape[0], chunk):
            stop = min(start + chunk, arr.shape[0])
            out[start:stop] = kernel.phase_amplitudes(
                arr[start:stop], self._bits, self._matrix
            )
        if np.asarray(phases).ndim == 1:
            return out[0]
        return out

    def probabilities(self, phases: np.ndarray) -> np.ndarray:
        """Line 4 of Algorithm 1: squared moduli of the amplitudes.

        The rows sum to exactly ``1/N · |F|² = 1`` because the encoded state is
        (up to the explicit normalization bookkeeping) a valid quantum state;
        the paper's Figure 3 is one row of this output.
        """
        amps = self.amplitudes(phases)
        return np.abs(amps) ** 2

    def classify(self, phases: np.ndarray) -> np.ndarray:
        """Line 5 of Algorithm 1: the argmax basis-state label per sample.

        Ties are broken toward the smaller basis index (``numpy.argmax``
        semantics), which matters only on a measure-zero set of inputs.
        """
        probs = self.probabilities(phases)
        labels = np.argmax(probs, axis=-1)
        return labels.astype(np.int64)

    def classify_unique(self, phases: np.ndarray) -> np.ndarray:
        """Classify with row-level deduplication (standalone utility).

        Quantized inputs produce massively redundant phase batches; this
        classifies each *distinct* row once and scatters the labels back,
        which is exactly equivalent to :meth:`classify` because the rule is a
        pure per-row function.  The image segmenters use specialised versions
        of the same idea (the 256-entry value table and the packed-colour
        palette in their ``labels_from_lut`` hooks); use this one for raw
        phase batches that don't come from 8-bit images.  Worst case (all
        rows distinct) it degrades to one extra sort.
        """
        arr = self._as_batch(phases, self._num_qubits)
        uniq, inverse = np.unique(arr, axis=0, return_inverse=True)
        labels = self.classify(uniq)[np.asarray(inverse).reshape(-1)]
        if np.asarray(phases).ndim == 1:
            return labels[0]
        return labels

    # ------------------------------------------------------------------ #
    def classify_reference(self, phases: np.ndarray) -> np.ndarray:
        """Per-sample Python-loop implementation of Algorithm 1.

        This mirrors the pseudo-code line by line and exists purely as a
        correctness oracle for the vectorized path (and for the ablation
        benchmark measuring the cost of naive per-pixel loops).  Do not use it
        on full images.
        """
        arr = self._as_batch(phases, self._num_qubits)
        labels = np.empty(arr.shape[0], dtype=np.int64)
        from .phase_encoding import phase_vector  # local import to avoid cycle at module load

        for m in range(arr.shape[0]):
            f_m = phase_vector(arr[m])
            s_m = np.abs(f_m @ self._matrix / self._dim) ** 2
            labels[m] = int(np.argmax(s_m))
        return labels if np.asarray(phases).ndim != 1 else labels[:1]

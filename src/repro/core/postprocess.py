"""Spatial post-processing of label maps.

The IQFT rule (like Otsu and per-pixel K-means) uses no spatial information,
which the paper's related-work section itself lists as the classic weakness of
thresholding methods.  These optional post-processing steps address it without
changing the per-pixel algorithm:

* :func:`majority_smooth` — sliding-window mode filter: each pixel takes the
  most common label in its neighbourhood; iterated a configurable number of
  times.
* :func:`merge_small_segments` — connected components smaller than a minimum
  size are absorbed into their most common neighbouring label.
* :class:`SmoothedSegmenter` — wraps any :class:`~repro.base.BaseSegmenter`
  and applies the two steps to its output, so post-processed variants plug
  directly into the experiment harness (the spatial-smoothing ablation bench
  compares raw vs smoothed IQFT output).
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np
from scipy import ndimage

from ..base import BaseSegmenter
from ..errors import ParameterError

__all__ = ["majority_smooth", "merge_small_segments", "SmoothedSegmenter"]


def majority_smooth(labels: np.ndarray, window: int = 3, iterations: int = 1) -> np.ndarray:
    """Mode-filter a label map with a ``window × window`` neighbourhood.

    Implemented as one boolean-mask uniform filter per present label (a few
    labels at most for this algorithm), so it is vectorized over pixels.  Ties
    keep the current pixel's label when it participates in the tie, and
    otherwise resolve toward the smallest label value.
    """
    if window < 3 or window % 2 == 0:
        raise ParameterError("window must be an odd integer >= 3")
    if iterations < 0:
        raise ParameterError("iterations must be non-negative")
    current = np.asarray(labels).astype(np.int64, copy=True)
    if current.ndim != 2:
        raise ParameterError("labels must be a 2-D map")
    for _ in range(iterations):
        present = np.unique(current)
        if present.size <= 1:
            break
        votes = np.zeros(current.shape + (present.size,), dtype=np.float64)
        for idx, label in enumerate(present):
            votes[..., idx] = ndimage.uniform_filter(
                (current == label).astype(np.float64), size=window, mode="nearest"
            )
        best = np.argmax(votes, axis=-1)
        best_votes = np.take_along_axis(votes, best[..., None], axis=-1)[..., 0]
        # Preserve the current label when it ties with the argmax winner.
        current_idx = np.searchsorted(present, current)
        current_votes = np.take_along_axis(votes, current_idx[..., None], axis=-1)[..., 0]
        keep = current_votes >= best_votes - 1e-12
        new_labels = present[best]
        current = np.where(keep, current, new_labels)
    return current


def merge_small_segments(labels: np.ndarray, min_size: int = 16) -> np.ndarray:
    """Absorb connected components smaller than ``min_size`` into their surroundings.

    Each too-small component takes the most common label among its border
    neighbours (8-connectivity).  Components are processed from smallest to
    largest so cascades of tiny fragments collapse in a single pass.
    """
    if min_size < 0:
        raise ParameterError("min_size must be non-negative")
    out = np.asarray(labels).astype(np.int64, copy=True)
    if out.ndim != 2:
        raise ParameterError("labels must be a 2-D map")
    if min_size == 0:
        return out
    structure = np.ones((3, 3), dtype=bool)

    components = []
    for label in np.unique(out):
        mask = out == label
        comp, count = ndimage.label(mask, structure=structure)
        for comp_id in range(1, count + 1):
            comp_mask = comp == comp_id
            size = int(comp_mask.sum())
            if size < min_size:
                components.append((size, comp_mask))
    components.sort(key=lambda item: item[0])

    for _, comp_mask in components:
        border = ndimage.binary_dilation(comp_mask, structure=structure) & ~comp_mask
        if not border.any():
            continue  # the component is the whole image
        neighbour_labels = out[border]
        values, counts = np.unique(neighbour_labels, return_counts=True)
        out[comp_mask] = values[np.argmax(counts)]
    return out


class SmoothedSegmenter(BaseSegmenter):
    """Wrap a segmenter and spatially regularize its label map.

    Parameters
    ----------
    base:
        The segmenter whose output is post-processed.
    window, iterations:
        Mode-filter parameters (``iterations=0`` disables the filter).
    min_size:
        Minimum connected-component size (0 disables merging).
    """

    def __init__(
        self,
        base: BaseSegmenter,
        window: int = 3,
        iterations: int = 1,
        min_size: int = 16,
    ):
        super().__init__()
        if not isinstance(base, BaseSegmenter):
            raise ParameterError("base must be a BaseSegmenter")
        self.base = base
        self.window = int(window)
        self.iterations = int(iterations)
        self.min_size = int(min_size)
        self.name = f"{base.name}+smoothed"
        self._last_extras: Dict[str, Any] = {}

    def _segment(self, image: np.ndarray) -> np.ndarray:
        raw = self.base.segment(image)
        labels = raw.labels
        if self.iterations > 0:
            labels = majority_smooth(labels, window=self.window, iterations=self.iterations)
        if self.min_size > 0:
            labels = merge_small_segments(labels, min_size=self.min_size)
        self._last_extras = {
            "base_method": raw.method,
            "base_segments": raw.num_segments,
            "base_runtime_seconds": raw.runtime_seconds,
        }
        return labels

    def _extras(self) -> Dict[str, Any]:
        return dict(self._last_extras)

"""θ ↔ intensity-threshold calculus for the grayscale algorithm.

Section IV-C of the paper shows that the single-qubit classifier is a
thresholding technique: a pixel with normalized intensity ``I`` is assigned to
class 1 when ``cos(Iθ) > 0`` and to class 2 when ``cos(Iθ) < 0``, so the
decision boundaries are the solutions of ``cos(I·θ) = 0``:

    ``I_th · θ = (4k ± 1) · π/2``,   ``k = 0, 1, 2, ...``,   ``I_th ≤ 1``.

A single θ therefore realizes one *or several* thresholds (Table I and
equation (16)); conversely any threshold produced by e.g. Otsu's method can be
converted to an equivalent θ (Figure 7).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..errors import ParameterError

__all__ = [
    "thresholds_for_theta",
    "theta_for_threshold",
    "grayscale_class_probabilities",
    "classify_intensity",
    "paper_table1",
    "PAPER_TABLE1_THETAS",
]

#: The θ values listed in Table I of the paper.
PAPER_TABLE1_THETAS: Tuple[float, ...] = (
    3.0 * np.pi / 4.0,
    np.pi,
    5.0 * np.pi / 4.0,
    3.0 * np.pi / 2.0,
    7.0 * np.pi / 4.0,
    2.0 * np.pi,
)


def thresholds_for_theta(theta: float, tol: float = 1e-12) -> List[float]:
    """All intensity thresholds in ``(0, 1)`` realized by the angle ``theta``.

    Returns the sorted solutions of ``I·θ = (4k ± 1)·π/2`` with ``0 < I < 1``.
    A solution at exactly ``I = 1`` is excluded because no normalized
    intensity lies above it, so it cannot separate anything (this is why the
    paper's Table I lists a single threshold for θ = 3π/2 even though
    ``3·π/(2·3π/2) = 1`` also solves the equation).  For ``θ ≤ π/2`` the list
    is empty (no sign change of ``cos`` within the intensity range, hence a
    single segment).
    """
    if theta <= 0:
        raise ParameterError("theta must be positive")
    thresholds: List[float] = []
    k = 0
    while True:
        produced = False
        for sign in (-1.0, 1.0):
            multiplier = 4.0 * k + sign
            if multiplier <= 0:
                continue
            candidate = multiplier * np.pi / (2.0 * theta)
            if candidate < 1.0 - tol:
                thresholds.append(candidate)
                produced = True
        if not produced and (4.0 * k - 1.0) * np.pi / (2.0 * theta) >= 1.0 - tol:
            break
        k += 1
        if k > 10_000:  # pragma: no cover - safety stop for absurd θ
            break
    return sorted(set(round(t, 15) for t in thresholds))


def theta_for_threshold(threshold: float, k: int = 0, sign: int = 1) -> float:
    """The angle θ whose ``(k, sign)`` decision boundary equals ``threshold``.

    ``θ = (4k ± 1)·π / (2·I_th)``.  With the defaults (``k=0, sign=+1``) this
    is the conversion used for Figure 7: an Otsu threshold of 0.4465 maps to
    ``θ ≈ 1.1197π``.
    """
    if not 0.0 < threshold <= 1.0:
        raise ParameterError("threshold must lie in (0, 1]")
    if sign not in (1, -1):
        raise ParameterError("sign must be +1 or -1")
    multiplier = 4 * int(k) + sign
    if multiplier <= 0:
        raise ParameterError("4k + sign must be positive")
    return multiplier * np.pi / (2.0 * float(threshold))


def grayscale_class_probabilities(
    intensity: np.ndarray, theta: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Equation (14): the two class probabilities for normalized intensities.

    ``p(class1) = ((1 + cos Iθ)² + sin² Iθ)/4 = (1 + cos Iθ)/2`` and
    ``p(class2) = (1 − cos Iθ)/2``; both forms are equal, and the expanded
    form from the paper is evaluated literally so tests can confirm the
    simplification.
    """
    if theta <= 0:
        raise ParameterError("theta must be positive")
    arr = np.asarray(intensity, dtype=np.float64)
    angle = arr * float(theta)
    cos_a = np.cos(angle)
    sin_a = np.sin(angle)
    p1 = ((1.0 + cos_a) ** 2 + sin_a**2) / 4.0
    p2 = ((1.0 - cos_a) ** 2 + sin_a**2) / 4.0
    return p1, p2


def classify_intensity(intensity: np.ndarray, theta: float) -> np.ndarray:
    """Binary label per intensity: 0 where ``p(class1) ≥ p(class2)``, else 1.

    Equivalent to ``cos(Iθ) < 0`` → label 1, matching the threshold rule of
    equation (15).  The boundary itself (``cos = 0``) is assigned to class 0,
    consistent with the argmax tie-break of the general classifier.
    """
    p1, p2 = grayscale_class_probabilities(intensity, theta)
    return (p2 > p1).astype(np.int64)


def paper_table1() -> Dict[float, List[float]]:
    """Regenerate Table I: θ → threshold value(s).

    Returns a mapping from each θ listed in the paper to its thresholds,
    e.g. ``{3π/4: [0.667], ..., 7π/4: [0.2857, 0.857], 2π: [0.25, 0.75]}``.
    """
    return {theta: thresholds_for_theta(theta) for theta in PAPER_TABLE1_THETAS}

"""Construction of the IQFT classification matrix (equation (11)).

Two closely related matrices appear in the paper:

* the *unitary* inverse-QFT matrix with entries ``ω^{-jk} / √N``
  (:func:`iqft_unitary_matrix`), and
* the *classification* matrix actually used in Algorithm 1, which carries a
  ``1/N`` prefactor because it multiplies the **unnormalized** phase column
  vector ``F`` whose Euclidean norm is ``√N`` (:func:`iqft_classification_matrix`).

Both produce the same probabilities; keeping the two scalings explicit lets the
tests assert that the classification output is exactly the measurement
distribution of the genuine quantum circuit.

The *basis phase patterns* of Figure 1 — the rows of the ``N × N`` matrix seen
as ``N`` points on the unit circle each — are exposed via
:func:`basis_phase_patterns`.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..errors import ParameterError

__all__ = [
    "omega",
    "iqft_unitary_matrix",
    "iqft_classification_matrix",
    "basis_bit_matrix",
    "basis_phase_patterns",
    "bit_reversed_index",
    "bit_reversal_permutation",
]


def _check_qubits(num_qubits: int) -> int:
    n = int(num_qubits)
    if n < 1:
        raise ParameterError("num_qubits must be >= 1")
    if n > 16:
        raise ParameterError("num_qubits > 16 would allocate a >4G-element matrix")
    return n


def omega(num_states: int) -> complex:
    """The primitive ``num_states``-th root of unity ``exp(2πi/num_states)``."""
    if num_states < 1:
        raise ParameterError("num_states must be positive")
    return complex(np.exp(2j * np.pi / num_states))


@lru_cache(maxsize=32)
def _exponent_matrix(dim: int) -> np.ndarray:
    indices = np.arange(dim)
    return np.outer(indices, indices) % dim


def iqft_unitary_matrix(num_qubits: int) -> np.ndarray:
    """Unitary IQFT matrix: entry ``(j, k) = ω^{-jk} / √N`` with ``N = 2^n``."""
    n = _check_qubits(num_qubits)
    dim = 2**n
    mat = np.power(np.conj(omega(dim)), _exponent_matrix(dim)) / np.sqrt(dim)
    return np.ascontiguousarray(mat.astype(np.complex128))


def iqft_classification_matrix(num_qubits: int) -> np.ndarray:
    """The paper's ``W`` scaled as in equation (11): entry ``(j, k) = ω^{-jk}``.

    Algorithm 1 divides the matrix-vector product by ``N`` (line 4 divides by
    8 for the 3-qubit case), so the matrix itself is returned unscaled; see
    :meth:`repro.core.classifier.IQFTClassifier.amplitudes` for where the
    ``1/N`` is applied.
    """
    n = _check_qubits(num_qubits)
    dim = 2**n
    mat = np.power(np.conj(omega(dim)), _exponent_matrix(dim))
    return np.ascontiguousarray(mat.astype(np.complex128))


@lru_cache(maxsize=32)
def basis_bit_matrix(num_qubits: int) -> np.ndarray:
    """Binary expansion of the basis indices, most-significant bit first.

    Returns an ``(N, n)`` float array ``B`` with ``B[k, j]`` the ``j``-th bit
    of ``k`` (``j = 0`` is the most significant).  With per-pixel phases
    ``φ = (α, β, γ, ...)`` ordered most-significant-qubit first, the phase of
    the ``k``-th component of the (unnormalized) encoded state is ``B[k] · φ``
    — exactly the exponents of the column vector in equation (11).
    """
    n = _check_qubits(num_qubits)
    dim = 2**n
    indices = np.arange(dim)
    shifts = np.arange(n - 1, -1, -1)
    bits = (indices[:, None] >> shifts[None, :]) & 1
    out = bits.astype(np.float64)
    out.flags.writeable = False
    return out


def bit_reversed_index(index: int, num_qubits: int) -> int:
    """Return ``index`` with its ``num_qubits``-bit binary expansion reversed.

    The textbook QFT/IQFT *circuit* emits its result with the qubit order
    reversed unless a final SWAP network is appended; as a consequence the
    basis-state labels reported by a circuit-convention implementation are the
    bit reversal of the labels produced by the matrix of equation (11).  The
    paper's Figure 3 labels the winning state of its worked example ``|100⟩``,
    which is the bit reversal of the matrix-convention argmax ``|001⟩`` — the
    two labelings describe the same classification, and this helper converts
    between them (it is its own inverse).
    """
    n = _check_qubits(num_qubits)
    idx = int(index)
    if not 0 <= idx < 2**n:
        raise ParameterError(f"index {idx} out of range for {n} qubit(s)")
    reversed_bits = 0
    for _ in range(n):
        reversed_bits = (reversed_bits << 1) | (idx & 1)
        idx >>= 1
    return reversed_bits


@lru_cache(maxsize=32)
def bit_reversal_permutation(num_qubits: int) -> np.ndarray:
    """The full permutation ``j -> bit_reversed_index(j)`` as an index array."""
    n = _check_qubits(num_qubits)
    perm = np.array([bit_reversed_index(j, n) for j in range(2**n)], dtype=np.int64)
    perm.flags.writeable = False
    return perm


def basis_phase_patterns(num_qubits: int) -> np.ndarray:
    """Phase angles of each basis-vector pattern (Figure 1 of the paper).

    Row ``j`` of the IQFT matrix is the pattern
    ``(1, ω^{-j}, ω^{-2j}, ..., ω^{-(N-1)j})``; this function returns the
    ``(N, N)`` array of its phase angles in ``[0, 2π)`` so that the Figure-1
    unit-circle visualization (and the pattern-similarity intuition behind the
    classifier) can be regenerated exactly.
    """
    n = _check_qubits(num_qubits)
    dim = 2**n
    angles = (-2.0 * np.pi / dim) * _exponent_matrix(dim)
    return np.mod(angles, 2.0 * np.pi)

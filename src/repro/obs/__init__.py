"""Observability: request tracing, structured logging, Prometheus exposition.

Three zero-dependency building blocks threaded through the serving stack:

* :mod:`repro.obs.trace` — a cheap per-request span recorder (plain tuples
  appended to a list) with a bounded flight-recorder ring of completed
  traces, deterministic sampling, and injectable monotonic clocks.
* :mod:`repro.obs.log` — a JSON-lines / key=value structured logger shared
  by the HTTP servers, the async service, the fleet supervisor, and the
  spool driver.
* :mod:`repro.obs.prom` — renders the existing ``metrics()`` tree (counters,
  gauges, and the mergeable latency sketches) in Prometheus text exposition
  format, plus a small validator used by CI.
"""

from .log import StructuredLogger, configure_logging, get_logger
from .prom import render_prometheus, validate_exposition
from .trace import Trace, Tracer

__all__ = [
    "StructuredLogger",
    "Trace",
    "Tracer",
    "configure_logging",
    "get_logger",
    "render_prometheus",
    "validate_exposition",
]

"""Structured logging: one event per line, JSON or ``key=value`` text.

Every log record is an *event name* plus flat fields.  In ``json`` format a
line is a single JSON object::

    {"ts": 1754500000.123, "level": "info", "event": "worker", "slot": 0, ...}

In ``text`` format the same record renders as::

    2026-08-07T12:26:40.123Z INFO worker slot=0 pid=4242

Text is the default (it keeps existing log-grepping tooling working —
``worker slot=0 pid=4242`` stays a literal substring); ``--log-format json``
switches the whole process.  Worker processes bind their ``worker_id`` once
and every subsequent line carries it.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from datetime import datetime, timezone
from typing import Any, Callable, Dict, Optional, TextIO

__all__ = ["StructuredLogger", "configure_logging", "get_logger"]

_LEVELS: Dict[str, int] = {"debug": 10, "info": 20, "warning": 30, "error": 40}

LOG_FORMATS = ("text", "json")


def _json_safe(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _json_safe(item) for key, item in value.items()}
    return str(value)


class StructuredLogger:
    """A line-per-event logger writing to one stream (stderr by default).

    The stream is resolved lazily so re-binding ``sys.stderr`` (pytest's
    capture, the supervisor's pipes) is always respected.  Writes are
    serialized under a lock and each record is flushed as one ``write()``
    call, so worker lines interleave whole, never torn.
    """

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        format: str = "text",
        level: str = "info",
        worker_id: Optional[int] = None,
        clock: Callable[[], float] = time.time,
    ):
        if format not in LOG_FORMATS:
            raise ValueError(f"log format must be one of {LOG_FORMATS}, got {format!r}")
        self._stream = stream
        self.format = format
        self.level = level
        self.worker_id = worker_id
        self.clock = clock
        self._lock = threading.Lock()

    # -- configuration -----------------------------------------------------
    def configure(
        self,
        format: Optional[str] = None,
        level: Optional[str] = None,
        worker_id: Optional[int] = None,
        stream: Optional[TextIO] = None,
    ) -> "StructuredLogger":
        if format is not None:
            if format not in LOG_FORMATS:
                raise ValueError(f"log format must be one of {LOG_FORMATS}, got {format!r}")
            self.format = format
        if level is not None:
            if level not in _LEVELS:
                raise ValueError(f"log level must be one of {sorted(_LEVELS)}, got {level!r}")
            self.level = level
        if worker_id is not None:
            self.worker_id = worker_id
        if stream is not None:
            self._stream = stream
        return self

    def _resolve_stream(self) -> TextIO:
        return self._stream if self._stream is not None else sys.stderr

    # -- emission ----------------------------------------------------------
    def log(
        self,
        event: str,
        *,
        level: str = "info",
        trace_id: Optional[str] = None,
        **fields: Any,
    ) -> None:
        if _LEVELS.get(level, 20) < _LEVELS.get(self.level, 20):
            return
        ts = self.clock()
        if self.format == "json":
            record: Dict[str, Any] = {"ts": round(ts, 6), "level": level, "event": event}
            if self.worker_id is not None:
                record["worker_id"] = self.worker_id
            if trace_id is not None:
                record["trace_id"] = trace_id
            for key, value in fields.items():
                record[key] = _json_safe(value)
            line = json.dumps(record, separators=(",", ":"))
        else:
            stamp = (
                datetime.fromtimestamp(ts, tz=timezone.utc)
                .strftime("%Y-%m-%dT%H:%M:%S.%f")[:-3]
            )
            parts = [f"{stamp}Z", level.upper()]
            if self.worker_id is not None:
                parts.append(f"[w{self.worker_id}]")
            parts.append(event)
            if trace_id is not None:
                parts.append(f"trace_id={trace_id}")
            for key, value in fields.items():
                parts.append(f"{key}={_render_text_value(value)}")
            line = " ".join(parts)
        stream = self._resolve_stream()
        with self._lock:
            try:
                stream.write(line + "\n")
                stream.flush()
            except (ValueError, OSError):
                pass  # closed/broken stream (interpreter teardown) — drop the line

    def debug(self, event: str, **fields: Any) -> None:
        self.log(event, level="debug", **fields)

    def info(self, event: str, **fields: Any) -> None:
        self.log(event, level="info", **fields)

    def warning(self, event: str, **fields: Any) -> None:
        self.log(event, level="warning", **fields)

    def error(self, event: str, **fields: Any) -> None:
        self.log(event, level="error", **fields)


def _render_text_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, str):
        if not value or any(ch.isspace() for ch in value):
            return json.dumps(value)
        return value
    if isinstance(value, (dict, list, tuple)):
        return json.dumps(_json_safe(value), separators=(",", ":"))
    return str(value)


#: Process-wide default logger — workers bind their identity once at startup.
_DEFAULT = StructuredLogger()


def get_logger() -> StructuredLogger:
    """The process-wide logger (configure once via :func:`configure_logging`)."""
    return _DEFAULT


def configure_logging(
    format: Optional[str] = None,
    level: Optional[str] = None,
    worker_id: Optional[int] = None,
    stream: Optional[TextIO] = None,
) -> StructuredLogger:
    """Configure and return the process-wide logger."""
    return _DEFAULT.configure(format=format, level=level, worker_id=worker_id, stream=stream)

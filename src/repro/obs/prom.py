"""Prometheus text exposition for the serve metrics tree.

:func:`render_prometheus` walks the dict returned by
``AsyncSegmentationService.metrics()`` / ``ServeFleet.metrics()["merged"]``
(and the sync service's subset of it) and renders the classic Prometheus
text format — counters, gauges, and the mergeable log-spaced latency
sketches as *native histograms* (cumulative ``le`` buckets, ``_sum``,
``_count``).  The slow-request exemplar (the trace ID of the slowest recent
request) is attached as a separate ``repro_request_latency_exemplar_seconds``
gauge with a ``trace_id`` label, which stays valid classic exposition (no
OpenMetrics extensions required).

:func:`validate_exposition` is the checker CI runs against a live scrape:
``python -m repro.obs.prom <file|->`` exits non-zero listing every violation.
"""

from __future__ import annotations

import math
import re
import sys
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = ["render_prometheus", "validate_exposition", "main"]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r" (?P<value>[^ ]+)$"
)
_LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class _Writer:
    """Accumulates one metric family at a time (HELP/TYPE then samples)."""

    def __init__(self, namespace: str):
        self.namespace = namespace
        self.lines: List[str] = []

    def family(
        self,
        name: str,
        kind: str,
        help_text: str,
        samples: Iterable[Tuple[Dict[str, str], float]],
    ) -> None:
        rows = [(labels, value) for labels, value in samples if value is not None]
        if not rows:
            return
        full = f"{self.namespace}_{name}"
        self.lines.append(f"# HELP {full} {help_text}")
        self.lines.append(f"# TYPE {full} {kind}")
        for labels, value in rows:
            self.lines.append(_sample_line(full, labels, value))

    def histogram(
        self,
        name: str,
        help_text: str,
        sketches: Iterable[Tuple[Dict[str, str], Mapping[str, Any]]],
    ) -> None:
        """Render mergeable latency sketches as one histogram family."""
        rows = [(labels, sketch) for labels, sketch in sketches if _is_sketch(sketch)]
        if not rows:
            return
        full = f"{self.namespace}_{name}"
        self.lines.append(f"# HELP {full} {help_text}")
        self.lines.append(f"# TYPE {full} histogram")
        for labels, sketch in rows:
            bounds = [float(b) for b in sketch["bounds"]]
            counts = [int(c) for c in sketch["counts"]]
            cumulative = 0
            for bound, count in zip(bounds, counts):
                cumulative += count
                bucket = dict(labels)
                bucket["le"] = _format_value(bound)
                self.lines.append(_sample_line(f"{full}_bucket", bucket, cumulative))
            overflow = counts[-1] if len(counts) > len(bounds) else 0
            total = int(sketch.get("count", cumulative + overflow))
            inf_labels = dict(labels)
            inf_labels["le"] = "+Inf"
            self.lines.append(_sample_line(f"{full}_bucket", inf_labels, total))
            total_sum = float(sketch.get("sum_seconds", 0.0))
            self.lines.append(_sample_line(f"{full}_sum", labels, total_sum))
            self.lines.append(_sample_line(f"{full}_count", labels, total))

    def render(self) -> str:
        return "\n".join(self.lines) + "\n" if self.lines else ""


def _sample_line(name: str, labels: Dict[str, str], value: float) -> str:
    if labels:
        body = ",".join(
            f'{key}="{_escape_label(str(val))}"' for key, val in sorted(labels.items())
        )
        return f"{name}{{{body}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


def _is_sketch(sketch: Any) -> bool:
    return (
        isinstance(sketch, Mapping)
        and isinstance(sketch.get("bounds"), (list, tuple))
        and isinstance(sketch.get("counts"), (list, tuple))
        and len(sketch["counts"]) >= len(sketch["bounds"])
    )


def _num(tree: Mapping[str, Any], key: str) -> Optional[float]:
    value = tree.get(key)
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    return None


def render_prometheus(
    metrics: Mapping[str, Any],
    namespace: str = "repro",
    extra_labels: Optional[Dict[str, str]] = None,
) -> str:
    """Render a service/fleet metrics tree in Prometheus text format.

    ``extra_labels`` (e.g. ``{"worker": "3"}``) are attached to every sample
    — the fleet endpoint uses this to expose per-worker families alongside
    the merged view.
    """
    base = dict(extra_labels or {})
    out = _Writer(namespace)

    def counter(key: str, name: str, help_text: str, tree: Mapping[str, Any] = metrics) -> None:
        out.family(name, "counter", help_text, [(base, _num(tree, key))])

    def gauge(key: str, name: str, help_text: str, tree: Mapping[str, Any] = metrics) -> None:
        out.family(name, "gauge", help_text, [(base, _num(tree, key))])

    counter("requests", "requests_total", "Requests submitted.")
    counter("completed", "completed_total", "Requests completed successfully.")
    counter("failed", "failed_total", "Requests that raised.")
    counter("cancelled", "cancelled_total", "Requests cancelled by the caller.")
    counter("coalesced", "coalesced_total", "Requests coalesced onto an in-batch twin.")
    counter("quota_rejections", "quota_rejections_total", "Requests rejected by per-client quotas.")
    gauge("in_flight", "in_flight", "Requests currently in flight.")
    gauge("queue_depth", "queue_depth", "Requests queued across lanes.")
    gauge("uptime_seconds", "uptime_seconds", "Service uptime.")
    gauge("throughput_rps", "throughput_rps", "Completed requests per second since start.")
    counter("batches", "batches_total", "Micro-batches processed.")
    gauge("mean_batch_size", "mean_batch_size", "Mean micro-batch size.")
    gauge("ewma_request_seconds", "ewma_request_seconds", "EWMA of per-request service time.")
    gauge("workers_scraped", "fleet_workers_scraped", "Workers merged into this snapshot.")
    counter("scrape_failures", "fleet_scrape_failures_total", "Admin scrapes failed and skipped.")

    shed = metrics.get("shed")
    if isinstance(shed, Mapping):
        out.family(
            "shed_total",
            "counter",
            "Requests shed, by reason.",
            [({**base, "reason": reason}, _num(shed, reason)) for reason in sorted(shed)],
        )

    lanes = metrics.get("lanes")
    if isinstance(lanes, Mapping):
        lane_rows = sorted(
            (str(name), stats) for name, stats in lanes.items() if isinstance(stats, Mapping)
        )
        for key, name, kind, help_text in (
            ("depth", "lane_depth", "gauge", "Queued requests in this lane."),
            ("submitted", "lane_submitted_total", "counter", "Requests admitted to this lane."),
            ("completed", "lane_completed_total", "counter", "Requests completed from this lane."),
            ("shed_admission", "lane_shed_admission_total", "counter", "Shed at admission."),
            ("shed_expired", "lane_shed_expired_total", "counter", "Shed by in-queue expiry."),
            ("weight", "lane_weight", "gauge", "Drain weight of this lane."),
        ):
            out.family(
                name,
                kind,
                help_text,
                [({**base, "lane": lane}, _num(stats, key)) for lane, stats in lane_rows],
            )
        out.histogram(
            "lane_latency_seconds",
            "End-to-end request latency per lane.",
            [
                ({**base, "lane": lane}, stats.get("latency_sketch"))
                for lane, stats in lane_rows
            ],
        )
        lane_delta_rows = [
            (lane, stats["delta"])
            for lane, stats in lane_rows
            if isinstance(stats.get("delta"), Mapping)
        ]
        for key, name, help_text in (
            ("frames", "lane_delta_frames_total", "Stream frames computed via the delta path."),
            ("tiles_reused", "lane_delta_tiles_reused_total", "Delta tiles reused, not recomputed."),
            (
                "tiles_recomputed",
                "lane_delta_tiles_recomputed_total",
                "Delta tiles re-segmented because their content changed.",
            ),
        ):
            out.family(
                name,
                "counter",
                help_text,
                [({**base, "lane": lane}, _num(delta, key)) for lane, delta in lane_delta_rows],
            )

    out.histogram(
        "request_latency_seconds",
        "End-to-end request latency.",
        [(base, metrics.get("latency_sketch"))],
    )

    exemplar = metrics.get("latency_exemplar")
    if isinstance(exemplar, Mapping) and exemplar.get("trace_id"):
        out.family(
            "request_latency_exemplar_seconds",
            "gauge",
            "Latency of the slowest recent traced request (trace_id keys the flight recorder).",
            [({**base, "trace_id": str(exemplar["trace_id"])}, _num(exemplar, "seconds"))],
        )

    # Active array backend(s): one info-style sample per backend serving
    # traffic — a single service reports one, a mixed fleet several.
    backends = metrics.get("backends")
    if not isinstance(backends, (list, tuple)):
        backends = [metrics.get("backend")] if metrics.get("backend") else []
    if backends:
        out.family(
            "backend_info",
            "gauge",
            "Array backends actively serving (1 per active backend).",
            [({**base, "backend": str(name)}, 1) for name in backends],
        )

    cache = metrics.get("cache")
    if isinstance(cache, Mapping):
        _render_cache(out, base, cache)

    adaptive = metrics.get("adaptive")
    if isinstance(adaptive, Mapping):
        out.family(
            "adaptive_ticks_total",
            "counter",
            "Adaptive controller ticks.",
            [(base, _num(adaptive, "ticks"))],
        )
        out.family(
            "adaptive_adjustments_total",
            "counter",
            "Adaptive controller config changes applied.",
            [(base, _num(adaptive, "adjustments"))],
        )
        out.family(
            "adaptive_batch_size",
            "gauge",
            "Current adaptive max batch size.",
            [(base, _num(adaptive, "batch_size"))],
        )

    delta = metrics.get("delta")
    if isinstance(delta, Mapping):
        for key, name, help_text in (
            ("frames", "delta_frames_total", "Stream frames computed via the dirty-tile path."),
            ("tiles_reused", "delta_tiles_reused_total", "Delta tiles reused, not recomputed."),
            (
                "tiles_recomputed",
                "delta_tiles_recomputed_total",
                "Delta tiles re-segmented because their content changed.",
            ),
        ):
            out.family(name, "counter", help_text, [(base, _num(delta, key))])
        out.family(
            "delta_reuse_ratio",
            "gauge",
            "Reused tiles over all delta tiles processed.",
            [(base, _num(delta, "reuse_ratio"))],
        )
        out.family(
            "delta_streams",
            "gauge",
            "Temporal streams with a committed ancestor.",
            [(base, _num(delta, "streams"))],
        )

    trace = metrics.get("trace")
    if isinstance(trace, Mapping):
        for key, name, help_text in (
            ("started", "trace_started_total", "Traces considered (one per request)."),
            ("recorded", "trace_recorded_total", "Traces recorded into the flight recorder."),
            ("sampled_out", "trace_sampled_out_total", "Traces skipped by sampling."),
        ):
            out.family(name, "counter", help_text, [(base, _num(trace, key))])
        out.family(
            "trace_retained",
            "gauge",
            "Traces currently retained in the ring.",
            [(base, _num(trace, "retained"))],
        )

    http = metrics.get("http")
    if isinstance(http, Mapping):
        out.family(
            "http_requests_total",
            "counter",
            "HTTP requests parsed.",
            [(base, _num(http, "requests"))],
        )
        responses = http.get("responses")
        if isinstance(responses, Mapping):
            out.family(
                "http_responses_total",
                "counter",
                "HTTP responses, by status code.",
                [
                    ({**base, "code": str(code)}, _num(responses, code))
                    for code in sorted(responses, key=str)
                ],
            )
        out.family(
            "http_inflight",
            "gauge",
            "HTTP requests currently being handled.",
            [(base, _num(http, "inflight"))],
        )
        out.family(
            "http_open_connections",
            "gauge",
            "Open HTTP connections.",
            [(base, _num(http, "open_connections"))],
        )
        out.family(
            "http_client_disconnects_total",
            "counter",
            "Requests abandoned by client disconnect.",
            [(base, _num(http, "client_disconnects"))],
        )
        out.family(
            "http_draining",
            "gauge",
            "1 while the server is draining.",
            [(base, _num(http, "draining"))],
        )

    return out.render()


_CACHE_COUNTER_KEYS = (
    ("hits", "cache_hits_total", "Cache hits."),
    ("misses", "cache_misses_total", "Cache misses."),
    ("evictions", "cache_evictions_total", "Entries evicted (LRU)."),
    ("expirations", "cache_expirations_total", "Entries expired (TTL)."),
    ("puts", "cache_puts_total", "Entries written."),
    ("stores", "cache_puts_total", "Entries written."),
    ("rejects", "cache_rejects_total", "Writes rejected (oversized / contended)."),
    ("promotions", "cache_promotions_total", "Entries promoted from a lower tier."),
    ("hit_bytes", "cache_hit_bytes_total", "Payload bytes returned by cache hits."),
    ("corrupt_drops", "cache_corrupt_drops_total", "Corrupt entries dropped."),
    ("errors", "cache_errors_total", "Cache I/O errors."),
)
_CACHE_GAUGE_KEYS = (
    ("currsize", "cache_entries", "Entries currently cached."),
    ("entries", "cache_entries", "Entries currently cached."),
    ("maxsize", "cache_max_entries", "Cache capacity in entries."),
    ("size_bytes", "cache_size_bytes", "Bytes currently cached."),
    ("hit_rate", "cache_hit_rate", "Hit rate since start."),
)


def _render_cache(out: _Writer, base: Dict[str, str], cache: Mapping[str, Any]) -> None:
    """Cache stats, flat (single tier) or nested under tier names."""
    tiers: List[Tuple[str, Mapping[str, Any]]] = []
    nested = [
        (str(name), stats)
        for name, stats in cache.items()
        if isinstance(stats, Mapping) and any(k in stats for k, _, _ in _CACHE_COUNTER_KEYS)
    ]
    if nested:
        tiers.extend(sorted(nested))
    elif any(key in cache for key, _, _ in _CACHE_COUNTER_KEYS):
        tiers.append(("memory", cache))
    seen: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    help_for: Dict[str, str] = {}
    for tier, stats in tiers:
        for key, name, help_text in _CACHE_COUNTER_KEYS + _CACHE_GAUGE_KEYS:
            value = _num(stats, key)
            if value is None:
                continue
            help_for.setdefault(name, help_text)
            seen.setdefault(name, []).append(({**base, "tier": tier}, value))
    gauge_names = {name for _, name, _ in _CACHE_GAUGE_KEYS}
    for name, samples in seen.items():
        kind = "gauge" if name in gauge_names else "counter"
        out.family(name, kind, help_for[name], samples)


# ---------------------------------------------------------------------------
# Exposition validation (CI checker)
# ---------------------------------------------------------------------------


def validate_exposition(text: str) -> List[str]:
    """Return a list of format violations (empty when the text is valid)."""
    errors: List[str] = []
    typed: Dict[str, str] = {}
    histogram_state: Dict[str, Dict[str, Any]] = {}
    if text and not text.endswith("\n"):
        errors.append("exposition must end with a newline")
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                errors.append(f"line {lineno}: malformed comment: {line!r}")
                continue
            if not _NAME_RE.match(parts[2]):
                errors.append(f"line {lineno}: invalid metric name {parts[2]!r}")
                continue
            if parts[1] == "TYPE":
                kinds = ("counter", "gauge", "histogram", "summary", "untyped")
                if len(parts) < 4 or parts[3] not in kinds:
                    errors.append(f"line {lineno}: invalid TYPE line: {line!r}")
                elif parts[2] in typed:
                    errors.append(f"line {lineno}: duplicate TYPE for {parts[2]}")
                else:
                    typed[parts[2]] = parts[3]
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            errors.append(f"line {lineno}: malformed sample: {line!r}")
            continue
        name = match.group("name")
        labels_blob = match.group("labels")
        labels: Dict[str, str] = {}
        if labels_blob:
            for part in _split_labels(labels_blob):
                if not _LABEL_RE.match(part):
                    errors.append(f"line {lineno}: malformed label {part!r}")
                    continue
                key, _, raw = part.partition("=")
                labels[key] = raw[1:-1]
        raw_value = match.group("value")
        try:
            value = float(raw_value.replace("+Inf", "inf").replace("-Inf", "-inf"))
        except ValueError:
            errors.append(f"line {lineno}: invalid sample value {raw_value!r}")
            continue
        family = _family_of(name, typed)
        if family is None:
            errors.append(f"line {lineno}: sample {name!r} has no preceding TYPE")
            continue
        if typed[family] == "histogram":
            state = histogram_state.setdefault(
                family, {"buckets": {}, "sums": set(), "counts": {}}
            )
            series = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
            if name.endswith("_bucket"):
                if "le" not in labels:
                    errors.append(f"line {lineno}: histogram bucket without le label")
                    continue
                buckets = state["buckets"].setdefault(series, [])
                le = labels["le"]
                le_value = math.inf if le == "+Inf" else float(le)
                if buckets and (le_value < buckets[-1][0] or value < buckets[-1][1]):
                    errors.append(
                        f"line {lineno}: histogram {family} buckets not cumulative/ordered"
                    )
                buckets.append((le_value, value))
            elif name.endswith("_sum"):
                state["sums"].add(series)
            elif name.endswith("_count"):
                state["counts"][series] = value
    for family, state in histogram_state.items():
        for series, buckets in state["buckets"].items():
            if not buckets or not math.isinf(buckets[-1][0]):
                errors.append(f"histogram {family}{dict(series)} missing +Inf bucket")
                continue
            count = state["counts"].get(series)
            if count is not None and count != buckets[-1][1]:
                errors.append(
                    f"histogram {family}{dict(series)} +Inf bucket != _count"
                )
            if series not in state["sums"]:
                errors.append(f"histogram {family}{dict(series)} missing _sum")
    return errors


def _split_labels(blob: str) -> List[str]:
    """Split ``k="v",k2="v2"`` at commas outside quoted values."""
    parts: List[str] = []
    current: List[str] = []
    in_quotes = False
    escaped = False
    for ch in blob:
        if escaped:
            current.append(ch)
            escaped = False
            continue
        if ch == "\\":
            current.append(ch)
            escaped = True
            continue
        if ch == '"':
            in_quotes = not in_quotes
            current.append(ch)
            continue
        if ch == "," and not in_quotes:
            parts.append("".join(current))
            current = []
            continue
        current.append(ch)
    if current:
        parts.append("".join(current))
    return parts


def _family_of(name: str, typed: Dict[str, str]) -> Optional[str]:
    if name in typed:
        return name
    for suffix in ("_bucket", "_sum", "_count", "_total"):
        if name.endswith(suffix) and name[: -len(suffix)] in typed:
            return name[: -len(suffix)]
    return None


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.obs.prom [file|-]`` — validate exposition text."""
    argv = list(sys.argv[1:] if argv is None else argv)
    source = argv[0] if argv else "-"
    if source == "-":
        text = sys.stdin.read()
    else:
        with open(source, "r", encoding="utf-8") as fh:
            text = fh.read()
    errors = validate_exposition(text)
    for error in errors:
        print(f"exposition error: {error}", file=sys.stderr)
    if not errors:
        samples = sum(
            1 for line in text.splitlines() if line.strip() and not line.startswith("#")
        )
        print(f"exposition ok: {samples} samples")
    return 1 if errors else 0


if __name__ == "__main__":  # pragma: no cover - exercised by CI smoke
    raise SystemExit(main())

"""Per-request tracing with a bounded flight-recorder ring.

A :class:`Trace` is a trace ID plus a flat list of **span tuples**
``(name, parent, start, end, fields)`` — no span objects on the hot path, no
locks on append (list.append is atomic under the GIL), and timestamps come
from an injectable monotonic clock exactly like the rest of the serve layer.
The nested span *tree* is only assembled when a trace is rendered with
:meth:`Trace.to_dict`.

The :class:`Tracer` mints trace IDs, applies deterministic sampling (an
error-accumulator, so a 0.25 rate records exactly every fourth trace rather
than a random subset), and keeps the most recent completed traces in a
bounded ring served by ``GET /v1/trace/{id}`` and ``GET /v1/traces``.

Client-supplied trace IDs (the ``X-Repro-Trace-Id`` header) are always
sampled — when a caller asks for a trace they get one, whatever the ambient
sample rate.
"""

from __future__ import annotations

import binascii
import os
import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["Span", "Trace", "Tracer", "mint_trace_id"]

#: One recorded span: (name, parent span name or None, start, end, fields).
Span = Tuple[str, Optional[str], float, float, Dict[str, Any]]

#: Span name of the implicit root every orphan span hangs off in the tree.
ROOT_SPAN = "request"


def mint_trace_id() -> str:
    """A fresh 16-hex-char trace ID (64 random bits)."""
    return binascii.hexlify(os.urandom(8)).decode("ascii")


class Trace:
    """One in-flight request's span buffer.

    Spans are appended either via the :meth:`span` context manager (the
    tracer's clock supplies start/end) or via :meth:`add` when the caller
    already holds both timestamps (queue wait, for instance, starts at the
    request's ``submitted_at``).
    """

    __slots__ = ("trace_id", "clock", "started_at", "finished_at", "spans", "fields")

    def __init__(
        self,
        trace_id: str,
        clock: Callable[[], float] = time.monotonic,
        started_at: Optional[float] = None,
    ):
        self.trace_id = trace_id
        self.clock = clock
        self.started_at = clock() if started_at is None else started_at
        self.finished_at: Optional[float] = None
        self.spans: List[Span] = []
        self.fields: Dict[str, Any] = {}

    def add(
        self,
        name: str,
        start: float,
        end: float,
        parent: Optional[str] = None,
        **fields: Any,
    ) -> None:
        """Record an externally-timed span."""
        self.spans.append((name, parent, start, end, fields))

    def span(self, name: str, parent: Optional[str] = None, **fields: Any) -> "_SpanContext":
        """Context manager recording a span around a block."""
        return _SpanContext(self, name, parent, fields)

    def annotate(self, **fields: Any) -> None:
        """Attach trace-level fields (priority, cache_hit, status, ...)."""
        self.fields.update(fields)

    def finish(self, now: Optional[float] = None) -> None:
        if self.finished_at is None:
            self.finished_at = self.clock() if now is None else now

    @property
    def duration_seconds(self) -> float:
        end = self.finished_at if self.finished_at is not None else self.clock()
        return max(0.0, end - self.started_at)

    def to_dict(self) -> Dict[str, Any]:
        """The ``repro-trace/v1`` document: flat spans plus the nested tree."""
        flat = [
            {
                "name": name,
                "parent": parent,
                "start": start - self.started_at,
                "duration_seconds": max(0.0, end - start),
                "fields": dict(fields),
            }
            for name, parent, start, end, fields in self.spans
        ]
        return {
            "schema": "repro-trace/v1",
            "trace_id": self.trace_id,
            "duration_seconds": self.duration_seconds,
            "fields": dict(self.fields),
            "spans": flat,
            "tree": self._tree(flat),
        }

    def _tree(self, flat: List[Dict[str, Any]]) -> Dict[str, Any]:
        """Nest spans under their parents; orphans hang off the root.

        The root is the span named ``request`` when one was recorded (the
        HTTP edge records it), otherwise a synthetic node spanning the whole
        trace.  Parent references are by span *name* — unknown parents fall
        back to the root so a malformed span can never make the tree
        unrenderable.
        """
        nodes = [
            {
                "name": entry["name"],
                "start": entry["start"],
                "duration_seconds": entry["duration_seconds"],
                "fields": entry["fields"],
                "children": [],
            }
            for entry in flat
        ]
        root = None
        for node in nodes:
            if node["name"] == ROOT_SPAN:
                root = node
                break
        if root is None:
            root = {
                "name": ROOT_SPAN,
                "start": 0.0,
                "duration_seconds": self.duration_seconds,
                "fields": {},
                "children": [],
            }
        by_name: Dict[str, Dict[str, Any]] = {}
        for node in nodes:
            by_name.setdefault(node["name"], node)
        for node, entry in zip(nodes, flat):
            if node is root:
                continue
            parent = by_name.get(entry["parent"]) if entry["parent"] else None
            if parent is None or parent is node:
                parent = root
            parent["children"].append(node)
        for node in nodes:
            node["children"].sort(key=lambda child: child["start"])
        root["children"].sort(key=lambda child: child["start"])
        return root


class _SpanContext:
    """Times a ``with`` block and appends one span tuple on exit."""

    __slots__ = ("_trace", "_name", "_parent", "_fields", "_start")

    def __init__(self, trace: Trace, name: str, parent: Optional[str], fields: Dict[str, Any]):
        self._trace = trace
        self._name = name
        self._parent = parent
        self._fields = fields

    def __enter__(self) -> "_SpanContext":
        self._start = self._trace.clock()
        return self

    def annotate(self, **fields: Any) -> None:
        self._fields.update(fields)

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self._fields.setdefault("error", exc_type.__name__)
        self._trace.add(
            self._name, self._start, self._trace.clock(), self._parent, **self._fields
        )


class Tracer:
    """Mints, samples, and retains traces (the per-worker flight recorder).

    ``sample_rate`` is deterministic: an accumulator gains ``rate`` per
    request and a trace is recorded each time it crosses 1.0, so 0.1 records
    exactly one request in ten.  Completed traces land in a bounded
    insertion-ordered ring (``ring_size`` most recent) with O(1) lookup by
    trace ID.
    """

    def __init__(
        self,
        sample_rate: float = 1.0,
        ring_size: int = 256,
        clock: Callable[[], float] = time.monotonic,
    ):
        if ring_size < 1:
            raise ValueError(f"ring_size must be >= 1, got {ring_size}")
        self.sample_rate = min(1.0, max(0.0, float(sample_rate)))
        self.ring_size = int(ring_size)
        self.clock = clock
        self._lock = threading.Lock()
        self._ring: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._accumulator = 0.0
        self._started = 0
        self._sampled_out = 0
        self._recorded = 0

    def begin(self, trace_id: Optional[str] = None) -> Optional[Trace]:
        """Start a trace, or return ``None`` when sampled out.

        An explicit ``trace_id`` (client-supplied header) always samples.
        """
        with self._lock:
            self._started += 1
            if trace_id is None:
                self._accumulator += self.sample_rate
                if self._accumulator < 1.0:
                    self._sampled_out += 1
                    return None
                self._accumulator -= 1.0
        return Trace(trace_id if trace_id is not None else mint_trace_id(), clock=self.clock)

    def record(self, trace: Optional[Trace]) -> None:
        """Finish a trace and push it into the ring.

        The hot path stops here: the ring retains the raw :class:`Trace`
        and the ``repro-trace/v1`` document (flat spans + nested tree) is
        only rendered — once, then cached in place — when somebody actually
        reads it via :meth:`get` or :meth:`slowest`.
        """
        if trace is None:
            return
        trace.finish()
        with self._lock:
            self._recorded += 1
            self._ring[trace.trace_id] = trace
            self._ring.move_to_end(trace.trace_id)
            while len(self._ring) > self.ring_size:
                self._ring.popitem(last=False)

    def _render(self, trace_id: str) -> Dict[str, Any]:
        """Render (and cache) one ring entry's document.  Call under the lock."""
        entry = self._ring[trace_id]
        if isinstance(entry, Trace):
            entry = entry.to_dict()
            self._ring[trace_id] = entry  # same key: ring order is preserved
        return entry

    def get(self, trace_id: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            if trace_id not in self._ring:
                return None
            return self._render(trace_id)

    def slowest(self, n: int = 10) -> List[Dict[str, Any]]:
        """The ``n`` slowest retained traces, slowest first."""
        with self._lock:
            durations = [
                (
                    entry.duration_seconds
                    if isinstance(entry, Trace)
                    else entry["duration_seconds"],
                    trace_id,
                )
                for trace_id, entry in self._ring.items()
            ]
            durations.sort(key=lambda pair: pair[0], reverse=True)
            return [self._render(trace_id) for _, trace_id in durations[: max(0, int(n))]]

    def counters(self) -> Dict[str, float]:
        with self._lock:
            return {
                "sample_rate": self.sample_rate,
                "started": float(self._started),
                "sampled_out": float(self._sampled_out),
                "recorded": float(self._recorded),
                "ring_size": float(self.ring_size),
                "retained": float(len(self._ring)),
            }

"""Global configuration and deterministic random-number handling.

The library never touches :mod:`numpy.random`'s global state.  Every stochastic
component accepts either an integer seed or a :class:`numpy.random.Generator`;
:func:`as_generator` normalizes those into a ``Generator`` instance.

:class:`ReproConfig` collects the handful of knobs that affect numerical
behaviour globally (dtype used for complex arithmetic, chunk sizes for the
vectorized kernels, default number of workers).  A module-level default
instance is available through :func:`get_config`, and :func:`configure` updates
it in place.  The defaults are chosen so that a laptop-scale run of the full
benchmark suite completes in minutes.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Optional, Union

import numpy as np

from .errors import ParameterError

__all__ = [
    "ReproConfig",
    "get_config",
    "configure",
    "as_generator",
    "SeedLike",
    "DEFAULT_CHUNK_PIXELS",
    "DEFAULT_COMPLEX_DTYPE",
    "DEFAULT_FLOAT_DTYPE",
]

#: Either ``None`` (fresh entropy), an ``int`` seed, or an existing Generator.
SeedLike = Union[None, int, np.random.Generator]

#: Number of pixels processed per chunk by the vectorized IQFT kernel.  The
#: working set per chunk is ``chunk * 8 * 16`` bytes (complex128), i.e. ~8 MiB
#: for the default, which comfortably fits in L3 on commodity hardware.
DEFAULT_CHUNK_PIXELS = 65536

#: Complex dtype used by the IQFT kernels.
DEFAULT_COMPLEX_DTYPE = np.complex128

#: Floating dtype used for intensities, probabilities and metrics.
DEFAULT_FLOAT_DTYPE = np.float64


@dataclasses.dataclass
class ReproConfig:
    """Library-wide configuration.

    Attributes
    ----------
    chunk_pixels:
        Maximum number of pixels handed to a single complex matmul in the
        vectorized segmentation kernels.  Larger values reduce Python overhead
        but increase peak memory; smaller values improve cache locality.
    complex_dtype:
        Complex dtype for phase vectors and IQFT matrices.
    float_dtype:
        Floating dtype for intensities and probabilities.
    default_workers:
        Default worker count for the process/thread executors.  ``None`` means
        "use ``os.cpu_count()``".
    strict:
        When True, numerical sanity checks (e.g. probability normalization)
        raise instead of warn.
    """

    chunk_pixels: int = DEFAULT_CHUNK_PIXELS
    complex_dtype: type = DEFAULT_COMPLEX_DTYPE
    float_dtype: type = DEFAULT_FLOAT_DTYPE
    default_workers: Optional[int] = None
    strict: bool = True

    def __post_init__(self) -> None:
        if self.chunk_pixels <= 0:
            raise ParameterError("chunk_pixels must be a positive integer")
        if self.default_workers is not None and self.default_workers <= 0:
            raise ParameterError("default_workers must be positive or None")

    def resolved_workers(self) -> int:
        """Return the effective worker count (never ``None`` or zero)."""
        if self.default_workers is not None:
            return int(self.default_workers)
        return max(1, os.cpu_count() or 1)


_CONFIG = ReproConfig()


def get_config() -> ReproConfig:
    """Return the process-wide configuration object (mutable, shared)."""
    return _CONFIG


def configure(**kwargs) -> ReproConfig:
    """Update fields of the global :class:`ReproConfig` and return it.

    Parameters
    ----------
    **kwargs:
        Any subset of the :class:`ReproConfig` fields.

    Raises
    ------
    ParameterError
        If an unknown field name is supplied or a value is invalid.
    """
    valid = {f.name for f in dataclasses.fields(ReproConfig)}
    for key, value in kwargs.items():
        if key not in valid:
            raise ParameterError(f"unknown configuration field: {key!r}")
        setattr(_CONFIG, key, value)
    # Re-run validation.
    ReproConfig.__post_init__(_CONFIG)
    return _CONFIG


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Normalize ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` creates a generator from OS entropy, an ``int`` seeds a new
    PCG64-based generator, and an existing ``Generator`` is returned as-is
    (so that callers can thread one generator through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise ParameterError(
        f"seed must be None, an int, or a numpy Generator; got {type(seed).__name__}"
    )

"""repro — reproduction of "Inverse Quantum Fourier Transform Inspired Algorithm
for Unsupervised Image Segmentation" (Akinola, Li, Wilkins, Obiomon, Qian,
IPPS 2023; arXiv:2301.04705).

The package implements the paper's IQFT-inspired segmentation algorithms, the
baselines it compares against, the evaluation protocol, synthetic stand-ins
for its datasets, and an experiment harness that regenerates every table and
figure of the evaluation section.  See ``README.md`` for a tour and
``DESIGN.md`` for the system inventory.

Quick start
-----------
>>> import numpy as np
>>> from repro import IQFTSegmenter
>>> image = (np.random.default_rng(0).random((32, 32, 3)) * 255).astype(np.uint8)
>>> result = IQFTSegmenter(thetas=np.pi).segment(image)
>>> result.labels.shape
(32, 32)
"""

from .base import BaseSegmenter, SegmentationResult
from .config import ReproConfig, configure, get_config
from .core import (
    FeatureIQFTSegmenter,
    IQFTClassifier,
    IQFTGrayscaleSegmenter,
    IQFTSegmenter,
    SegmentationPipeline,
    ShotBasedIQFTSegmenter,
    SmoothedSegmenter,
    theta_for_threshold,
    thresholds_for_theta,
    tune_theta_supervised,
    tune_theta_unsupervised,
)
from .engine import BatchSegmentationEngine
from .serve import ResultCache, SegmentationService
from .quantum import NoiseModel
from .baselines import (
    KMeansSegmenter,
    OtsuSegmenter,
    available_segmenters,
    get_segmenter,
    otsu_threshold,
)
from .datasets import (
    SyntheticVOCDataset,
    SyntheticXView2Dataset,
    ShapesDataset,
    make_balls_image,
)
from .metrics import mean_iou, iou, pixel_accuracy, ResultTable, MethodScore
from .errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "BaseSegmenter",
    "SegmentationResult",
    "ReproConfig",
    "configure",
    "get_config",
    "IQFTClassifier",
    "IQFTSegmenter",
    "IQFTGrayscaleSegmenter",
    "ShotBasedIQFTSegmenter",
    "FeatureIQFTSegmenter",
    "SmoothedSegmenter",
    "NoiseModel",
    "BatchSegmentationEngine",
    "SegmentationService",
    "ResultCache",
    "SegmentationPipeline",
    "thresholds_for_theta",
    "theta_for_threshold",
    "tune_theta_supervised",
    "tune_theta_unsupervised",
    "KMeansSegmenter",
    "OtsuSegmenter",
    "otsu_threshold",
    "get_segmenter",
    "available_segmenters",
    "SyntheticVOCDataset",
    "SyntheticXView2Dataset",
    "ShapesDataset",
    "make_balls_image",
    "mean_iou",
    "iou",
    "pixel_accuracy",
    "ResultTable",
    "MethodScore",
    "ReproError",
]

"""repro — reproduction of "Inverse Quantum Fourier Transform Inspired Algorithm
for Unsupervised Image Segmentation" (Akinola, Li, Wilkins, Obiomon, Qian,
IPPS 2023; arXiv:2301.04705).

The package implements the paper's IQFT-inspired segmentation algorithms, the
baselines it compares against, the evaluation protocol, synthetic stand-ins
for its datasets, and an experiment harness that regenerates every table and
figure of the evaluation section.  See ``README.md`` for a tour and
``DESIGN.md`` for the system inventory.

This module is the library's stable public surface: every supported name is
importable directly from :mod:`repro` (resolved lazily via PEP 562, so
``import repro`` stays fast), with :mod:`repro.serve` as the serving layer's
own surface.  Deeper paths are internal and may move between releases.

Quick start
-----------
>>> import numpy as np
>>> from repro import IQFTSegmenter
>>> image = (np.random.default_rng(0).random((32, 32, 3)) * 255).astype(np.uint8)
>>> result = IQFTSegmenter(thetas=np.pi).segment(image)
>>> result.labels.shape
(32, 32)
"""

from importlib import import_module
from typing import TYPE_CHECKING

__version__ = "1.0.0"

#: Public name → implementation module (relative to this package).  Resolved
#: on first attribute access (PEP 562): ``import repro`` does not pull in the
#: engine, the serving stack, or the experiment harness until asked to.
_EXPORTS = {
    "BaseSegmenter": "base",
    "SegmentationResult": "base",
    "ReproConfig": "config",
    "configure": "config",
    "get_config": "config",
    "IQFTClassifier": "core",
    "IQFTSegmenter": "core",
    "IQFTGrayscaleSegmenter": "core",
    "ShotBasedIQFTSegmenter": "core",
    "FeatureIQFTSegmenter": "core",
    "SmoothedSegmenter": "core",
    "SegmentationPipeline": "core",
    "thresholds_for_theta": "core",
    "theta_for_threshold": "core",
    "tune_theta_supervised": "core",
    "tune_theta_unsupervised": "core",
    "NoiseModel": "quantum",
    "BatchSegmentationEngine": "engine",
    "PipelineResult": "engine",
    "ArrayBackend": "backend",
    "get_backend": "backend",
    "available_backends": "backend",
    "SegmentationService": "serve",
    "ResultCache": "serve",
    "KMeansSegmenter": "baselines",
    "OtsuSegmenter": "baselines",
    "otsu_threshold": "baselines",
    "get_segmenter": "baselines",
    "available_segmenters": "baselines",
    "SyntheticVOCDataset": "datasets",
    "SyntheticXView2Dataset": "datasets",
    "ShapesDataset": "datasets",
    "make_balls_image": "datasets",
    "mean_iou": "metrics",
    "iou": "metrics",
    "pixel_accuracy": "metrics",
    "ResultTable": "metrics",
    "MethodScore": "metrics",
    "ReproError": "errors",
}

__all__ = ["__version__", *_EXPORTS]


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(import_module(f".{module}", __name__), name)
    globals()[name] = value  # cache: next access skips this hook
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))


if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from .backend import ArrayBackend, available_backends, get_backend
    from .base import BaseSegmenter, SegmentationResult
    from .baselines import (
        KMeansSegmenter,
        OtsuSegmenter,
        available_segmenters,
        get_segmenter,
        otsu_threshold,
    )
    from .config import ReproConfig, configure, get_config
    from .core import (
        FeatureIQFTSegmenter,
        IQFTClassifier,
        IQFTGrayscaleSegmenter,
        IQFTSegmenter,
        SegmentationPipeline,
        ShotBasedIQFTSegmenter,
        SmoothedSegmenter,
        theta_for_threshold,
        thresholds_for_theta,
        tune_theta_supervised,
        tune_theta_unsupervised,
    )
    from .datasets import (
        ShapesDataset,
        SyntheticVOCDataset,
        SyntheticXView2Dataset,
        make_balls_image,
    )
    from .engine import BatchSegmentationEngine, PipelineResult
    from .errors import ReproError
    from .metrics import MethodScore, ResultTable, iou, mean_iou, pixel_accuracy
    from .quantum import NoiseModel
    from .serve import ResultCache, SegmentationService

"""Dataset and sample abstractions shared by all concrete datasets."""

from __future__ import annotations

import abc
import dataclasses
from typing import Dict, Iterator, Optional

import numpy as np

from ..errors import DatasetError

__all__ = ["Sample", "Dataset"]


@dataclasses.dataclass
class Sample:
    """A single evaluation sample.

    Attributes
    ----------
    name:
        Unique identifier within the dataset.
    image:
        ``(H, W, 3)`` float RGB image in ``[0, 1]``.
    mask:
        ``(H, W)`` binary ground-truth mask (0 = background, 1 = foreground),
        or ``None`` for unlabelled samples.
    void:
        ``(H, W)`` boolean mask of 'void' pixels excluded from evaluation
        (the VOC border band), or ``None`` when every pixel counts.
    metadata:
        Generator parameters / provenance, for reproducibility and debugging.
    """

    name: str
    image: np.ndarray
    mask: Optional[np.ndarray] = None
    void: Optional[np.ndarray] = None
    metadata: Dict = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        self.image = np.asarray(self.image, dtype=np.float64)
        if self.image.ndim != 3 or self.image.shape[2] != 3:
            raise DatasetError(
                f"sample image must be (H, W, 3); got shape {self.image.shape}"
            )
        if self.mask is not None:
            self.mask = (np.asarray(self.mask) != 0).astype(np.int64)
            if self.mask.shape != self.image.shape[:2]:
                raise DatasetError("mask shape does not match the image")
        if self.void is not None:
            self.void = np.asarray(self.void, dtype=bool)
            if self.void.shape != self.image.shape[:2]:
                raise DatasetError("void mask shape does not match the image")

    @property
    def shape(self) -> tuple:
        """Image shape ``(H, W, 3)``."""
        return self.image.shape

    @property
    def has_ground_truth(self) -> bool:
        """True when a binary mask is attached."""
        return self.mask is not None

    def foreground_fraction(self) -> float:
        """Fraction of non-void pixels labelled foreground (0 when unlabelled)."""
        if self.mask is None:
            return 0.0
        valid = ~self.void if self.void is not None else np.ones(self.mask.shape, dtype=bool)
        total = int(valid.sum())
        if total == 0:
            return 0.0
        return float(self.mask[valid].sum()) / total


class Dataset(abc.ABC):
    """Abstract indexable collection of :class:`Sample` objects."""

    #: Human-readable dataset name.
    name: str = "dataset"

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of samples."""

    @abc.abstractmethod
    def __getitem__(self, index: int) -> Sample:
        """Return the ``index``-th sample (0-based)."""

    def __iter__(self) -> Iterator[Sample]:
        for index in range(len(self)):
            yield self[index]

    def subset(self, indices) -> "SubsetDataset":
        """A lightweight view restricted to the given indices."""
        return SubsetDataset(self, list(indices))

    def head(self, count: int) -> "SubsetDataset":
        """The first ``count`` samples as a subset view."""
        return self.subset(range(min(count, len(self))))


class SubsetDataset(Dataset):
    """A view over selected indices of another dataset."""

    def __init__(self, parent: Dataset, indices):
        self._parent = parent
        self._indices = [int(i) for i in indices]
        for i in self._indices:
            if not 0 <= i < len(parent):
                raise DatasetError(f"subset index {i} out of range")
        self.name = f"{parent.name}[{len(self._indices)}]"

    def __len__(self) -> int:
        return len(self._indices)

    def __getitem__(self, index: int) -> Sample:
        return self._parent[self._indices[index]]

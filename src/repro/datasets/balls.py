"""The coloured-balls scene of Figure 4 (multiple-threshold demonstration).

The paper's Figure 4 shows a set of balls of increasing intensity —
dark ones, then red / green / lemon ones, then brighter ones — and asks the
methods to separate *only* the red, green and lemon balls from both the darker
and the brighter balls.  A single threshold cannot do that; the IQFT grayscale
method with θ = 4π realizes the four thresholds {1/8, 3/8, 5/8, 7/8} of
equation (16) and isolates the mid-intensity balls with one parameter.

:func:`make_balls_image` builds a deterministic version of that scene along
with the ground-truth mask of the mid-intensity (red/green/lemon) balls.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..errors import DatasetError
from ..imaging import synthesis

__all__ = ["BALL_COLORS", "make_balls_image"]

#: Ball name → (RGB colour, is-target) — targets are the red/green/lemon balls
#: whose grayscale intensities fall between 3/8 and 5/8 (the middle band of
#: θ = 4π).  Dark and bright balls fall outside that band.
BALL_COLORS: Dict[str, Tuple[Tuple[float, float, float], bool]] = {
    "dark-navy": ((0.10, 0.10, 0.25), False),
    "dark-brown": ((0.25, 0.15, 0.10), False),
    "red": ((0.85, 0.35, 0.25), True),
    "green": ((0.20, 0.55, 0.20), True),
    "lemon": ((0.60, 0.60, 0.15), True),
    "light-gray": ((0.85, 0.85, 0.85), False),
    "white": ((0.97, 0.97, 0.95), False),
    "bright-cyan": ((0.70, 0.95, 0.95), False),
}


def make_balls_image(
    shape: Tuple[int, int] = (120, 240),
    radius: int = 12,
    background: float = 0.02,
) -> Tuple[np.ndarray, np.ndarray]:
    """Build the Figure-4 scene.

    Parameters
    ----------
    shape:
        Image shape ``(H, W)``; must be wide enough for eight balls in a row.
    radius:
        Ball radius in pixels.
    background:
        Background gray level (near black, as in the figure).

    Returns
    -------
    image, target_mask:
        ``(H, W, 3)`` float RGB image and the boolean mask of the balls that a
        correct multi-threshold segmentation should isolate (red, green,
        lemon).
    """
    height, width = int(shape[0]), int(shape[1])
    count = len(BALL_COLORS)
    if width < count * (2 * radius + 4):
        raise DatasetError(
            f"image of width {width} cannot hold {count} balls of radius {radius}"
        )
    canvas = np.full((height, width, 3), float(background), dtype=np.float64)
    target = np.zeros((height, width), dtype=bool)

    spacing = width / count
    row_top = height / 3.0
    row_bottom = 2.0 * height / 3.0
    for i, (name, (color, is_target)) in enumerate(BALL_COLORS.items()):
        center_col = (i + 0.5) * spacing
        center_row = row_top if i % 2 == 0 else row_bottom
        mask = synthesis.ellipse_mask(
            (height, width), (center_row, center_col), (radius, radius)
        )
        canvas = synthesis.composite(canvas, [(mask.astype(np.float64), color)])
        if is_target:
            target |= mask
    return canvas, target

"""Directory-based dataset loader for users who have real data on disk.

Layout convention::

    root/
      images/   <stem>.png | .ppm | .bmp        (RGB images)
      masks/    <stem>.png | .pgm               (binary masks, optional)
      void/     <stem>.png | .pgm               (void masks, optional)

A sample is created for every file in ``images/``; masks and void maps are
matched by file stem.  This is the hook for running the harness on the real
PASCAL VOC 2012 or xVIEW2 data when they are available locally — convert the
annotations to binary PNG masks and point :class:`DirectoryDataset` at the
directory.
"""

from __future__ import annotations

import os
from typing import List, Optional

import numpy as np

from ..errors import DatasetError
from ..imaging.image import as_float_image
from ..imaging.io_dispatch import read_image
from .base import Dataset, Sample

__all__ = ["DirectoryDataset"]

_SUPPORTED = (".png", ".ppm", ".pgm", ".pnm", ".bmp")


class DirectoryDataset(Dataset):
    """Load images (and optional masks / void maps) from a directory tree."""

    name = "directory"

    def __init__(self, root: str, require_masks: bool = False):
        self.root = os.fspath(root)
        image_dir = os.path.join(self.root, "images")
        if not os.path.isdir(image_dir):
            raise DatasetError(f"missing images directory: {image_dir}")
        self._image_dir = image_dir
        self._mask_dir = os.path.join(self.root, "masks")
        self._void_dir = os.path.join(self.root, "void")
        self._stems: List[str] = sorted(
            os.path.splitext(f)[0]
            for f in os.listdir(image_dir)
            if os.path.splitext(f)[1].lower() in _SUPPORTED
        )
        if not self._stems:
            raise DatasetError(f"no supported image files found in {image_dir}")
        self.require_masks = bool(require_masks)
        if self.require_masks:
            missing = [s for s in self._stems if self._find(self._mask_dir, s) is None]
            if missing:
                ellipsis = "..." if len(missing) > 5 else ""
                raise DatasetError(f"missing masks for: {missing[:5]}{ellipsis}")
        self.name = f"directory:{os.path.basename(os.path.normpath(self.root))}"

    @staticmethod
    def _find(directory: str, stem: str) -> Optional[str]:
        if not os.path.isdir(directory):
            return None
        for ext in _SUPPORTED:
            candidate = os.path.join(directory, stem + ext)
            if os.path.isfile(candidate):
                return candidate
        return None

    def __len__(self) -> int:
        return len(self._stems)

    def __getitem__(self, index: int) -> Sample:
        if not 0 <= index < len(self._stems):
            raise DatasetError(f"sample index {index} out of range")
        stem = self._stems[index]
        image_path = self._find(self._image_dir, stem)
        assert image_path is not None
        image = as_float_image(read_image(image_path))
        if image.ndim == 2:
            image = np.stack([image, image, image], axis=-1)

        mask = None
        mask_path = self._find(self._mask_dir, stem)
        if mask_path is not None:
            mask = (as_float_image(read_image(mask_path)) > 0.5)
            if mask.ndim == 3:
                mask = mask.any(axis=-1)
            mask = mask.astype(np.int64)

        void = None
        void_path = self._find(self._void_dir, stem)
        if void_path is not None:
            void = as_float_image(read_image(void_path)) > 0.5
            if void.ndim == 3:
                void = void.any(axis=-1)

        return Sample(
            name=stem,
            image=image,
            mask=mask,
            void=void,
            metadata={"dataset": self.name, "path": image_path},
        )

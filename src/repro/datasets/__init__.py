"""Datasets: synthetic stand-ins for the paper's benchmarks plus loaders.

The paper evaluates on PASCAL VOC 2012 (2913 labelled photos) and the xVIEW2
"joplin-tornado" pre-disaster satellite tiles (148 images).  Neither can be
downloaded in this environment, so this package provides *procedurally
generated* datasets that preserve the statistical properties the compared
algorithms are sensitive to (see DESIGN.md §2 for the substitution argument):

* :class:`SyntheticVOCDataset` — "natural photo"-style scenes: textured
  backgrounds, 1–4 coloured foreground objects, VOC-style void border bands
  around objects.
* :class:`SyntheticXView2Dataset` — overhead satellite-style scenes: terrain
  texture, road grid, bright rectangular rooftops as foreground.
* :func:`make_balls_image` — the coloured-balls scene of Figure 4.
* :func:`random_pixel_dataset` — the 100,000 × 3 random-RGB protocol of
  Table II.
* :class:`ShapesDataset` — simple geometric scenes for unit tests.
* :class:`DirectoryDataset` — load real images + masks from disk when the user
  does have VOC/xVIEW2 locally (PPM/PGM/PNG/BMP).
"""

from .base import Sample, Dataset
from .synthetic_voc import SyntheticVOCDataset
from .synthetic_xview import SyntheticXView2Dataset
from .multispectral import SyntheticMultispectralDataset
from .shapes import ShapesDataset
from .balls import make_balls_image, BALL_COLORS
from .random_pixels import random_pixel_dataset
from .loaders import DirectoryDataset

__all__ = [
    "Sample",
    "Dataset",
    "SyntheticVOCDataset",
    "SyntheticXView2Dataset",
    "SyntheticMultispectralDataset",
    "ShapesDataset",
    "make_balls_image",
    "BALL_COLORS",
    "random_pixel_dataset",
    "DirectoryDataset",
]

"""Synthetic multispectral (4-band) overhead imagery.

A demonstration substrate for the feature-space generalization of the
algorithm (``FeatureIQFTSegmenter`` with one qubit per band): satellite
products commonly carry a near-infrared (NIR) band in addition to RGB, and
vegetation is far brighter in NIR than any man-made surface — so a 4-qubit
phase classifier can separate rooftops from bright bare ground *and* from
vegetation using thresholds it gets "for free" from a single θ.

Samples expose the 4-band cube through ``Sample.metadata["bands"]`` (an
``(H, W, 4)`` array in ``[0, 1]``) while ``Sample.image`` holds the RGB
composite so every ordinary 3-channel method can run on the same scene for
comparison.  Ground truth is the building-footprint mask.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..config import SeedLike
from ..errors import DatasetError
from ..imaging import synthesis
from ..imaging.noise import add_gaussian_noise
from .base import Dataset, Sample

__all__ = ["SyntheticMultispectralDataset"]

# (R, G, B, NIR) reflectance anchors.
_VEGETATION = np.array([0.30, 0.42, 0.26, 0.85])
_SOIL = np.array([0.62, 0.55, 0.40, 0.55])
_ROAD = np.array([0.38, 0.38, 0.40, 0.30])
_ROOFS = np.array(
    [
        [0.80, 0.78, 0.76, 0.35],
        [0.70, 0.62, 0.56, 0.30],
        [0.60, 0.32, 0.27, 0.25],
        [0.56, 0.56, 0.60, 0.28],
    ]
)


class SyntheticMultispectralDataset(Dataset):
    """Procedural 4-band (RGB + NIR) tiles with building-footprint ground truth.

    Parameters
    ----------
    num_samples:
        Number of tiles.
    seed:
        Base seed; tile ``i`` uses ``seed + i``.
    size:
        Tile shape ``(H, W)``.
    noise_sigma:
        Additive Gaussian sensor noise applied to every band.
    """

    name = "synthetic-multispectral"

    def __init__(
        self,
        num_samples: int = 20,
        seed: SeedLike = 2024,
        size: Tuple[int, int] = (96, 96),
        noise_sigma: float = 0.01,
    ):
        if num_samples < 1:
            raise DatasetError("num_samples must be >= 1")
        self._num_samples = int(num_samples)
        self._base_seed = int(seed) if not isinstance(seed, np.random.Generator) else 2024
        self._size = (int(size[0]), int(size[1]))
        self.noise_sigma = float(noise_sigma)

    def __len__(self) -> int:
        return self._num_samples

    def _paint(self, bands: np.ndarray, mask: np.ndarray, color: np.ndarray, rng) -> None:
        jitter = rng.normal(0.0, 0.02, size=color.shape)
        bands[mask] = np.clip(color + jitter, 0.0, 1.0)

    def __getitem__(self, index: int) -> Sample:
        if not 0 <= index < self._num_samples:
            raise DatasetError(f"sample index {index} out of range")
        rng = np.random.default_rng(self._base_seed + index)
        height, width = self._size

        bands = np.zeros((height, width, 4), dtype=np.float64)
        # Terrain: vegetation/soil mixture driven by low-frequency noise.
        mix = synthesis.correlated_noise(self._size, scale=float(rng.uniform(5, 10)), seed=rng)
        bands[:] = (
            _VEGETATION[None, None, :] * (1.0 - mix[..., None])
            + _SOIL[None, None, :] * mix[..., None]
        )

        # Road grid.
        road = np.zeros(self._size, dtype=bool)
        period = int(rng.integers(32, 48))
        for row in range(int(rng.integers(period)), height, period):
            road |= synthesis.rectangle_mask(self._size, row, 0, 4, width)
        for col in range(int(rng.integers(period)), width, period):
            road |= synthesis.rectangle_mask(self._size, 0, col, height, 4)
        self._paint(bands, road, _ROAD, rng)

        # Buildings.
        buildings = np.zeros(self._size, dtype=bool)
        placed = 0
        attempts = 0
        target = int(rng.integers(5, 12))
        while placed < target and attempts < target * 10:
            attempts += 1
            bh, bw = int(rng.integers(6, 14)), int(rng.integers(6, 14))
            top = int(rng.integers(1, max(2, height - bh - 1)))
            left = int(rng.integers(1, max(2, width - bw - 1)))
            candidate = synthesis.rectangle_mask(self._size, top, left, bh, bw)
            if (candidate & (road | buildings)).any():
                continue
            roof = _ROOFS[int(rng.integers(len(_ROOFS)))]
            self._paint(bands, candidate, roof, rng)
            buildings |= candidate
            placed += 1

        # add_gaussian_noise only handles 1- or 3-channel input, so noise the
        # RGB part and the NIR band separately with the same generator.
        rgb_noisy = add_gaussian_noise(bands[..., :3], sigma=self.noise_sigma, seed=rng)
        nir_noisy = np.clip(
            bands[..., 3] + rng.normal(0.0, self.noise_sigma, size=self._size), 0.0, 1.0
        )
        cube = np.concatenate([rgb_noisy, nir_noisy[..., None]], axis=-1)

        return Sample(
            name=f"multispectral-{index:04d}",
            image=rgb_noisy,
            mask=buildings.astype(np.int64),
            void=None,
            metadata={
                "dataset": self.name,
                "index": index,
                "bands": cube,
                "band_names": ("red", "green", "blue", "nir"),
                "num_buildings": placed,
            },
        )

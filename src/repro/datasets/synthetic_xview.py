"""Synthetic stand-in for the xVIEW2 "joplin-tornado" pre-disaster tiles.

The real data are 148 RGB satellite tiles of a residential area before a
tornado; the segmentation target used by the paper is effectively
building-versus-everything-else.  Characteristic properties the generator
reproduces:

* a textured terrain background (vegetation / soil mix, low frequency),
* a rectilinear road network (darker gray strips, axis-aligned grid with some
  jitter),
* many small bright rectangular rooftops (the foreground class), with varied
  albedo and orientation-free axis-aligned footprints arranged roughly along
  the street grid,
* optional tree canopies (dark green blobs) that partially occlude nothing but
  add clutter,
* sensor noise.

Roof albedo is drawn to be brighter than terrain in most but not all channels,
which is what lets intensity-threshold-style methods (Otsu, IQFT) do well on
this dataset and is consistent with the paper's finding that the IQFT method
wins on ~96% of the xVIEW2 images — a much larger margin than on VOC.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..config import SeedLike
from ..errors import DatasetError
from ..imaging import synthesis
from ..imaging.noise import add_gaussian_noise, add_speckle_noise
from .base import Dataset, Sample

__all__ = ["SyntheticXView2Dataset"]

_TERRAIN_COLORS = np.array(
    [
        [0.35, 0.42, 0.28],  # vegetation
        [0.42, 0.40, 0.32],  # bare soil
        [0.38, 0.44, 0.34],  # mixed ground
    ]
)

# Bright sandy / gravel patches: brighter than vegetation in R and G but not in
# B, so a single intensity threshold lumps them with rooftops while the
# channel-wise IQFT partition keeps them separate from the (B-bright) roofs.
_SAND_COLOR = np.array([0.70, 0.62, 0.42])

_ROOF_COLORS = np.array(
    [
        [0.82, 0.80, 0.78],  # light gray shingle
        [0.72, 0.64, 0.58],  # tan
        [0.62, 0.32, 0.27],  # red/terracotta
        [0.75, 0.75, 0.80],  # metal
        [0.56, 0.56, 0.60],  # dark shingle
    ]
)

_ROAD_COLOR = np.array([0.38, 0.38, 0.40])
_TREE_COLOR = np.array([0.18, 0.30, 0.16])


class SyntheticXView2Dataset(Dataset):
    """Procedural overhead-imagery dataset with building-footprint ground truth.

    Parameters
    ----------
    num_samples:
        Number of tiles (the real subset has 148).
    seed:
        Base seed; tile ``i`` uses ``seed + i``.
    size:
        Tile shape ``(H, W)``; satellite tiles are square by convention.
    buildings_per_tile:
        ``(min, max)`` number of rooftops per tile.
    road_period:
        Approximate spacing of the road grid in pixels.
    noise_sigma:
        Additive Gaussian sensor noise.
    speckle_sigma:
        Multiplicative speckle noise (0 disables).
    """

    name = "synthetic-xview2-joplin"

    def __init__(
        self,
        num_samples: int = 40,
        seed: SeedLike = 1948,
        size: Tuple[int, int] = (128, 128),
        buildings_per_tile: Tuple[int, int] = (6, 18),
        road_period: int = 48,
        noise_sigma: float = 0.015,
        speckle_sigma: float = 0.0,
    ):
        if num_samples < 1:
            raise DatasetError("num_samples must be >= 1")
        if buildings_per_tile[0] < 1 or buildings_per_tile[1] < buildings_per_tile[0]:
            raise DatasetError("buildings_per_tile must be an increasing pair of positives")
        if road_period < 8:
            raise DatasetError("road_period must be at least 8 pixels")
        self._num_samples = int(num_samples)
        self._base_seed = int(seed) if not isinstance(seed, np.random.Generator) else 1948
        self._size = (int(size[0]), int(size[1]))
        self.buildings_per_tile = (int(buildings_per_tile[0]), int(buildings_per_tile[1]))
        self.road_period = int(road_period)
        self.noise_sigma = float(noise_sigma)
        self.speckle_sigma = float(speckle_sigma)

    def __len__(self) -> int:
        return self._num_samples

    # ------------------------------------------------------------------ #
    def _terrain(self, rng: np.random.Generator) -> np.ndarray:
        shape = self._size
        color_a = _TERRAIN_COLORS[int(rng.integers(len(_TERRAIN_COLORS)))]
        color_b = _TERRAIN_COLORS[int(rng.integers(len(_TERRAIN_COLORS)))]
        field = synthesis.correlated_noise(shape, scale=float(rng.uniform(5, 12)), seed=rng)
        fine = synthesis.correlated_noise(shape, scale=2.0, seed=rng)
        mix = np.clip(0.7 * field + 0.3 * fine, 0.0, 1.0)
        terrain = (
            color_a[None, None, :] * (1.0 - mix[..., None])
            + color_b[None, None, :] * mix[..., None]
        )
        return np.clip(terrain, 0.0, 1.0)

    def _road_mask(self, rng: np.random.Generator) -> np.ndarray:
        shape = self._size
        mask = np.zeros(shape, dtype=bool)
        width = int(rng.integers(3, 6))
        offset_r = int(rng.integers(self.road_period))
        offset_c = int(rng.integers(self.road_period))
        for r in range(offset_r, shape[0], self.road_period):
            mask |= synthesis.rectangle_mask(shape, r, 0, width, shape[1])
        for c in range(offset_c, shape[1], self.road_period):
            mask |= synthesis.rectangle_mask(shape, 0, c, shape[0], width)
        return mask

    def _buildings(
        self, road_mask: np.ndarray, rng: np.random.Generator
    ) -> Tuple[np.ndarray, list]:
        shape = self._size
        count = int(rng.integers(self.buildings_per_tile[0], self.buildings_per_tile[1] + 1))
        footprint = np.zeros(shape, dtype=bool)
        layers = []
        attempts = 0
        placed = 0
        while placed < count and attempts < count * 12:
            attempts += 1
            bh = int(rng.integers(6, 16))
            bw = int(rng.integers(6, 16))
            top = int(rng.integers(1, max(2, shape[0] - bh - 1)))
            left = int(rng.integers(1, max(2, shape[1] - bw - 1)))
            candidate = synthesis.rectangle_mask(shape, top, left, bh, bw)
            # Keep buildings off the roads and non-overlapping.
            if (candidate & road_mask).any() or (candidate & footprint).any():
                continue
            color = _ROOF_COLORS[int(rng.integers(len(_ROOF_COLORS)))]
            jitter = rng.normal(0.0, 0.03, size=3)
            layers.append((candidate.astype(np.float64), np.clip(color + jitter, 0.0, 1.0)))
            footprint |= candidate
            placed += 1
        return footprint, layers

    def _trees(self, rng: np.random.Generator, exclude: np.ndarray) -> list:
        shape = self._size
        layers = []
        for _ in range(int(rng.integers(2, 8))):
            center = (float(rng.uniform(0, shape[0])), float(rng.uniform(0, shape[1])))
            blob = synthesis.blob_mask(
                shape, center, radius=float(rng.uniform(3, 8)), irregularity=0.4, seed=rng
            )
            blob &= ~exclude
            if blob.any():
                jitter = rng.normal(0.0, 0.02, size=3)
                layers.append((blob.astype(np.float64), np.clip(_TREE_COLOR + jitter, 0.0, 1.0)))
        return layers

    def _sand_patches(self, rng: np.random.Generator, exclude: np.ndarray) -> list:
        """Bright bare-ground patches that defeat single-threshold methods.

        Their grayscale brightness overlaps the rooftop range, so Otsu (and a
        k=2 colour clustering) tends to mark them foreground; the channel-wise
        IQFT partition separates them from roofs because their blue channel
        stays below 0.5 while most rooftop materials exceed it.
        """
        shape = self._size
        layers = []
        for _ in range(int(rng.integers(2, 6))):
            center = (float(rng.uniform(0, shape[0])), float(rng.uniform(0, shape[1])))
            blob = synthesis.blob_mask(
                shape, center, radius=float(rng.uniform(8, 20)), irregularity=0.5, seed=rng
            )
            blob &= ~exclude
            if blob.any():
                jitter = rng.normal(0.0, 0.02, size=3)
                layers.append((blob.astype(np.float64), np.clip(_SAND_COLOR + jitter, 0.0, 1.0)))
        return layers

    def __getitem__(self, index: int) -> Sample:
        if not 0 <= index < self._num_samples:
            raise DatasetError(f"sample index {index} out of range")
        rng = np.random.default_rng(self._base_seed + index)
        terrain = self._terrain(rng)
        road_mask = self._road_mask(rng)
        buildings, building_layers = self._buildings(road_mask, rng)
        sand_layers = self._sand_patches(rng, exclude=buildings | road_mask)
        tree_layers = self._trees(rng, exclude=buildings | road_mask)

        layers = (
            [(road_mask.astype(np.float64), _ROAD_COLOR)]
            + sand_layers
            + tree_layers
            + building_layers
        )
        image = synthesis.composite(terrain, layers)
        image = add_gaussian_noise(image, sigma=self.noise_sigma, seed=rng)
        if self.speckle_sigma > 0:
            image = add_speckle_noise(image, sigma=self.speckle_sigma, seed=rng)

        return Sample(
            name=f"joplin-pre-{index:04d}",
            image=image,
            mask=buildings.astype(np.int64),
            void=None,
            metadata={
                "dataset": self.name,
                "index": index,
                "num_buildings": int(buildings.any() and len(building_layers)),
                "shape": self._size,
                "seed": self._base_seed + index,
            },
        )

"""Simple geometric-shape datasets for unit tests and quick demos.

Each sample is a plain background with a single high-contrast shape, so the
"correct" segmentation is unambiguous; this is what the integration tests use
to assert that every registered method achieves a near-perfect mIOU on easy
input, and what the quickstart example segments.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..config import SeedLike
from ..errors import DatasetError
from ..imaging import synthesis
from ..imaging.noise import add_gaussian_noise
from .base import Dataset, Sample

__all__ = ["ShapesDataset", "make_two_tone_image"]


def make_two_tone_image(
    shape: Tuple[int, int] = (64, 64),
    foreground_color: Tuple[float, float, float] = (0.85, 0.75, 0.2),
    background_color: Tuple[float, float, float] = (0.15, 0.2, 0.35),
    noise_sigma: float = 0.0,
    seed: SeedLike = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """A single centred bright disk on a dark background; returns (image, mask)."""
    height, width = int(shape[0]), int(shape[1])
    mask = synthesis.ellipse_mask(
        (height, width),
        ((height - 1) / 2.0, (width - 1) / 2.0),
        (height * 0.28, width * 0.28),
    )
    background = np.broadcast_to(
        np.asarray(background_color, dtype=np.float64), (height, width, 3)
    ).copy()
    image = synthesis.composite(background, [(mask.astype(np.float64), foreground_color)])
    if noise_sigma > 0:
        image = add_gaussian_noise(image, sigma=noise_sigma, seed=seed)
    return image, mask.astype(np.int64)


class ShapesDataset(Dataset):
    """Deterministic dataset of single-shape images with exact ground truth.

    Parameters
    ----------
    num_samples:
        Number of images.
    size:
        Image shape ``(H, W)``.
    noise_sigma:
        Optional Gaussian noise added to each image.
    seed:
        Base seed controlling shape placement, colours and noise.
    """

    name = "shapes"

    def __init__(
        self,
        num_samples: int = 12,
        size: Tuple[int, int] = (64, 64),
        noise_sigma: float = 0.01,
        seed: SeedLike = 7,
    ):
        if num_samples < 1:
            raise DatasetError("num_samples must be >= 1")
        self._num_samples = int(num_samples)
        self._size = (int(size[0]), int(size[1]))
        self.noise_sigma = float(noise_sigma)
        self._base_seed = int(seed) if not isinstance(seed, np.random.Generator) else 7

    def __len__(self) -> int:
        return self._num_samples

    def __getitem__(self, index: int) -> Sample:
        if not 0 <= index < self._num_samples:
            raise DatasetError(f"sample index {index} out of range")
        rng = np.random.default_rng(self._base_seed + index)
        height, width = self._size
        center = (
            float(rng.uniform(0.3 * height, 0.7 * height)),
            float(rng.uniform(0.3 * width, 0.7 * width)),
        )
        kind = index % 3
        if kind == 0:
            mask = synthesis.ellipse_mask(
                self._size, center, (height * 0.2, width * 0.25), angle=float(rng.uniform(0, np.pi))
            )
        elif kind == 1:
            mask = synthesis.rectangle_mask(
                self._size,
                int(center[0] - 0.2 * height),
                int(center[1] - 0.2 * width),
                int(0.4 * height),
                int(0.4 * width),
            )
        else:
            mask = synthesis.blob_mask(
                self._size, center, radius=0.22 * min(height, width), irregularity=0.3, seed=rng
            )
        bright = (
            float(rng.uniform(0.7, 0.95)),
            float(rng.uniform(0.6, 0.9)),
            float(rng.uniform(0.1, 0.4)),
        )
        dark = (
            float(rng.uniform(0.05, 0.25)),
            float(rng.uniform(0.1, 0.3)),
            float(rng.uniform(0.3, 0.5)),
        )
        background = np.broadcast_to(np.asarray(dark), (height, width, 3)).copy()
        image = synthesis.composite(background, [(mask.astype(np.float64), bright)])
        if self.noise_sigma > 0:
            image = add_gaussian_noise(image, sigma=self.noise_sigma, seed=rng)
        return Sample(
            name=f"shape-{index:03d}",
            image=image,
            mask=mask.astype(np.int64),
            void=None,
            metadata={"dataset": self.name, "index": index, "kind": kind},
        )

"""Synthetic stand-in for the PASCAL VOC 2012 segmentation benchmark.

Real VOC images are natural photographs with one or a few foreground objects
whose colour statistics differ from — but overlap with — a cluttered
background, annotated with binary object masks whose borders are marked
'void' and excluded from scoring.  The generator below reproduces those
properties procedurally:

* the background is a mixture of a smooth colour gradient and low-frequency
  correlated noise (sky / grass / indoor-wall like);
* 1–4 foreground objects (ellipses, blobs, polygons) are painted with a
  distinct mean colour, per-pixel colour jitter, and soft alpha edges;
* mild global Gaussian noise is added to everything;
* a void band of configurable width is drawn around every object boundary,
  exactly like the VOC annotation convention the paper follows ("pixels around
  the border of an object that are marked 'void' are not used").

Image sizes are drawn from a small set of VOC-like resolutions.  Every sample
is fully determined by the dataset seed and its index, so experiments are
reproducible and samples never need to be stored on disk.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy import ndimage

from ..config import SeedLike
from ..errors import DatasetError
from ..imaging import synthesis
from ..imaging.noise import add_gaussian_noise
from .base import Dataset, Sample

__all__ = ["SyntheticVOCDataset"]

# Mean colours of foreground object classes (loosely: person/red-clothes, car,
# dog, bird, bicycle ...).  Chosen to be separable from typical backgrounds in
# at least one channel but not trivially so.
_OBJECT_PALETTE = np.array(
    [
        [0.85, 0.30, 0.25],
        [0.20, 0.35, 0.80],
        [0.75, 0.65, 0.20],
        [0.55, 0.25, 0.60],
        [0.90, 0.55, 0.15],
        [0.25, 0.70, 0.45],
        [0.80, 0.80, 0.85],
        [0.35, 0.20, 0.15],
    ]
)

# Background colour anchors (sky, vegetation, indoor, road, sand).
_BACKGROUND_PALETTE = np.array(
    [
        [0.55, 0.70, 0.90],
        [0.30, 0.50, 0.25],
        [0.60, 0.55, 0.50],
        [0.40, 0.40, 0.45],
        [0.75, 0.70, 0.55],
    ]
)

_SIZES: Tuple[Tuple[int, int], ...] = ((96, 128), (128, 96), (112, 112), (120, 160))


class SyntheticVOCDataset(Dataset):
    """Procedural foreground/background dataset with VOC-style void borders.

    Parameters
    ----------
    num_samples:
        Number of images in the dataset (the real benchmark has 2913; the
        default keeps the full Table-III sweep laptop-fast while remaining
        statistically meaningful).
    seed:
        Base seed; sample ``i`` uses seed ``seed + i`` so subsets are stable.
    size:
        Fixed ``(H, W)`` for all images, or ``None`` to draw from a small set
        of VOC-like aspect ratios.
    void_width:
        Width in pixels of the void band drawn around object boundaries
        (0 disables void annotation).
    noise_sigma:
        Standard deviation of the global additive Gaussian noise.
    max_objects:
        Maximum number of foreground objects per image (at least 1).
    """

    name = "synthetic-voc2012"

    def __init__(
        self,
        num_samples: int = 60,
        seed: SeedLike = 2012,
        size: Optional[Tuple[int, int]] = None,
        void_width: int = 2,
        noise_sigma: float = 0.02,
        max_objects: int = 4,
    ):
        if num_samples < 1:
            raise DatasetError("num_samples must be >= 1")
        if void_width < 0:
            raise DatasetError("void_width must be non-negative")
        if max_objects < 1:
            raise DatasetError("max_objects must be >= 1")
        self._num_samples = int(num_samples)
        self._base_seed = int(seed) if not isinstance(seed, np.random.Generator) else 2012
        self._size = size
        self.void_width = int(void_width)
        self.noise_sigma = float(noise_sigma)
        self.max_objects = int(max_objects)

    def __len__(self) -> int:
        return self._num_samples

    # ------------------------------------------------------------------ #
    def _sample_shape(self, rng: np.random.Generator) -> Tuple[int, int]:
        if self._size is not None:
            return (int(self._size[0]), int(self._size[1]))
        return _SIZES[int(rng.integers(len(_SIZES)))]

    def _make_background(
        self, shape: Tuple[int, int], rng: np.random.Generator
    ) -> np.ndarray:
        # Natural photos typically contain both bright (sky, walls) and dark
        # (ground, shade) background regions; the gradient blends a darkened
        # and a brightened palette anchor so the background brightness spans a
        # wide range.  This is what makes a plain k=2 colour clustering or a
        # single global threshold split the *background* instead of isolating
        # the object — the failure mode the paper's baselines exhibit on VOC.
        base_color = _BACKGROUND_PALETTE[int(rng.integers(len(_BACKGROUND_PALETTE)))]
        second_color = _BACKGROUND_PALETTE[int(rng.integers(len(_BACKGROUND_PALETTE)))]
        dark = base_color * float(rng.uniform(0.35, 0.6))
        bright = np.clip(second_color * float(rng.uniform(1.2, 1.5)) + 0.15, 0.0, 1.0)
        axis = "vertical" if rng.random() < 0.5 else "horizontal"
        ramp = synthesis.linear_gradient(shape, 0.0, 1.0, axis=axis)
        texture = synthesis.correlated_noise(shape, scale=float(rng.uniform(4, 10)), seed=rng)
        field = 0.6 * ramp + 0.4 * texture
        background = (
            dark[None, None, :] * (1.0 - field[..., None])
            + bright[None, None, :] * field[..., None]
        )
        return np.clip(background, 0.0, 1.0)

    def _make_object_mask(
        self, shape: Tuple[int, int], rng: np.random.Generator
    ) -> np.ndarray:
        height, width = shape
        kind = rng.random()
        center = (
            float(rng.uniform(0.25 * height, 0.75 * height)),
            float(rng.uniform(0.25 * width, 0.75 * width)),
        )
        scale = float(rng.uniform(0.12, 0.3))
        if kind < 0.4:
            radii = (scale * height * rng.uniform(0.7, 1.3), scale * width * rng.uniform(0.7, 1.3))
            return synthesis.ellipse_mask(shape, center, radii, angle=float(rng.uniform(0, np.pi)))
        if kind < 0.8:
            return synthesis.blob_mask(
                shape,
                center,
                radius=scale * min(height, width),
                irregularity=float(rng.uniform(0.1, 0.45)),
                seed=rng,
            )
        num_vertices = int(rng.integers(3, 7))
        angles = np.sort(rng.uniform(0, 2 * np.pi, size=num_vertices))
        radius = scale * min(height, width)
        verts = np.stack(
            [center[0] + radius * np.sin(angles), center[1] + radius * np.cos(angles)], axis=-1
        )
        return synthesis.polygon_mask(shape, verts)

    def _void_band(self, mask: np.ndarray) -> np.ndarray:
        if self.void_width == 0 or not mask.any() or mask.all():
            return np.zeros(mask.shape, dtype=bool)
        structure = np.ones((3, 3), dtype=bool)
        dilated = ndimage.binary_dilation(mask, structure=structure, iterations=self.void_width)
        eroded = ndimage.binary_erosion(mask, structure=structure, iterations=self.void_width)
        return dilated & ~eroded

    def __getitem__(self, index: int) -> Sample:
        if not 0 <= index < self._num_samples:
            raise DatasetError(f"sample index {index} out of range")
        rng = np.random.default_rng(self._base_seed + index)
        shape = self._sample_shape(rng)
        background = self._make_background(shape, rng)

        num_objects = int(rng.integers(1, self.max_objects + 1))
        mask = np.zeros(shape, dtype=bool)
        layers = []
        for _ in range(num_objects):
            obj_mask = self._make_object_mask(shape, rng)
            if not obj_mask.any():
                continue
            color = _OBJECT_PALETTE[int(rng.integers(len(_OBJECT_PALETTE)))]
            jitter = rng.normal(0.0, 0.05, size=3)
            layers.append((obj_mask.astype(np.float64), np.clip(color + jitter, 0.0, 1.0)))
            mask |= obj_mask

        image = synthesis.composite(background, layers)
        # Per-object interior texture: modulate brightness inside the mask.
        if mask.any():
            texture = synthesis.correlated_noise(shape, scale=3.0, seed=rng)
            modulation = 1.0 + 0.15 * (texture - 0.5)
            image = np.where(mask[..., None], np.clip(image * modulation[..., None], 0, 1), image)
        image = add_gaussian_noise(image, sigma=self.noise_sigma, seed=rng)

        void = self._void_band(mask)
        return Sample(
            name=f"voc-{index:05d}",
            image=image,
            mask=mask.astype(np.int64),
            void=void,
            metadata={
                "dataset": self.name,
                "index": index,
                "num_objects": num_objects,
                "shape": shape,
                "seed": self._base_seed + index,
            },
        )

"""Random-pixel dataset for the Table-II segment-count analysis.

The paper generates "100,000 × 3 random numbers between 0 and 1 as normalized
RGB values" and measures how many distinct segments the IQFT RGB rule can
produce for each θ configuration.  This module provides that sampling plus a
reshaping helper so the samples can also be fed through the image-based API.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..config import SeedLike, as_generator
from ..errors import DatasetError

__all__ = ["random_pixel_dataset", "random_pixel_image"]


def random_pixel_dataset(
    num_samples: int = 100_000, channels: int = 3, seed: SeedLike = 0
) -> np.ndarray:
    """Uniform samples in ``[0, 1]^channels`` with shape ``(num_samples, channels)``."""
    if num_samples < 1:
        raise DatasetError("num_samples must be >= 1")
    if channels < 1:
        raise DatasetError("channels must be >= 1")
    rng = as_generator(seed)
    return rng.random((int(num_samples), int(channels)))


def random_pixel_image(
    num_samples: int = 100_000, seed: SeedLike = 0
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """The same samples arranged as a near-square ``(H, W, 3)`` image.

    Returns the image and its ``(H, W)`` shape.  The pixel count is the
    largest ``H·W ≤ num_samples`` with ``H = floor(sqrt(num_samples))``, so a
    request for 100,000 samples yields a 316 × 316 image (99,856 pixels).
    """
    samples = random_pixel_dataset(num_samples, channels=3, seed=seed)
    side = int(np.floor(np.sqrt(num_samples)))
    height, width = side, side
    return samples[: height * width].reshape(height, width, 3), (height, width)

"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to discriminate the failure domain (imaging, quantum, datasets, ...)
when they need to.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ImageError",
    "ImageDecodeError",
    "ImageEncodeError",
    "ShapeError",
    "QuantumError",
    "GateError",
    "SegmentationError",
    "ParameterError",
    "MetricError",
    "DatasetError",
    "ParallelError",
    "BackendError",
    "ExperimentError",
    "ServeError",
    "ServeConnectionError",
    "ServiceClosedError",
    "ServiceOverloadedError",
    "DeadlineExceededError",
    "QuotaExceededError",
    "CacheError",
    "PayloadError",
]


class ReproError(Exception):
    """Base class for all exceptions raised by the :mod:`repro` library."""


class ImageError(ReproError):
    """Base class for failures in the imaging substrate."""


class ImageDecodeError(ImageError):
    """Raised when an image file cannot be decoded (corrupt or unsupported)."""


class ImageEncodeError(ImageError):
    """Raised when an image cannot be written in the requested format."""


class ShapeError(ImageError, ValueError):
    """Raised when an array does not have the expected dimensionality/shape."""


class QuantumError(ReproError):
    """Base class for failures in the quantum-simulation substrate."""


class GateError(QuantumError):
    """Raised when a gate is applied to invalid qubit indices or states."""


class SegmentationError(ReproError):
    """Raised when a segmentation algorithm cannot produce a valid labeling."""


class ParameterError(ReproError, ValueError):
    """Raised when a user-supplied algorithm parameter is out of range."""


class MetricError(ReproError):
    """Raised when an evaluation metric receives inconsistent inputs."""


class DatasetError(ReproError):
    """Raised when a dataset cannot be generated, loaded, or indexed."""


class ParallelError(ReproError):
    """Raised when the parallel-execution layer fails to run a job."""


class BackendError(ReproError):
    """Raised when an array backend fails at runtime (device lost, OOM, ...).

    Selection errors — asking for a backend that is not registered or whose
    optional dependency is missing — raise :class:`ParameterError` instead:
    they are configuration mistakes, not runtime faults.
    """


class ExperimentError(ReproError):
    """Raised when an experiment/benchmark harness is misconfigured."""


class ServeError(ReproError):
    """Base class for failures in the serving layer (:mod:`repro.serve`)."""


class ServeConnectionError(ServeError):
    """Raised when an HTTP serve client cannot reach (or loses) the server.

    :class:`repro.serve.http_client.SegmentClient` maps every socket-level
    failure — connection refused, reset, timeout, a half-written response —
    to this type, so callers talking to a restarting or draining worker
    fleet handle one library exception instead of the zoo of
    :class:`OSError` subtypes the stdlib surfaces.  The original error is
    preserved as ``__cause__``.
    """


class ServiceClosedError(ServeError):
    """Raised when a request is submitted to a closed segmentation service."""


class ServiceOverloadedError(ServeError):
    """Raised when the service queue is full and backpressure rejects a request."""


class DeadlineExceededError(ServeError):
    """Raised when a request cannot meet (or has already missed) its deadline.

    The async serving front end raises this at admission time when the
    estimated completion time already exceeds the request deadline, and while
    draining its lanes for any queued request whose deadline passed before the
    engine could pick it up.
    """


class QuotaExceededError(ServeError):
    """Raised when a client exhausts its per-client token-bucket quota."""


class CacheError(ServeError):
    """Raised when the persistent result cache is misconfigured or corrupt."""


class PayloadError(ServeError):
    """Raised when a request payload cannot be parsed into an image.

    The HTTP front end maps this (alongside :class:`ImageDecodeError` and
    :class:`ParameterError`) to a ``400 Bad Request`` response: the request
    was understood at the protocol level but its body — JSON envelope,
    base64 transfer encoding, npy array, or image container — is malformed.
    """

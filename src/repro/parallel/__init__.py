"""Parallel / chunked execution layer (HPC-style structure).

The segmentation workload has two natural axes of parallelism:

* **across images** — the dataset sweeps of Table III are embarrassingly
  parallel; :class:`ProcessExecutor` maps a function over samples with a
  process pool (scatter/gather semantics, in the spirit of the mpi4py
  patterns from the hpc-parallel guides but built on ``multiprocessing`` so it
  works without an MPI runtime);
* **within an image** — the per-pixel kernel is a big complex matmul that the
  core classifier already chunks for cache friendliness; :mod:`tiling`
  additionally splits an image into tiles so independent workers can process
  one image cooperatively, and :mod:`chunking` provides the flat pixel-block
  iterator the classifier uses.

A :class:`SerialExecutor` with the same interface keeps the harness debuggable
and is the default everywhere (2-core CI boxes gain little from processes, but
the abstraction and its tests make the scaling path explicit).
"""

from .executor import SerialExecutor, ThreadExecutor, ProcessExecutor, get_executor
from .tiling import (
    Tile,
    split_into_tiles,
    assemble_tiles,
    tile_map,
    tile_digest,
    grid_digests,
)
from .chunking import iter_chunks, chunked_apply
from .scheduler import StaticScheduler, DynamicScheduler, WorkItem

__all__ = [
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "get_executor",
    "Tile",
    "split_into_tiles",
    "assemble_tiles",
    "tile_map",
    "tile_digest",
    "grid_digests",
    "iter_chunks",
    "chunked_apply",
    "StaticScheduler",
    "DynamicScheduler",
    "WorkItem",
]

"""Work scheduling across workers: static block partitioning and dynamic queues.

The dataset sweeps are heterogeneous (images differ in size, K-means converges
in a variable number of iterations), so a dynamic work queue keeps workers busy
better than a static split.  Both strategies are provided behind one
interface so the ablation benchmark can compare them; the experiment harness
uses the static scheduler by default because its output ordering is
deterministic regardless of timing.
"""

from __future__ import annotations

import dataclasses
import queue
import threading
from typing import Any, Callable, List, Optional, Sequence

from ..errors import ParallelError

__all__ = ["WorkItem", "StaticScheduler", "DynamicScheduler"]


@dataclasses.dataclass
class WorkItem:
    """One unit of work: an index (for ordering) and an arbitrary payload."""

    index: int
    payload: Any


class StaticScheduler:
    """Split work into ``num_workers`` contiguous blocks ahead of time.

    ``assign`` returns the per-worker lists; ``run`` executes them (serially,
    worker by worker — the point of this class is the partitioning policy; the
    executors own actual parallelism).
    """

    def __init__(self, num_workers: int = 1):
        if num_workers < 1:
            raise ParallelError("num_workers must be >= 1")
        self.num_workers = int(num_workers)

    def assign(self, items: Sequence[Any]) -> List[List[WorkItem]]:
        """Contiguous block partition of ``items`` into ``num_workers`` lists."""
        work = [WorkItem(index=i, payload=item) for i, item in enumerate(items)]
        blocks: List[List[WorkItem]] = [[] for _ in range(self.num_workers)]
        if not work:
            return blocks
        per_worker = -(-len(work) // self.num_workers)  # ceil division
        for worker in range(self.num_workers):
            blocks[worker] = work[worker * per_worker : (worker + 1) * per_worker]
        return blocks

    def run(self, func: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        """Execute ``func`` over all items, returning results in input order."""
        results: List[Optional[Any]] = [None] * len(items)
        for block in self.assign(items):
            for item in block:
                results[item.index] = func(item.payload)
        return results  # type: ignore[return-value]


class DynamicScheduler:
    """First-come-first-served work queue drained by ``num_workers`` threads.

    Results are returned in input order regardless of completion order.  The
    worker count is capped at the number of items; exceptions raised by the
    work function propagate to the caller after all workers stop.
    """

    def __init__(self, num_workers: int = 2):
        if num_workers < 1:
            raise ParallelError("num_workers must be >= 1")
        self.num_workers = int(num_workers)

    def run(self, func: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        """Execute ``func`` over all items with a shared queue of WorkItems."""
        items = list(items)
        if not items:
            return []
        workers = min(self.num_workers, len(items))
        if workers == 1:
            return [func(item) for item in items]

        work_queue: "queue.Queue[WorkItem]" = queue.Queue()
        for i, item in enumerate(items):
            work_queue.put(WorkItem(index=i, payload=item))
        results: List[Optional[Any]] = [None] * len(items)
        errors: List[BaseException] = []
        lock = threading.Lock()

        def worker() -> None:
            while True:
                try:
                    work = work_queue.get_nowait()
                except queue.Empty:
                    return
                try:
                    value = func(work.payload)
                    with lock:
                        results[work.index] = value
                except BaseException as exc:  # reprolint: disable=RL004 re-raised after the join
                    with lock:
                        errors.append(exc)
                finally:
                    work_queue.task_done()

        threads = [threading.Thread(target=worker) for _ in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        return results  # type: ignore[return-value]

"""Executors: a single ``map``-style interface over serial, thread and process pools.

The executors deliberately mirror the semantics of ``concurrent.futures`` but
(1) preserve input order, (2) expose a ``chunksize`` knob for scatter-like
batching, and (3) degrade gracefully: requesting more workers than CPUs, or a
process pool in an environment where fork is unavailable, silently falls back
to fewer workers / serial execution rather than failing an experiment run.
"""

from __future__ import annotations

import abc
import concurrent.futures
import os
from typing import Any, Callable, Iterable, List, Optional, Sequence

from ..config import get_config
from ..errors import ParallelError

__all__ = [
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "get_executor",
    "executor_for_jobs",
]


class BaseExecutor(abc.ABC):
    """Common interface: ``map(func, items) -> list`` preserving input order."""

    name: str = "base"

    @abc.abstractmethod
    def map(self, func: Callable[[Any], Any], items: Iterable[Any]) -> List[Any]:
        """Apply ``func`` to every item and return results in input order."""

    def starmap(self, func: Callable[..., Any], items: Iterable[Sequence[Any]]) -> List[Any]:
        """Like :meth:`map` but unpacks each item as positional arguments."""
        return self.map(lambda args: func(*args), items)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class SerialExecutor(BaseExecutor):
    """Run everything in the calling process/thread (deterministic, debuggable)."""

    name = "serial"

    def map(self, func: Callable[[Any], Any], items: Iterable[Any]) -> List[Any]:
        return [func(item) for item in items]


class ThreadExecutor(BaseExecutor):
    """Thread-pool executor.

    Useful when the mapped function releases the GIL (large numpy matmuls do)
    or performs I/O; otherwise prefer :class:`ProcessExecutor`.
    """

    name = "thread"

    def __init__(self, max_workers: Optional[int] = None):
        workers = max_workers if max_workers is not None else get_config().resolved_workers()
        if workers < 1:
            raise ParallelError("max_workers must be >= 1")
        self.max_workers = int(workers)

    def map(self, func: Callable[[Any], Any], items: Iterable[Any]) -> List[Any]:
        items = list(items)
        if not items:
            return []
        if self.max_workers == 1 or len(items) == 1:
            return [func(item) for item in items]
        with concurrent.futures.ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            return list(pool.map(func, items))


class ProcessExecutor(BaseExecutor):
    """Process-pool executor for CPU-bound per-image work.

    The mapped function and its arguments must be picklable (module-level
    functions and plain data).  On platforms where a process pool cannot be
    created the executor transparently falls back to serial execution and
    records that in :attr:`fallback_reason`.
    """

    name = "process"

    def __init__(self, max_workers: Optional[int] = None, chunksize: int = 1):
        workers = max_workers if max_workers is not None else get_config().resolved_workers()
        if workers < 1:
            raise ParallelError("max_workers must be >= 1")
        if chunksize < 1:
            raise ParallelError("chunksize must be >= 1")
        cpu_count = os.cpu_count() or 1
        self.max_workers = max(1, min(int(workers), cpu_count))
        self.chunksize = int(chunksize)
        self.fallback_reason: Optional[str] = None

    def map(self, func: Callable[[Any], Any], items: Iterable[Any]) -> List[Any]:
        items = list(items)
        if not items:
            return []
        if self.max_workers == 1 or len(items) == 1:
            return [func(item) for item in items]
        try:
            with concurrent.futures.ProcessPoolExecutor(max_workers=self.max_workers) as pool:
                return list(pool.map(func, items, chunksize=self.chunksize))
        except (OSError, ValueError, concurrent.futures.process.BrokenProcessPool) as exc:
            # Sandboxed or fork-restricted environments: degrade to serial.
            self.fallback_reason = f"{type(exc).__name__}: {exc}"
            return [func(item) for item in items]


def get_executor(kind: str = "serial", **kwargs) -> BaseExecutor:
    """Construct an executor by name: ``"serial"``, ``"thread"`` or ``"process"``."""
    if kind == "serial":
        return SerialExecutor()
    if kind == "thread":
        return ThreadExecutor(**kwargs)
    if kind == "process":
        return ProcessExecutor(**kwargs)
    raise ParallelError(f"unknown executor kind: {kind!r}")


def executor_for_jobs(kind: str, jobs=None) -> BaseExecutor:
    """:func:`get_executor` with the CLI's ``--jobs`` convention.

    ``jobs`` is forwarded as ``max_workers`` except for the serial executor
    (which takes none) or when unset (library default).  Every front end —
    ``batch``, ``serve``, fleet workers — maps the flag through this one
    helper so they cannot drift.
    """
    kwargs = {}
    if jobs is not None and kind != "serial":
        kwargs["max_workers"] = jobs
    return get_executor(kind, **kwargs)

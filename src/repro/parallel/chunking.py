"""Flat chunk iteration over large pixel arrays.

The vectorized IQFT kernel materializes an ``(N, 2^n)`` complex intermediate;
for megapixel images that would be hundreds of megabytes, so the classifier
walks the pixel list in bounded chunks.  These helpers implement that walk as
reusable, testable functions (and are also used by the ablation benchmark that
measures the chunk-size / throughput trade-off).
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Tuple

import numpy as np

from ..config import get_config
from ..errors import ParallelError

__all__ = ["iter_chunks", "chunked_apply"]


def iter_chunks(total: int, chunk_size: Optional[int] = None) -> Iterator[Tuple[int, int]]:
    """Yield ``(start, stop)`` index pairs covering ``range(total)`` in order.

    ``chunk_size`` defaults to the library-wide ``chunk_pixels`` setting.
    """
    if total < 0:
        raise ParallelError("total must be non-negative")
    size = int(chunk_size) if chunk_size is not None else int(get_config().chunk_pixels)
    if size < 1:
        raise ParallelError("chunk_size must be >= 1")
    start = 0
    while start < total:
        stop = min(start + size, total)
        yield start, stop
        start = stop


def chunked_apply(
    func: Callable[[np.ndarray], np.ndarray],
    data: np.ndarray,
    chunk_size: Optional[int] = None,
    output_dtype=None,
    output_width: Optional[int] = None,
) -> np.ndarray:
    """Apply ``func`` to row-chunks of ``data`` and concatenate the results.

    ``func`` receives ``data[start:stop]`` and must return an array with the
    same number of rows.  The output array is preallocated from the first
    chunk's result (or from ``output_dtype`` / ``output_width`` when given),
    so the peak extra memory is one chunk's worth of intermediates.
    """
    arr = np.asarray(data)
    if arr.ndim < 1:
        raise ParallelError("data must have at least one dimension")
    total = arr.shape[0]
    if total == 0:
        probe = func(arr[:0])
        return np.asarray(probe)

    out = None
    for start, stop in iter_chunks(total, chunk_size):
        result = np.asarray(func(arr[start:stop]))
        if result.shape[0] != stop - start:
            raise ParallelError(
                "chunk function changed the number of rows "
                f"({stop - start} -> {result.shape[0]})"
            )
        if out is None:
            width = output_width if output_width is not None else (
                result.shape[1:] if result.ndim > 1 else ()
            )
            tail = tuple(width) if isinstance(width, tuple) else ((width,) if width else ())
            shape = (total,) + tail
            dtype = output_dtype if output_dtype is not None else result.dtype
            out = np.empty(shape, dtype=dtype)
        out[start:stop] = result
    assert out is not None
    return out

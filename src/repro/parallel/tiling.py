"""Image tiling: split → process tiles independently → reassemble.

Because the IQFT rule is strictly per-pixel, an image can be cut into tiles,
each tile segmented independently (possibly by different workers), and the
label maps stitched back together with results identical to whole-image
processing — the property :func:`tile_map` exploits and the tests assert.
The tiles carry their origin so reassembly is unambiguous, in the spirit of
the scatter/gather collectives shown in the mpi4py guide.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ParallelError
from .executor import BaseExecutor, SerialExecutor

__all__ = [
    "Tile",
    "split_into_tiles",
    "assemble_tiles",
    "tile_map",
    "tile_digest",
    "grid_digests",
]


@dataclasses.dataclass
class Tile:
    """A rectangular piece of an image plus its placement in the original.

    Attributes
    ----------
    data:
        The tile's pixel block (``(h, w)`` or ``(h, w, C)``).
    row, col:
        Top-left corner of the tile in the original image.
    """

    data: np.ndarray
    row: int
    col: int

    @property
    def shape(self) -> Tuple[int, ...]:
        """Shape of the tile's pixel block."""
        return self.data.shape


def split_into_tiles(image: np.ndarray, tile_shape: Tuple[int, int]) -> List[Tile]:
    """Split an image into non-overlapping tiles covering it exactly.

    Edge tiles are smaller when the image size is not a multiple of the tile
    size; no padding is introduced, so reassembly is loss-free.
    """
    arr = np.asarray(image)
    if arr.ndim not in (2, 3):
        raise ParallelError(f"expected a 2-D or 3-D image, got shape {arr.shape}")
    th, tw = int(tile_shape[0]), int(tile_shape[1])
    if th < 1 or tw < 1:
        raise ParallelError("tile shape must be positive")
    height, width = arr.shape[:2]
    tiles: List[Tile] = []
    for row in range(0, height, th):
        for col in range(0, width, tw):
            block = arr[row : min(row + th, height), col : min(col + tw, width)]
            tiles.append(Tile(data=np.ascontiguousarray(block), row=row, col=col))
    return tiles


def assemble_tiles(
    tiles: Sequence[Tile], output_shape: Tuple[int, ...], dtype=None
) -> np.ndarray:
    """Stitch tiles back into a full array of ``output_shape``.

    Raises if any output pixel is left uncovered or covered twice.
    """
    if not tiles:
        raise ParallelError("cannot assemble an empty tile list")
    out_dtype = dtype if dtype is not None else tiles[0].data.dtype
    out = np.zeros(output_shape, dtype=out_dtype)
    coverage = np.zeros(output_shape[:2], dtype=np.int32)
    for tile in tiles:
        h, w = tile.data.shape[:2]
        rows = slice(tile.row, tile.row + h)
        cols = slice(tile.col, tile.col + w)
        out[rows, cols] = tile.data
        coverage[rows, cols] += 1
    if np.any(coverage != 1):
        raise ParallelError("tiles do not cover the output exactly once")
    return out


def tile_digest(block: np.ndarray) -> str:
    """Content digest of one tile block: dtype + shape + raw bytes (blake2b-128).

    The recipe deliberately matches the serve layer's whole-image
    ``image_digest`` (:mod:`repro.serve`), so tiles participate in the same
    content-addressing scheme: two blocks receive equal digests iff they are
    byte-identical in the same dtype and shape — exactly the condition under
    which a pointwise segmenter produces identical labels for both.  The
    delta path (:mod:`repro.engine.delta`) keys its dirty-tile comparison
    and the per-tile cache entries on this digest.
    """
    arr = np.ascontiguousarray(block)
    hasher = hashlib.blake2b(digest_size=16)
    hasher.update(str(arr.dtype).encode("ascii"))
    hasher.update(str(arr.shape).encode("ascii"))
    hasher.update(arr.data if arr.size else b"")
    return hasher.hexdigest()


def grid_digests(image: np.ndarray, tile_shape: Tuple[int, int]) -> Tuple[List[Tile], Tuple[str, ...]]:
    """Split ``image`` on a fixed grid and digest every tile.

    Returns ``(tiles, digests)`` with one digest per tile in
    :func:`split_into_tiles` order (row-major).  Because the grid is a pure
    function of ``(image.shape, tile_shape)``, two frames of the same shape
    tiled with the same ``tile_shape`` produce positionally comparable
    digest tuples — the frame-to-frame comparison the delta path runs.
    """
    tiles = split_into_tiles(image, tile_shape)
    return tiles, tuple(tile_digest(tile.data) for tile in tiles)


def _apply_to_tile(func: Callable[[np.ndarray], np.ndarray], tile: Tile) -> np.ndarray:
    # Module-level (not a closure) so that tile_map work items stay picklable
    # and can be scattered across a ProcessExecutor.
    return func(tile.data)


def tile_map(
    func: Callable[[np.ndarray], np.ndarray],
    image: np.ndarray,
    tile_shape: Tuple[int, int] = (128, 128),
    executor: Optional[BaseExecutor] = None,
) -> np.ndarray:
    """Apply a per-pixel array function tile by tile and reassemble the result.

    ``func`` must map an ``(h, w, ...)`` block to an ``(h, w)`` (or
    ``(h, w, C)``) block of the same leading shape — e.g.
    ``lambda block: segmenter.segment(block).labels``.  The executor defaults
    to serial; pass a :class:`~repro.parallel.executor.ThreadExecutor` or
    :class:`~repro.parallel.executor.ProcessExecutor` to parallelize.
    """
    arr = np.asarray(image)
    tiles = split_into_tiles(arr, tile_shape)
    runner = executor or SerialExecutor()
    results = runner.map(functools.partial(_apply_to_tile, func), tiles)
    out_tiles = []
    for tile, result in zip(tiles, results):
        result = np.asarray(result)
        if result.shape[:2] != tile.data.shape[:2]:
            raise ParallelError(
                "tile function changed the tile's spatial shape "
                f"({tile.data.shape[:2]} -> {result.shape[:2]})"
            )
        out_tiles.append(Tile(data=result, row=tile.row, col=tile.col))
    sample = np.asarray(results[0])
    out_shape = arr.shape[:2] + sample.shape[2:]
    return assemble_tiles(out_tiles, out_shape, dtype=sample.dtype)

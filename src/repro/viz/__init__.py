"""Visualization helpers: palettes, overlays, ASCII rendering, unit-circle data.

No plotting library is available offline, so "figures" are produced as (a)
colour label maps / overlays written to PPM/PNG via the imaging codecs, (b)
ASCII renderings for quick terminal inspection, and (c) the raw point/series
data behind the paper's unit-circle and probability-bar figures (Figs 1–3),
which the corresponding benchmarks print as tables.
"""

from .palette import label_palette, colorize_labels, overlay_mask
from .ascii_art import ascii_label_map, ascii_histogram
from .unit_circle import basis_patterns_points, input_pattern_points, probability_series
from .export import save_label_map, save_overlay, save_side_by_side

__all__ = [
    "label_palette",
    "colorize_labels",
    "overlay_mask",
    "ascii_label_map",
    "ascii_histogram",
    "basis_patterns_points",
    "input_pattern_points",
    "probability_series",
    "save_label_map",
    "save_overlay",
    "save_side_by_side",
]

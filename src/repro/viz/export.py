"""Write segmentation visualizations to disk through the imaging codecs."""

from __future__ import annotations

import os
from typing import Sequence, Union

import numpy as np

from ..errors import ParameterError
from ..imaging.image import as_uint8_image, ensure_rgb
from ..imaging.io_dispatch import write_image
from .palette import colorize_labels, overlay_mask

__all__ = ["save_label_map", "save_overlay", "save_side_by_side"]

PathLike = Union[str, os.PathLike]


def save_label_map(path: PathLike, labels: np.ndarray) -> None:
    """Write a colourized label map to ``path`` (extension selects the codec)."""
    write_image(path, as_uint8_image(colorize_labels(labels)))


def save_overlay(path: PathLike, image: np.ndarray, mask: np.ndarray, alpha: float = 0.45) -> None:
    """Write the image with a red mask overlay to ``path``."""
    write_image(path, as_uint8_image(overlay_mask(image, mask, alpha=alpha)))


def save_side_by_side(path: PathLike, panels: Sequence[np.ndarray], gap: int = 4) -> None:
    """Write several equally-tall images side by side (figure-style montage).

    All panels are converted to RGB uint8; a white vertical gap of ``gap``
    pixels separates them.  Panels of different heights are rejected rather
    than resized, to avoid silently distorting comparisons.
    """
    if not panels:
        raise ParameterError("need at least one panel")
    if gap < 0:
        raise ParameterError("gap must be non-negative")
    rgb_panels = [ensure_rgb(as_uint8_image(np.asarray(p))) for p in panels]
    heights = {p.shape[0] for p in rgb_panels}
    if len(heights) != 1:
        raise ParameterError(f"panels must share a height; got heights {sorted(heights)}")
    height = heights.pop()
    spacer = np.full((height, gap, 3), 255, dtype=np.uint8)
    pieces = []
    for i, panel in enumerate(rgb_panels):
        if i:
            pieces.append(spacer)
        pieces.append(panel)
    write_image(path, np.concatenate(pieces, axis=1))

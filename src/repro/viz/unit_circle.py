"""Unit-circle point sets and probability series behind Figures 1–3.

Figure 1 visualizes each basis state as the set of phase points of the
corresponding row of the IQFT matrix; Figure 2 shows the phase points of a
transformed input vector for a random ``(α, β, γ)``; Figure 3 is the 8-way
probability distribution of that input.  These functions return the raw point
coordinates / probabilities so the benchmarks can print (and tests can check)
exactly the data the figures plot.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from ..core.classifier import IQFTClassifier
from ..core.iqft_matrix import basis_phase_patterns
from ..core.phase_encoding import phase_vector
from ..errors import ParameterError

__all__ = ["basis_patterns_points", "input_pattern_points", "probability_series"]

#: The random example used in Figures 2 and 3 of the paper.
PAPER_EXAMPLE_PHASES: Tuple[float, float, float] = (2.464, 0.025, 0.246)


def basis_patterns_points(num_qubits: int = 3) -> Dict[str, np.ndarray]:
    """Figure 1: for each basis state, the (x, y) points of its pattern.

    Returns a mapping ``bitstring -> (N, 2)`` array of unit-circle coordinates,
    where ``N = 2^num_qubits``.
    """
    if num_qubits < 1:
        raise ParameterError("num_qubits must be >= 1")
    angles = basis_phase_patterns(num_qubits)
    dim = angles.shape[0]
    width = num_qubits
    out: Dict[str, np.ndarray] = {}
    for j in range(dim):
        pts = np.stack([np.cos(angles[j]), np.sin(angles[j])], axis=-1)
        out[format(j, f"0{width}b")] = pts
    return out


def input_pattern_points(phases: Sequence[float] = PAPER_EXAMPLE_PHASES) -> np.ndarray:
    """Figure 2: the unit-circle points of the transformed input vector.

    ``phases`` is ``(α, β, γ)`` (most significant qubit first); the returned
    ``(2^n, 2)`` array contains the coordinates of each component of the
    phase vector ``F`` — several points may coincide, exactly as the paper
    notes for its example.
    """
    vec = phase_vector(phases)
    return np.stack([vec.real, vec.imag], axis=-1)


def probability_series(phases: Sequence[float] = PAPER_EXAMPLE_PHASES) -> Dict[str, float]:
    """Figure 3: the basis-state probability distribution of the input pattern."""
    phi = np.asarray(phases, dtype=np.float64).reshape(-1)
    classifier = IQFTClassifier(num_qubits=phi.size)
    probs = classifier.probabilities(phi)
    width = phi.size
    return {format(i, f"0{width}b"): float(p) for i, p in enumerate(probs)}

"""ASCII rendering of label maps and histograms for terminal inspection."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ParameterError

__all__ = ["ascii_label_map", "ascii_histogram"]

_GLYPHS = " .:-=+*#%@&$ABCDEFGH"


def ascii_label_map(labels: np.ndarray, max_width: int = 80) -> str:
    """Render a 2-D label map as a block of characters (one glyph per label).

    The map is downsampled by integer striding when wider than ``max_width``.
    """
    arr = np.asarray(labels)
    if arr.ndim != 2:
        raise ParameterError("labels must be a 2-D array")
    if max_width < 4:
        raise ParameterError("max_width must be at least 4")
    stride = max(1, int(np.ceil(arr.shape[1] / max_width)))
    small = arr[::stride, ::stride]
    unique = np.unique(small)
    glyph_of = {int(v): _GLYPHS[i % len(_GLYPHS)] for i, v in enumerate(unique)}
    lines = ["".join(glyph_of[int(v)] for v in row) for row in small]
    return "\n".join(lines)


def ascii_histogram(values: Sequence[float], labels: Sequence[str] = None, width: int = 40) -> str:
    """Render a horizontal bar chart of non-negative values.

    Used by the Figure-3 benchmark to print the 8-way probability distribution.
    """
    vals = np.asarray(list(values), dtype=np.float64)
    if vals.ndim != 1 or vals.size == 0:
        raise ParameterError("values must be a non-empty 1-D sequence")
    if np.any(vals < 0):
        raise ParameterError("values must be non-negative")
    if width < 1:
        raise ParameterError("width must be positive")
    names = list(labels) if labels is not None else [str(i) for i in range(vals.size)]
    if len(names) != vals.size:
        raise ParameterError("labels length does not match values")
    peak = vals.max() or 1.0
    name_width = max(len(n) for n in names)
    lines = []
    for name, value in zip(names, vals):
        bar = "#" * int(round(width * value / peak))
        lines.append(f"{name.rjust(name_width)} | {bar} {value:.4f}")
    return "\n".join(lines)

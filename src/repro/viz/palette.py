"""Colour palettes for label maps and mask overlays."""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError

__all__ = ["label_palette", "colorize_labels", "overlay_mask"]

# A qualitative palette with high mutual contrast; index 0 (background) is dark.
_BASE_PALETTE = np.array(
    [
        [0.10, 0.10, 0.12],
        [0.90, 0.25, 0.20],
        [0.20, 0.60, 0.90],
        [0.25, 0.75, 0.30],
        [0.95, 0.75, 0.15],
        [0.65, 0.35, 0.80],
        [0.95, 0.50, 0.70],
        [0.45, 0.80, 0.80],
        [0.98, 0.98, 0.95],
        [0.55, 0.40, 0.20],
        [0.35, 0.35, 0.60],
        [0.75, 0.85, 0.40],
    ],
    dtype=np.float64,
)


def label_palette(num_labels: int) -> np.ndarray:
    """Return an ``(num_labels, 3)`` float palette, cycling hues when needed."""
    if num_labels < 1:
        raise ParameterError("num_labels must be >= 1")
    if num_labels <= _BASE_PALETTE.shape[0]:
        return _BASE_PALETTE[:num_labels].copy()
    # Extend by rotating hue via a golden-angle sweep in HSV-ish fashion.
    extra_count = num_labels - _BASE_PALETTE.shape[0]
    hues = (np.arange(extra_count) * 0.618033988749895) % 1.0
    extra = np.stack(
        [
            0.5 + 0.5 * np.cos(2 * np.pi * hues),
            0.5 + 0.5 * np.cos(2 * np.pi * (hues + 1 / 3)),
            0.5 + 0.5 * np.cos(2 * np.pi * (hues + 2 / 3)),
        ],
        axis=-1,
    )
    return np.concatenate([_BASE_PALETTE, extra], axis=0)


def colorize_labels(labels: np.ndarray, palette: np.ndarray = None) -> np.ndarray:
    """Map a 2-D integer label map to an RGB image using a palette."""
    arr = np.asarray(labels)
    if arr.ndim != 2:
        raise ParameterError("labels must be a 2-D array")
    arr = arr.astype(np.int64)
    if arr.min() < 0:
        raise ParameterError("labels must be non-negative")
    needed = int(arr.max()) + 1
    pal = palette if palette is not None else label_palette(needed)
    if pal.shape[0] < needed:
        raise ParameterError("palette has fewer colours than labels")
    return pal[arr]


def overlay_mask(
    image: np.ndarray, mask: np.ndarray, color=(1.0, 0.1, 0.1), alpha: float = 0.45
) -> np.ndarray:
    """Blend a coloured binary mask over an RGB image."""
    if not 0.0 <= alpha <= 1.0:
        raise ParameterError("alpha must lie in [0, 1]")
    img = np.asarray(image, dtype=np.float64)
    if img.ndim == 2:
        img = np.stack([img, img, img], axis=-1)
    m = np.asarray(mask) != 0
    if m.shape != img.shape[:2]:
        raise ParameterError("mask shape does not match the image")
    rgb = np.asarray(color, dtype=np.float64).reshape(1, 1, 3)
    blended = img * (1.0 - alpha) + rgb * alpha
    return np.where(m[..., None], blended, img)

"""Confusion matrices for label maps, with optional void-pixel exclusion."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import MetricError

__all__ = ["confusion_matrix", "binary_confusion"]


def _validate_pair(
    prediction: np.ndarray, ground_truth: np.ndarray, void_mask: Optional[np.ndarray]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    pred = np.asarray(prediction)
    gt = np.asarray(ground_truth)
    if pred.shape != gt.shape:
        raise MetricError(
            f"prediction shape {pred.shape} does not match ground truth shape {gt.shape}"
        )
    valid = np.ones(pred.shape, dtype=bool)
    if void_mask is not None:
        void = np.asarray(void_mask, dtype=bool)
        if void.shape != pred.shape:
            raise MetricError("void mask shape does not match the prediction")
        valid = ~void
    return pred, gt, valid


def confusion_matrix(
    prediction: np.ndarray,
    ground_truth: np.ndarray,
    num_classes: Optional[int] = None,
    void_mask: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Dense confusion matrix ``C[gt, pred]`` over non-void pixels.

    Parameters
    ----------
    prediction, ground_truth:
        Integer label maps of identical shape.
    num_classes:
        Size of the (square) matrix; inferred from the data when omitted.
    void_mask:
        Boolean mask of pixels excluded from the counts (VOC 'void' band).
    """
    pred, gt, valid = _validate_pair(prediction, ground_truth, void_mask)
    pred = pred[valid].astype(np.int64).reshape(-1)
    gt = gt[valid].astype(np.int64).reshape(-1)
    if pred.size == 0:
        raise MetricError("no valid (non-void) pixels to score")
    if np.any(pred < 0) or np.any(gt < 0):
        raise MetricError("labels must be non-negative")
    if num_classes is None:
        num_classes = int(max(pred.max(), gt.max())) + 1
    if pred.max() >= num_classes or gt.max() >= num_classes:
        raise MetricError("labels exceed num_classes")
    flat = gt * num_classes + pred
    counts = np.bincount(flat, minlength=num_classes * num_classes)
    return counts.reshape(num_classes, num_classes)


def binary_confusion(
    prediction: np.ndarray,
    ground_truth: np.ndarray,
    void_mask: Optional[np.ndarray] = None,
) -> Tuple[int, int, int, int]:
    """Return ``(TP, FP, FN, TN)`` for binary masks (non-zero = positive)."""
    pred, gt, valid = _validate_pair(prediction, ground_truth, void_mask)
    if not valid.any():
        raise MetricError("no valid (non-void) pixels to score")
    pred_pos = (pred != 0) & valid
    gt_pos = (gt != 0) & valid
    tp = int(np.count_nonzero(pred_pos & gt_pos))
    fp = int(np.count_nonzero(pred_pos & ~gt_pos & valid))
    fn = int(np.count_nonzero(~pred_pos & gt_pos & valid))
    tn = int(np.count_nonzero(~pred_pos & ~gt_pos & valid))
    return tp, fp, fn, tn

"""Partition-comparison metrics for multi-segment label maps.

The paper evaluates only binary foreground/background quality (mIOU), which
requires collapsing multi-way segmentations.  These metrics compare the raw
partitions directly — useful for the θ sweeps (how different are the
segmentations produced by two θ values?) and for comparing the IQFT
segmentation against K-means with ``k > 2`` without any binarization:

* :func:`adjusted_rand_index` — chance-corrected pair-counting agreement,
* :func:`normalized_mutual_information` — information-theoretic agreement,
* :func:`variation_of_information` — a metric (in the mathematical sense) on
  partitions; 0 iff the partitions are identical up to relabeling.

All three are invariant to label permutations, which the tests assert.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import MetricError
from .confusion import confusion_matrix

__all__ = [
    "contingency_table",
    "adjusted_rand_index",
    "normalized_mutual_information",
    "variation_of_information",
]


def contingency_table(
    labels_a: np.ndarray,
    labels_b: np.ndarray,
    void_mask: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Joint count table ``C[i, j] = |{pixels: a = i, b = j}|`` over compact labels.

    Labels are compacted (mapped to ``0..K-1``) independently for each input,
    so arbitrary non-negative label values are accepted.
    """
    a = np.asarray(labels_a)
    b = np.asarray(labels_b)
    if a.shape != b.shape:
        raise MetricError(f"label maps differ in shape: {a.shape} vs {b.shape}")
    _, a_compact = np.unique(a, return_inverse=True)
    _, b_compact = np.unique(b, return_inverse=True)
    a_compact = a_compact.reshape(a.shape)
    b_compact = b_compact.reshape(b.shape)
    num_a = int(a_compact.max()) + 1
    num_b = int(b_compact.max()) + 1
    size = max(num_a, num_b)
    table = confusion_matrix(b_compact, a_compact, num_classes=size, void_mask=void_mask)
    return table[:num_a, :num_b]


def _pair_counts(table: np.ndarray) -> Tuple[float, float, float, float]:
    n = table.sum()
    if n < 2:
        raise MetricError("need at least two pixels to compare partitions")
    sum_squares = float((table.astype(np.float64) ** 2).sum())
    row_sq = float((table.sum(axis=1).astype(np.float64) ** 2).sum())
    col_sq = float((table.sum(axis=0).astype(np.float64) ** 2).sum())
    same_both = 0.5 * (sum_squares - n)
    same_a = 0.5 * (row_sq - n)
    same_b = 0.5 * (col_sq - n)
    total_pairs = 0.5 * n * (n - 1)
    return same_both, same_a, same_b, total_pairs


def adjusted_rand_index(
    labels_a: np.ndarray,
    labels_b: np.ndarray,
    void_mask: Optional[np.ndarray] = None,
) -> float:
    """Adjusted Rand index in ``[-1, 1]``; 1 for identical partitions, ~0 for random."""
    table = contingency_table(labels_a, labels_b, void_mask)
    same_both, same_a, same_b, total_pairs = _pair_counts(table)
    expected = same_a * same_b / total_pairs
    maximum = 0.5 * (same_a + same_b)
    if np.isclose(maximum, expected):
        return 1.0  # both partitions are trivial (e.g. single cluster each)
    return float((same_both - expected) / (maximum - expected))


def _entropy(counts: np.ndarray) -> float:
    p = counts.astype(np.float64)
    p = p[p > 0]
    p = p / p.sum()
    return float(-(p * np.log(p)).sum())


def normalized_mutual_information(
    labels_a: np.ndarray,
    labels_b: np.ndarray,
    void_mask: Optional[np.ndarray] = None,
) -> float:
    """NMI with arithmetic-mean normalization; 1 for identical partitions.

    Returns 1.0 when both partitions are single-cluster (they trivially agree)
    and 0.0 when exactly one of them is single-cluster.
    """
    table = contingency_table(labels_a, labels_b, void_mask).astype(np.float64)
    n = table.sum()
    h_a = _entropy(table.sum(axis=1))
    h_b = _entropy(table.sum(axis=0))
    if h_a == 0.0 and h_b == 0.0:
        return 1.0
    if h_a == 0.0 or h_b == 0.0:
        return 0.0
    joint = table / n
    outer = np.outer(table.sum(axis=1) / n, table.sum(axis=0) / n)
    mask = joint > 0
    mutual = float((joint[mask] * np.log(joint[mask] / outer[mask])).sum())
    return float(mutual / (0.5 * (h_a + h_b)))


def variation_of_information(
    labels_a: np.ndarray,
    labels_b: np.ndarray,
    void_mask: Optional[np.ndarray] = None,
) -> float:
    """Variation of information ``H(A|B) + H(B|A)`` in nats (0 iff identical)."""
    table = contingency_table(labels_a, labels_b, void_mask).astype(np.float64)
    n = table.sum()
    h_a = _entropy(table.sum(axis=1))
    h_b = _entropy(table.sum(axis=0))
    joint = table / n
    outer_a = table.sum(axis=1) / n
    outer_b = table.sum(axis=0) / n
    mask = joint > 0
    mutual = float(
        (joint[mask] * np.log(joint[mask] / np.outer(outer_a, outer_b)[mask])).sum()
    )
    value = h_a + h_b - 2.0 * mutual
    return float(max(0.0, value))

"""Intersection-over-union metrics (the paper's equations (18)–(19)).

``mIOU`` is the unweighted mean of the foreground IOU and the background IOU,
computed over non-void pixels.  A class that is absent from both the ground
truth and the prediction contributes an IOU of 1 (nothing to get wrong), which
matches the behaviour of ``tf.keras.metrics.MeanIoU`` when a class is empty in
both — relevant for degenerate all-background images.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .confusion import binary_confusion, confusion_matrix

__all__ = ["iou", "per_class_iou", "mean_iou", "best_binarized_mean_iou"]


def iou(
    prediction: np.ndarray,
    ground_truth: np.ndarray,
    void_mask: Optional[np.ndarray] = None,
) -> float:
    """Foreground IOU of binary masks: ``TP / (TP + FP + FN)`` (equation (19)).

    Returns 1.0 when both masks are empty (nothing to detect, nothing wrong).
    """
    tp, fp, fn, _tn = binary_confusion(prediction, ground_truth, void_mask)
    denom = tp + fp + fn
    if denom == 0:
        return 1.0
    return tp / denom


def per_class_iou(
    prediction: np.ndarray,
    ground_truth: np.ndarray,
    num_classes: Optional[int] = None,
    void_mask: Optional[np.ndarray] = None,
) -> np.ndarray:
    """IOU of every class from the dense confusion matrix.

    Classes absent from both prediction and ground truth get IOU 1.0.
    """
    cm = confusion_matrix(prediction, ground_truth, num_classes=num_classes, void_mask=void_mask)
    tp = np.diag(cm).astype(np.float64)
    fp = cm.sum(axis=0) - tp
    fn = cm.sum(axis=1) - tp
    denom = tp + fp + fn
    out = np.ones_like(tp)
    present = denom > 0
    out[present] = tp[present] / denom[present]
    return out


def mean_iou(
    prediction: np.ndarray,
    ground_truth: np.ndarray,
    void_mask: Optional[np.ndarray] = None,
) -> float:
    """The paper's mIOU (equation (18)): mean of foreground and background IOU.

    Both inputs are binarized (non-zero = foreground); multi-way predictions
    must be collapsed first (see
    :func:`repro.core.labels.binarize_by_overlap`) or scored with
    :func:`best_binarized_mean_iou`.
    """
    pred = (np.asarray(prediction) != 0).astype(np.int64)
    gt = (np.asarray(ground_truth) != 0).astype(np.int64)
    fg = iou(pred, gt, void_mask)
    bg = iou(1 - pred, 1 - gt, void_mask)
    return 0.5 * (fg + bg)


def best_binarized_mean_iou(
    prediction: np.ndarray,
    ground_truth: np.ndarray,
    void_mask: Optional[np.ndarray] = None,
) -> Tuple[float, np.ndarray]:
    """Score a multi-way prediction by its overlap-optimal binarization.

    Each predicted segment is assigned to foreground or background by majority
    overlap with the ground truth and the resulting binary mask is scored with
    :func:`mean_iou`.  Returns ``(miou, binary_mask)``.
    """
    # Local import to avoid a circular dependency at module import time
    # (core.labels imports metrics.iou for the θ-tuning helpers).
    from ..core.labels import binarize_by_overlap

    binary = binarize_by_overlap(prediction, ground_truth, void_mask)
    return mean_iou(binary, ground_truth, void_mask), binary

"""Wall-clock timing helpers used by the experiment harness and benchmarks.

Besides the :class:`Timer` stopwatch this module provides the latency
aggregation used by the serving layer: :func:`percentile` (nearest-rank with
linear interpolation, the convention of ``numpy.percentile``) and
:class:`LatencyRecorder`, a thread-safe bounded reservoir of per-request
durations that summarizes into p50/p90/p99 for service metrics snapshots.

For multi-process serving the recorder additionally maintains a *mergeable*
percentile sketch — a fixed log-spaced histogram over all recorded values —
because raw percentiles from separate workers cannot be combined after the
fact.  :func:`merge_sketches` sums any number of worker sketches and
:func:`sketch_percentile` reads (conservative, bucket-upper-bound) quantiles
off the merged histogram; this is what the fleet supervisor's aggregated
``/v1/metrics`` view is built from.
"""

from __future__ import annotations

import bisect
import threading
import time
from collections import deque
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Timer",
    "time_callable",
    "percentile",
    "LatencyRecorder",
    "SKETCH_BOUNDS",
    "merge_sketches",
    "sketch_percentile",
    "summarize_sketch",
]


class Timer:
    """Context-manager stopwatch accumulating elapsed wall-clock seconds.

    Example
    -------
    >>> timer = Timer()
    >>> with timer:
    ...     _ = sum(range(1000))
    >>> timer.elapsed > 0
    True

    The same instance can be re-entered; ``elapsed`` accumulates and ``laps``
    records each individual measurement, which is how the per-image runtimes
    of Table III are collected.
    """

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self.laps: list = []
        self._start: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        lap = time.perf_counter() - self._start
        self.laps.append(lap)
        self.elapsed += lap

    @property
    def mean_lap(self) -> float:
        """Average duration of the recorded laps (0 when none)."""
        return self.elapsed / len(self.laps) if self.laps else 0.0

    def reset(self) -> None:
        """Clear all recorded measurements."""
        self.elapsed = 0.0
        self.laps = []


def time_callable(func: Callable[..., Any], *args, **kwargs) -> Tuple[Any, float]:
    """Run ``func(*args, **kwargs)`` and return ``(result, seconds)``."""
    start = time.perf_counter()
    result = func(*args, **kwargs)
    return result, time.perf_counter() - start


def percentile(values: Iterable[float], q: float) -> float:
    """The ``q``-th percentile of ``values`` (linear interpolation).

    Matches ``numpy.percentile(values, q)`` but works on plain Python floats
    without materializing an array, which is all the service metrics need.
    Raises :class:`ValueError` on an empty input or ``q`` outside ``[0, 100]``.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    data = sorted(float(v) for v in values)
    if not data:
        raise ValueError("percentile of an empty sequence")
    if len(data) == 1:
        return data[0]
    rank = (q / 100.0) * (len(data) - 1)
    low = int(rank)
    high = min(low + 1, len(data) - 1)
    frac = rank - low
    return data[low] * (1.0 - frac) + data[high] * frac


#: Upper bounds (seconds) of the sketch buckets: 0.1 ms doubling up to ~1.7 h,
#: plus an implicit overflow bucket.  Fixed for every recorder so sketches
#: from different processes are always bucket-compatible and mergeable.
SKETCH_BOUNDS: Tuple[float, ...] = tuple(0.0001 * (2.0**i) for i in range(26))


def merge_sketches(sketches: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
    """Sum latency sketches (from :meth:`LatencyRecorder.sketch`) bucket-wise.

    Sketches with mismatched bucket bounds are rejected — merging them would
    silently misattribute counts.  An empty input merges to an empty sketch.
    """
    bounds: Optional[List[float]] = None
    counts: List[int] = []
    total = 0
    total_seconds = 0.0
    for sketch in sketches:
        if sketch is None:
            continue
        sketch_bounds = [float(b) for b in sketch["bounds"]]
        if bounds is None:
            bounds = sketch_bounds
            counts = [0] * (len(bounds) + 1)
        elif sketch_bounds != bounds:
            raise ValueError("cannot merge latency sketches with different bucket bounds")
        sketch_counts = [int(c) for c in sketch["counts"]]
        if len(sketch_counts) != len(counts):
            raise ValueError("cannot merge latency sketches with different bucket counts")
        for index, value in enumerate(sketch_counts):
            counts[index] += value
        total += int(sketch["count"])
        total_seconds += float(sketch.get("sum_seconds", 0.0))
    if bounds is None:
        bounds = list(SKETCH_BOUNDS)
        counts = [0] * (len(bounds) + 1)
    return {"bounds": bounds, "counts": counts, "count": total, "sum_seconds": total_seconds}


def sketch_percentile(sketch: Optional[Mapping[str, Any]], q: float) -> Optional[float]:
    """The ``q``-th percentile read off a sketch (bucket upper bound).

    The estimate is conservative — it reports the upper edge of the bucket
    the rank falls in, so a merged fleet p99 never understates worker
    latency.  The empty-input contract is explicit: a missing, malformed, or
    zero-count sketch returns ``None`` — never ``NaN``, never an
    ``IndexError`` — because fleet aggregation can scrape a worker before
    its first request completes.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    if not isinstance(sketch, Mapping):
        return None
    counts = [int(c) for c in sketch.get("counts") or ()]
    bounds = [float(b) for b in sketch.get("bounds") or ()]
    total = sum(counts)
    if total == 0 or not bounds:
        return None
    rank = max(1, int((q / 100.0) * total + 0.5))
    seen = 0
    for index, value in enumerate(counts):
        seen += value
        if seen >= rank:
            if index < len(bounds):
                return bounds[index]
            # Overflow bucket: the best upper bound available is unknown, so
            # report the largest finite bound rather than inventing a number.
            return bounds[-1]
    return bounds[-1]


def summarize_sketch(
    sketch: Mapping[str, Any], percentiles: Sequence[float] = (50.0, 90.0, 99.0)
) -> Dict[str, float]:
    """A ``summary()``-shaped dict (count/mean/percentiles) from a sketch.

    ``max`` is not recoverable from a histogram and is reported as the
    conservative upper bound of the highest non-empty bucket.  An empty
    sketch summarizes to ``count: 0`` with every statistic ``None`` (the
    same explicit empty contract as :func:`sketch_percentile`).
    """
    raw = sketch if isinstance(sketch, Mapping) else {}
    counts = [int(c) for c in raw.get("counts") or ()]
    bounds = [float(b) for b in raw.get("bounds") or ()]
    total = sum(counts)
    empty = total == 0 or not bounds
    out: Dict[str, Optional[float]] = {
        "count": float(sketch.get("count", total)) if isinstance(sketch, Mapping) else 0.0,
        "mean": (float(sketch.get("sum_seconds", 0.0)) / total) if not empty else None,
        "max": None,
    }
    for index in range(len(counts) - 1, -1, -1):
        if counts[index] and bounds:
            out["max"] = bounds[min(index, len(bounds) - 1)]
            break
    for q in percentiles:
        key = f"p{q:g}".replace(".", "_")
        out[key] = sketch_percentile(sketch, q) if not empty else None
    return out


class LatencyRecorder:
    """Thread-safe bounded reservoir of durations with percentile summaries.

    The serving layer records one wall-clock latency per completed request;
    :meth:`summary` collapses the reservoir into the usual service-dashboard
    numbers.  The reservoir keeps the most recent ``max_samples`` values
    (sliding window) so a long-running service reports *recent* latency, not
    the all-time mix, while ``count`` still counts every recorded value.

    In parallel the recorder bins every value into the fixed
    :data:`SKETCH_BOUNDS` histogram; :meth:`sketch` exposes that as a
    JSON-friendly, *mergeable* percentile sketch covering all recorded
    values (not just the window), which is what multi-process metric
    aggregation consumes.
    """

    def __init__(self, max_samples: int = 4096):
        if max_samples < 1:
            raise ValueError("max_samples must be >= 1")
        self._samples: deque = deque(maxlen=int(max_samples))
        self._count = 0
        self._sum_seconds = 0.0
        self._buckets = [0] * (len(SKETCH_BOUNDS) + 1)
        self._lock = threading.Lock()

    def record(self, seconds: float) -> None:
        """Record one duration in seconds."""
        value = float(seconds)
        with self._lock:
            self._samples.append(value)
            self._count += 1
            self._sum_seconds += value
            self._buckets[bisect.bisect_left(SKETCH_BOUNDS, value)] += 1

    def sketch(self) -> Dict[str, Any]:
        """All-time mergeable histogram: bucket bounds, counts, count, sum."""
        with self._lock:
            return {
                "bounds": list(SKETCH_BOUNDS),
                "counts": list(self._buckets),
                "count": self._count,
                "sum_seconds": self._sum_seconds,
            }

    @property
    def count(self) -> int:
        """Total number of recorded durations (not capped by the window)."""
        with self._lock:
            return self._count

    def summary(self, percentiles: Sequence[float] = (50.0, 90.0, 99.0)) -> Dict[str, float]:
        """``{"count", "mean", "max", "p50", ...}``.

        ``mean``, ``max`` and the percentiles all describe the *current
        window*, so the numbers are mutually comparable; only ``count`` is
        all-time.  An empty recorder reports ``count: 0`` with every
        statistic ``None`` — the explicit "no data yet" contract shared with
        :func:`sketch_percentile` / :func:`summarize_sketch` — so a scrape
        before the first request can never surface a fake 0.0 latency.
        """
        with self._lock:
            window = list(self._samples)
            count = self._count
        out: Dict[str, Optional[float]] = {
            "count": float(count),
            "mean": sum(window) / len(window) if window else None,
            "max": max(window) if window else None,
        }
        for q in percentiles:
            key = f"p{q:g}".replace(".", "_")
            out[key] = percentile(window, q) if window else None
        return out

"""Wall-clock timing helpers used by the experiment harness and benchmarks."""

from __future__ import annotations

import time
from typing import Any, Callable, Tuple

__all__ = ["Timer", "time_callable"]


class Timer:
    """Context-manager stopwatch accumulating elapsed wall-clock seconds.

    Example
    -------
    >>> timer = Timer()
    >>> with timer:
    ...     _ = sum(range(1000))
    >>> timer.elapsed > 0
    True

    The same instance can be re-entered; ``elapsed`` accumulates and ``laps``
    records each individual measurement, which is how the per-image runtimes
    of Table III are collected.
    """

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self.laps: list = []
        self._start: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        lap = time.perf_counter() - self._start
        self.laps.append(lap)
        self.elapsed += lap

    @property
    def mean_lap(self) -> float:
        """Average duration of the recorded laps (0 when none)."""
        return self.elapsed / len(self.laps) if self.laps else 0.0

    def reset(self) -> None:
        """Clear all recorded measurements."""
        self.elapsed = 0.0
        self.laps = []


def time_callable(func: Callable[..., Any], *args, **kwargs) -> Tuple[Any, float]:
    """Run ``func(*args, **kwargs)`` and return ``(result, seconds)``."""
    start = time.perf_counter()
    result = func(*args, **kwargs)
    return result, time.perf_counter() - start

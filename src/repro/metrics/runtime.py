"""Wall-clock timing helpers used by the experiment harness and benchmarks.

Besides the :class:`Timer` stopwatch this module provides the latency
aggregation used by the serving layer: :func:`percentile` (nearest-rank with
linear interpolation, the convention of ``numpy.percentile``) and
:class:`LatencyRecorder`, a thread-safe bounded reservoir of per-request
durations that summarizes into p50/p90/p99 for service metrics snapshots.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Dict, Iterable, Sequence, Tuple

__all__ = ["Timer", "time_callable", "percentile", "LatencyRecorder"]


class Timer:
    """Context-manager stopwatch accumulating elapsed wall-clock seconds.

    Example
    -------
    >>> timer = Timer()
    >>> with timer:
    ...     _ = sum(range(1000))
    >>> timer.elapsed > 0
    True

    The same instance can be re-entered; ``elapsed`` accumulates and ``laps``
    records each individual measurement, which is how the per-image runtimes
    of Table III are collected.
    """

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self.laps: list = []
        self._start: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        lap = time.perf_counter() - self._start
        self.laps.append(lap)
        self.elapsed += lap

    @property
    def mean_lap(self) -> float:
        """Average duration of the recorded laps (0 when none)."""
        return self.elapsed / len(self.laps) if self.laps else 0.0

    def reset(self) -> None:
        """Clear all recorded measurements."""
        self.elapsed = 0.0
        self.laps = []


def time_callable(func: Callable[..., Any], *args, **kwargs) -> Tuple[Any, float]:
    """Run ``func(*args, **kwargs)`` and return ``(result, seconds)``."""
    start = time.perf_counter()
    result = func(*args, **kwargs)
    return result, time.perf_counter() - start


def percentile(values: Iterable[float], q: float) -> float:
    """The ``q``-th percentile of ``values`` (linear interpolation).

    Matches ``numpy.percentile(values, q)`` but works on plain Python floats
    without materializing an array, which is all the service metrics need.
    Raises :class:`ValueError` on an empty input or ``q`` outside ``[0, 100]``.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    data = sorted(float(v) for v in values)
    if not data:
        raise ValueError("percentile of an empty sequence")
    if len(data) == 1:
        return data[0]
    rank = (q / 100.0) * (len(data) - 1)
    low = int(rank)
    high = min(low + 1, len(data) - 1)
    frac = rank - low
    return data[low] * (1.0 - frac) + data[high] * frac


class LatencyRecorder:
    """Thread-safe bounded reservoir of durations with percentile summaries.

    The serving layer records one wall-clock latency per completed request;
    :meth:`summary` collapses the reservoir into the usual service-dashboard
    numbers.  The reservoir keeps the most recent ``max_samples`` values
    (sliding window) so a long-running service reports *recent* latency, not
    the all-time mix, while ``count`` still counts every recorded value.
    """

    def __init__(self, max_samples: int = 4096):
        if max_samples < 1:
            raise ValueError("max_samples must be >= 1")
        self._samples: deque = deque(maxlen=int(max_samples))
        self._count = 0
        self._lock = threading.Lock()

    def record(self, seconds: float) -> None:
        """Record one duration in seconds."""
        with self._lock:
            self._samples.append(float(seconds))
            self._count += 1

    @property
    def count(self) -> int:
        """Total number of recorded durations (not capped by the window)."""
        with self._lock:
            return self._count

    def summary(self, percentiles: Sequence[float] = (50.0, 90.0, 99.0)) -> Dict[str, float]:
        """``{"count", "mean", "max", "p50", ...}``.

        ``mean``, ``max`` and the percentiles all describe the *current
        window*, so the numbers are mutually comparable; only ``count`` is
        all-time.  Returns zeros when nothing has been recorded yet so metric
        snapshots stay JSON-friendly without ``None`` special cases.
        """
        with self._lock:
            window = list(self._samples)
            count = self._count
        out: Dict[str, float] = {
            "count": float(count),
            "mean": sum(window) / len(window) if window else 0.0,
            "max": max(window) if window else 0.0,
        }
        for q in percentiles:
            key = f"p{q:g}".replace(".", "_")
            out[key] = percentile(window, q) if window else 0.0
        return out

"""Aggregation of per-image scores into method-level summaries and text tables.

The experiment harness produces one :class:`MethodScore` per (method, image)
pair; :class:`ResultTable` groups them, computes the dataset-level averages the
paper reports (average mIOU, average runtime) and the pairwise win rates
("the IQFT-inspired algorithm outperformed K-means in 53.24% of the images"),
and renders everything as a plain-text table.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..errors import MetricError

__all__ = ["MethodScore", "ResultTable", "format_table"]


@dataclasses.dataclass
class MethodScore:
    """Score of a single method on a single image.

    Attributes
    ----------
    method:
        Method name (e.g. ``"iqft-rgb"``).
    sample:
        Sample identifier within the dataset.
    miou:
        Mean intersection-over-union on that sample.
    runtime_seconds:
        Wall-clock segmentation time for that sample.
    extras:
        Optional additional metric values (pixel accuracy, Dice, ...).
    """

    method: str
    sample: str
    miou: float
    runtime_seconds: float
    extras: Dict[str, float] = dataclasses.field(default_factory=dict)


class ResultTable:
    """A collection of :class:`MethodScore` records with aggregation helpers."""

    def __init__(self, scores: Optional[Iterable[MethodScore]] = None):
        self._scores: List[MethodScore] = list(scores) if scores is not None else []

    # ------------------------------------------------------------------ #
    def add(self, score: MethodScore) -> None:
        """Append one record."""
        self._scores.append(score)

    def extend(self, scores: Iterable[MethodScore]) -> None:
        """Append many records."""
        self._scores.extend(scores)

    def __len__(self) -> int:
        return len(self._scores)

    @property
    def scores(self) -> List[MethodScore]:
        """All records (shared list; do not mutate)."""
        return self._scores

    def methods(self) -> List[str]:
        """Distinct method names in insertion order."""
        seen: List[str] = []
        for record in self._scores:
            if record.method not in seen:
                seen.append(record.method)
        return seen

    def _per_method(self, method: str) -> List[MethodScore]:
        records = [r for r in self._scores if r.method == method]
        if not records:
            raise MetricError(f"no scores recorded for method {method!r}")
        return records

    # ------------------------------------------------------------------ #
    def average_miou(self, method: str) -> float:
        """Dataset-average mIOU of a method."""
        return float(np.mean([r.miou for r in self._per_method(method)]))

    def average_runtime(self, method: str) -> float:
        """Dataset-average per-image runtime of a method, in seconds."""
        return float(np.mean([r.runtime_seconds for r in self._per_method(method)]))

    def failure_rate(self, method: str, threshold: float = 0.1) -> float:
        """Fraction of images whose mIOU falls below ``threshold``.

        The paper reports this for mIOU < 0.1 ("poor performance for about
        1.4% of the PASCAL VOC 2012 images").
        """
        records = self._per_method(method)
        return float(np.mean([1.0 if r.miou < threshold else 0.0 for r in records]))

    def win_rate(self, method: str, against: str) -> float:
        """Fraction of common samples where ``method`` strictly beats ``against``.

        This reproduces the paper's "outperformed K-means in 53.24% of the
        images" statistic.  Only samples scored by both methods are counted.
        """
        mine = {r.sample: r.miou for r in self._per_method(method)}
        theirs = {r.sample: r.miou for r in self._per_method(against)}
        common = sorted(set(mine) & set(theirs))
        if not common:
            raise MetricError(
                f"methods {method!r} and {against!r} share no scored samples"
            )
        wins = sum(1 for s in common if mine[s] > theirs[s])
        return wins / len(common)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-method dictionary of ``{"miou": ..., "runtime": ..., "failure_rate": ...}``."""
        return {
            m: {
                "miou": self.average_miou(m),
                "runtime": self.average_runtime(m),
                "failure_rate": self.failure_rate(m),
            }
            for m in self.methods()
        }

    def to_text(self, title: str = "Results") -> str:
        """Render the summary as a fixed-width text table (Table-III style)."""
        methods = self.methods()
        rows = [
            [m, f"{self.average_miou(m):.4f}", f"{self.average_runtime(m):.4f}"]
            for m in methods
        ]
        return format_table(
            title=title,
            header=["Method", "Average mIOU", "Runtime (sec.)"],
            rows=rows,
        )


def format_table(title: str, header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render a list of string rows as an aligned plain-text table."""
    columns = len(header)
    for row in rows:
        if len(row) != columns:
            raise MetricError("all rows must have the same number of columns as the header")
    widths = [
        max(len(str(header[c])), *(len(str(row[c])) for row in rows))
        if rows
        else len(str(header[c]))
        for c in range(columns)
    ]
    lines = [title, ""]
    lines.append("  ".join(str(header[c]).ljust(widths[c]) for c in range(columns)))
    lines.append("  ".join("-" * widths[c] for c in range(columns)))
    for row in rows:
        lines.append("  ".join(str(row[c]).ljust(widths[c]) for c in range(columns)))
    return "\n".join(lines)

"""Boundary-quality metric (boundary F1 with a pixel tolerance).

Not reported in the paper, but a standard companion to region-overlap metrics:
two segmentations with the same mIOU can differ wildly in how well they trace
object contours, and the IQFT method's thresholding nature makes its
boundaries interesting to inspect.  Included as an extension metric used by an
ablation benchmark.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import ndimage

from ..errors import MetricError

__all__ = ["extract_boundary", "boundary_f1"]


def extract_boundary(mask: np.ndarray) -> np.ndarray:
    """Boolean map of boundary pixels of a binary mask (8-connected erosion)."""
    binary = np.asarray(mask) != 0
    if binary.ndim != 2:
        raise MetricError("extract_boundary expects a 2-D mask")
    if not binary.any():
        return np.zeros_like(binary)
    eroded = ndimage.binary_erosion(binary, structure=np.ones((3, 3), dtype=bool))
    return binary & ~eroded


def boundary_f1(
    prediction: np.ndarray,
    ground_truth: np.ndarray,
    tolerance: int = 2,
    void_mask: Optional[np.ndarray] = None,
) -> float:
    """Boundary F1: precision/recall of boundary pixels within a tolerance.

    A predicted boundary pixel counts as correct if a ground-truth boundary
    pixel lies within ``tolerance`` pixels (Chebyshev distance via dilation),
    and vice versa for recall.  Returns 1.0 when neither mask has a boundary.
    """
    if tolerance < 0:
        raise MetricError("tolerance must be non-negative")
    pred_b = extract_boundary(prediction)
    gt_b = extract_boundary(ground_truth)
    if void_mask is not None:
        void = np.asarray(void_mask, dtype=bool)
        pred_b = pred_b & ~void
        gt_b = gt_b & ~void
    if not pred_b.any() and not gt_b.any():
        return 1.0
    if not pred_b.any() or not gt_b.any():
        return 0.0
    structure = np.ones((2 * tolerance + 1, 2 * tolerance + 1), dtype=bool)
    gt_dilated = ndimage.binary_dilation(gt_b, structure=structure)
    pred_dilated = ndimage.binary_dilation(pred_b, structure=structure)
    precision = np.count_nonzero(pred_b & gt_dilated) / np.count_nonzero(pred_b)
    recall = np.count_nonzero(gt_b & pred_dilated) / np.count_nonzero(gt_b)
    if precision + recall == 0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)

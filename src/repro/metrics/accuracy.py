"""Pixel accuracy, precision/recall/F1, Dice and specificity for binary masks."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .confusion import binary_confusion

__all__ = ["pixel_accuracy", "precision_recall_f1", "dice_coefficient", "specificity"]


def pixel_accuracy(
    prediction: np.ndarray,
    ground_truth: np.ndarray,
    void_mask: Optional[np.ndarray] = None,
) -> float:
    """Fraction of non-void pixels whose binary class matches the ground truth."""
    tp, fp, fn, tn = binary_confusion(prediction, ground_truth, void_mask)
    total = tp + fp + fn + tn
    if total == 0:
        return 1.0
    return (tp + tn) / total


def precision_recall_f1(
    prediction: np.ndarray,
    ground_truth: np.ndarray,
    void_mask: Optional[np.ndarray] = None,
) -> Tuple[float, float, float]:
    """Return ``(precision, recall, F1)`` for the foreground class.

    Degenerate cases follow the usual conventions: precision is 1 when nothing
    was predicted positive, recall is 1 when there is nothing to find, and F1
    is the harmonic mean (0 when both precision and recall are 0).
    """
    tp, fp, fn, _tn = binary_confusion(prediction, ground_truth, void_mask)
    precision = tp / (tp + fp) if (tp + fp) > 0 else 1.0
    recall = tp / (tp + fn) if (tp + fn) > 0 else 1.0
    if precision + recall == 0:
        f1 = 0.0
    else:
        f1 = 2.0 * precision * recall / (precision + recall)
    return precision, recall, f1


def dice_coefficient(
    prediction: np.ndarray,
    ground_truth: np.ndarray,
    void_mask: Optional[np.ndarray] = None,
) -> float:
    """Dice similarity coefficient ``2·TP / (2·TP + FP + FN)`` (1.0 when both empty)."""
    tp, fp, fn, _tn = binary_confusion(prediction, ground_truth, void_mask)
    denom = 2 * tp + fp + fn
    if denom == 0:
        return 1.0
    return 2.0 * tp / denom


def specificity(
    prediction: np.ndarray,
    ground_truth: np.ndarray,
    void_mask: Optional[np.ndarray] = None,
) -> float:
    """True-negative rate ``TN / (TN + FP)`` (1.0 when there are no negatives)."""
    _tp, fp, _fn, tn = binary_confusion(prediction, ground_truth, void_mask)
    denom = tn + fp
    if denom == 0:
        return 1.0
    return tn / denom

"""Evaluation metrics: confusion matrices, IOU/mIOU, accuracy scores, timing.

The paper scores segmentations with the mean intersection-over-union of the
foreground and background classes (equations (18)–(19)), excluding pixels
marked 'void' in the ground truth, and reports per-image runtimes.  This
package implements that metric plus the usual companions (pixel accuracy,
precision/recall/F1, Dice, boundary-F1) and small aggregation helpers used by
the experiment harness.
"""

from .confusion import confusion_matrix, binary_confusion
from .iou import iou, mean_iou, per_class_iou, best_binarized_mean_iou
from .accuracy import (
    pixel_accuracy,
    precision_recall_f1,
    dice_coefficient,
    specificity,
)
from .boundary import boundary_f1, extract_boundary
from .clustering import (
    adjusted_rand_index,
    contingency_table,
    normalized_mutual_information,
    variation_of_information,
)
from .runtime import LatencyRecorder, Timer, percentile, time_callable
from .report import MethodScore, ResultTable

__all__ = [
    "confusion_matrix",
    "binary_confusion",
    "iou",
    "mean_iou",
    "per_class_iou",
    "best_binarized_mean_iou",
    "pixel_accuracy",
    "precision_recall_f1",
    "dice_coefficient",
    "specificity",
    "boundary_f1",
    "extract_boundary",
    "adjusted_rand_index",
    "contingency_table",
    "normalized_mutual_information",
    "variation_of_information",
    "Timer",
    "time_callable",
    "percentile",
    "LatencyRecorder",
    "MethodScore",
    "ResultTable",
]

"""Minimal statevector quantum-computing substrate.

This subpackage provides everything needed to express and simulate the quantum
circuits that the paper's algorithm is *inspired by*: a dense statevector
simulator, a small gate library, a circuit container, and QFT/IQFT circuit
builders.  It is used both as a correctness oracle for the classical
IQFT-inspired kernels in :mod:`repro.core` (the classical algorithm must agree
with measuring the genuine circuit) and as a standalone educational component.

The simulator follows the little-endian qubit convention used throughout
Nielsen & Chuang's QFT treatment: basis state ``|x⟩`` for an ``n``-qubit
register stores qubit ``0`` as the **most significant** bit of ``x`` so that
``QFT |x⟩ = (1/√N) Σ_k e^{2πi x k / N} |k⟩`` holds with the matrix returned by
:func:`repro.quantum.qft.qft_matrix`.
"""

from .statevector import Statevector
from .gates import (
    hadamard,
    pauli_x,
    pauli_y,
    pauli_z,
    phase_gate,
    rz_gate,
    identity_gate,
    swap_matrix,
    controlled,
    is_unitary,
)
from .circuit import Gate, QuantumCircuit
from .qft import qft_matrix, iqft_matrix, qft_circuit, iqft_circuit
from .encoding import phase_product_state, encode_pixel_state, encode_gray_state
from .measurement import probabilities, measure, argmax_basis_state, sample_counts
from .noise_models import (
    NoiseModel,
    NoisyCircuitRunner,
    apply_channel,
    depolarizing_kraus,
    phase_damping_kraus,
    amplitude_damping_kraus,
)

__all__ = [
    "Statevector",
    "hadamard",
    "pauli_x",
    "pauli_y",
    "pauli_z",
    "phase_gate",
    "rz_gate",
    "identity_gate",
    "swap_matrix",
    "controlled",
    "is_unitary",
    "Gate",
    "QuantumCircuit",
    "qft_matrix",
    "iqft_matrix",
    "qft_circuit",
    "iqft_circuit",
    "phase_product_state",
    "encode_pixel_state",
    "encode_gray_state",
    "probabilities",
    "measure",
    "argmax_basis_state",
    "sample_counts",
    "NoiseModel",
    "NoisyCircuitRunner",
    "apply_channel",
    "depolarizing_kraus",
    "phase_damping_kraus",
    "amplitude_damping_kraus",
]

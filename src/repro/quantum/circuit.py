"""A light-weight gate-list quantum circuit.

The circuit is a recorded sequence of :class:`Gate` operations that can be
executed on a :class:`~repro.quantum.statevector.Statevector`, composed with
other circuits, inverted (dagger), or exported as a dense unitary matrix.  It
is intentionally small: just enough structure to express QFT/IQFT circuits and
pixel phase-encoding circuits, and to verify the classical IQFT-inspired
algorithm against a genuine simulation.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import GateError, QuantumError
from .gates import controlled, hadamard, pauli_x, phase_gate, swap_matrix
from .statevector import Statevector

__all__ = ["Gate", "QuantumCircuit"]


@dataclasses.dataclass(frozen=True)
class Gate:
    """A single operation in a circuit.

    Attributes
    ----------
    name:
        Human-readable mnemonic (``"h"``, ``"p"``, ``"cp"``, ``"swap"``, ...).
    matrix:
        Dense unitary acting on ``len(qubits)`` qubits.
    qubits:
        Target qubit indices, most significant first.
    params:
        Optional numeric parameters (e.g. the phase angle) kept for
        introspection and for building the inverse circuit.
    """

    name: str
    matrix: np.ndarray
    qubits: Tuple[int, ...]
    params: Tuple[float, ...] = ()

    def dagger(self) -> "Gate":
        """Return the Hermitian adjoint of this gate."""
        return Gate(
            name=f"{self.name}†" if not self.name.endswith("†") else self.name[:-1],
            matrix=self.matrix.conj().T.copy(),
            qubits=self.qubits,
            params=tuple(-p for p in self.params),
        )


class QuantumCircuit:
    """An ordered list of gates on ``num_qubits`` qubits.

    The builder methods (:meth:`h`, :meth:`x`, :meth:`p`, :meth:`cp`,
    :meth:`swap`, :meth:`unitary`) append gates and return ``self`` so calls
    can be chained fluently.
    """

    def __init__(self, num_qubits: int, name: Optional[str] = None):
        if num_qubits < 1:
            raise QuantumError("a circuit needs at least one qubit")
        self._num_qubits = int(num_qubits)
        self._gates: List[Gate] = []
        self.name = name or f"circuit({num_qubits})"

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_qubits(self) -> int:
        """Number of qubits the circuit acts on."""
        return self._num_qubits

    @property
    def gates(self) -> Tuple[Gate, ...]:
        """The recorded gate sequence as an immutable tuple."""
        return tuple(self._gates)

    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def depth(self) -> int:
        """Circuit depth assuming gates on disjoint qubits can run in parallel."""
        frontier = [0] * self._num_qubits
        for gate in self._gates:
            level = max(frontier[q] for q in gate.qubits) + 1
            for q in gate.qubits:
                frontier[q] = level
        return max(frontier) if frontier else 0

    def count_ops(self) -> dict:
        """Return a mapping ``gate name -> number of occurrences``."""
        counts: dict = {}
        for gate in self._gates:
            counts[gate.name] = counts.get(gate.name, 0) + 1
        return counts

    # ------------------------------------------------------------------ #
    # Builder methods
    # ------------------------------------------------------------------ #
    def _check_qubits(self, qubits: Sequence[int]) -> Tuple[int, ...]:
        out = tuple(int(q) for q in qubits)
        for q in out:
            if not 0 <= q < self._num_qubits:
                raise GateError(
                    f"qubit index {q} out of range for {self._num_qubits}-qubit circuit"
                )
        if len(set(out)) != len(out):
            raise GateError("duplicate qubit indices in a single gate")
        return out

    def append(self, gate: Gate) -> "QuantumCircuit":
        """Append an already-constructed :class:`Gate`."""
        self._check_qubits(gate.qubits)
        dim = 2 ** len(gate.qubits)
        if gate.matrix.shape != (dim, dim):
            raise GateError(
                f"gate {gate.name!r} matrix shape {gate.matrix.shape} does not match "
                f"{len(gate.qubits)} qubit(s)"
            )
        self._gates.append(gate)
        return self

    def h(self, qubit: int) -> "QuantumCircuit":
        """Append a Hadamard on ``qubit``."""
        return self.append(Gate("h", hadamard(), self._check_qubits([qubit])))

    def x(self, qubit: int) -> "QuantumCircuit":
        """Append a Pauli-X on ``qubit``."""
        return self.append(Gate("x", pauli_x(), self._check_qubits([qubit])))

    def p(self, phi: float, qubit: int) -> "QuantumCircuit":
        """Append a phase gate ``P(φ)`` on ``qubit``."""
        return self.append(
            Gate("p", phase_gate(phi), self._check_qubits([qubit]), (float(phi),))
        )

    def cp(self, phi: float, control: int, target: int) -> "QuantumCircuit":
        """Append a controlled-phase gate with ``control`` and ``target`` qubits."""
        qubits = self._check_qubits([control, target])
        return self.append(Gate("cp", controlled(phase_gate(phi)), qubits, (float(phi),)))

    def swap(self, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        """Append a SWAP between two qubits."""
        return self.append(Gate("swap", swap_matrix(), self._check_qubits([qubit_a, qubit_b])))

    def unitary(
        self, matrix: np.ndarray, qubits: Iterable[int], name: str = "unitary"
    ) -> "QuantumCircuit":
        """Append an arbitrary unitary on the listed qubits."""
        qubits = self._check_qubits(list(qubits))
        return self.append(Gate(name, np.asarray(matrix, dtype=np.complex128), qubits))

    # ------------------------------------------------------------------ #
    # Composition / transformation
    # ------------------------------------------------------------------ #
    def compose(self, other: "QuantumCircuit") -> "QuantumCircuit":
        """Return a new circuit running ``self`` then ``other``."""
        if other.num_qubits != self._num_qubits:
            raise QuantumError("cannot compose circuits with different qubit counts")
        out = QuantumCircuit(self._num_qubits, name=f"{self.name}∘{other.name}")
        for gate in self._gates:
            out.append(gate)
        for gate in other._gates:
            out.append(gate)
        return out

    def inverse(self) -> "QuantumCircuit":
        """Return the adjoint circuit (gates reversed and daggered)."""
        out = QuantumCircuit(self._num_qubits, name=f"{self.name}†")
        for gate in reversed(self._gates):
            out.append(gate.dagger())
        return out

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self, state: Optional[Statevector] = None) -> Statevector:
        """Execute the circuit and return the final state.

        Parameters
        ----------
        state:
            Initial state.  When omitted, ``|0...0⟩`` is used.  The input state
            is copied; the caller's object is never mutated.
        """
        if state is None:
            out = Statevector(self._num_qubits)
        else:
            if state.num_qubits != self._num_qubits:
                raise QuantumError(
                    "initial state qubit count does not match the circuit"
                )
            out = state.copy()
        for gate in self._gates:
            out.apply_gate(gate.matrix, gate.qubits)
        return out

    def to_matrix(self) -> np.ndarray:
        """Return the dense ``2^n × 2^n`` unitary implemented by the circuit."""
        dim = 2**self._num_qubits
        unitary = np.zeros((dim, dim), dtype=np.complex128)
        for col in range(dim):
            state = Statevector.from_basis_state(self._num_qubits, col)
            unitary[:, col] = self.run(state).amplitudes
        return unitary

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QuantumCircuit(name={self.name!r}, num_qubits={self._num_qubits}, "
            f"gates={len(self._gates)})"
        )

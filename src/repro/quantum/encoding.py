"""Phase encoding of classical pixel data into qubit states.

The paper's core idea is to imprint normalized pixel intensities onto the
*relative phases* of a product state:

``|ψ(α, β, γ)⟩ = (1/√8) (|0⟩ + e^{iα}|1⟩) ⊗ (|0⟩ + e^{iβ}|1⟩) ⊗ (|0⟩ + e^{iγ}|1⟩)``

where for an RGB pixel ``γ = R·θ1``, ``β = G·θ2``, ``α = B·θ3`` (equation (11)
and Algorithm 1).  This module builds that state both directly as an amplitude
vector and as a circuit of Hadamard + phase gates, so that the classical
kernels in :mod:`repro.core` can be checked against a genuine simulation.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import QuantumError
from .circuit import QuantumCircuit
from .statevector import Statevector

__all__ = [
    "phase_product_state",
    "phase_encoding_circuit",
    "encode_pixel_state",
    "encode_gray_state",
]


def phase_product_state(phases: Sequence[float]) -> Statevector:
    """Return the normalized product state with the given relative phases.

    ``phases[0]`` is the phase of the first (most significant) qubit.  For an
    ``n``-qubit register the amplitude of basis state ``|b_0 b_1 ... b_{n-1}⟩``
    is ``exp(i Σ_j b_j φ_j) / √(2^n)`` — exactly the column vector on the
    right-hand side of the paper's equation (11) after normalization.
    """
    phases = np.asarray(phases, dtype=np.float64).reshape(-1)
    if phases.size < 1:
        raise QuantumError("need at least one phase")
    amps = np.array([1.0 + 0j], dtype=np.complex128)
    for phi in phases:
        qubit = np.array([1.0, np.exp(1j * phi)], dtype=np.complex128)
        amps = np.kron(amps, qubit)
    amps /= np.sqrt(2.0 ** phases.size)
    return Statevector(amps)


def phase_encoding_circuit(phases: Sequence[float]) -> QuantumCircuit:
    """Return the circuit ``⊗_j P(φ_j) H`` preparing :func:`phase_product_state`.

    Applied to ``|0...0⟩`` the circuit produces the same state as
    :func:`phase_product_state` (exactly, including normalization).
    """
    phases = np.asarray(phases, dtype=np.float64).reshape(-1)
    if phases.size < 1:
        raise QuantumError("need at least one phase")
    qc = QuantumCircuit(int(phases.size), name="phase-encode")
    for qubit, phi in enumerate(phases):
        qc.h(qubit)
        qc.p(float(phi), qubit)
    return qc


def encode_pixel_state(
    rgb: Sequence[float], thetas: Sequence[float] = (np.pi, np.pi, np.pi)
) -> Statevector:
    """Encode a normalized RGB pixel into the paper's 3-qubit phase state.

    Parameters
    ----------
    rgb:
        ``(R, G, B)`` with each channel already normalized to ``[0, 1]``.
    thetas:
        ``(θ1, θ2, θ3)`` angle parameters.  Following Algorithm 1, the phases
        are ``γ = R·θ1`` (least significant qubit), ``β = G·θ2``,
        ``α = B·θ3`` (most significant qubit).
    """
    rgb = np.asarray(rgb, dtype=np.float64).reshape(-1)
    thetas = np.asarray(thetas, dtype=np.float64).reshape(-1)
    if rgb.size != 3 or thetas.size != 3:
        raise QuantumError("encode_pixel_state expects 3 channel values and 3 thetas")
    gamma = rgb[0] * thetas[0]
    beta = rgb[1] * thetas[1]
    alpha = rgb[2] * thetas[2]
    return phase_product_state([alpha, beta, gamma])


def encode_gray_state(intensity: float, theta: float = np.pi) -> Statevector:
    """Encode a normalized grayscale intensity into the 1-qubit phase state.

    Returns ``(|0⟩ + e^{i I θ} |1⟩)/√2`` as in Section IV-C of the paper.
    """
    return phase_product_state([float(intensity) * float(theta)])

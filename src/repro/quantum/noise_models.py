"""Simple qubit noise channels for studying a hardware execution of the method.

The paper runs its algorithm classically and defers "the quantum domain
implementation" to future work.  To study what that implementation would face,
this module provides the three textbook single-qubit channels — depolarizing,
phase damping (dephasing) and amplitude damping — in *Monte-Carlo trajectory*
form: instead of evolving a density matrix, each application randomly selects a
Kraus operator per qubit (with the Born-rule probabilities for the current
state) and applies it to the statevector.  Averaged over trajectories this
reproduces the channel exactly, and it composes directly with the existing
:class:`~repro.quantum.statevector.Statevector` machinery.

:class:`NoiseModel` bundles per-gate error probabilities;
:func:`apply_channel` applies one channel to one qubit;
:class:`NoisyCircuitRunner` executes a circuit while injecting noise after
every gate — which is what the shot-based segmenter uses to emulate noisy
hardware.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

import numpy as np

from ..config import SeedLike, as_generator
from ..errors import ParameterError, QuantumError
from .circuit import QuantumCircuit
from .statevector import Statevector

__all__ = [
    "depolarizing_kraus",
    "phase_damping_kraus",
    "amplitude_damping_kraus",
    "apply_channel",
    "NoiseModel",
    "NoisyCircuitRunner",
]

_PAULIS = {
    "I": np.eye(2, dtype=np.complex128),
    "X": np.array([[0, 1], [1, 0]], dtype=np.complex128),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=np.complex128),
    "Z": np.array([[1, 0], [0, -1]], dtype=np.complex128),
}


def _check_probability(p: float, name: str) -> float:
    value = float(p)
    if not 0.0 <= value <= 1.0:
        raise ParameterError(f"{name} must lie in [0, 1], got {value}")
    return value


def depolarizing_kraus(probability: float) -> list:
    """Kraus operators of the single-qubit depolarizing channel.

    With probability ``p`` the qubit is replaced by the maximally mixed state,
    implemented as X, Y or Z each applied with probability ``p/3``.
    """
    p = _check_probability(probability, "depolarizing probability")
    return [
        np.sqrt(1.0 - p) * _PAULIS["I"],
        np.sqrt(p / 3.0) * _PAULIS["X"],
        np.sqrt(p / 3.0) * _PAULIS["Y"],
        np.sqrt(p / 3.0) * _PAULIS["Z"],
    ]


def phase_damping_kraus(probability: float) -> list:
    """Kraus operators of the phase-damping (pure dephasing) channel.

    Dephasing is the most relevant error for this algorithm because the pixel
    information lives entirely in relative phases.
    """
    p = _check_probability(probability, "phase damping probability")
    k0 = np.array([[1.0, 0.0], [0.0, np.sqrt(1.0 - p)]], dtype=np.complex128)
    k1 = np.array([[0.0, 0.0], [0.0, np.sqrt(p)]], dtype=np.complex128)
    return [k0, k1]


def amplitude_damping_kraus(probability: float) -> list:
    """Kraus operators of the amplitude-damping (T1 relaxation) channel."""
    p = _check_probability(probability, "amplitude damping probability")
    k0 = np.array([[1.0, 0.0], [0.0, np.sqrt(1.0 - p)]], dtype=np.complex128)
    k1 = np.array([[0.0, np.sqrt(p)], [0.0, 0.0]], dtype=np.complex128)
    return [k0, k1]


def apply_channel(
    state: Statevector,
    kraus_operators: Sequence[np.ndarray],
    qubit: int,
    rng: np.random.Generator,
) -> Statevector:
    """Apply one noise channel to ``qubit`` via Monte-Carlo Kraus selection.

    The Kraus operator ``K_i`` is chosen with probability ``⟨ψ|K_i†K_i|ψ⟩`` and
    the state is renormalized afterwards, so a single trajectory remains a pure
    state while the trajectory average reproduces the channel.
    The state is modified in place and returned.
    """
    if not kraus_operators:
        raise QuantumError("a channel needs at least one Kraus operator")
    probabilities = []
    candidates = []
    for kraus in kraus_operators:
        trial = state.copy().apply_gate(kraus, qubit)
        weight = float(np.sum(np.abs(trial.amplitudes) ** 2))
        probabilities.append(weight)
        candidates.append(trial)
    total = float(sum(probabilities))
    if total <= 0:
        raise QuantumError("channel annihilated the state")
    probabilities = [p / total for p in probabilities]
    choice = int(rng.choice(len(candidates), p=probabilities))
    chosen = candidates[choice]
    norm = chosen.norm()
    selected = Statevector(chosen.amplitudes / norm)
    # Copy back into the caller's object so the in-place contract holds.
    state._amplitudes = selected._amplitudes  # noqa: SLF001 - intentional internal update
    return state


@dataclasses.dataclass
class NoiseModel:
    """Per-gate error probabilities injected after every circuit operation.

    Attributes
    ----------
    depolarizing:
        Probability of a depolarizing error on each qubit touched by a gate.
    phase_damping:
        Probability of a dephasing event on each touched qubit.
    amplitude_damping:
        Probability of a relaxation event on each touched qubit.
    readout_error:
        Probability that a measured bit is flipped at readout time (used by
        the shot-based segmenter, not by the circuit runner itself).
    """

    depolarizing: float = 0.0
    phase_damping: float = 0.0
    amplitude_damping: float = 0.0
    readout_error: float = 0.0

    def __post_init__(self) -> None:
        for name in ("depolarizing", "phase_damping", "amplitude_damping", "readout_error"):
            _check_probability(getattr(self, name), name)

    @property
    def is_noiseless(self) -> bool:
        """True when every error probability is zero."""
        return (
            self.depolarizing == 0.0
            and self.phase_damping == 0.0
            and self.amplitude_damping == 0.0
            and self.readout_error == 0.0
        )

    def channels(self) -> list:
        """The list of (name, kraus-factory, probability) for non-zero channels."""
        table = []
        if self.depolarizing > 0:
            table.append(("depolarizing", depolarizing_kraus(self.depolarizing)))
        if self.phase_damping > 0:
            table.append(("phase-damping", phase_damping_kraus(self.phase_damping)))
        if self.amplitude_damping > 0:
            table.append(("amplitude-damping", amplitude_damping_kraus(self.amplitude_damping)))
        return table


class NoisyCircuitRunner:
    """Execute circuits on the statevector simulator with per-gate noise.

    Each call to :meth:`run` simulates **one trajectory**; expectation values
    are estimated by averaging trajectories or by sampling shots from each
    trajectory (see :meth:`sample`).
    """

    def __init__(self, noise_model: Optional[NoiseModel] = None, seed: SeedLike = None):
        self.noise_model = noise_model or NoiseModel()
        self._rng = as_generator(seed)

    def run(self, circuit: QuantumCircuit, state: Optional[Statevector] = None) -> Statevector:
        """Run one noisy trajectory of ``circuit`` and return the final state."""
        current = state.copy() if state is not None else Statevector(circuit.num_qubits)
        if state is not None and state.num_qubits != circuit.num_qubits:
            raise QuantumError("initial state does not match the circuit width")
        channels = self.noise_model.channels()
        for gate in circuit.gates:
            current.apply_gate(gate.matrix, gate.qubits)
            for _, kraus in channels:
                for qubit in gate.qubits:
                    apply_channel(current, kraus, qubit, self._rng)
        return current

    def sample(
        self,
        circuit: QuantumCircuit,
        state: Optional[Statevector] = None,
        shots: int = 1024,
        trajectories: int = 8,
    ) -> np.ndarray:
        """Sample measurement outcomes across several noisy trajectories.

        Returns an integer array of length ``shots``; shots are distributed as
        evenly as possible over ``trajectories`` independent noisy runs, and
        readout errors (independent bit flips) are applied when the noise
        model requests them.
        """
        if shots < 1:
            raise ParameterError("shots must be >= 1")
        if trajectories < 1:
            raise ParameterError("trajectories must be >= 1")
        trajectories = min(trajectories, shots)
        per_trajectory = [shots // trajectories] * trajectories
        for i in range(shots - sum(per_trajectory)):
            per_trajectory[i] += 1

        outcomes = []
        num_qubits = circuit.num_qubits
        for count in per_trajectory:
            final = self.run(circuit, state)
            probs = final.probabilities()
            probs = probs / probs.sum()
            draws = self._rng.choice(probs.size, size=count, p=probs)
            if self.noise_model.readout_error > 0:
                flips = self._rng.random((count, num_qubits)) < self.noise_model.readout_error
                flip_values = (flips * (2 ** np.arange(num_qubits - 1, -1, -1))).sum(axis=1)
                draws = draws ^ flip_values.astype(draws.dtype)
            outcomes.append(draws)
        return np.concatenate(outcomes)

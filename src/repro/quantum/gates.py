"""Dense single- and two-qubit gate matrices.

All gates are returned as small, freshly-allocated ``complex128`` ndarrays so
callers may mutate them freely.  Convenience predicates for unitarity and a
generic ``controlled()`` constructor are included because the QFT/IQFT circuits
are built from controlled-phase gates.
"""

from __future__ import annotations

import numpy as np

from ..errors import GateError

__all__ = [
    "identity_gate",
    "hadamard",
    "pauli_x",
    "pauli_y",
    "pauli_z",
    "phase_gate",
    "rz_gate",
    "swap_matrix",
    "controlled",
    "is_unitary",
]

_SQRT2_INV = 1.0 / np.sqrt(2.0)


def identity_gate(dim: int = 2) -> np.ndarray:
    """Return the ``dim``-dimensional identity as a complex matrix."""
    if dim < 1:
        raise GateError("identity dimension must be >= 1")
    return np.eye(dim, dtype=np.complex128)


def hadamard() -> np.ndarray:
    """Single-qubit Hadamard gate ``H``."""
    return np.array([[_SQRT2_INV, _SQRT2_INV], [_SQRT2_INV, -_SQRT2_INV]], dtype=np.complex128)


def pauli_x() -> np.ndarray:
    """Single-qubit Pauli-X (NOT) gate."""
    return np.array([[0, 1], [1, 0]], dtype=np.complex128)


def pauli_y() -> np.ndarray:
    """Single-qubit Pauli-Y gate."""
    return np.array([[0, -1j], [1j, 0]], dtype=np.complex128)


def pauli_z() -> np.ndarray:
    """Single-qubit Pauli-Z gate."""
    return np.array([[1, 0], [0, -1]], dtype=np.complex128)


def phase_gate(phi: float) -> np.ndarray:
    """Single-qubit phase gate ``P(φ) = diag(1, e^{iφ})``.

    This is the gate used to imprint a pixel intensity onto the relative phase
    of a qubit: ``P(φ) H |0⟩ = (|0⟩ + e^{iφ}|1⟩)/√2``.
    """
    return np.array([[1.0, 0.0], [0.0, np.exp(1j * float(phi))]], dtype=np.complex128)


def rz_gate(theta: float) -> np.ndarray:
    """Single-qubit Z-rotation ``RZ(θ) = diag(e^{-iθ/2}, e^{iθ/2})``.

    Differs from :func:`phase_gate` only by a global phase of ``e^{-iθ/2}``.
    """
    half = 0.5 * float(theta)
    return np.array(
        [[np.exp(-1j * half), 0.0], [0.0, np.exp(1j * half)]], dtype=np.complex128
    )


def swap_matrix() -> np.ndarray:
    """Two-qubit SWAP gate (4×4)."""
    m = np.zeros((4, 4), dtype=np.complex128)
    m[0, 0] = m[3, 3] = 1.0
    m[1, 2] = m[2, 1] = 1.0
    return m


def controlled(unitary: np.ndarray) -> np.ndarray:
    """Return the controlled version of a single-qubit ``unitary``.

    The control qubit is the first (most significant) qubit of the returned
    4×4 matrix: the target unitary is applied only on the ``|1x⟩`` block.
    """
    u = np.asarray(unitary, dtype=np.complex128)
    if u.shape != (2, 2):
        raise GateError(f"controlled() expects a 2x2 matrix, got shape {u.shape}")
    out = np.eye(4, dtype=np.complex128)
    out[2:, 2:] = u
    return out


def is_unitary(matrix: np.ndarray, atol: float = 1e-10) -> bool:
    """Return True when ``matrix`` is (numerically) unitary."""
    m = np.asarray(matrix, dtype=np.complex128)
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        return False
    eye = np.eye(m.shape[0], dtype=np.complex128)
    return bool(
        np.allclose(m @ m.conj().T, eye, atol=atol)
        and np.allclose(m.conj().T @ m, eye, atol=atol)
    )

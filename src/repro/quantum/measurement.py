"""Measurement utilities for statevectors.

Provides exact probability readout, argmax-basis-state classification (the
quantum analogue of line 5 of Algorithm 1), sampling of measurement shots and
conversion to counts, mirroring the small subset of functionality the paper's
method needs from a quantum runtime.
"""

from __future__ import annotations

from typing import Dict, Union

import numpy as np

from ..config import SeedLike, as_generator
from ..errors import QuantumError
from .statevector import Statevector

__all__ = ["probabilities", "argmax_basis_state", "measure", "sample_counts", "basis_label"]

StateLike = Union[Statevector, np.ndarray]


def _as_probabilities(state: StateLike) -> np.ndarray:
    if isinstance(state, Statevector):
        probs = state.probabilities()
    else:
        amps = np.asarray(state, dtype=np.complex128).reshape(-1)
        probs = np.abs(amps) ** 2
    total = probs.sum()
    if total <= 0:
        raise QuantumError("state has zero norm; cannot compute probabilities")
    return probs / total


def probabilities(state: StateLike) -> np.ndarray:
    """Return normalized measurement probabilities in the computational basis."""
    return _as_probabilities(state)


def argmax_basis_state(state: StateLike) -> int:
    """Index of the most probable computational basis state.

    Ties are broken toward the smaller index, which matches ``numpy.argmax``
    and the behaviour of line 5 of Algorithm 1 in the classical implementation.
    """
    return int(np.argmax(_as_probabilities(state)))


def measure(state: StateLike, shots: int = 1, seed: SeedLike = None) -> np.ndarray:
    """Sample ``shots`` measurement outcomes (basis-state indices)."""
    if shots < 1:
        raise QuantumError("shots must be >= 1")
    probs = _as_probabilities(state)
    rng = as_generator(seed)
    return rng.choice(probs.size, size=int(shots), p=probs)


def sample_counts(state: StateLike, shots: int = 1024, seed: SeedLike = None) -> Dict[str, int]:
    """Sample shots and return a ``bitstring -> count`` histogram."""
    outcomes = measure(state, shots=shots, seed=seed)
    num_states = _as_probabilities(state).size
    width = max(1, int(np.log2(num_states)))
    counts: Dict[str, int] = {}
    for outcome in outcomes:
        label = format(int(outcome), f"0{width}b")
        counts[label] = counts.get(label, 0) + 1
    return counts


def basis_label(index: int, num_qubits: int) -> str:
    """Return the bitstring label of basis state ``index`` (qubit 0 leftmost)."""
    if not 0 <= index < 2**num_qubits:
        raise QuantumError(f"basis index {index} out of range for {num_qubits} qubit(s)")
    return format(int(index), f"0{num_qubits}b")

"""Quantum Fourier transform and its inverse: dense matrices and circuits.

Conventions follow equations (1)–(5) of the paper (and Nielsen & Chuang):

* ``QFT |x⟩ = (1/√N) Σ_k ω^{x k} |k⟩`` with ``ω = exp(2πi/N)`` and ``N = 2^n``.
* The IQFT is the Hermitian adjoint, with matrix entries ``ω^{-xk}/√N``.
* The tensor-product form ``QFT|x⟩ = (1/√N) ⊗_{k=1..n} (|0⟩ + e^{2πi x / 2^k}|1⟩)``
  identifies qubit 0 (the first tensor factor) with the *most significant*
  output bit; the circuit builders below therefore include the conventional
  final qubit-reversal SWAP network.

The paper's 8×8 matrix in equation (11) carries a ``1/8`` prefactor (``1/N``
rather than ``1/√N``) because the phase-state column vector it multiplies is
written unnormalized; :mod:`repro.core.iqft_matrix` reproduces exactly that
scaling for the classical algorithm, while this module keeps the standard
unitary ``1/√N`` scaling.
"""

from __future__ import annotations

import numpy as np

from ..errors import QuantumError
from .circuit import QuantumCircuit

__all__ = ["qft_matrix", "iqft_matrix", "qft_circuit", "iqft_circuit", "omega"]


def omega(num_states: int) -> complex:
    """Primitive ``num_states``-th root of unity ``exp(2πi / num_states)``."""
    if num_states < 1:
        raise QuantumError("number of states must be positive")
    return np.exp(2j * np.pi / num_states)


def qft_matrix(num_qubits: int) -> np.ndarray:
    """Dense unitary QFT matrix on ``num_qubits`` qubits.

    Entry ``(k, x)`` equals ``ω^{kx} / √N`` so that column ``x`` is
    ``QFT |x⟩``.
    """
    if num_qubits < 1:
        raise QuantumError("QFT needs at least one qubit")
    dim = 2**num_qubits
    indices = np.arange(dim)
    exponent = np.outer(indices, indices) % dim
    return np.power(omega(dim), exponent) / np.sqrt(dim)


def iqft_matrix(num_qubits: int) -> np.ndarray:
    """Dense unitary inverse-QFT matrix (conjugate transpose of the QFT)."""
    return qft_matrix(num_qubits).conj().T


def qft_circuit(num_qubits: int, do_swaps: bool = True) -> QuantumCircuit:
    """Build the textbook QFT circuit.

    The circuit applies, for each qubit ``j`` (0 = most significant), a
    Hadamard followed by controlled-phase gates ``CP(π/2^{k-j})`` controlled by
    the less-significant qubits, and finally reverses the qubit order with
    SWAPs (unless ``do_swaps`` is False, in which case the output is the QFT
    with bit-reversed output ordering).
    """
    if num_qubits < 1:
        raise QuantumError("QFT needs at least one qubit")
    qc = QuantumCircuit(num_qubits, name=f"qft({num_qubits})")
    for j in range(num_qubits):
        qc.h(j)
        for k in range(j + 1, num_qubits):
            angle = np.pi / (2 ** (k - j))
            qc.cp(angle, control=k, target=j)
    if do_swaps:
        for j in range(num_qubits // 2):
            qc.swap(j, num_qubits - 1 - j)
    return qc


def iqft_circuit(num_qubits: int, do_swaps: bool = True) -> QuantumCircuit:
    """Build the inverse-QFT circuit (adjoint of :func:`qft_circuit`)."""
    circuit = qft_circuit(num_qubits, do_swaps=do_swaps).inverse()
    circuit.name = f"iqft({num_qubits})"
    return circuit

"""Dense statevector representation of an ``n``-qubit register.

The state is stored as a contiguous ``complex128`` vector of length ``2**n``.
Qubit ``0`` is the most significant bit of the basis-state index (big-endian
within the index), matching the convention used in the paper's equations (2)
and (11) where the first factor of the tensor product carries the phase
``e^{i 2πx/2}``.

Gate application reshapes the amplitude vector into a tensor of ``n`` axes and
contracts the gate against the targeted axes — the standard dense-simulator
technique, which is O(2^n) memory and O(2^n) work per single-qubit gate and
never materializes the full ``2^n × 2^n`` operator.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

import numpy as np

from ..errors import GateError, QuantumError

__all__ = ["Statevector"]


class Statevector:
    """Amplitude vector of an ``n``-qubit pure state.

    Parameters
    ----------
    data:
        Either an integer number of qubits (the state is initialized to
        ``|0...0⟩``) or an amplitude vector whose length is a power of two.
    normalize:
        When a raw amplitude vector is supplied, rescale it to unit norm.
    """

    __slots__ = ("_amplitudes", "_num_qubits")

    def __init__(self, data: Union[int, Sequence[complex], np.ndarray], normalize: bool = False):
        if isinstance(data, (int, np.integer)):
            n = int(data)
            if n < 1:
                raise QuantumError("a register needs at least one qubit")
            amps = np.zeros(2**n, dtype=np.complex128)
            amps[0] = 1.0
        else:
            amps = np.asarray(data, dtype=np.complex128).reshape(-1).copy()
            n = int(np.log2(amps.size))
            if 2**n != amps.size:
                raise QuantumError(
                    f"amplitude vector length must be a power of two, got {amps.size}"
                )
            if normalize:
                norm = np.linalg.norm(amps)
                if norm == 0:
                    raise QuantumError("cannot normalize the zero vector")
                amps = amps / norm
        self._amplitudes = amps
        self._num_qubits = n

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_basis_state(cls, num_qubits: int, index: int) -> "Statevector":
        """Return the computational basis state ``|index⟩`` on ``num_qubits``."""
        if not 0 <= index < 2**num_qubits:
            raise QuantumError(
                f"basis index {index} out of range for {num_qubits} qubit(s)"
            )
        amps = np.zeros(2**num_qubits, dtype=np.complex128)
        amps[index] = 1.0
        return cls(amps)

    @classmethod
    def from_label(cls, label: str) -> "Statevector":
        """Return a basis state from a bitstring label such as ``"100"``.

        The leftmost character is qubit 0 (most significant), so
        ``from_label("100")`` is ``|4⟩`` on three qubits, matching the
        worked example of equation (4) in the paper.
        """
        stripped = label.strip().replace("|", "").replace("⟩", "").replace(">", "")
        if not stripped or any(c not in "01" for c in stripped):
            raise QuantumError(f"invalid basis-state label: {label!r}")
        return cls.from_basis_state(len(stripped), int(stripped, 2))

    @classmethod
    def uniform_superposition(cls, num_qubits: int) -> "Statevector":
        """Return ``H^{⊗n} |0...0⟩``, the equal superposition of all states."""
        dim = 2**num_qubits
        return cls(np.full(dim, 1.0 / np.sqrt(dim), dtype=np.complex128))

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def num_qubits(self) -> int:
        """Number of qubits in the register."""
        return self._num_qubits

    @property
    def dim(self) -> int:
        """Dimension of the Hilbert space (``2**num_qubits``)."""
        return self._amplitudes.size

    @property
    def amplitudes(self) -> np.ndarray:
        """Read-only view of the amplitude vector."""
        view = self._amplitudes.view()
        view.flags.writeable = False
        return view

    def copy(self) -> "Statevector":
        """Deep copy of this state."""
        return Statevector(self._amplitudes.copy())

    def norm(self) -> float:
        """Euclidean norm of the amplitude vector (1.0 for a valid state)."""
        return float(np.linalg.norm(self._amplitudes))

    def is_normalized(self, atol: float = 1e-9) -> bool:
        """True when the state has unit norm up to ``atol``."""
        return abs(self.norm() - 1.0) <= atol

    def probabilities(self) -> np.ndarray:
        """Measurement probabilities ``|amplitude|²`` in the computational basis."""
        return np.abs(self._amplitudes) ** 2

    def fidelity(self, other: "Statevector") -> float:
        """Squared overlap ``|⟨self|other⟩|²`` with another state."""
        if other.dim != self.dim:
            raise QuantumError("fidelity requires states of equal dimension")
        return float(abs(np.vdot(self._amplitudes, other._amplitudes)) ** 2)

    def global_phase_aligned(self, other: "Statevector") -> bool:
        """True when the two states are equal up to a global phase."""
        return bool(np.isclose(self.fidelity(other), 1.0, atol=1e-9))

    # ------------------------------------------------------------------ #
    # Evolution
    # ------------------------------------------------------------------ #
    def apply_gate(self, gate: np.ndarray, qubits: Union[int, Iterable[int]]) -> "Statevector":
        """Apply a ``2^k × 2^k`` gate to the listed ``k`` qubits (in place).

        Parameters
        ----------
        gate:
            Unitary matrix acting on ``k`` qubits.
        qubits:
            The target qubit indices, most-significant first, matching the
            tensor-factor order of ``gate``.

        Returns
        -------
        Statevector
            ``self`` (to allow chaining).
        """
        targets = [qubits] if isinstance(qubits, (int, np.integer)) else list(qubits)
        targets = [int(q) for q in targets]
        k = len(targets)
        gate = np.asarray(gate, dtype=np.complex128)
        if gate.shape != (2**k, 2**k):
            raise GateError(
                f"gate shape {gate.shape} does not match {k} target qubit(s)"
            )
        n = self._num_qubits
        for q in targets:
            if not 0 <= q < n:
                raise GateError(f"qubit index {q} out of range for {n}-qubit register")
        if len(set(targets)) != k:
            raise GateError("duplicate target qubit indices")

        tensor = self._amplitudes.reshape((2,) * n)
        # Move target axes to the front, most significant target first.
        tensor = np.moveaxis(tensor, targets, range(k))
        front = tensor.reshape(2**k, -1)
        front = gate @ front
        tensor = front.reshape((2,) * n)
        tensor = np.moveaxis(tensor, range(k), targets)
        self._amplitudes = np.ascontiguousarray(tensor.reshape(-1))
        return self

    def apply_unitary(self, unitary: np.ndarray) -> "Statevector":
        """Apply a full-register unitary (``2^n × 2^n``) in place."""
        u = np.asarray(unitary, dtype=np.complex128)
        if u.shape != (self.dim, self.dim):
            raise GateError(
                f"unitary shape {u.shape} does not match register dimension {self.dim}"
            )
        self._amplitudes = u @ self._amplitudes
        return self

    # ------------------------------------------------------------------ #
    # Dunder helpers
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self.dim

    def __getitem__(self, index: int) -> complex:
        return complex(self._amplitudes[index])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Statevector):
            return NotImplemented
        return self.dim == other.dim and bool(
            np.allclose(self._amplitudes, other._amplitudes, atol=1e-12)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Statevector(num_qubits={self._num_qubits}, dim={self.dim})"

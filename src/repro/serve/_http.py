"""Asyncio-native HTTP/1.1 front end over :class:`AsyncSegmentationService`.

This is the network ingress tier the ROADMAP's serving north star ends at:
external clients hit the segmenter over the wire instead of through the
in-process API or the JSONL spool.  The server is **stdlib only** — a small
HTTP/1.1 implementation on ``asyncio.start_server`` — because the repo's
dependency budget is numpy + stdlib, and the protocol surface it needs
(three endpoints, bounded bodies, keep-alive, graceful drain) is tiny.

Endpoints
---------
``POST /v1/segment``
    The request body carries the image, in any of three forms:

    * raw image bytes (``Content-Type: application/octet-stream`` or
      ``image/*``) in any self-identifying container the imaging layer
      decodes (PNG, PPM/PGM/PNM, BMP);
    * a raw ``.npy`` array (``Content-Type: application/x-npy``) for exact
      dtype/shape round-trips;
    * a JSON envelope (``Content-Type: application/json``) with a base64
      ``image`` field plus optional ``priority`` / ``deadline_ms`` /
      ``client_id`` fields.

    For non-JSON bodies the same knobs travel as headers
    (``X-Repro-Priority``, ``X-Repro-Deadline-Ms``, ``X-Repro-Client``).
    The response is JSON (labels + scores) by default, or the labels as an
    ``.npy`` body when the client sends ``Accept: application/x-npy`` (the
    scalar metadata then rides in ``X-Repro-*`` response headers).

``GET /v1/metrics``
    The full ``service.metrics()`` snapshot (per-lane depth/shed counters,
    L1/L2 cache hit rates, latency percentiles) plus an ``http`` sub-dict
    with the server's own request/response counters.  With
    ``?format=prometheus`` the same snapshot renders as Prometheus text
    exposition (``text/plain; version=0.0.4``) via :mod:`repro.obs.prom`.

``GET /v1/trace/{id}`` and ``GET /v1/traces?slowest=N``
    The flight recorder.  Every request is traced (subject to the service
    tracer's sample rate): the server mints a trace id — or adopts the one a
    client sends in ``X-Repro-Trace-Id`` — records ingress/submit/encode
    spans around the service's own queue/cache/compute spans, and echoes the
    id back in the ``X-Repro-Trace-Id`` response header.  The trace route
    returns the completed span tree by id (404 once evicted from the ring);
    the traces route lists the N slowest retained traces.

``GET /healthz``
    Draining-aware readiness: 200 while serving, 503 once shutdown began —
    load balancers stop routing before the sockets actually close.

Every serve-layer failure maps to a precise status code
(:func:`status_for_exception`): ``ServiceOverloadedError`` → 503 +
``Retry-After``, ``QuotaExceededError`` → 429 + ``Retry-After``,
``DeadlineExceededError`` → 504, ``ServiceClosedError`` → 503, and malformed
payloads (``PayloadError`` / ``ImageDecodeError`` / ``ParameterError``) →
400.  Oversized bodies are rejected with 413 before they are read.

Shutdown is graceful: :meth:`HttpSegmentationServer.aclose` stops accepting
connections, waits for every in-flight request to finish (they may still
submit to the service), then drains the service itself before the sockets
close.  Idle keep-alive connections are dropped at that point — they hold no
work.
"""

from __future__ import annotations

import asyncio
import base64
import binascii
import io
import json
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs

import numpy as np

from ..errors import (
    ImageDecodeError,
    ParameterError,
    PayloadError,
    QuotaExceededError,
    ReproError,
    ServeError,
    ServiceClosedError,
    ServiceOverloadedError,
)
from ..errors import (
    DeadlineExceededError as _DeadlineExceededError,
)
from ..imaging.io_dispatch import decode_image
from ..obs import get_logger, render_prometheus

__all__ = [
    "HttpSegmentationServer",
    "status_for_exception",
    "decode_array_payload",
    "DEFAULT_MAX_BODY_BYTES",
]

#: Largest request body accepted before a 413 — generous for raw images.
DEFAULT_MAX_BODY_BYTES = 64 * 1024 * 1024

#: Request line + headers must fit in this many bytes (431 otherwise).
_MAX_HEADER_BYTES = 32 * 1024

#: Magic prefix of the npy serialization format.
_NPY_MAGIC = b"\x93NUMPY"

_STATUS_PHRASES = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Exception → status mapping, most specific first (isinstance walk).
_ERROR_STATUS: Tuple[Tuple[type, int], ...] = (
    (QuotaExceededError, 429),
    (_DeadlineExceededError, 504),
    (ServiceOverloadedError, 503),
    (ServiceClosedError, 503),
    (PayloadError, 400),
    (ImageDecodeError, 400),
    (ParameterError, 400),
)


def status_for_exception(exc: BaseException) -> Tuple[int, Dict[str, str]]:
    """``(status code, extra response headers)`` for a request failure.

    Backpressure statuses (503 overload, 429 quota) carry a ``Retry-After``
    so well-behaved clients back off instead of hammering the queue.
    """
    for exc_type, status in _ERROR_STATUS:
        if isinstance(exc, exc_type):
            headers = {}
            if status in (429, 503):
                headers["Retry-After"] = "1"
            return status, headers
    return 500, {}


def decode_array_payload(data: bytes) -> np.ndarray:
    """Decode an image request body: npy bytes or a sniffed image container."""
    if data[: len(_NPY_MAGIC)] == _NPY_MAGIC:
        try:
            array = np.load(io.BytesIO(data), allow_pickle=False)
        except Exception as exc:  # noqa: BLE001 - any parse failure is the client's
            raise PayloadError(f"invalid npy payload: {exc}") from exc
        if not isinstance(array, np.ndarray) or array.ndim not in (2, 3):
            raise PayloadError("npy payload must be a 2-D or 3-D image array")
        return array
    return decode_image(data)


class _HttpError(ReproError):
    """Internal: abort the current request with a specific status code.

    Every raiser is a framing failure (bad request line, unreadable length,
    refused body), after which the byte stream is unrecoverable — the
    handler therefore always answers it with ``Connection: close``.
    """

    def __init__(self, status: int, detail: str):
        super().__init__(detail)
        self.status = status
        self.detail = detail


class _Request:
    """One parsed HTTP request."""

    __slots__ = ("method", "path", "query", "headers", "body")

    def __init__(self, method: str, path: str, query: str, headers: Dict[str, str], body: bytes):
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers
        self.body = body


class HttpSegmentationServer:
    """HTTP/1.1 server publishing an :class:`AsyncSegmentationService`.

    Parameters
    ----------
    service:
        The async serving front end handling the actual work.  The server
        submits with ``block=False`` so a full queue surfaces as a 503 +
        ``Retry-After`` instead of silently stalling the connection.
    host, port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`port` after :meth:`start`).
    sock:
        An already *bound* listening socket to serve on instead of binding
        ``host:port``.  This is how the multi-process fleet
        (:mod:`repro.serve.fleet`) runs several servers behind one address:
        each worker hands in its own ``SO_REUSEPORT`` socket (kernel load
        balancing), or a shared inherited listener where ``SO_REUSEPORT``
        is unavailable.  ``host``/``port`` are read back from the socket.
    max_body_bytes:
        Bodies larger than this are refused with 413 before being read.
    drain_grace_seconds:
        Upper bound on how long :meth:`aclose` waits for in-flight requests
        — a client that stalls mid-body (head sent, body never finished)
        must not be able to wedge shutdown forever.

    One server belongs to one event loop (the service's).  ``async with``
    gives the start/drain lifecycle.
    """

    def __init__(
        self,
        service: Any,
        host: str = "127.0.0.1",
        port: int = 0,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        drain_grace_seconds: float = 30.0,
        sock: Any = None,
    ):
        for attr in ("submit", "metrics"):
            if not callable(getattr(service, attr, None)):
                raise ParameterError("service must provide async submit() and metrics()")
        if max_body_bytes < 1:
            raise ParameterError("max_body_bytes must be >= 1")
        if drain_grace_seconds <= 0:
            raise ParameterError("drain_grace_seconds must be positive")
        self.service = service
        self.sock = sock
        self.host = host
        self.port = int(port)
        self.max_body_bytes = int(max_body_bytes)
        self.drain_grace_seconds = float(drain_grace_seconds)
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: "set[asyncio.Task]" = set()
        self._inflight = 0
        self._idle: Optional[asyncio.Event] = None
        self._draining = False
        self._closed = False
        self._requests = 0
        self._responses: Dict[int, int] = {}
        self._client_disconnects = 0
        self._request_errors = 0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def draining(self) -> bool:
        """True once shutdown (or :meth:`begin_drain`) has begun."""
        return self._draining or bool(getattr(self.service, "closed", False))

    async def start(self) -> None:
        """Bind the listening socket and start accepting connections."""
        if self._server is not None:
            raise ParameterError("server already started")
        self._idle = asyncio.Event()
        self._idle.set()
        if self.sock is not None:
            self._server = await asyncio.start_server(
                self._handle_connection, sock=self.sock, limit=_MAX_HEADER_BYTES
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self.host, port=self.port, limit=_MAX_HEADER_BYTES
            )
        sockets = self._server.sockets or []
        if sockets:
            name = sockets[0].getsockname()
            self.host, self.port = name[0], name[1]
        get_logger().info("http.listen", host=self.host, port=self.port)

    def begin_drain(self) -> None:
        """Flip readiness to "draining" while existing requests keep running.

        ``GET /healthz`` answers 503 from here on, so a load balancer
        rotates this instance out before :meth:`aclose` severs anything.
        """
        if not self._draining:
            get_logger().info("http.drain", inflight=self._inflight)
        self._draining = True

    async def aclose(self, drain: bool = True, close_service: bool = True) -> None:
        """Graceful shutdown: unbind, drain in-flight requests, then close.

        The listening socket closes first (no new connections), every
        request already being processed runs to completion (``drain=True``),
        idle keep-alive connections are dropped, and finally the wrapped
        service itself is drained unless ``close_service=False``.
        """
        if self._closed:
            return
        self._closed = True
        self.begin_drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if drain and self._idle is not None:
            # Wait until no request is being processed, bounded by the grace
            # period (a client stalled mid-body must not wedge shutdown).
            # After each wake-up, yield one tick and re-check: a keep-alive
            # connection whose next head was already buffered registers its
            # in-flight count in that tick instead of being cancelled below.
            loop = asyncio.get_running_loop()
            deadline = loop.time() + self.drain_grace_seconds
            while True:
                if self._inflight == 0:
                    await asyncio.sleep(0)
                    if self._inflight == 0:
                        break
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break  # grace exhausted: stalled requests are cancelled
                self._idle.clear()
                if self._inflight > 0:
                    try:
                        await asyncio.wait_for(self._idle.wait(), timeout=min(remaining, 0.1))
                    except asyncio.TimeoutError:
                        pass
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        if close_service and hasattr(self.service, "aclose"):
            if hasattr(self.service, "begin_drain"):
                self.service.begin_drain()
            await self.service.aclose(drain=drain)

    async def __aenter__(self) -> "HttpSegmentationServer":
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.aclose(drain=exc_type is None)

    def http_metrics(self) -> Dict[str, Any]:
        """Server-level counters (the service's live in ``service.metrics()``)."""
        return {
            "requests": self._requests,
            "responses": {str(code): count for code, count in sorted(self._responses.items())},
            "open_connections": len(self._conn_tasks),
            "inflight": self._inflight,
            "client_disconnects": self._client_disconnects,
            "request_errors": self._request_errors,
            "draining": self.draining,
        }

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            while True:
                # Idle point: a connection waiting for its next request head
                # holds no work, so drain does not wait on it (it is simply
                # cancelled once every in-flight request has been answered).
                try:
                    head = await reader.readuntil(b"\r\n\r\n")
                except asyncio.IncompleteReadError as exc:
                    if not exc.partial:
                        return  # clean EOF between requests
                    raise
                except asyncio.LimitOverrunError:
                    await self._respond_error(
                        writer, 431, "request headers exceed the size limit"
                    )
                    return
                # A request head has arrived: everything from parsing through
                # the response write counts as in-flight, so a graceful drain
                # never cancels a request the client already sent.
                self._inflight += 1
                if self._idle is not None:
                    self._idle.clear()
                keep_alive = False
                try:
                    try:
                        request = await self._parse_request(head, reader, writer)
                    except _HttpError as exc:
                        await self._respond_error(writer, exc.status, exc.detail)
                        return
                    self._requests += 1
                    keep_alive = (
                        request.headers.get("connection", "").lower() != "close"
                        and not self.draining
                    )
                    try:
                        status, headers, body = await self._dispatch(request)
                    except asyncio.CancelledError:
                        raise
                    except Exception as exc:  # noqa: BLE001 - a 500 beats a dropped conn
                        # Unexpected dispatch failures must be visible to the
                        # operator, not only to the client that got the 500.
                        self._request_errors += 1
                        get_logger().warning(
                            "http.dispatch_error",
                            path=request.path,
                            error=type(exc).__name__,
                            detail=str(exc),
                        )
                        status, extra = status_for_exception(exc)
                        status, headers, body = self._json_response(
                            status, {"error": type(exc).__name__, "detail": str(exc)}
                        )
                        headers.update(extra)
                    await self._write_response(writer, status, headers, body, keep_alive)
                finally:
                    self._inflight -= 1
                    if self._inflight == 0 and self._idle is not None:
                        self._idle.set()
                if not keep_alive:
                    return
        except (asyncio.IncompleteReadError, ConnectionError):
            # Client went away mid-request or mid-response-write.  The
            # in-flight count was already released by the finally above; the
            # disconnect itself must still be visible in metrics — a reset
            # is a completed-with-error request, not one that vanishes.
            self._client_disconnects += 1
        except asyncio.CancelledError:
            pass  # server shutdown — nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _parse_request(self, head: bytes, reader, writer) -> _Request:
        """Parse a received head and read the body off the stream."""
        try:
            head_text = head.decode("latin-1")
            request_line, *header_lines = head_text.split("\r\n")
            method, target, version = request_line.split(" ", 2)
        except ValueError:
            raise _HttpError(400, "malformed request line") from None
        if not version.startswith("HTTP/1."):
            raise _HttpError(400, f"unsupported protocol {version!r}")
        headers: Dict[str, str] = {}
        for line in header_lines:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise _HttpError(400, f"malformed header line {line!r}")
            headers[name.strip().lower()] = value.strip()
        path, _, query = target.partition("?")
        length_text = headers.get("content-length")
        if length_text is None and method in ("POST", "PUT"):
            raise _HttpError(411, "Content-Length is required")
        body = b""
        if length_text is not None:
            # Any method may carry a body; it must be consumed (or refused
            # with the connection closed) or keep-alive framing desyncs.
            try:
                length = int(length_text)
                if length < 0:
                    raise ValueError
            except ValueError:
                raise _HttpError(400, f"invalid Content-Length {length_text!r}") from None
            if length > self.max_body_bytes:
                # Refuse before reading: the body is still on the wire, so
                # the framing is unrecoverable and the connection closes.
                # (With Expect: 100-continue the client has not sent it yet
                # and can abort cleanly on seeing the 413.)
                raise _HttpError(
                    413,
                    f"body of {length} bytes exceeds the {self.max_body_bytes} byte limit",
                )
            if headers.get("expect", "").lower() == "100-continue":
                # curl sends this for any body over ~1 KiB and stalls up to
                # a second waiting for the interim response before posting.
                writer.write(b"HTTP/1.1 100 Continue\r\n\r\n")
                await writer.drain()
            body = await reader.readexactly(length)
        return _Request(method, path, query, headers, body)

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    async def _dispatch(self, request: _Request) -> Tuple[int, Dict[str, str], Any]:
        if request.path == "/healthz":
            if request.method != "GET":
                return self._method_not_allowed("GET")
            return self._handle_healthz()
        if request.path == "/v1/metrics":
            if request.method != "GET":
                return self._method_not_allowed("GET")
            # Off-loop: with a disk L2 the stats snapshot walks the cache
            # directory (listdir + stat per entry) — same discipline as the
            # submit path's cache probes.
            loop = asyncio.get_running_loop()
            metrics = await loop.run_in_executor(None, self.service.metrics)
            document = {**metrics, "http": self.http_metrics()}
            fmt = self._query_param(request, "format", "json").lower()
            if fmt == "prometheus":
                text = await loop.run_in_executor(None, render_prometheus, document)
                headers = {"Content-Type": "text/plain; version=0.0.4; charset=utf-8"}
                return 200, headers, text.encode("utf-8")
            if fmt != "json":
                return self._json_response(
                    400, {"error": "PayloadError", "detail": f"unknown format {fmt!r}"}
                )
            return self._json_response(200, document)
        if request.path == "/v1/capabilities":
            if request.method != "GET":
                return self._method_not_allowed("GET")
            return self._handle_capabilities()
        if request.path == "/v1/traces":
            if request.method != "GET":
                return self._method_not_allowed("GET")
            return self._handle_traces(request)
        if request.path.startswith("/v1/trace/"):
            if request.method != "GET":
                return self._method_not_allowed("GET")
            return self._handle_trace(request.path[len("/v1/trace/") :])
        if request.path == "/v1/segment":
            if request.method != "POST":
                return self._method_not_allowed("POST")
            return await self._handle_segment(request)
        return self._json_response(
            404, {"error": "NotFound", "detail": f"no route {request.path!r}"}
        )

    @staticmethod
    def _query_param(request: _Request, name: str, default: str) -> str:
        values = parse_qs(request.query).get(name)
        return values[0] if values else default

    def _handle_trace(self, trace_id: str) -> Tuple[int, Dict[str, str], bytes]:
        lookup = getattr(self.service, "trace", None)
        document = lookup(trace_id) if callable(lookup) else None
        if document is None:
            return self._json_response(
                404,
                {"error": "NotFound", "detail": f"no retained trace {trace_id!r}"},
            )
        return self._json_response(200, document)

    def _handle_traces(self, request: _Request) -> Tuple[int, Dict[str, str], bytes]:
        listing = getattr(self.service, "traces", None)
        if not callable(listing):
            return self._json_response(200, {"schema": "repro-traces/v1", "traces": []})
        raw = self._query_param(request, "slowest", "10")
        try:
            slowest = int(raw)
            if slowest < 1:
                raise ValueError
        except ValueError:
            return self._json_response(
                400, {"error": "PayloadError", "detail": f"invalid slowest {raw!r}"}
            )
        return self._json_response(
            200, {"schema": "repro-traces/v1", "traces": listing(slowest=slowest)}
        )

    def _method_not_allowed(self, allowed: str) -> Tuple[int, Dict[str, str], bytes]:
        status, headers, body = self._json_response(
            405, {"error": "MethodNotAllowed", "detail": f"use {allowed}"}
        )
        headers["Allow"] = allowed
        return status, headers, body

    def _handle_healthz(self) -> Tuple[int, Dict[str, str], bytes]:
        if self.draining:
            return self._json_response(503, {"status": "draining"})
        return self._json_response(200, {"status": "ok"})

    def _handle_capabilities(self) -> Tuple[int, Dict[str, str], bytes]:
        document = {"schema": "repro-capabilities/v1"}
        report = getattr(self.service, "capabilities", None)
        if callable(report):
            document.update(report())
        return self._json_response(200, document)

    async def _handle_segment(self, request: _Request) -> Tuple[int, Dict[str, str], Any]:
        # Decode and encode run off-loop: a 64 MiB PNG inflate (or a huge
        # labels-to-JSON encode) on the event loop would stall every other
        # connection, including the /healthz a load balancer is polling.
        loop = asyncio.get_running_loop()
        # The HTTP edge owns the trace for the whole request: it begins the
        # trace (adopting a client-sent id, which is always sampled), passes
        # it down through service.submit (which then skips its own
        # begin/record), and records it only after the response is encoded —
        # so the flight recorder sees ingress and encode time too.
        tracer = getattr(self.service, "tracer", None)
        client_trace_id = request.headers.get("x-repro-trace-id") or None
        trace = tracer.begin(trace_id=client_trace_id) if tracer is not None else None
        request_start = trace.clock() if trace is not None else 0.0
        try:
            try:
                parse_start = request_start
                image, options = await loop.run_in_executor(
                    None, self._parse_segment_request, request
                )
                if trace is not None:
                    trace.add(
                        "ingress.parse",
                        parse_start,
                        trace.clock(),
                        body_bytes=len(request.body),
                    )
                submit_start = trace.clock() if trace is not None else 0.0
                result = await self.service.submit(
                    image,
                    priority=options["priority"],
                    deadline=options["deadline"],
                    client_id=options["client_id"],
                    block=False,
                    **({"trace": trace} if trace is not None else {}),
                    **(
                        {"stream_id": options["stream_id"]}
                        if options.get("stream_id") is not None
                        else {}
                    ),
                )
                if trace is not None:
                    trace.add("service.submit", submit_start, trace.clock())
            except Exception as exc:  # noqa: BLE001 - mapped to a status, never fatal
                self._request_errors += 1
                status, extra = status_for_exception(exc)
                expected = isinstance(exc, (ServeError, ReproError, ValueError))
                detail = str(exc) if expected else repr(exc)
                response = self._json_response(
                    status, {"error": type(exc).__name__, "detail": detail}
                )
                response[1].update(extra)
                if trace is not None:
                    trace.annotate(error=type(exc).__name__, status=status)
                self._attach_trace_id(response[1], trace, client_trace_id)
                return response
            encode_start = trace.clock() if trace is not None else 0.0
            status, headers, body = await loop.run_in_executor(
                None, self._format_segment_response, request, result, options
            )
            if trace is not None:
                trace.add("response.encode", encode_start, trace.clock())
                trace.annotate(status=status)
            self._attach_trace_id(headers, trace, client_trace_id)
            return status, headers, body
        finally:
            if trace is not None:
                trace.add("request", request_start, trace.clock(), path=request.path)
                tracer.record(trace)

    @staticmethod
    def _attach_trace_id(
        headers: Dict[str, str], trace: Any, client_trace_id: Optional[str]
    ) -> None:
        trace_id = trace.trace_id if trace is not None else client_trace_id
        if trace_id:
            headers["X-Repro-Trace-Id"] = trace_id

    def _parse_segment_request(self, request: _Request) -> Tuple[np.ndarray, Dict[str, Any]]:
        headers = request.headers
        options: Dict[str, Any] = {
            "priority": headers.get("x-repro-priority") or "normal",
            "deadline": None,
            "client_id": headers.get("x-repro-client"),
            "stream_id": headers.get("x-repro-stream-id") or None,
        }
        deadline_ms: Any = headers.get("x-repro-deadline-ms")
        content_type = headers.get("content-type", "").partition(";")[0].strip().lower()
        data = request.body
        if content_type == "application/json":
            try:
                payload = json.loads(request.body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise PayloadError(f"invalid JSON body: {exc}") from exc
            if not isinstance(payload, dict) or "image" not in payload:
                raise PayloadError('JSON body must be an object with a base64 "image" field')
            if not isinstance(payload["image"], str):
                raise PayloadError('the "image" field must be a base64 string')
            try:
                data = base64.b64decode(payload["image"], validate=True)
            except (binascii.Error, ValueError) as exc:
                raise PayloadError(f"invalid base64 image data: {exc}") from exc
            if "priority" in payload and payload["priority"] is not None:
                options["priority"] = payload["priority"]
            if "client_id" in payload and payload["client_id"] is not None:
                options["client_id"] = str(payload["client_id"])
            if "stream_id" in payload and payload["stream_id"] is not None:
                options["stream_id"] = str(payload["stream_id"])
            if "deadline_ms" in payload:
                deadline_ms = payload["deadline_ms"]
        if not data:
            raise PayloadError("empty request body")
        if deadline_ms is not None:
            try:
                options["deadline"] = float(deadline_ms) / 1000.0
            except (TypeError, ValueError) as exc:
                raise PayloadError(f"invalid deadline_ms {deadline_ms!r}") from exc
        return decode_array_payload(data), options

    def _format_segment_response(
        self, request: _Request, result: Any, options: Dict[str, Any]
    ) -> Tuple[int, Dict[str, str], Any]:
        seg = result.segmentation
        scalars = {
            "shape": [int(v) for v in seg.labels.shape],
            "num_segments": int(seg.num_segments),
            "method": str(seg.method),
            "fast_path": str(seg.extras.get("fast_path", "direct")),
            "cache_hit": bool(seg.extras.get("cache_hit", False)),
            "coalesced": bool(seg.extras.get("coalesced", False)),
            "runtime_seconds": float(seg.runtime_seconds),
            "priority": str(options["priority"]).lower(),
            "metrics": {key: float(value) for key, value in result.metrics.items()},
        }
        # Freshly-computed stream frames report their dirty-tile accounting;
        # a whole-image cache hit's stored extras may predate this request's
        # stream, so they are only echoed for non-hit responses.
        delta = seg.extras.get("delta")
        if delta and options.get("stream_id") is not None and not scalars["cache_hit"]:
            scalars["delta"] = {
                "tiles_total": int(delta.get("tiles_total", 0)),
                "tiles_reused": int(delta.get("tiles_reused", 0)),
                "tiles_recomputed": int(delta.get("tiles_recomputed", 0)),
                "reuse_ratio": float(delta.get("reuse_ratio", 0.0)),
            }
        accept = request.headers.get("accept", "").partition(";")[0].strip().lower()
        if accept == "application/x-npy":
            # Zero-copy body: the npy header bytes plus a memoryview straight
            # over the labels array (which, on an shm/disk cache hit, is
            # itself a view over the decoded cache buffer).  A warm hit
            # therefore never copies the label array into the response.
            labels = np.ascontiguousarray(np.asarray(seg.labels))
            header_buffer = io.BytesIO()
            np.lib.format.write_array_header_1_0(
                header_buffer,
                {
                    "descr": np.lib.format.dtype_to_descr(labels.dtype),
                    "fortran_order": False,
                    "shape": labels.shape,
                },
            )
            body = [header_buffer.getvalue(), memoryview(labels).cast("B")]
            headers = {
                "Content-Type": "application/x-npy",
                "X-Repro-Num-Segments": str(scalars["num_segments"]),
                "X-Repro-Method": scalars["method"],
                "X-Repro-Fast-Path": scalars["fast_path"],
                "X-Repro-Cache-Hit": "true" if scalars["cache_hit"] else "false",
                "X-Repro-Coalesced": "true" if scalars["coalesced"] else "false",
                "X-Repro-Runtime-Seconds": f"{scalars['runtime_seconds']:.6f}",
            }
            return 200, headers, body
        document = {
            "schema": "repro-http-segment/v1",
            **scalars,
            "labels": np.asarray(seg.labels).tolist(),
        }
        return self._json_response(200, document)

    # ------------------------------------------------------------------ #
    # response plumbing
    # ------------------------------------------------------------------ #
    @staticmethod
    def _json_response(status: int, document: Any) -> Tuple[int, Dict[str, str], bytes]:
        body = (json.dumps(document, sort_keys=True) + "\n").encode("utf-8")
        return status, {"Content-Type": "application/json"}, body

    async def _respond_error(self, writer, status: int, detail: str) -> None:
        """Answer a framing failure; the connection always closes after it."""
        _, headers, body = self._json_response(
            status, {"error": _STATUS_PHRASES.get(status, "Error"), "detail": detail}
        )
        await self._write_response(writer, status, headers, body, keep_alive=False)

    async def _write_response(
        self, writer, status: int, headers: Dict[str, str], body: Any, keep_alive: bool
    ) -> None:
        # ``body`` is either one bytes object or a sequence of bytes-like
        # chunks (the zero-copy npy path: header bytes + an array view) that
        # are written without being concatenated into an intermediate copy.
        chunks = body if isinstance(body, (list, tuple)) else (body,)
        length = sum(memoryview(chunk).nbytes for chunk in chunks)
        self._responses[status] = self._responses.get(status, 0) + 1
        phrase = _STATUS_PHRASES.get(status, "Unknown")
        lines = [f"HTTP/1.1 {status} {phrase}"]
        out_headers = {
            "Server": "repro-segment",
            "Content-Length": str(length),
            "Connection": "keep-alive" if keep_alive else "close",
            **headers,
        }
        lines.extend(f"{name}: {value}" for name, value in out_headers.items())
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        for chunk in chunks:
            writer.write(chunk)
        await writer.drain()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HttpSegmentationServer(host={self.host!r}, port={self.port}, "
            f"draining={self.draining})"
        )

"""Multi-process HTTP serving: a supervised SO_REUSEPORT worker fleet.

One :class:`~repro.serve.http.HttpSegmentationServer` process tops out at
roughly one core of segmentation compute — the asyncio loop scales
connections, not CPU.  :class:`ServeFleet` is the scale-out layer the
ROADMAP's "millions of users" north star calls for: a supervisor that runs
**N worker processes behind one HOST:PORT**, all sharing one persistent
:class:`~repro.serve.diskcache.DiskResultCache` directory as their L2 tier
(that cache was built multi-process-safe — atomic publishes, lock-file
sweeps — precisely for this).

How the one-address/many-processes trick works:

* **SO_REUSEPORT (default)** — every worker binds its *own* listening
  socket to the same address with ``SO_REUSEPORT``, and the kernel load
  balances incoming connections across the listeners.  No userspace proxy,
  no extra hop, per-worker accept queues.  The supervisor holds a bound but
  never-listening placeholder socket so the port is reserved (and a ``:0``
  request resolves to one concrete port) across worker restarts.
* **single-listener fallback** — where ``SO_REUSEPORT`` is unavailable the
  supervisor binds one listening socket and passes it to every worker
  (:mod:`multiprocessing` duplicates the descriptor), so the workers share
  a single accept queue.  Same address contract, coarser balancing.

The supervisor owns the worker lifecycle:

* **staggered startup** — workers launch ``stagger_seconds`` apart so a
  cold fleet does not stampede the disk cache or the CPU all at once;
* **liveness** — each worker streams heartbeat messages over its pipe; a
  worker that stops heartbeating (wedged) or dies (crash, SIGKILL) is
  detected by the monitor thread;
* **crash-restart with exponential backoff** — a dead worker slot is
  relaunched after a backoff that doubles on every quick failure (bounded
  by ``restart_backoff_max_seconds``) and resets once a worker survives
  ``restart_stable_seconds``;
* **fleet-wide drain** — :meth:`ServeFleet.shutdown` SIGTERMs every worker;
  each finishes its in-flight requests (the PR-4 graceful-drain path),
  reports final metrics over the pipe, and exits; the supervisor waits up
  to ``drain_grace_seconds`` before escalating to SIGKILL.

Observability spans the fleet: every worker also runs a loopback *admin*
server (an ordinary ``HttpSegmentationServer`` on ``127.0.0.1:0``) whose
``/v1/metrics`` adds the worker identity and ingress HTTP counters.
:meth:`ServeFleet.metrics` scrapes each worker and merges the snapshots —
counters sum, shared-L2 gauges take the max, and latency percentiles are
re-derived from the workers' mergeable histogram sketches
(:func:`repro.metrics.runtime.merge_sketches`) rather than averaged, which
would be statistically meaningless.  :meth:`ServeFleet.health` reports the
fleet healthy while at least one worker is accepting connections.

CLI: ``repro-segment serve --http HOST:PORT --workers N`` (composes with
``--cache-dir``, ``--lane-weights``, ``--adaptive``).
"""

from __future__ import annotations

import dataclasses
import math
import multiprocessing
import multiprocessing.connection
import os
import signal
import socket
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import ParameterError, ServeError
from ..metrics.runtime import merge_sketches, summarize_sketch
from ..obs import get_logger
from ._http import DEFAULT_MAX_BODY_BYTES

__all__ = ["WorkerSpec", "ServeFleet", "merge_worker_metrics"]


@dataclasses.dataclass(frozen=True)
class WorkerSpec:
    """A picklable recipe for one serving worker's full service stack.

    The fleet supervisor cannot ship live objects (engines, caches, event
    loops) into spawned processes, so workers are described by value: every
    field is a plain scalar/dict, and :meth:`build_service` constructs the
    segmenter → engine → cache → :class:`AsyncSegmentationService` stack
    inside the worker process.  The CLI builds its single-process service
    through the same spec, so ``--workers 1`` and ``--workers N`` are
    configured identically by construction.
    """

    method: str = "iqft-rgb"
    theta: float = math.pi
    seed: Optional[int] = None
    use_lut: bool = True
    executor: str = "serial"
    jobs: Optional[int] = None
    max_batch_size: int = 16
    max_wait_seconds: float = 0.01
    queue_size: int = 256
    cache_entries: int = 256
    ttl_seconds: Optional[float] = None
    use_cache: bool = True
    cache_dir: Optional[str] = None
    lane_weights: Optional[Dict[str, int]] = None
    client_rate: Optional[float] = None
    client_burst: Optional[float] = None
    default_deadline_seconds: Optional[float] = None
    adaptive: bool = False
    adaptive_config: Optional[Any] = None  # serve.batcher.AdaptiveConfig
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES
    #: Shared-memory L1.5 tier: total segment size in bytes (0 disables) and
    #: per-slot capacity (0 = library default).  ``shm_name`` is filled in by
    #: the fleet supervisor after it creates the segment — workers only ever
    #: attach, so a solo spec (no fleet) builds a cache without an shm tier.
    shm_bytes: int = 0
    shm_slot_bytes: int = 0
    shm_name: Optional[str] = None
    #: Observability: the structured-log format workers emit on stderr, the
    #: tracer's sample rate (1.0 traces everything, 0.0 disables — client
    #: supplied ``X-Repro-Trace-Id`` requests are always traced), and the
    #: per-worker flight-recorder ring size (completed traces retained).
    log_format: str = "text"
    trace_sample_rate: float = 1.0
    trace_ring: int = 256
    #: Array backend the worker's engine runs its kernels on (a registered
    #: name: "numpy", "torch", "cupy"; ``None`` = process default, i.e. the
    #: ``REPRO_BACKEND`` environment variable or "numpy").  Fleets may mix
    #: backends per worker — integer fast paths are bit-exact everywhere, so
    #: a heterogeneous fleet still serves identical answers from one shared
    #: cache.  ``float_compute="backend"`` additionally routes the float
    #: kernel to the backend (tolerance-exact; splits the cache key).
    backend: Optional[str] = None
    float_compute: str = "exact"
    #: Dirty-tile incremental path for temporal streams (requests carrying
    #: ``X-Repro-Stream-Id``): only tiles changed since the stream's previous
    #: frame are re-segmented, bit-identical to a full recompute.
    #: ``delta_tile`` is the square grid edge in pixels (0 = library default)
    #: and ``delta_streams`` bounds the per-worker ancestor LRU.
    delta: bool = True
    delta_tile: int = 0
    delta_streams: int = 256

    @property
    def theta_used(self) -> Optional[float]:
        """The θ actually passed to the method (``None`` for θ-free methods)."""
        from ..baselines.registry import THETA_KEYWORDS

        return float(self.theta) if self.method in THETA_KEYWORDS else None

    def segmenter_kwargs(self) -> Dict[str, Any]:
        """Method-factory keyword arguments implied by this spec."""
        from ..baselines.registry import method_kwargs

        return method_kwargs(self.method, theta=self.theta, seed=self.seed)

    def build_cache(self) -> Any:
        """Memory L1 (optionally over shm L1.5 and/or disk L2), or ``None``."""
        from ..errors import CacheError
        from ._cache import ResultCache, TieredResultCache
        from ._diskcache import DiskResultCache
        from ._shmcache import SharedMemoryResultCache

        if not self.use_cache:
            return None
        memory = ResultCache(max_entries=self.cache_entries, ttl_seconds=self.ttl_seconds)
        shm = None
        if self.shm_name:
            try:
                shm = SharedMemoryResultCache.attach(self.shm_name, ttl_seconds=self.ttl_seconds)
            except CacheError:
                # /dev/shm gone, segment unlinked, or an alien superblock:
                # the worker degrades to memory + disk rather than failing.
                shm = None
        if self.cache_dir is None:
            if shm is None:
                return memory
            # No disk tier: the shm ring itself is the shared L2.
            return TieredResultCache(l1=memory, l2=shm)
        # The TTL must govern the lower tiers too — otherwise expired L1
        # entries would simply be re-promoted from a never-expiring L2.
        disk = DiskResultCache(self.cache_dir, ttl_seconds=self.ttl_seconds)
        return TieredResultCache(l1=memory, l2=disk, shm=shm)

    def build_service(self):
        """Construct the full async service stack this spec describes."""
        from ..baselines.registry import get_segmenter
        from ..engine import BatchSegmentationEngine
        from ..obs import Tracer
        from ..parallel.executor import executor_for_jobs
        from ._aio import AsyncSegmentationService

        engine = BatchSegmentationEngine(
            get_segmenter(self.method, **self.segmenter_kwargs()),
            use_lut=self.use_lut,
            executor=executor_for_jobs(self.executor, self.jobs),
            backend=self.backend,
            float_compute=self.float_compute,
        )
        return AsyncSegmentationService(
            engine,
            max_batch_size=self.max_batch_size,
            max_wait_seconds=self.max_wait_seconds,
            queue_size=self.queue_size,
            cache=self.build_cache(),
            lane_weights=dict(self.lane_weights) if self.lane_weights else None,
            client_rate=self.client_rate,
            client_burst=self.client_burst,
            default_deadline=self.default_deadline_seconds,
            adaptive=self.adaptive,
            adaptive_config=self.adaptive_config,
            tracer=Tracer(sample_rate=self.trace_sample_rate, ring_size=self.trace_ring),
            delta=self.delta,
            delta_tile_shape=(
                (int(self.delta_tile), int(self.delta_tile)) if self.delta_tile else None
            ),
            delta_max_streams=self.delta_streams,
        )


# --------------------------------------------------------------------------- #
# worker process
# --------------------------------------------------------------------------- #
def _reuseport_socket(host: str, port: int, listen: bool = False) -> socket.socket:
    """A fresh ``SO_REUSEPORT`` socket bound to ``(host, port)``."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
        if listen:
            sock.listen(128)
    except OSError:
        sock.close()
        raise
    return sock


def _send(conn, kind: str, payload: Dict[str, Any]) -> bool:  # pragma: no cover
    """Best-effort pipe send; False means the supervisor is gone.

    Worker-process side (not seen by in-process coverage); exercised end to
    end by the fleet integration tests.
    """
    try:
        conn.send((kind, payload))
        return True
    except (BrokenPipeError, OSError, ValueError):
        return False


class _AdminView:
    """The service as seen by a worker's loopback admin server.

    Delegates everything to the real service but decorates ``metrics()``
    with the worker's identity and the *ingress* server's HTTP counters, so
    a supervisor scrape of the admin port describes the worker's public
    traffic (the admin server's own counters would only describe scrapes).
    """

    def __init__(self, service: Any, ingress: Any, worker: Dict[str, Any]):
        self._service = service
        self._ingress = ingress
        self._worker = worker

    def __getattr__(self, name: str) -> Any:
        return getattr(self._service, name)

    def metrics(self) -> Dict[str, Any]:  # pragma: no cover - worker-process side
        return {
            **self._service.metrics(),
            "worker": dict(self._worker),
            "ingress_http": self._ingress.http_metrics(),
        }


async def _worker_serve(  # pragma: no cover - runs in spawned worker processes
    slot: int,
    spec: WorkerSpec,
    host: str,
    port: int,
    conn,
    listen_sock: Optional[socket.socket],
    heartbeat_interval: float,
) -> None:
    import asyncio

    from ..obs import configure_logging
    from ._http import HttpSegmentationServer

    log = configure_logging(format=spec.log_format, worker_id=slot)
    service = spec.build_service()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signame in ("SIGTERM", "SIGINT"):
        signum = getattr(signal, signame, None)
        if signum is None:
            continue
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError, ValueError):
            pass
    sock = listen_sock if listen_sock is not None else _reuseport_socket(host, port)
    worker_info = {"slot": int(slot), "pid": os.getpid()}
    ingress = HttpSegmentationServer(service, sock=sock, max_body_bytes=spec.max_body_bytes)
    async with service:
        await ingress.start()
        admin = HttpSegmentationServer(
            _AdminView(service, ingress, worker_info), host="127.0.0.1", port=0
        )
        await admin.start()
        _send(
            conn,
            "ready",
            {**worker_info, "port": ingress.port, "admin_port": admin.port},
        )
        log.info(
            "worker.ready",
            slot=slot,
            pid=worker_info["pid"],
            port=ingress.port,
            admin_port=admin.port,
        )

        # Heartbeats must outlive the stop signal: they only cease once the
        # drain below has finished.  A worker that went silent on SIGTERM
        # would look wedged to the supervisor's liveness check and be
        # SIGKILLed mid-drain, killing the in-flight requests it was
        # gracefully finishing.
        beat_stop = asyncio.Event()

        async def _heartbeats() -> None:
            while not beat_stop.is_set():
                if not _send(conn, "heartbeat", dict(worker_info)):
                    stop.set()  # orphaned worker: supervisor pipe is gone
                    return
                try:
                    await asyncio.wait_for(beat_stop.wait(), timeout=heartbeat_interval)
                except asyncio.TimeoutError:
                    continue

        beat = asyncio.create_task(_heartbeats())
        try:
            await stop.wait()
            log.info("worker.drain", slot=slot)
        finally:
            # Drain order mirrors the single-process CLI: stop accepting,
            # finish in-flight ingress requests (they may still submit),
            # then let the service itself drain via __aexit__.
            await ingress.aclose(drain=True, close_service=False)
            await admin.aclose(drain=True, close_service=False)
            beat_stop.set()
            await asyncio.gather(beat, return_exceptions=True)
    _send(
        conn,
        "stopped",
        {**worker_info, "metrics": service.metrics(), "http": ingress.http_metrics()},
    )


def _worker_main(  # pragma: no cover - runs in spawned worker processes
    slot: int,
    spec: WorkerSpec,
    host: str,
    port: int,
    conn,
    listen_sock: Optional[socket.socket],
    heartbeat_interval: float,
) -> None:
    """Entry point of one spawned worker process."""
    import asyncio

    try:
        asyncio.run(
            _worker_serve(slot, spec, host, port, conn, listen_sock, heartbeat_interval)
        )
    except KeyboardInterrupt:  # pragma: no cover - signal-timing dependent
        pass
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover - already closed
            pass


# --------------------------------------------------------------------------- #
# metrics aggregation
# --------------------------------------------------------------------------- #
_SUM_CACHE_KEYS = (
    "hits",
    "hit_bytes",
    "misses",
    "stores",
    "store_skips",
    "evictions",
    "evicted_bytes",
    "expirations",
    "corrupt_dropped",
    "torn_reads",
    "errors",
)
#: Gauge-like cache keys: workers sharing one L2 directory (or one shm
#: segment) each report the same footprint, so summing would multiply it by
#: the fleet size.
_MAX_CACHE_KEYS = (
    "currsize",
    "current_bytes",
    "maxsize",
    "max_entries",
    "max_bytes",
    "slot_count",
    "slot_bytes",
    "size_bytes",
)


def _as_int(value: Any, default: int = 0) -> int:
    """Tolerant int coercion: a malformed admin snapshot degrades to 0."""
    try:
        return int(value)
    except (TypeError, ValueError):
        return default


def _as_float(value: Any, default: float = 0.0) -> float:
    """Tolerant float coercion for partially-corrupt worker snapshots."""
    try:
        result = float(value)
    except (TypeError, ValueError):
        return default
    return result if result == result else default  # NaN → default


def _merge_sketches_safe(sketches: List[Any]) -> Dict[str, Any]:
    """Merge latency sketches, dropping malformed/disjoint ones wholesale.

    A worker mid-upgrade (different bucket bounds) or a truncated snapshot
    must degrade the fleet percentile to "unknown" — rendered as ``None``
    by :func:`~repro.metrics.runtime.summarize_sketch` — never crash the
    supervisor's scrape.
    """
    valid = [s for s in sketches if isinstance(s, dict) and s.get("bounds")]
    try:
        return merge_sketches(valid)
    except (ValueError, TypeError):
        return merge_sketches([])


def _merge_cache_tier(tiers: List[Any]) -> Dict[str, Any]:
    tiers = [tier for tier in tiers if isinstance(tier, dict)]
    merged: Dict[str, Any] = {}
    for key in _SUM_CACHE_KEYS:
        if any(key in tier for tier in tiers):
            merged[key] = sum(_as_int(tier.get(key, 0)) for tier in tiers)
    for key in _MAX_CACHE_KEYS:
        if any(key in tier for tier in tiers):
            merged[key] = max(_as_int(tier.get(key, 0)) for tier in tiers)
    lookups = merged.get("hits", 0) + merged.get("misses", 0)
    merged["hit_rate"] = merged.get("hits", 0) / lookups if lookups else 0.0
    return merged


def _merge_cache(stats: List[Optional[Dict[str, Any]]]) -> Optional[Dict[str, Any]]:
    present = [s for s in stats if isinstance(s, dict)]
    if not present:
        return None
    if all("l1" in s and "l2" in s for s in present):
        l1 = _merge_cache_tier([s["l1"] for s in present])
        l2 = _merge_cache_tier([s["l2"] for s in present])
        l1_lookups = l1.get("hits", 0) + l1.get("misses", 0)
        total_hits = l1.get("hits", 0) + l2.get("hits", 0)
        merged = {
            "l1": l1,
            "l2": l2,
            "l1_hit_rate": l1.get("hit_rate", 0.0),
            "l2_hit_rate": l2.get("hit_rate", 0.0),
        }
        shm_docs = [s["shm"] for s in present if isinstance(s.get("shm"), dict)]
        if shm_docs:
            shm = _merge_cache_tier(shm_docs)
            merged["shm"] = shm
            merged["shm_hit_rate"] = shm.get("hit_rate", 0.0)
            total_hits += shm.get("hits", 0)
        merged["hit_rate"] = total_hits / l1_lookups if l1_lookups else 0.0
        return merged
    return _merge_cache_tier(present)


def merge_worker_metrics(snapshots: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Fleet-wide view from per-worker ``service.metrics()`` snapshots.

    Counters sum; queue depth sums; throughput sums (the workers run
    concurrently); uptime takes the max; latency percentiles are recomputed
    from the merged histogram sketches rather than averaged.  Cache stats
    merge per tier, with shared-L2 footprint gauges taking the max across
    workers (they all describe the same directory).  Lane ``weight`` is
    reported as the max across workers — under the adaptive control loop
    each worker tunes its own weights, so a single number is a summary, not
    a shared setting.
    """
    # A worker that answered its admin scrape with something other than a
    # metrics object (truncated JSON parsed to a list, an error document)
    # is skipped wholesale — the caller's scrape-failure counter is the
    # place that kind of degradation is reported, not an exception here.
    snapshots = [s for s in snapshots if isinstance(s, dict)]
    if not snapshots:
        return {"workers_scraped": 0}
    merged: Dict[str, Any] = {"workers_scraped": len(snapshots)}
    for key in (
        "requests",
        "completed",
        "failed",
        "cancelled",
        "coalesced",
        "quota_rejections",
        "queue_depth",
        "batches",
    ):
        merged[key] = sum(_as_int(s.get(key, 0)) for s in snapshots)
    sheds = [s.get("shed") for s in snapshots]
    sheds = [shed for shed in sheds if isinstance(shed, dict)]
    merged["shed"] = {
        "admission": sum(_as_int(shed.get("admission", 0)) for shed in sheds),
        "expired": sum(_as_int(shed.get("expired", 0)) for shed in sheds),
    }
    merged["uptime_seconds"] = max(_as_float(s.get("uptime_seconds", 0.0)) for s in snapshots)
    merged["throughput_rps"] = sum(_as_float(s.get("throughput_rps", 0.0)) for s in snapshots)
    total_items = sum(
        _as_float(s.get("mean_batch_size", 0.0)) * _as_int(s.get("batches", 0))
        for s in snapshots
    )
    merged["mean_batch_size"] = total_items / merged["batches"] if merged["batches"] else 0.0
    ewmas = [_as_float(s.get("ewma_request_seconds", 0.0)) for s in snapshots]
    calibrated = [value for value in ewmas if value > 0.0]
    merged["ewma_request_seconds"] = sum(calibrated) / len(calibrated) if calibrated else 0.0

    sketch = _merge_sketches_safe([s.get("latency_sketch") for s in snapshots])
    merged["latency_sketch"] = sketch
    merged["latency_seconds"] = summarize_sketch(sketch)

    lanes: Dict[str, Dict[str, Any]] = {}
    lane_maps = [s.get("lanes") for s in snapshots]
    lane_maps = [lanes_doc for lanes_doc in lane_maps if isinstance(lanes_doc, dict)]
    lane_names = {name for lanes_doc in lane_maps for name in lanes_doc}
    for name in sorted(lane_names):
        per_worker = [lanes_doc.get(name) for lanes_doc in lane_maps]
        per_worker = [lane for lane in per_worker if isinstance(lane, dict)]
        lane_sketch = _merge_sketches_safe([lane.get("latency_sketch") for lane in per_worker])
        lane_deltas = [lane.get("delta") for lane in per_worker]
        lane_deltas = [d for d in lane_deltas if isinstance(d, dict)]
        lanes[name] = {
            "depth": sum(_as_int(lane.get("depth", 0)) for lane in per_worker),
            "submitted": sum(_as_int(lane.get("submitted", 0)) for lane in per_worker),
            "completed": sum(_as_int(lane.get("completed", 0)) for lane in per_worker),
            "shed_admission": sum(_as_int(lane.get("shed_admission", 0)) for lane in per_worker),
            "shed_expired": sum(_as_int(lane.get("shed_expired", 0)) for lane in per_worker),
            "weight": max((_as_int(lane.get("weight", 0)) for lane in per_worker), default=0),
            "latency_seconds": summarize_sketch(lane_sketch),
            "latency_sketch": lane_sketch,
            "delta": {
                key: sum(_as_int(d.get(key, 0)) for d in lane_deltas)
                for key in ("frames", "tiles_reused", "tiles_recomputed")
            },
        }
    merged["lanes"] = lanes

    adaptive = [s.get("adaptive") for s in snapshots if isinstance(s.get("adaptive"), dict)]
    if adaptive:
        merged["adaptive"] = {
            "enabled": True,
            "ticks": sum(_as_int(a.get("ticks", 0)) for a in adaptive),
            "batch_adjustments": sum(_as_int(a.get("batch_adjustments", 0)) for a in adaptive),
            "weight_adjustments": sum(_as_int(a.get("weight_adjustments", 0)) for a in adaptive),
            "max_batch_size": {
                "min": min(_as_int(a.get("max_batch_size", 0)) for a in adaptive),
                "max": max(_as_int(a.get("max_batch_size", 0)) for a in adaptive),
            },
        }
    else:
        merged["adaptive"] = None
    deltas = [s.get("delta") for s in snapshots if isinstance(s.get("delta"), dict)]
    if deltas:
        tiles_reused = sum(_as_int(d.get("tiles_reused", 0)) for d in deltas)
        tiles_recomputed = sum(_as_int(d.get("tiles_recomputed", 0)) for d in deltas)
        tiles = tiles_reused + tiles_recomputed
        merged["delta"] = {
            "enabled": True,
            "supported": any(bool(d.get("supported")) for d in deltas),
            "streams": sum(_as_int(d.get("streams", 0)) for d in deltas),
            "frames": sum(_as_int(d.get("frames", 0)) for d in deltas),
            "tiles_reused": tiles_reused,
            "tiles_recomputed": tiles_recomputed,
            "reuse_ratio": tiles_reused / tiles if tiles else 0.0,
        }
    else:
        merged["delta"] = None
    # Active backends across the fleet: a homogeneous fleet reports one name,
    # a mixed fleet all of them (answers are identical either way — integer
    # fast paths are bit-exact on every backend).
    merged["backends"] = sorted({str(s["backend"]) for s in snapshots if s.get("backend")})
    merged["cache"] = _merge_cache([s.get("cache") for s in snapshots])
    trace_docs = [s.get("trace") for s in snapshots if isinstance(s.get("trace"), dict)]
    if trace_docs:
        merged["trace"] = {
            key: sum(_as_int(t.get(key, 0)) for t in trace_docs)
            for key in ("started", "sampled_out", "recorded", "retained")
        }
    exemplars = [s.get("latency_exemplar") for s in snapshots]
    exemplars = [e for e in exemplars if isinstance(e, dict) and e.get("trace_id")]
    merged["latency_exemplar"] = (
        max(exemplars, key=lambda e: _as_float(e.get("seconds", 0.0))) if exemplars else None
    )
    return merged


# --------------------------------------------------------------------------- #
# supervisor
# --------------------------------------------------------------------------- #
class _WorkerHandle:
    """Supervisor-side record of one worker slot's current process."""

    __slots__ = (
        "slot",
        "process",
        "conn",
        "pid",
        "admin_port",
        "state",
        "started_at",
        "last_seen",
        "final",
    )

    def __init__(self, slot: int, process, conn, started_at: float):
        self.slot = slot
        self.process = process
        self.conn = conn
        self.pid: Optional[int] = process.pid
        self.admin_port: Optional[int] = None
        self.state = "starting"  # starting -> ready -> stopped
        self.started_at = started_at
        self.last_seen = started_at
        self.final: Optional[Dict[str, Any]] = None


class ServeFleet:
    """Supervisor for N HTTP serving workers behind one address.

    Parameters
    ----------
    spec:
        The :class:`WorkerSpec` every worker builds its service from.  Point
        ``spec.cache_dir`` at a shared directory to give the fleet one
        persistent L2 cache: any worker's computed result becomes a disk hit
        for every other worker (and for the next fleet start).
    host, port:
        The public bind address; ``port=0`` picks a free port, readable
        from :attr:`port` after :meth:`start` (stable across restarts).
    workers:
        Number of worker processes.
    reuse_port:
        ``None`` (default) auto-detects ``SO_REUSEPORT``; ``False`` forces
        the shared-single-listener fallback.
    heartbeat_interval, heartbeat_timeout:
        Workers heartbeat every ``interval`` seconds; one silent for
        ``timeout`` seconds is presumed wedged and is killed + restarted.
    stagger_seconds:
        Delay between consecutive worker launches at startup.
    restart_backoff_seconds, restart_backoff_max_seconds, restart_stable_seconds:
        Crash-restart policy: the backoff starts at the base, doubles for
        every crash that happens within ``restart_stable_seconds`` of the
        launch, is capped at the max, and resets after a stable run.
    drain_grace_seconds:
        Upper bound :meth:`shutdown` waits for draining workers before
        escalating SIGTERM to SIGKILL.
    backends:
        Optional per-worker backend assignment for a heterogeneous fleet:
        a list of registered backend names cycled across worker slots
        (``["torch", "numpy"]`` with 4 workers → slots 0/2 on torch, 1/3 on
        NumPy), overriding ``spec.backend``.  Names are resolved eagerly so
        an unknown or unavailable backend fails the constructor instead of
        crash-looping spawned workers.  Because integer fast paths are
        bit-exact on every backend, a mixed fleet serves bit-identical
        answers and shares every cache tier.
    """

    def __init__(
        self,
        spec: WorkerSpec,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        *,
        backends: Optional[List[str]] = None,
        reuse_port: Optional[bool] = None,
        heartbeat_interval: float = 0.5,
        heartbeat_timeout: float = 15.0,
        stagger_seconds: float = 0.1,
        restart_backoff_seconds: float = 0.25,
        restart_backoff_max_seconds: float = 10.0,
        restart_stable_seconds: float = 5.0,
        drain_grace_seconds: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if not isinstance(spec, WorkerSpec):
            raise ParameterError("spec must be a WorkerSpec")
        if workers < 1:
            raise ParameterError("workers must be >= 1")
        if heartbeat_interval <= 0 or heartbeat_timeout <= heartbeat_interval:
            raise ParameterError("heartbeat_timeout must exceed a positive heartbeat_interval")
        if stagger_seconds < 0:
            raise ParameterError("stagger_seconds must be >= 0")
        if restart_backoff_seconds <= 0 or restart_backoff_max_seconds < restart_backoff_seconds:
            raise ParameterError("restart backoff bounds are inconsistent")
        if drain_grace_seconds <= 0:
            raise ParameterError("drain_grace_seconds must be positive")
        if reuse_port is None:
            reuse_port = hasattr(socket, "SO_REUSEPORT")
        elif reuse_port and not hasattr(socket, "SO_REUSEPORT"):
            raise ParameterError("SO_REUSEPORT is not available on this platform")
        if backends is not None:
            from ..backend.registry import get_backend

            backends = [str(name) for name in backends]
            if not backends:
                raise ParameterError("backends must name at least one backend")
            for name in backends:
                get_backend(name)  # fail fast: ParameterError lists options
        self.backends = backends
        self.spec = spec
        self.host = host
        self.port = int(port)
        self.workers = int(workers)
        self.reuse_port = bool(reuse_port)
        self.heartbeat_interval = float(heartbeat_interval)
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.stagger_seconds = float(stagger_seconds)
        self.restart_backoff_seconds = float(restart_backoff_seconds)
        self.restart_backoff_max_seconds = float(restart_backoff_max_seconds)
        self.restart_stable_seconds = float(restart_stable_seconds)
        self.drain_grace_seconds = float(drain_grace_seconds)
        self._clock = clock
        self._ctx = multiprocessing.get_context("spawn")
        self._lock = threading.Lock()
        self._handles: Dict[int, _WorkerHandle] = {}
        self._backoff: Dict[int, float] = {}
        self._restart_at: Dict[int, float] = {}
        self._restarts = 0
        self._scrape_failures = 0
        self._monitor_errors = 0
        self._placeholder: Optional[socket.socket] = None
        self._listen_sock: Optional[socket.socket] = None
        self._monitor: Optional[threading.Thread] = None
        self._shm_cache: Optional[Any] = None
        #: Survives shutdown so the final report still describes the ring.
        self._shm_desc: Dict[str, Any] = {"enabled": False}
        self._started = False
        self._stopping = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Bind the address, launch the workers, and start the monitor."""
        if self._started:
            raise ParameterError("fleet already started")
        self._started = True
        try:
            if self.reuse_port:
                # Bound but never listening: reserves the port (and resolves a
                # ':0' request) without entering the kernel's balancing set.
                self._placeholder = _reuseport_socket(self.host, self.port)
                self.port = self._placeholder.getsockname()[1]
            else:
                self._listen_sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                self._listen_sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
                self._listen_sock.bind((self.host, self.port))
                self._listen_sock.listen(128)
                self.port = self._listen_sock.getsockname()[1]
            self._create_shm_segment()
            for slot in range(self.workers):
                self._launch(slot)
                if slot + 1 < self.workers and self.stagger_seconds:
                    time.sleep(self.stagger_seconds)
            self._monitor = threading.Thread(
                target=self._monitor_loop, name="serve-fleet-monitor", daemon=True
            )
            self._monitor.start()
        except BaseException:
            # A bind or spawn failure part-way through must not leak live
            # worker processes behind an exception the caller sees before
            # __enter__ returns (so __exit__ would never run).
            self.shutdown(drain=False)
            raise

    def _create_shm_segment(self) -> None:
        """Create the fleet's shared-memory cache ring, if the spec asks.

        The supervisor owns the segment's whole lifecycle — created here,
        unlinked in :meth:`shutdown` — so a crashed (even SIGKILLed) worker
        can never leak it: workers only attach.  An environment without
        usable shared memory (no ``/dev/shm``, no space) downgrades the
        fleet to memory + disk caching instead of failing the start.
        """
        if not (self.spec.use_cache and self.spec.shm_bytes > 0):
            return
        from ..errors import CacheError
        from ._shmcache import DEFAULT_SLOT_BYTES, SharedMemoryResultCache

        try:
            self._shm_cache = SharedMemoryResultCache.create(
                self.spec.shm_bytes,
                slot_bytes=self.spec.shm_slot_bytes or DEFAULT_SLOT_BYTES,
                ttl_seconds=self.spec.ttl_seconds,
            )
        except CacheError as exc:
            self._shm_desc = {"enabled": False, "error": str(exc)}
            return
        self._shm_desc = {
            "enabled": True,
            "name": self._shm_cache.name,
            "slot_count": self._shm_cache.slot_count,
            "slot_bytes": self._shm_cache.slot_bytes,
        }
        self.spec = dataclasses.replace(self.spec, shm_name=self._shm_cache.name)

    def _slot_spec(self, slot: int) -> WorkerSpec:
        """The spec for one worker slot (per-slot backend in a mixed fleet)."""
        if self.backends is None:
            return self.spec
        return dataclasses.replace(self.spec, backend=self.backends[slot % len(self.backends)])

    def _launch(self, slot: int) -> None:
        recv_conn, send_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                slot,
                self._slot_spec(slot),
                self.host,
                self.port,
                send_conn,
                self._listen_sock,
                self.heartbeat_interval,
            ),
            name=f"repro-serve-worker-{slot}",
        )
        try:
            process.start()
        except BaseException:
            recv_conn.close()
            send_conn.close()
            raise
        send_conn.close()  # the worker holds the only sender now
        get_logger().info("fleet.worker_launch", slot=slot, pid=process.pid)
        with self._lock:
            self._handles[slot] = _WorkerHandle(slot, process, recv_conn, self._clock())
            self._restart_at.pop(slot, None)

    def __enter__(self) -> "ServeFleet":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(drain=exc_type is None)

    # ------------------------------------------------------------------ #
    # monitor
    # ------------------------------------------------------------------ #
    def _handle_message(self, handle: _WorkerHandle, message: Tuple[str, Dict[str, Any]]) -> None:
        kind, payload = message
        handle.last_seen = self._clock()
        if kind == "ready":
            handle.state = "ready"
            handle.pid = int(payload.get("pid", handle.pid or 0))
            handle.admin_port = int(payload["admin_port"])
        elif kind == "stopped":
            handle.state = "stopped"
            handle.final = payload
        # heartbeats only refresh last_seen

    def _drain_conn(self, handle: _WorkerHandle) -> None:
        while handle.conn is not None:
            try:
                if not handle.conn.poll():
                    return
                message = handle.conn.recv()
            except (EOFError, OSError):
                try:
                    handle.conn.close()
                except OSError:
                    pass
                handle.conn = None
                return
            self._handle_message(handle, message)

    def _monitor_loop(self) -> None:
        while not self._stopping:
            try:
                self._monitor_tick()
            except Exception as exc:  # noqa: BLE001 - supervision must never die
                # A transient failure (fd pressure during a respawn, a pipe
                # racing closed) must not kill the monitor thread — losing it
                # would silently disable crash-restart for the fleet's whole
                # life.  Log it, count it, back off briefly, keep supervising.
                self._monitor_errors += 1
                get_logger().warning(
                    "fleet.monitor_error", error=type(exc).__name__, detail=str(exc)
                )
                time.sleep(0.5)

    def _monitor_tick(self) -> None:
        with self._lock:
            handles = list(self._handles.values())
        conns = [h.conn for h in handles if h.conn is not None]
        if conns:
            try:
                multiprocessing.connection.wait(conns, timeout=0.1)
            except OSError:  # pragma: no cover - conn closed mid-wait
                pass
        else:
            time.sleep(0.1)
        now = self._clock()
        for handle in handles:
            self._drain_conn(handle)
            if self._stopping:
                return
            if handle.state == "stopped":
                # The supervisor only SIGTERMs workers *after* this thread
                # has been joined, so any clean exit observed here is
                # unsolicited (an operator or node agent signalled the pid)
                # — the slot must come back, like any other death.
                self._schedule_restart(handle, now)
                continue
            if handle.state == "dead":
                continue  # already scheduled for restart
            alive = handle.process.is_alive()
            if alive and handle.state in ("starting", "ready"):
                # "starting" workers are covered too — a worker wedged
                # before its first ready message must not stall the slot
                # forever (last_seen is the launch time until then).
                if now - handle.last_seen > self.heartbeat_timeout:
                    # Wedged: no heartbeat for the whole timeout. Kill it
                    # hard; the death path below schedules the restart.
                    handle.process.terminate()
                    handle.process.join(timeout=1.0)
                    if handle.process.is_alive():  # pragma: no cover - stubborn
                        handle.process.kill()
                    alive = False
            if not alive:
                self._drain_conn(handle)  # collect any final words first
                self._schedule_restart(handle, now)
        with self._lock:
            due = [slot for slot, when in self._restart_at.items() if when <= self._clock()]
        for slot in due:
            if self._stopping:
                return
            try:
                self._launch(slot)
            except OSError:
                # Spawn failed (fd/process pressure): try again after the
                # slot's current backoff instead of abandoning it.
                with self._lock:
                    self._restart_at[slot] = self._clock() + self._backoff.get(
                        slot, self.restart_backoff_seconds
                    )
                continue
            self._restarts += 1

    def _schedule_restart(self, handle: _WorkerHandle, now: float) -> None:
        with self._lock:
            if handle.slot in self._restart_at:
                return  # already scheduled
            uptime = now - handle.started_at
            backoff = self._backoff.get(handle.slot, self.restart_backoff_seconds)
            if uptime >= self.restart_stable_seconds:
                backoff = self.restart_backoff_seconds
            next_backoff = min(backoff * 2.0, self.restart_backoff_max_seconds)
            self._backoff[handle.slot] = next_backoff
            self._restart_at[handle.slot] = now + backoff
            handle.state = "dead"
        get_logger().warning(
            "fleet.worker_restart",
            slot=handle.slot,
            pid=handle.pid,
            uptime_seconds=uptime,
            backoff_seconds=backoff,
        )
        handle.process.join(timeout=0)  # reap the zombie

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def _ready_handles(self) -> List[_WorkerHandle]:
        with self._lock:
            return [
                handle
                for handle in self._handles.values()
                if handle.state == "ready" and handle.admin_port is not None
            ]

    def _count_scrape_failure(self, handle: _WorkerHandle, reason: str) -> None:
        with self._lock:
            self._scrape_failures += 1
        get_logger().warning("fleet.scrape_failure", slot=handle.slot, reason=reason)

    def _scrape(self, handle: _WorkerHandle, path_timeout: float = 5.0) -> Optional[Dict[str, Any]]:
        from ._http_client import SegmentClient

        # A worker can die (or be killed and restarted) between being listed
        # as ready and answering the scrape, or answer with a truncated or
        # non-object body mid-crash.  Every failure mode degrades to "skip
        # this worker and count it" — an aggregate over the survivors beats
        # no aggregate at all.
        try:
            with SegmentClient("127.0.0.1", handle.admin_port, timeout=path_timeout) as client:
                snapshot = client.metrics()
        except (ServeError, OSError, ValueError) as exc:
            self._count_scrape_failure(handle, type(exc).__name__)
            return None
        if not isinstance(snapshot, dict):
            self._count_scrape_failure(handle, "malformed snapshot")
            return None
        return snapshot

    def metrics(self) -> Dict[str, Any]:
        """Aggregated fleet metrics: scrape every ready worker and merge.

        Returns the merged ``service.metrics()`` document (counters summed,
        percentiles re-derived from merged sketches) plus a ``fleet``
        section and the raw per-worker snapshots under ``workers``.
        """
        per_worker: List[Dict[str, Any]] = []
        snapshots: List[Dict[str, Any]] = []
        for handle in self._ready_handles():
            snapshot = self._scrape(handle)
            if snapshot is None:
                continue
            worker_info = snapshot.pop("worker", {"slot": handle.slot})
            ingress_http = snapshot.pop("ingress_http", None)
            snapshot.pop("http", None)  # admin-server counters: scrapes only
            per_worker.append(
                {"worker": worker_info, "http": ingress_http, "metrics": snapshot}
            )
            snapshots.append(snapshot)
        merged = merge_worker_metrics(snapshots)
        merged["scrape_failures"] = self._scrape_failures
        merged["fleet"] = self.describe_fleet()
        merged["workers"] = per_worker
        return merged

    def prometheus(self) -> str:
        """The merged fleet metrics as Prometheus text exposition."""
        from ..obs import render_prometheus

        return render_prometheus(self.metrics())

    def trace(self, trace_id: str) -> Optional[Dict[str, Any]]:
        """Fleet-wide flight-recorder lookup.

        SO_REUSEPORT means the supervisor cannot know which worker served a
        given request, so it asks each ready worker's admin endpoint in turn
        and returns the first retained trace (``None`` if every ring has
        evicted it).  Dead or malformed workers are skipped and counted,
        like a metrics scrape.
        """
        from ._http_client import SegmentClient

        for handle in self._ready_handles():
            try:
                with SegmentClient("127.0.0.1", handle.admin_port, timeout=5.0) as client:
                    document = client.trace(trace_id)
            except (ServeError, OSError, ValueError) as exc:
                self._count_scrape_failure(handle, type(exc).__name__)
                continue
            if document is not None:
                return document
        return None

    def traces(self, slowest: int = 10) -> List[Dict[str, Any]]:
        """The fleet's ``slowest`` retained traces, merged across workers."""
        from ._http_client import SegmentClient

        collected: List[Dict[str, Any]] = []
        for handle in self._ready_handles():
            try:
                with SegmentClient("127.0.0.1", handle.admin_port, timeout=5.0) as client:
                    documents = client.traces(slowest=slowest)
            except (ServeError, OSError, ValueError) as exc:
                self._count_scrape_failure(handle, type(exc).__name__)
                continue
            collected.extend(doc for doc in documents if isinstance(doc, dict))
        collected.sort(key=lambda doc: _as_float(doc.get("duration_seconds", 0.0)), reverse=True)
        return collected[: max(int(slowest), 0)]

    def final_metrics(self) -> Dict[str, Any]:
        """Merged *final* snapshots reported by workers as they drained.

        Only workers that exited cleanly (SIGTERM drain) report one; a
        SIGKILLed worker's counters die with it and are visible only in
        earlier live scrapes.
        """
        with self._lock:
            finals = [
                handle.final for handle in self._handles.values() if handle.final is not None
            ]
        snapshots = [final["metrics"] for final in finals if "metrics" in final]
        merged = merge_worker_metrics(snapshots)
        merged["fleet"] = self.describe_fleet()
        merged["workers"] = finals
        return merged

    def health(self) -> Dict[str, Any]:
        """Fleet-aware readiness: healthy while ≥1 worker accepts traffic."""
        from ._http_client import SegmentClient

        workers = []
        accepting = 0
        with self._lock:
            handles = list(self._handles.values())
        for handle in handles:
            ok = False
            if handle.state == "ready" and handle.admin_port is not None:
                try:
                    with SegmentClient("127.0.0.1", handle.admin_port, timeout=2.0) as client:
                        ok = client.health().get("status_code") == 200
                except ServeError:
                    ok = False
            accepting += bool(ok)
            workers.append(
                {
                    "slot": handle.slot,
                    "pid": handle.pid,
                    "state": handle.state,
                    "accepting": bool(ok),
                }
            )
        return {
            "status": "ok" if accepting else "unavailable",
            "accepting": accepting,
            "workers": workers,
        }

    def describe_fleet(self) -> Dict[str, Any]:
        """Static + lifecycle facts about the fleet itself."""
        with self._lock:
            alive = sum(1 for h in self._handles.values() if h.process.is_alive())
            ready = sum(1 for h in self._handles.values() if h.state == "ready")
            pids = {h.slot: h.pid for h in self._handles.values()}
        shm = dict(self._shm_desc)
        return {
            "workers": self.workers,
            "alive": alive,
            "ready": ready,
            "restarts": self._restarts,
            "scrape_failures": self._scrape_failures,
            "monitor_errors": self._monitor_errors,
            "reuse_port": self.reuse_port,
            "host": self.host,
            "port": self.port,
            "pids": pids,
            "shm": shm,
            "backends": {
                slot: self._slot_spec(slot).backend or "default"
                for slot in range(self.workers)
            },
        }

    @property
    def restarts(self) -> int:
        """Total crash/wedge restarts performed by the supervisor."""
        return self._restarts

    def worker_pids(self) -> List[int]:
        """PIDs of the current worker processes (restarts change them)."""
        with self._lock:
            return [h.pid for h in self._handles.values() if h.pid and h.process.is_alive()]

    def wait_ready(self, timeout: float = 30.0, workers: Optional[int] = None) -> bool:
        """Block until ``workers`` (default: all) workers are accepting."""
        target = self.workers if workers is None else int(workers)
        deadline = self._clock() + float(timeout)
        while self._clock() < deadline:
            with self._lock:
                ready = sum(1 for h in self._handles.values() if h.state == "ready")
            if ready >= target:
                return True
            time.sleep(0.05)
        return False

    # ------------------------------------------------------------------ #
    # shutdown
    # ------------------------------------------------------------------ #
    def shutdown(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop the fleet: SIGTERM every worker, wait for the drain, escalate.

        With ``drain=True`` each worker finishes its in-flight requests and
        reports final metrics before exiting (collect them afterwards with
        :meth:`final_metrics`).  ``drain=False`` skips the grace period and
        kills immediately.  Idempotent.
        """
        if not self._started or self._stopping:
            return
        self._stopping = True
        get_logger().info("fleet.shutdown", drain=drain, workers=self.workers)
        if self._monitor is not None:
            # Wait for the monitor to actually exit before snapshotting the
            # handles: a restart `_launch` that was already past the stopping
            # check may register a brand-new worker, and bailing early would
            # leave that worker orphaned (and the port still served).  The
            # monitor has no unbounded waits, so this join terminates.
            while self._monitor.is_alive():
                self._monitor.join(timeout=1.0)
        with self._lock:
            handles = list(self._handles.values())
        grace = self.drain_grace_seconds if timeout is None else float(timeout)
        if drain:
            for handle in handles:
                if handle.process.is_alive():
                    handle.process.terminate()  # SIGTERM: workers drain
            deadline = self._clock() + grace
            while self._clock() < deadline:
                for handle in handles:
                    self._drain_conn(handle)
                if all(not handle.process.is_alive() for handle in handles):
                    break
                time.sleep(0.05)
        for handle in handles:
            if handle.process.is_alive():
                handle.process.kill()
            handle.process.join(timeout=5.0)
            self._drain_conn(handle)
            if handle.conn is not None:
                try:
                    handle.conn.close()
                except OSError:  # pragma: no cover - already closed
                    pass
                handle.conn = None
        for sock in (self._placeholder, self._listen_sock):
            if sock is not None:
                try:
                    sock.close()
                except OSError:  # pragma: no cover - already closed
                    pass
        self._placeholder = None
        self._listen_sock = None
        if self._shm_cache is not None:
            # Every worker is dead by now; the owner unlinks the segment so
            # nothing survives in /dev/shm past the fleet's lifetime.
            self._shm_cache.close()
            self._shm_cache = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ServeFleet(host={self.host!r}, port={self.port}, workers={self.workers}, "
            f"reuse_port={self.reuse_port})"
        )

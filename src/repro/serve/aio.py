"""Deprecated import path — import these names from :mod:`repro.serve`.

The implementation moved to a private module; this shim keeps the old deep
path importable (and identical — ``repro.serve.aio is repro.serve._aio``,
so existing monkeypatches and isinstance checks still hold) while steering
callers to the stable public surface.
"""

import sys as _sys
import warnings as _warnings

from . import _aio as _real

_warnings.warn(
    "repro.serve.aio is a deprecated import path and will be removed in a "
    "future release; import its public names from repro.serve instead",
    DeprecationWarning,
    stacklevel=2,
)

_sys.modules[__name__] = _real

"""Small blocking client for the HTTP serving front end.

:class:`SegmentClient` is the reference consumer of
:class:`~repro.serve.http.HttpSegmentationServer` — tests, benchmarks and
examples drive the server through it rather than hand-rolling request
bytes.  It is deliberately stdlib-only (``http.client``) and *blocking*:
the interesting concurrency lives server-side, and a plain synchronous
client is what an external user would reach for first.

Transport choices mirror the server contract:

* images travel as ``.npy`` bodies by default (exact dtype/shape round
  trip — the property the content-addressed cache keys on);
* error responses are mapped back to the library's own exception types, so
  ``client.segment(...)`` raises :class:`~repro.errors.QuotaExceededError`
  exactly like the in-process ``await service.submit(...)`` would;
* transport failures are mapped too: connection refused/reset, a timeout,
  or a half-written response all raise
  :class:`~repro.errors.ServeConnectionError` (original error in
  ``__cause__``).  Against a worker *fleet* mid-restart or mid-drain this
  is the whole client contract — a request either completes bit-identically
  or surfaces one well-typed exception; it never hangs a socket beyond the
  configured timeout and never silently retries a non-idempotent POST.
"""

from __future__ import annotations

import base64
import dataclasses
import http.client
import io
import json
import socket
from typing import Any, Dict, Optional

import numpy as np

from ..errors import (
    DeadlineExceededError,
    ImageDecodeError,
    ParameterError,
    PayloadError,
    QuotaExceededError,
    ServeConnectionError,
    ServeError,
    ServiceClosedError,
    ServiceOverloadedError,
)

__all__ = ["SegmentClient", "HttpSegmentResult"]

#: Error-body ``error`` field → exception class raised client-side.
_ERROR_TYPES = {
    "QuotaExceededError": QuotaExceededError,
    "DeadlineExceededError": DeadlineExceededError,
    "ServiceOverloadedError": ServiceOverloadedError,
    "ServiceClosedError": ServiceClosedError,
    "PayloadError": PayloadError,
    "ImageDecodeError": ImageDecodeError,
    "ParameterError": ParameterError,
}


@dataclasses.dataclass
class HttpSegmentResult:
    """One ``POST /v1/segment`` answer, parsed back into arrays/scalars."""

    labels: np.ndarray
    num_segments: int
    method: str
    fast_path: str
    cache_hit: bool
    coalesced: bool
    runtime_seconds: float
    priority: str
    metrics: Dict[str, float]
    #: Trace id echoed by the server (``X-Repro-Trace-Id``) — look the
    #: request's span tree up at ``GET /v1/trace/{id}`` while it is retained.
    trace_id: Optional[str] = None

    @property
    def shape(self) -> tuple:
        """Shape of the label map."""
        return tuple(self.labels.shape)


class SegmentClient:
    """Blocking HTTP client for ``repro-segment serve --http``.

    Parameters
    ----------
    host, port:
        The serving endpoint.
    timeout:
        Socket timeout in seconds for each request.

    The underlying connection is keep-alive and re-established on demand,
    so one client instance can issue many sequential requests; it is not
    thread-safe (use one client per thread in stress tests).
    """

    def __init__(self, host: str, port: int, timeout: float = 60.0):
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self._conn: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        return self._conn

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[Dict[str, str]] = None,
    ):
        try:
            return self._request_raw(method, path, body, headers)
        except (http.client.HTTPException, socket.timeout, OSError) as exc:
            # One well-typed failure for "the server is unreachable / went
            # away mid-request" — against a draining or restarting fleet the
            # caller sees a library exception, never a bare socket error.
            self.close()
            raise ServeConnectionError(
                f"{method} http://{self.host}:{self.port}{path} failed: "
                f"{type(exc).__name__}: {exc}"
            ) from exc

    def _request_raw(
        self,
        method: str,
        path: str,
        body: Optional[bytes],
        headers: Optional[Dict[str, str]],
    ):
        fresh = self._conn is None
        conn = self._connection()
        try:
            conn.request(method, path, body=body, headers=headers or {})
            response = conn.getresponse()
        except (http.client.BadStatusLine, ConnectionResetError, BrokenPipeError):
            # A reused keep-alive socket the server closed in the meantime:
            # retry once on a fresh connection.  Failures on a *fresh*
            # connection — and timeouts anywhere — propagate instead:
            # silently re-sending a non-idempotent POST could duplicate
            # server-side work and double the caller's wait.
            self.close()
            if fresh:
                raise
            conn = self._connection()
            conn.request(method, path, body=body, headers=headers or {})
            response = conn.getresponse()
        payload = response.read()
        if response.getheader("Connection", "").lower() == "close":
            self.close()
        return response, payload

    def _raise_for_status(self, response, payload: bytes) -> None:
        if 200 <= response.status < 300:
            return
        try:
            document = json.loads(payload.decode("utf-8"))
            name = document.get("error", "")
            detail = document.get("detail", payload.decode("utf-8", "replace"))
        except (ValueError, UnicodeDecodeError):
            name, detail = "", payload.decode("utf-8", "replace")
        exc_type = _ERROR_TYPES.get(name, ServeError)
        raise exc_type(f"HTTP {response.status}: {detail}")

    @staticmethod
    def _result_from_document(
        document: Dict[str, Any], trace_id: Optional[str] = None
    ) -> HttpSegmentResult:
        return HttpSegmentResult(
            labels=np.asarray(document["labels"]),
            num_segments=int(document["num_segments"]),
            method=str(document["method"]),
            fast_path=str(document["fast_path"]),
            cache_hit=bool(document["cache_hit"]),
            coalesced=bool(document["coalesced"]),
            runtime_seconds=float(document["runtime_seconds"]),
            priority=str(document["priority"]),
            metrics={key: float(value) for key, value in document["metrics"].items()},
            trace_id=trace_id,
        )

    def close(self) -> None:
        """Close the underlying connection (reopened on the next request)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "SegmentClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # endpoints
    # ------------------------------------------------------------------ #
    def health(self) -> Dict[str, Any]:
        """The ``/healthz`` document plus its ``status_code`` (200 or 503)."""
        response, payload = self._request("GET", "/healthz")
        document = json.loads(payload.decode("utf-8"))
        document["status_code"] = response.status
        return document

    def metrics(self) -> Dict[str, Any]:
        """The full ``service.metrics()`` snapshot from ``/v1/metrics``."""
        response, payload = self._request("GET", "/v1/metrics")
        self._raise_for_status(response, payload)
        return json.loads(payload.decode("utf-8"))

    def capabilities(self) -> Dict[str, Any]:
        """The server's stable feature contract from ``/v1/capabilities``.

        Reports the API version, accepted/produced payload formats, and the
        server's array backends — ``backend`` (active) and ``backends`` (a
        name → available map) — so callers can pick formats and route work
        before sending a single image.
        """
        response, payload = self._request("GET", "/v1/capabilities")
        self._raise_for_status(response, payload)
        return json.loads(payload.decode("utf-8"))

    def metrics_prometheus(self) -> str:
        """The Prometheus text exposition from ``/v1/metrics?format=prometheus``."""
        response, payload = self._request("GET", "/v1/metrics?format=prometheus")
        self._raise_for_status(response, payload)
        return payload.decode("utf-8")

    def trace(self, trace_id: str) -> Optional[Dict[str, Any]]:
        """One retained trace document by id, or ``None`` once evicted."""
        response, payload = self._request("GET", f"/v1/trace/{trace_id}")
        if response.status == 404:
            return None
        self._raise_for_status(response, payload)
        return json.loads(payload.decode("utf-8"))

    def traces(self, slowest: int = 10) -> list:
        """The ``slowest`` retained trace documents, slowest first."""
        response, payload = self._request("GET", f"/v1/traces?slowest={int(slowest)}")
        self._raise_for_status(response, payload)
        return json.loads(payload.decode("utf-8")).get("traces", [])

    def segment(
        self,
        image: np.ndarray,
        *,
        priority: Optional[str] = None,
        deadline_ms: Optional[float] = None,
        client_id: Optional[str] = None,
        accept: str = "json",
        trace_id: Optional[str] = None,
    ) -> HttpSegmentResult:
        """Segment one image over the wire; raises the mapped serve errors.

        ``accept="json"`` (default) parses the JSON document; ``"npy"``
        requests the labels as an ``.npy`` body (scalar metadata rides in
        response headers, ``metrics`` is then empty).  ``trace_id`` travels
        as ``X-Repro-Trace-Id`` (forcing the request to be traced); either
        way the server's echoed id lands in the result's ``trace_id``.
        """
        if accept not in ("json", "npy"):
            raise ParameterError('accept must be "json" or "npy"')
        buffer = io.BytesIO()
        np.save(buffer, np.ascontiguousarray(image), allow_pickle=False)
        headers = {"Content-Type": "application/x-npy"}
        if accept == "npy":
            headers["Accept"] = "application/x-npy"
        if priority is not None:
            headers["X-Repro-Priority"] = str(priority)
        if deadline_ms is not None:
            headers["X-Repro-Deadline-Ms"] = f"{float(deadline_ms):g}"
        if client_id is not None:
            headers["X-Repro-Client"] = str(client_id)
        if trace_id is not None:
            headers["X-Repro-Trace-Id"] = str(trace_id)
        response, payload = self._request("POST", "/v1/segment", buffer.getvalue(), headers)
        self._raise_for_status(response, payload)
        echoed = response.getheader("X-Repro-Trace-Id")
        if accept == "npy":
            labels = np.load(io.BytesIO(payload), allow_pickle=False)
            return HttpSegmentResult(
                labels=labels,
                num_segments=int(response.getheader("X-Repro-Num-Segments", "0")),
                method=response.getheader("X-Repro-Method", ""),
                fast_path=response.getheader("X-Repro-Fast-Path", "direct"),
                cache_hit=response.getheader("X-Repro-Cache-Hit") == "true",
                coalesced=response.getheader("X-Repro-Coalesced") == "true",
                runtime_seconds=float(response.getheader("X-Repro-Runtime-Seconds", "0")),
                priority=str(priority or "normal").lower(),
                metrics={},
                trace_id=echoed,
            )
        return self._result_from_document(json.loads(payload.decode("utf-8")), trace_id=echoed)

    def segment_json(
        self,
        image_bytes: bytes,
        *,
        priority: Optional[str] = None,
        deadline_ms: Optional[float] = None,
        client_id: Optional[str] = None,
    ) -> HttpSegmentResult:
        """Submit pre-encoded image-file bytes through the JSON envelope."""
        payload: Dict[str, Any] = {"image": base64.b64encode(image_bytes).decode("ascii")}
        if priority is not None:
            payload["priority"] = str(priority)
        if deadline_ms is not None:
            payload["deadline_ms"] = float(deadline_ms)
        if client_id is not None:
            payload["client_id"] = str(client_id)
        response, body = self._request(
            "POST",
            "/v1/segment",
            json.dumps(payload).encode("utf-8"),
            {"Content-Type": "application/json"},
        )
        self._raise_for_status(response, body)
        return self._result_from_document(
            json.loads(body.decode("utf-8")),
            trace_id=response.getheader("X-Repro-Trace-Id"),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SegmentClient(host={self.host!r}, port={self.port})"

"""Shared-memory result cache: the lock-free same-host L1.5 tier.

A fleet of worker processes (:mod:`repro.serve.fleet`) shares one disk L2,
but every warm hit out of it pays a file open plus an npz inflate — real
milliseconds on the serving path.  :class:`SharedMemoryResultCache` removes
that cost for workers on the *same host*: one ``multiprocessing.shared_memory``
segment holds a fixed ring of slots, keyed by the existing content digests,
that any worker can read with a single memcpy and no coordination.

Design
------
* **fixed geometry** — the segment is a superblock plus ``slot_count`` slots
  of ``slot_bytes`` each; a key is direct-mapped to one slot by its digest,
  so there is no cross-process allocator, free list, or index to maintain.
  A colliding store simply overwrites the previous occupant (counted as an
  eviction) — the disk L2 below remains the tier of record.
* **seqlock validation** — every slot carries a generation counter: a writer
  bumps it to an *odd* value before touching the slot, writes the payload,
  and publishes by storing the next *even* value together with the key
  digest, payload length, a CRC-32 of the payload, and the store timestamp.
  A reader snapshots the header, copies the payload out, then re-reads the
  generation: any concurrent writer makes the generations disagree and the
  read degrades to a miss (counted in ``torn_reads``).  Two *writers* racing
  the same slot can interleave beneath a stable even generation, which is
  what the payload CRC catches — a mixed payload fails the checksum and is
  likewise just a miss.
* **lifecycle split** — the fleet supervisor :meth:`create`\\ s (and later
  unlinks) the segment; workers :meth:`attach` and only ever close their own
  mapping.  An attach deliberately *suppresses* Python's ``resource_tracker``
  registration: on CPython 3.11 every ``SharedMemory`` mapping is registered
  unconditionally, so an exiting worker's tracker would otherwise unlink the
  live segment out from under the rest of the fleet.

Values are the ``(SegmentationResult, binary)`` pairs the other tiers store,
serialized *uncompressed* (a JSON metadata blob plus the raw array bytes):
a warm hit costs one memcpy and one ``np.frombuffer`` instead of the disk
tier's zlib inflate, and the decoded labels array is a zero-copy view over
the copied-out buffer — exactly what the HTTP layer's zero-copy ``.npy``
responses build on.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import threading
import time
import zlib
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Optional, Tuple

import numpy as np

from ..base import SegmentationResult
from ..errors import CacheError, ParameterError
from ._cache import CacheKey
from ._diskcache import _json_safe

__all__ = ["ShmCacheStats", "SharedMemoryResultCache", "DEFAULT_SLOT_BYTES"]

#: Default per-slot capacity — holds the labels + binary of a ~512×512 image.
DEFAULT_SLOT_BYTES = 4 * 1024 * 1024

#: Segment names start with this so host tooling (and the CI leak check) can
#: audit ``/dev/shm/repro-shm-*`` without knowing any fleet's exact name.
_NAME_PREFIX = "repro-shm-"

_FORMAT = "repro-shm-cache/v1"

#: Superblock: magic, version, slot_count, slot_bytes (padded to 64 bytes).
_MAGIC = b"RPROSHM\x00"
_SUPER = struct.Struct("<8sIIQ")
_SUPER_SIZE = 64

#: Slot header: generation, key digest, payload length, CRC-32, stored_at
#: monotonic timestamp — same-host by construction, so ``time.monotonic()``
#: values are comparable across the fleet's processes (padded to 64 bytes
#: so payloads start aligned).
_HEADER = struct.Struct("<Q32sIId")
_HEADER_SIZE = 64
_GEN = struct.Struct("<Q")


def _key_digest(key: CacheKey) -> bytes:
    """A fixed 32-byte digest of a cache key (the parts are free-form text)."""
    image_part, config_part = key
    hasher = hashlib.blake2b(digest_size=32)
    hasher.update(str(image_part).encode("utf-8"))
    hasher.update(b"\x00")
    hasher.update(str(config_part).encode("utf-8"))
    return hasher.digest()


@dataclass(frozen=True)
class ShmCacheStats:
    """Point-in-time effectiveness counters of a shared-memory cache tier.

    ``torn_reads`` counts lookups that found the right slot but lost a race
    with a writer (generation flip or CRC mismatch) — each one also counts
    as a miss.  ``store_skips`` counts values too large for a slot (they
    stay disk-only).  ``evictions`` counts direct-mapped overwrites of a
    *different* key's live entry.
    """

    hits: int
    misses: int
    stores: int
    store_skips: int
    evictions: int
    torn_reads: int
    expirations: int
    errors: int
    currsize: int
    slot_count: int
    slot_bytes: int
    size_bytes: int
    hit_bytes: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when the cache has never been queried)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> dict:
        """JSON-friendly form used by service metric snapshots."""
        return {
            "hits": self.hits,
            "hit_bytes": self.hit_bytes,
            "misses": self.misses,
            "stores": self.stores,
            "store_skips": self.store_skips,
            "evictions": self.evictions,
            "torn_reads": self.torn_reads,
            "expirations": self.expirations,
            "errors": self.errors,
            "currsize": self.currsize,
            "slot_count": self.slot_count,
            "slot_bytes": self.slot_bytes,
            "size_bytes": self.size_bytes,
            "hit_rate": self.hit_rate,
        }


class SharedMemoryResultCache:
    """Fixed-ring shared-memory cache behind the standard ``get``/``put``.

    Construct through :meth:`create` (the segment owner — typically the
    fleet supervisor) or :meth:`attach` (worker processes).  The owner's
    :meth:`close` unlinks the segment; an attacher's only unmaps it.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        *,
        owner: bool,
        slot_count: int,
        slot_bytes: int,
        ttl_seconds: Optional[float] = None,
    ):
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ParameterError("ttl_seconds must be positive or None")
        self._shm = shm
        self._owner = bool(owner)
        self.slot_count = int(slot_count)
        self.slot_bytes = int(slot_bytes)
        self.ttl_seconds = float(ttl_seconds) if ttl_seconds is not None else None
        self._closed = False
        # In-process writers serialize per cache; cross-process writer races
        # remain possible and are what the CRC in the slot header is for.
        self._write_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._hits = 0
        self._hit_bytes = 0
        self._misses = 0
        self._stores = 0
        self._store_skips = 0
        self._evictions = 0
        self._torn_reads = 0
        self._expirations = 0
        self._errors = 0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @classmethod
    def create(
        cls,
        size_bytes: int,
        *,
        name: Optional[str] = None,
        slot_bytes: int = DEFAULT_SLOT_BYTES,
        ttl_seconds: Optional[float] = None,
    ) -> "SharedMemoryResultCache":
        """Create and own a fresh segment sized for ``size_bytes`` in total.

        Raises :class:`~repro.errors.CacheError` when shared memory is
        unavailable (no ``/dev/shm``, no space) or ``size_bytes`` is too
        small for even one slot — callers degrade to the disk tier.
        """
        if slot_bytes <= _HEADER_SIZE:
            raise ParameterError(f"slot_bytes must exceed the {_HEADER_SIZE}-byte header")
        slot_count = (int(size_bytes) - _SUPER_SIZE) // int(slot_bytes)
        if slot_count < 1:
            raise CacheError(
                f"shm size of {size_bytes} bytes holds no {slot_bytes}-byte slot"
            )
        if name is None:
            name = f"{_NAME_PREFIX}{os.getpid()}-{os.urandom(4).hex()}"
        total = _SUPER_SIZE + slot_count * int(slot_bytes)
        try:
            shm = shared_memory.SharedMemory(name=name, create=True, size=total)
        except (OSError, ValueError) as exc:
            raise CacheError(f"cannot create shared-memory segment {name!r}: {exc}") from exc
        # A fresh POSIX segment is zero-filled, so every slot already reads
        # as empty (even generation 0, payload length 0); only the
        # superblock needs writing.
        _SUPER.pack_into(shm.buf, 0, _MAGIC, 1, slot_count, int(slot_bytes))
        return cls(
            shm,
            owner=True,
            slot_count=slot_count,
            slot_bytes=int(slot_bytes),
            ttl_seconds=ttl_seconds,
        )

    @classmethod
    def attach(
        cls, name: str, *, ttl_seconds: Optional[float] = None
    ) -> "SharedMemoryResultCache":
        """Attach to an existing segment (a worker joining the fleet's ring).

        Raises :class:`~repro.errors.CacheError` when the segment does not
        exist or its superblock is not one of ours.
        """
        # CPython 3.11 registers *every* mapping with the resource tracker,
        # which treats it as owned: an attacher's tracker would unlink the
        # supervisor's live segment when the attacher exits (cleanly or not).
        # Suppress the registration rather than unregistering afterwards —
        # spawned workers share the supervisor's tracker process, so a second
        # worker's unregister would hit an already-removed name and make the
        # tracker log spurious KeyErrors at shutdown.
        original_register = resource_tracker.register

        def _no_shm_register(name_arg, rtype):
            if rtype != "shared_memory":
                original_register(name_arg, rtype)

        resource_tracker.register = _no_shm_register
        try:
            shm = shared_memory.SharedMemory(name=name, create=False)
        except (OSError, ValueError) as exc:
            raise CacheError(f"cannot attach shared-memory segment {name!r}: {exc}") from exc
        finally:
            resource_tracker.register = original_register
        try:
            magic, version, slot_count, slot_bytes = _SUPER.unpack_from(shm.buf, 0)
            if magic != _MAGIC or version != 1:
                raise CacheError(f"segment {name!r} is not a repro shm cache")
            if _SUPER_SIZE + slot_count * slot_bytes > shm.size or slot_count < 1:
                raise CacheError(f"segment {name!r} has an inconsistent superblock")
        except (CacheError, struct.error) as exc:
            shm.close()
            if isinstance(exc, CacheError):
                raise
            raise CacheError(f"segment {name!r} has no readable superblock") from exc
        return cls(
            shm,
            owner=False,
            slot_count=int(slot_count),
            slot_bytes=int(slot_bytes),
            ttl_seconds=ttl_seconds,
        )

    @property
    def name(self) -> str:
        """The segment name (attach with this from any same-host process)."""
        return self._shm.name

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran (lookups then miss, stores error)."""
        return self._closed

    def close(self) -> None:
        """Unmap the segment; the owner also unlinks it.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except OSError:  # pragma: no cover - platform specific
            pass
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #
    @staticmethod
    def _encode_parts(
        value: Tuple[SegmentationResult, np.ndarray],
    ) -> Tuple[bytes, np.ndarray, np.ndarray]:
        segmentation, binary = value
        labels = np.ascontiguousarray(np.asarray(segmentation.labels))
        mask = np.ascontiguousarray(np.asarray(binary))
        extras = {}
        for attr, item in segmentation.extras.items():
            keep, converted = _json_safe(item, depth=1)
            if keep and isinstance(attr, str):
                extras[attr] = converted
        meta = {
            "format": _FORMAT,
            "num_segments": int(segmentation.num_segments),
            "runtime_seconds": float(segmentation.runtime_seconds),
            "method": str(segmentation.method),
            "extras": extras,
            "labels": {"dtype": labels.dtype.str, "shape": list(labels.shape)},
            "binary": {"dtype": mask.dtype.str, "shape": list(mask.shape)},
        }
        return json.dumps(meta).encode("utf-8"), labels, mask

    @staticmethod
    def _array_from(payload: bytearray, offset: int, spec: dict) -> Tuple[np.ndarray, int]:
        dtype = np.dtype(str(spec["dtype"]))
        shape = tuple(int(dim) for dim in spec["shape"])
        count = 1
        for dim in shape:
            count *= dim
        nbytes = count * dtype.itemsize
        if offset + nbytes > len(payload):
            raise CacheError("shm payload truncated")
        array = np.frombuffer(payload, dtype=dtype, count=count, offset=offset)
        return array.reshape(shape), offset + nbytes

    @classmethod
    def _decode(cls, payload: bytearray) -> Tuple[SegmentationResult, np.ndarray]:
        (meta_len,) = struct.unpack_from("<I", payload, 0)
        if 4 + meta_len > len(payload):
            raise CacheError("shm payload truncated")
        meta = json.loads(bytes(payload[4 : 4 + meta_len]).decode("utf-8"))
        if meta.get("format") != _FORMAT:
            raise CacheError(f"unsupported shm entry format {meta.get('format')!r}")
        labels, offset = cls._array_from(payload, 4 + meta_len, meta["labels"])
        mask, _ = cls._array_from(payload, offset, meta["binary"])
        segmentation = SegmentationResult(
            labels=labels,
            num_segments=int(meta["num_segments"]),
            runtime_seconds=float(meta["runtime_seconds"]),
            method=str(meta["method"]),
            extras=dict(meta["extras"]),
        )
        return segmentation, mask

    # ------------------------------------------------------------------ #
    # cache protocol
    # ------------------------------------------------------------------ #
    def _slot_base(self, digest: bytes) -> int:
        index = int.from_bytes(digest[:8], "little") % self.slot_count
        return _SUPER_SIZE + index * self.slot_bytes

    def get(self, key: CacheKey) -> Optional[Tuple[SegmentationResult, np.ndarray]]:
        """The cached value, or ``None`` — torn/raced entries are misses."""
        if self._closed:
            with self._stats_lock:
                self._misses += 1
            return None
        digest = _key_digest(key)
        base = self._slot_base(digest)
        buf = self._shm.buf
        try:
            gen, stored_digest, payload_len, crc, stored_at = _HEADER.unpack_from(buf, base)
        except (struct.error, ValueError):  # pragma: no cover - mapping gone
            with self._stats_lock:
                self._misses += 1
                self._errors += 1
            return None
        if payload_len == 0 or stored_digest != digest:
            with self._stats_lock:
                self._misses += 1
            return None
        if gen & 1 or payload_len > self.slot_bytes - _HEADER_SIZE:
            with self._stats_lock:
                self._misses += 1
                self._torn_reads += 1
            return None
        # One memcpy out of the ring, then validate: the generation must not
        # have moved while we copied, and the payload must checksum (the CRC
        # is what catches two *writers* interleaving under an even
        # generation, which the seqlock alone cannot see).
        payload = bytearray(buf[base + _HEADER_SIZE : base + _HEADER_SIZE + payload_len])
        (gen_after,) = _GEN.unpack_from(buf, base)
        if gen_after != gen or zlib.crc32(payload) != crc:
            with self._stats_lock:
                self._misses += 1
                self._torn_reads += 1
            return None
        # Monotonic, and same-host by construction (the segment cannot be
        # shared across machines), so ages are directly comparable across
        # worker processes; the clamp is pure defence against a garbage
        # stored_at that still passed the CRC.
        age = max(0.0, time.monotonic() - stored_at)
        if self.ttl_seconds is not None and age > self.ttl_seconds:
            with self._stats_lock:
                self._misses += 1
                self._expirations += 1
            return None
        try:
            value = self._decode(payload)
        except Exception:  # noqa: BLE001 - any undecodable entry is a miss
            with self._stats_lock:
                self._misses += 1
                self._errors += 1
            return None
        with self._stats_lock:
            self._hits += 1
            self._hit_bytes += payload_len
        return value

    def put(self, key: CacheKey, value: Tuple[SegmentationResult, np.ndarray]) -> None:
        """Publish an entry into its direct-mapped slot (oversize: skipped)."""
        if self._closed:
            with self._stats_lock:
                self._errors += 1
            return
        try:
            meta_bytes, labels, mask = self._encode_parts(value)
        except Exception:  # noqa: BLE001 - unencodable values stay disk-only
            with self._stats_lock:
                self._errors += 1
            return
        labels_view = memoryview(labels).cast("B")
        mask_view = memoryview(mask).cast("B")
        total = 4 + len(meta_bytes) + labels_view.nbytes + mask_view.nbytes
        if total > self.slot_bytes - _HEADER_SIZE:
            with self._stats_lock:
                self._store_skips += 1
            return
        digest = _key_digest(key)
        base = self._slot_base(digest)
        buf = self._shm.buf
        evicted = False
        try:
            with self._write_lock:
                gen, old_digest, old_len, _, _ = _HEADER.unpack_from(buf, base)
                evicted = old_len > 0 and not (gen & 1) and old_digest != digest
                start_gen = gen + 1 + (gen & 1)  # next odd: write in progress
                _GEN.pack_into(buf, base, start_gen)
                offset = base + _HEADER_SIZE
                struct.pack_into("<I", buf, offset, len(meta_bytes))
                crc = zlib.crc32(struct.pack("<I", len(meta_bytes)))
                offset += 4
                for piece in (memoryview(meta_bytes), labels_view, mask_view):
                    buf[offset : offset + piece.nbytes] = piece
                    crc = zlib.crc32(piece, crc)
                    offset += piece.nbytes
                # Publish: even generation + digest + length + CRC, in one
                # header store (a reader racing this pack sees a CRC/payload
                # mismatch and degrades to a miss).
                _HEADER.pack_into(buf, base, start_gen + 1, digest, total, crc, time.monotonic())
        except (ValueError, struct.error, BufferError):  # pragma: no cover - mapping gone
            with self._stats_lock:
                self._errors += 1
            return
        with self._stats_lock:
            self._stores += 1
            if evicted:
                self._evictions += 1

    def clear(self) -> None:
        """Empty every slot (statistics counters are preserved)."""
        if self._closed:
            return
        buf = self._shm.buf
        with self._write_lock:
            for index in range(self.slot_count):
                base = _SUPER_SIZE + index * self.slot_bytes
                (gen,) = _GEN.unpack_from(buf, base)
                _HEADER.pack_into(buf, base, gen + 2 + (gen & 1), b"\x00" * 32, 0, 0, 0.0)

    def _live_slots(self) -> int:
        if self._closed:
            return 0
        buf = self._shm.buf
        live = 0
        for index in range(self.slot_count):
            base = _SUPER_SIZE + index * self.slot_bytes
            gen, _, payload_len, _, _ = _HEADER.unpack_from(buf, base)
            if payload_len > 0 and not (gen & 1):
                live += 1
        return live

    def __len__(self) -> int:
        return self._live_slots()

    def __contains__(self, key: CacheKey) -> bool:
        if self._closed:
            return False
        digest = _key_digest(key)
        base = self._slot_base(digest)
        gen, stored_digest, payload_len, _, _ = _HEADER.unpack_from(self._shm.buf, base)
        return payload_len > 0 and not (gen & 1) and stored_digest == digest

    @property
    def stats(self) -> ShmCacheStats:
        """Effectiveness counters plus the ring's live-slot occupancy."""
        currsize = self._live_slots()
        with self._stats_lock:
            return ShmCacheStats(
                hits=self._hits,
                hit_bytes=self._hit_bytes,
                misses=self._misses,
                stores=self._stores,
                store_skips=self._store_skips,
                evictions=self._evictions,
                torn_reads=self._torn_reads,
                expirations=self._expirations,
                errors=self._errors,
                currsize=currsize,
                slot_count=self.slot_count,
                slot_bytes=self.slot_bytes,
                size_bytes=_SUPER_SIZE + self.slot_count * self.slot_bytes,
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SharedMemoryResultCache(name={self.name!r}, slots={self.slot_count}, "
            f"slot_bytes={self.slot_bytes}, owner={self._owner}, closed={self._closed})"
        )

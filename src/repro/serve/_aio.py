"""Asyncio-native serving front end: priority lanes, deadlines, quotas.

:class:`AsyncSegmentationService` is the ingress tier the ROADMAP's
"heavy multi-user traffic" north star asks for.  It keeps the exact
engine/caching machinery of the threaded
:class:`~repro.serve.service.SegmentationService` but replaces the blocking
``submit -> Future`` surface with a coroutine and replaces the single FIFO
queue with a *multi-lane* ingress that knows about request urgency:

* **priority lanes** — every request lands in the HIGH, NORMAL or LOW lane
  (:class:`Priority`).  Batches are assembled by *weighted* draining (default
  4:2:1), so HIGH-lane latency stays bounded while a saturating LOW-lane
  backlog still makes progress — weighted fairness, not strict priority, so
  no lane can starve another forever.
* **deadline-aware shedding** — ``await submit(image, deadline=0.25)``
  promises an answer within 250 ms or an early
  :class:`~repro.errors.DeadlineExceededError`.  Admission control rejects a
  request whose estimated completion (EWMA service time × queue position)
  already exceeds its deadline — failing in microseconds instead of
  occupying queue space it cannot use — and lane draining sheds queued
  requests whose deadline passed while they waited.
* **per-client quotas** — an optional token bucket per ``client_id``
  (``client_rate`` requests/second, burst ``client_burst``) turns one noisy
  tenant into :class:`~repro.errors.QuotaExceededError` for that tenant
  instead of latency for everyone.
* **tiered caching** — any ``get``/``put`` cache works, including the
  :class:`~repro.serve.cache.TieredResultCache` of an in-memory L1 over a
  persistent :class:`~repro.serve.diskcache.DiskResultCache` L2, so a
  restarted service answers its warm set from disk, bit-identical to cold
  results.
* **graceful async shutdown** — :meth:`aclose` drains admitted work (or
  cancels it with ``drain=False``); ``async with`` gives the drained path.

The event loop is never blocked: engine batches, cache I/O and scoring run in
the loop's default thread executor, and the loop only assembles batches and
resolves futures.  One service instance belongs to one event loop.
"""

from __future__ import annotations

import asyncio
import dataclasses
import enum
import functools
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

import numpy as np

from ..base import SegmentationResult
from ..engine import (
    DEFAULT_DELTA_TILE_SHAPE,
    DEFAULT_MAX_STREAMS,
    BatchSegmentationEngine,
    DeltaStreamEngine,
    PipelineResult,
    binarize_largest_background,
)
from ..errors import (
    DeadlineExceededError,
    ParameterError,
    QuotaExceededError,
    ServiceClosedError,
    ServiceOverloadedError,
)
from ..metrics.runtime import LatencyRecorder
from ..obs.log import get_logger
from ..obs.trace import Trace, Tracer
from ._batcher import AdaptiveConfig, AdaptiveController
from ._cache import CacheKey, ResultCache, TileCacheAdapter, config_digest, image_digest
from ._service import _engine_fingerprint, _segment_image

__all__ = ["Priority", "TokenBucket", "AsyncSegmentationService", "DEFAULT_LANE_WEIGHTS"]


class Priority(enum.IntEnum):
    """Request urgency lane; lower value drains first (and more often)."""

    HIGH = 0
    NORMAL = 1
    LOW = 2

    @classmethod
    def coerce(cls, value: Any) -> "Priority":
        """Accept a :class:`Priority`, its int value, or its name (any case)."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            try:
                return cls[value.strip().upper()]
            except KeyError:
                raise ParameterError(
                    f"priority must be one of {[p.name.lower() for p in cls]}, got {value!r}"
                ) from None
        try:
            return cls(int(value))
        except (ValueError, TypeError):
            raise ParameterError(f"invalid priority {value!r}") from None


#: Batch slots offered to each lane per weighted-drain cycle (HIGH:NORMAL:LOW).
DEFAULT_LANE_WEIGHTS: Dict[Priority, int] = {
    Priority.HIGH: 4,
    Priority.NORMAL: 2,
    Priority.LOW: 1,
}

#: EWMA smoothing for the per-request service-time estimate.
_EWMA_ALPHA = 0.2

#: Idle poll period of the worker while waiting for traffic or close.
_IDLE_POLL_SECONDS = 0.05

#: Sweep fully-refilled (idle) client token buckets once the table holds
#: this many — bounds memory when client ids are ephemeral (UUIDs, conn ids).
_BUCKET_SWEEP_THRESHOLD = 1024


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second up to ``burst`` capacity.

    Not thread-safe on purpose — it is only touched from the event loop.
    """

    def __init__(self, rate: float, burst: float, clock: Callable[[], float] = time.monotonic):
        if rate <= 0:
            raise ParameterError("rate must be positive")
        if burst < 1:
            raise ParameterError("burst must be >= 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._refilled_at = clock()

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; never blocks."""
        now = self._clock()
        elapsed = max(0.0, now - self._refilled_at)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._refilled_at = now
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False

    @property
    def available(self) -> float:
        """Tokens currently available (after a virtual refill)."""
        elapsed = max(0.0, self._clock() - self._refilled_at)
        return min(self.burst, self._tokens + elapsed * self.rate)


class _AsyncRequest:
    """One queued request: payload, lane, absolute deadline, asyncio future."""

    __slots__ = (
        "image",
        "ground_truth",
        "void_mask",
        "key",
        "priority",
        "deadline_at",
        "client_id",
        "future",
        "submitted_at",
        "trace",
        "stream_id",
    )

    def __init__(
        self,
        image,
        ground_truth,
        void_mask,
        key,
        priority,
        deadline_at,
        client_id,
        future,
        submitted_at,
        trace=None,
        stream_id=None,
    ):
        self.image = image
        self.ground_truth = ground_truth
        self.void_mask = void_mask
        self.key = key
        self.priority = priority
        self.deadline_at = deadline_at
        self.client_id = client_id
        self.future = future
        self.submitted_at = submitted_at
        self.trace = trace
        self.stream_id = stream_id


def _score_request(
    engine: BatchSegmentationEngine,
    ground_truth: Optional[np.ndarray],
    void_mask: Optional[np.ndarray],
    segmentation: SegmentationResult,
    binary: Optional[np.ndarray],
    cache_hit: bool,
    coalesced: bool,
) -> PipelineResult:
    """The per-request evaluation protocol (identical to the sync service)."""
    tagged = dataclasses.replace(
        segmentation,
        extras={**segmentation.extras, "cache_hit": cache_hit, "coalesced": coalesced},
    )
    if ground_truth is None and binary is not None:
        return PipelineResult(segmentation=tagged, binary=binary, metrics={})
    return engine.pipeline.score(tagged, ground_truth, void_mask)


class _LaneState:
    """Queue + counters for one priority lane."""

    __slots__ = (
        "queue",
        "submitted",
        "completed",
        "shed_admission",
        "shed_expired",
        "latency",
        "delta_frames",
        "delta_tiles_reused",
        "delta_tiles_recomputed",
    )

    def __init__(self) -> None:
        self.queue: Deque[_AsyncRequest] = deque()
        self.submitted = 0
        self.completed = 0
        self.shed_admission = 0
        self.shed_expired = 0
        self.latency = LatencyRecorder()
        self.delta_frames = 0
        self.delta_tiles_reused = 0
        self.delta_tiles_recomputed = 0


class AsyncSegmentationService:
    """Asyncio serving front end over a :class:`BatchSegmentationEngine`.

    Parameters
    ----------
    engine:
        The engine doing the work; its executor computes each micro-batch.
    max_batch_size, max_wait_seconds:
        Micro-batching knobs: flush a batch at this size, or this long after
        traffic started accumulating.
    queue_size:
        Bound on the *total* number of queued requests across all lanes;
        submits beyond it raise :class:`~repro.errors.ServiceOverloadedError`.
    cache:
        ``"default"`` (a 256-entry in-memory LRU), ``None``, or any object
        with ``get(key) -> value|None`` and ``put(key, value)`` — e.g. a
        :class:`~repro.serve.cache.TieredResultCache` over a
        :class:`~repro.serve.diskcache.DiskResultCache`.
    lane_weights:
        Batch slots per weighted-drain cycle for each lane (default 4:2:1).
    client_rate, client_burst:
        Optional per-client token-bucket quota (requests/second and burst).
        ``None`` disables quotas.
    default_deadline:
        Deadline in seconds applied to submits that do not pass their own
        (``None`` = no deadline).
    adaptive:
        Enable the adaptive control loop: every
        ``adaptive_config.tick_seconds`` the service re-derives its
        micro-batch flush size and lane drain weights from the EWMA service
        time and per-lane depth/shed telemetry
        (:class:`~repro.serve.batcher.AdaptiveController`).  The configured
        ``lane_weights`` become the per-lane floors and ``max_batch_size``
        the default batch-size ceiling — adaptation shrinks and regrows
        batches inside ``[1, max_batch_size]``, never past the configured
        bound.  Chosen values plus adjustment counts are reported under
        ``metrics()["adaptive"]``.
    adaptive_config:
        Overrides the control-loop corridor and cadence
        (:class:`~repro.serve.batcher.AdaptiveConfig`); when given, its
        ``max_batch_size`` replaces the default configured-value ceiling.
    clock:
        Monotonic time source, injectable for deterministic tests.
    tracer:
        The :class:`~repro.obs.trace.Tracer` minting and retaining
        per-request traces (the flight recorder).  Defaults to a tracer on
        the service clock at sample rate 1.0; pass
        ``Tracer(sample_rate=0.0)`` to disable tracing entirely.
    delta:
        Enable the dirty-tile incremental path for requests that carry a
        ``stream_id`` (:class:`~repro.engine.DeltaStreamEngine`): only tiles
        that changed since the stream's previous frame are re-segmented, the
        rest are stitched from the cached ancestor — bit-identical to a full
        recompute.  Requires a pointwise segmenter; otherwise stream
        requests transparently take the normal path.  Per-tile label blocks
        are additionally published through the service cache (all tiers), so
        fleet workers share tiles.
    delta_tile_shape:
        ``(H, W)`` of the delta grid (default
        :data:`~repro.engine.DEFAULT_DELTA_TILE_SHAPE`).
    delta_max_streams:
        Streams tracked before the least-recently-updated ancestor is
        dropped (a dropped stream pays one full recompute, nothing else).
    """

    def __init__(
        self,
        engine: BatchSegmentationEngine,
        max_batch_size: int = 16,
        max_wait_seconds: float = 0.005,
        queue_size: int = 256,
        cache: Any = "default",
        lane_weights: Optional[Dict[Priority, int]] = None,
        client_rate: Optional[float] = None,
        client_burst: Optional[float] = None,
        default_deadline: Optional[float] = None,
        adaptive: bool = False,
        adaptive_config: Optional[AdaptiveConfig] = None,
        clock: Callable[[], float] = time.monotonic,
        tracer: Optional[Tracer] = None,
        delta: bool = True,
        delta_tile_shape: Optional[Tuple[int, int]] = None,
        delta_max_streams: int = DEFAULT_MAX_STREAMS,
    ):
        if not isinstance(engine, BatchSegmentationEngine):
            raise ParameterError("engine must be a BatchSegmentationEngine instance")
        if max_batch_size < 1:
            raise ParameterError("max_batch_size must be >= 1")
        if max_wait_seconds < 0:
            raise ParameterError("max_wait_seconds must be >= 0")
        if queue_size < 1:
            raise ParameterError("queue_size must be >= 1")
        if default_deadline is not None and default_deadline <= 0:
            raise ParameterError("default_deadline must be positive or None")
        self.engine = engine
        if cache == "default":
            cache = ResultCache(max_entries=256)
        if cache is not None and not (
            callable(getattr(cache, "get", None)) and callable(getattr(cache, "put", None))
        ):
            raise ParameterError('cache must provide get/put, be None, or "default"')
        self.cache = cache
        self.max_batch_size = int(max_batch_size)
        self.max_wait_seconds = float(max_wait_seconds)
        self.queue_size = int(queue_size)
        self.default_deadline = default_deadline
        weights = dict(DEFAULT_LANE_WEIGHTS)
        if lane_weights:
            for lane, weight in lane_weights.items():
                weights[Priority.coerce(lane)] = int(weight)
        if any(weight < 1 for weight in weights.values()):
            raise ParameterError("lane weights must be >= 1")
        self.lane_weights = weights
        self._base_lane_weights = dict(weights)
        self._adaptive: Optional[AdaptiveController] = None
        if adaptive:
            if adaptive_config is None:
                # The configured batch size stays the hard ceiling: adaptive
                # may shrink batches under load and grow them back, but it
                # must never override the caller's explicit --max-batch
                # bound.  An explicit adaptive_config replaces this corridor.
                adaptive_config = AdaptiveConfig(max_batch_size=int(max_batch_size))
            self._adaptive = AdaptiveController(
                adaptive_config,
                batch_size=int(max_batch_size),
                lane_weights=weights,
            )
            # The controller may clamp the starting size into its corridor.
            self.max_batch_size = self._adaptive.batch_size
        if client_rate is not None and client_rate <= 0:
            raise ParameterError("client_rate must be positive or None")
        self.client_rate = client_rate
        self.client_burst = float(client_burst) if client_burst is not None else None
        self._clock = clock
        self._config_digest = config_digest(_engine_fingerprint(engine))
        self._lanes: Dict[Priority, _LaneState] = {lane: _LaneState() for lane in Priority}
        self._buckets: Dict[Any, TokenBucket] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._worker_task: Optional["asyncio.Task[None]"] = None
        self._wakeup: Optional[asyncio.Event] = None
        self._space: Optional[asyncio.Event] = None  # lane space freed / closing
        self._closed = False
        self._admitting = 0  # submits past the closed check, not yet queued
        self._started_at: Optional[float] = None
        self._requests = 0
        self._completed = 0
        self._failed = 0
        self._cancelled = 0
        self._coalesced = 0
        self._quota_rejections = 0
        self._batches = 0
        self._batched_items = 0
        self._ewma_request_seconds = 0.0
        self._latency = LatencyRecorder()
        self.tracer = tracer if tracer is not None else Tracer(clock=clock)
        self._cache_traced = bool(getattr(cache, "supports_trace", False))
        # Dirty-tile incremental path for stream requests.  Built even for
        # non-pointwise segmenters (it degrades to the full path itself);
        # the per-tile cache hook rides the service cache so every tier —
        # including a fleet's shared shm/disk tiers — carries tile entries.
        self._delta: Optional[DeltaStreamEngine] = None
        self._delta_frames = 0
        self._delta_tiles_reused = 0
        self._delta_tiles_recomputed = 0
        if delta:
            self._delta = DeltaStreamEngine(
                engine,
                tile_shape=(
                    delta_tile_shape if delta_tile_shape is not None else DEFAULT_DELTA_TILE_SHAPE
                ),
                max_streams=delta_max_streams,
                tile_cache=(
                    TileCacheAdapter(self.cache, self._config_digest)
                    if self.cache is not None
                    else None
                ),
            )
        # Slowest-recent traced completion: the exemplar attached to the
        # Prometheus latency histogram.  Refreshed when a slower request
        # lands or the current exemplar grows stale (completions-based age,
        # so an idle service keeps its last evidence).
        self._exemplar: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        """True once :meth:`aclose` has begun; new submits are rejected."""
        return self._closed

    def _ensure_worker(self) -> None:
        loop = asyncio.get_running_loop()
        if self._loop is None:
            self._loop = loop
            self._wakeup = asyncio.Event()
            self._space = asyncio.Event()
            self._started_at = self._clock()
        elif self._loop is not loop:
            raise ParameterError("AsyncSegmentationService is bound to a single event loop")
        if self._worker_task is None or self._worker_task.done():
            self._worker_task = loop.create_task(self._worker_loop())

    def begin_drain(self) -> None:
        """Reject new submits immediately; queued work keeps draining.

        This is the synchronous first phase of :meth:`aclose`, exposed for
        network front ends: flipping it turns the health check to "draining"
        (so load balancers stop routing here) while every admitted request
        still runs to completion.  Follow up with :meth:`aclose` once the
        front end's own in-flight requests have settled.
        """
        self._closed = True
        if self._wakeup is not None:
            self._wakeup.set()
        if self._space is not None:
            self._space.set()  # wake blocked submitters so they observe closed

    async def aclose(self, drain: bool = True) -> None:
        """Reject new submits, then drain (default) or shed the queued work.

        With ``drain=False`` every queued request fails fast with
        :class:`~repro.errors.ServiceClosedError`; the batch currently being
        computed still completes either way.  Idempotent, and composes with
        :meth:`begin_drain` (shedding a queue that already drained is a
        no-op).
        """
        self.begin_drain()
        if not drain:
            for lane_state in self._lanes.values():
                while lane_state.queue:
                    request = lane_state.queue.popleft()
                    if not request.future.done():
                        request.future.set_exception(
                            ServiceClosedError("service closed before the request ran")
                        )
                        self._cancelled += 1
            if self._wakeup is not None:
                self._wakeup.set()
        if self._worker_task is not None:
            await asyncio.gather(self._worker_task, return_exceptions=True)
        # Tiers holding OS resources (an shm mapping) release them here —
        # after the worker task is done, so no batch can still be writing.
        closer = getattr(self.cache, "close", None)
        if callable(closer):
            closer()

    async def __aenter__(self) -> "AsyncSegmentationService":
        self._ensure_worker()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.aclose(drain=exc_type is None)

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #
    def _queue_depth(self) -> int:
        return sum(len(lane.queue) for lane in self._lanes.values())

    def _depth_ahead_of(self, priority: Priority) -> int:
        """Requests a new arrival in ``priority`` would realistically wait on.

        Weighted draining means lower lanes are not strictly ahead, but
        counting every request in an equal-or-higher lane is the conservative
        admission estimate — shedding early beats promising a deadline the
        queue cannot keep.
        """
        return sum(len(self._lanes[lane].queue) for lane in Priority if lane <= priority)

    def estimate_completion_seconds(self, priority: Priority) -> float:
        """EWMA service time × (queue position + 1); 0 before calibration."""
        if self._ewma_request_seconds <= 0.0:
            return 0.0
        return self._ewma_request_seconds * (self._depth_ahead_of(priority) + 1)

    def _check_quota(self, client_id: Any) -> None:
        if self.client_rate is None:
            return
        bucket = self._buckets.get(client_id)
        if bucket is None:
            if len(self._buckets) >= _BUCKET_SWEEP_THRESHOLD:
                # A fully-refilled bucket is indistinguishable from a brand
                # new one, so idle clients can be dropped without changing
                # any quota decision — keeps the table bounded when client
                # ids are ephemeral.
                self._buckets = {
                    key: b for key, b in self._buckets.items() if b.available < b.burst
                }
            burst = self.client_burst if self.client_burst is not None else self.client_rate
            bucket = TokenBucket(self.client_rate, max(1.0, burst), clock=self._clock)
            self._buckets[client_id] = bucket
        if not bucket.try_acquire():
            self._quota_rejections += 1
            raise QuotaExceededError(
                f"client {client_id!r} exceeded {self.client_rate:g} requests/s "
                f"(burst {bucket.burst:g})"
            )

    # ------------------------------------------------------------------ #
    # request path
    # ------------------------------------------------------------------ #
    async def submit(
        self,
        image: np.ndarray,
        ground_truth: Optional[np.ndarray] = None,
        void_mask: Optional[np.ndarray] = None,
        *,
        priority: Any = Priority.NORMAL,
        deadline: Optional[float] = None,
        client_id: Any = None,
        block: bool = True,
        trace: Optional[Trace] = None,
        stream_id: Optional[str] = None,
    ) -> PipelineResult:
        """Segment one image and return its scored result.

        ``priority`` selects the lane (a :class:`Priority`, its name, or its
        int value).  ``deadline`` is in seconds from now; a request that
        cannot (or did not) make it raises
        :class:`~repro.errors.DeadlineExceededError`.  ``client_id`` keys the
        optional per-client quota.  With ``block=True`` (default) a submit
        that finds every lane slot taken *waits* for space — the same
        backpressure contract as the sync service — while ``block=False``
        raises :class:`~repro.errors.ServiceOverloadedError` immediately.
        Deadline, quota and close checks are never blocking.  The caller's
        buffer is snapshotted before queueing, exactly like the sync service.

        ``trace`` threads an externally-owned :class:`~repro.obs.trace.Trace`
        (the HTTP edge's) through the request; without one the service's own
        tracer samples and records a trace end-to-end around the submit.

        ``stream_id`` marks the image as one frame of a temporal stream
        (the HTTP edge forwards ``X-Repro-Stream-Id`` here).  Frames of the
        same stream take the dirty-tile delta path when the service was built
        with ``delta=True``: unchanged tiles are stitched from the stream's
        previous frame instead of recomputed — bit-identical results, large
        throughput wins on slowly-changing streams.
        """
        owned = False
        if trace is None:
            trace = self.tracer.begin()
            owned = trace is not None
        if not owned:
            return await self._submit_impl(
                image,
                ground_truth,
                void_mask,
                priority=priority,
                deadline=deadline,
                client_id=client_id,
                block=block,
                trace=trace,
                stream_id=stream_id,
            )
        start = trace.clock()
        try:
            result = await self._submit_impl(
                image,
                ground_truth,
                void_mask,
                priority=priority,
                deadline=deadline,
                client_id=client_id,
                block=block,
                trace=trace,
                stream_id=stream_id,
            )
        except BaseException as exc:
            trace.annotate(error=type(exc).__name__)
            raise
        finally:
            trace.add("service.submit", start, trace.clock())
            self.tracer.record(trace)
        return result

    async def _submit_impl(
        self,
        image: np.ndarray,
        ground_truth: Optional[np.ndarray],
        void_mask: Optional[np.ndarray],
        *,
        priority: Any,
        deadline: Optional[float],
        client_id: Any,
        block: bool,
        trace: Optional[Trace],
        stream_id: Optional[str] = None,
    ) -> PipelineResult:
        if self._closed:
            raise ServiceClosedError("cannot submit to a closed service")
        self._ensure_worker()
        lane = Priority.coerce(priority)
        state = self._lanes[lane]
        if deadline is None:
            deadline = self.default_deadline
        self._check_quota(client_id)

        now = self._clock()
        if deadline is not None and deadline <= 0:
            state.shed_admission += 1
            raise DeadlineExceededError("deadline already expired at submission")

        # Snapshot *before* the digest and before any await: the coroutine
        # suspends at the cache probe and the backpressure wait, and a caller
        # reusing its buffer in the meantime (the streaming video-frame
        # pattern) must not divorce the digest from the bytes it describes —
        # that would poison the content-addressed cache.
        arr = np.array(image, copy=True)
        key: CacheKey = (image_digest(arr), self._config_digest)
        loop = asyncio.get_running_loop()

        # The cache probe yields to the executor, opening a window in which
        # aclose() could observe empty lanes and let the worker exit before
        # this request lands in its lane.  The _admitting counter keeps the
        # worker alive until every submit past the closed check has either
        # queued or returned.
        self._admitting += 1
        if trace is not None:
            trace.annotate(priority=lane.name.lower())
            if stream_id is not None:
                trace.annotate(stream_id=str(stream_id))
        try:
            if self.cache is not None:
                cached = await loop.run_in_executor(
                    None, functools.partial(self._cache_get, key, trace)
                )
                if cached is not None:
                    segmentation, binary = cached
                    score_start = self._clock()
                    result = await loop.run_in_executor(
                        None,
                        functools.partial(
                            _score_request,
                            self.engine,
                            ground_truth,
                            void_mask,
                            segmentation,
                            binary,
                            True,
                            False,
                        ),
                    )
                    if trace is not None:
                        trace.add("scoring", score_start, self._clock())
                        trace.annotate(cache_hit=True)
                    self._requests += 1
                    state.submitted += 1
                    self._record_completion(state, now, trace=trace)
                    return result

            if deadline is not None:
                estimate = self.estimate_completion_seconds(lane)
                if estimate > deadline:
                    state.shed_admission += 1
                    raise DeadlineExceededError(
                        f"estimated completion {estimate * 1e3:.1f} ms exceeds the "
                        f"{deadline * 1e3:.1f} ms deadline"
                    )
            assert self._space is not None  # _ensure_worker ran above
            while self._queue_depth() >= self.queue_size:
                if not block:
                    raise ServiceOverloadedError(
                        f"service queues are full ({self.queue_size} pending requests)"
                    )
                # Lost-wakeup-safe wait: clear, re-check, then wait for the
                # worker to signal freed lane space (or for close).
                self._space.clear()
                if self._queue_depth() < self.queue_size:
                    break
                await self._space.wait()
                if self._closed:
                    raise ServiceClosedError("service closed while waiting for queue space")
                if deadline is not None and self._clock() - now >= deadline:
                    state.shed_admission += 1
                    raise DeadlineExceededError(
                        "deadline expired while waiting for queue space"
                    )

            request = _AsyncRequest(
                image=arr,  # already a private snapshot (copied above)
                ground_truth=(
                    np.array(ground_truth, copy=True) if ground_truth is not None else None
                ),
                void_mask=np.array(void_mask, copy=True) if void_mask is not None else None,
                key=key,
                priority=lane,
                deadline_at=now + deadline if deadline is not None else None,
                client_id=client_id,
                future=loop.create_future(),
                submitted_at=now,
                trace=trace,
                stream_id=str(stream_id) if stream_id is not None else None,
            )
            self._requests += 1
            state.submitted += 1
            state.queue.append(request)
            assert self._wakeup is not None  # _ensure_worker ran above
            self._wakeup.set()
        finally:
            self._admitting -= 1
        try:
            return await request.future
        except asyncio.CancelledError:
            self._cancelled += 1
            raise

    async def map(
        self,
        images,
        ground_truths=None,
        void_masks=None,
        return_errors: bool = False,
        **submit_kwargs,
    ):
        """Submit a whole batch concurrently; results come back in order.

        Every submit settles before this returns — no sibling task is left
        running detached.  With ``return_errors`` (the semantics of
        :meth:`BatchSegmentationEngine.map`) a failing slot holds its
        exception instance instead of aborting the batch; the default
        re-raises the first failure after all siblings have settled.
        """
        images = list(images)
        gts = list(ground_truths) if ground_truths is not None else [None] * len(images)
        voids = list(void_masks) if void_masks is not None else [None] * len(images)
        if not (len(images) == len(gts) == len(voids)):
            raise ParameterError("images, ground_truths and void_masks lengths differ")
        results = await asyncio.gather(
            *(
                self.submit(image, gt, void, **submit_kwargs)
                for image, gt, void in zip(images, gts, voids)
            ),
            return_exceptions=True,
        )
        if not return_errors:
            for outcome in results:
                if isinstance(outcome, BaseException):
                    raise outcome
        return results

    def _cache_get(self, key: CacheKey, trace: Optional[Trace] = None) -> Optional[Any]:
        """Cache probe recording a ``cache.probe`` span (tier spans nested).

        Runs on an executor/worker thread; a trace-aware cache (the tiered
        cache) additionally records one span per tier probed with
        hit-or-miss and payload bytes.
        """
        if self.cache is None:
            return None
        if trace is None:
            return self.cache.get(key)
        start = trace.clock()
        if self._cache_traced:
            value = self.cache.get(key, trace=trace)
        else:
            value = self.cache.get(key)
        trace.add("cache.probe", start, trace.clock(), hit=value is not None)
        return value

    # ------------------------------------------------------------------ #
    # worker
    # ------------------------------------------------------------------ #
    def _maybe_adapt(self) -> None:
        """One bounded control tick: re-derive batch size and lane weights."""
        controller = self._adaptive
        if controller is None:
            return
        now = self._clock()
        if not controller.due(now):
            return
        lane_stats = {
            lane: {
                "depth": len(state.queue),
                "shed": state.shed_admission + state.shed_expired,
            }
            for lane, state in self._lanes.items()
        }
        batch_size, weights, changed = controller.update(
            now, self._ewma_request_seconds, lane_stats
        )
        self.max_batch_size = batch_size
        self.lane_weights = weights
        if changed:
            get_logger().info(
                "adaptive.adjust",
                batch_size=batch_size,
                lane_weights={lane.name.lower(): weights[lane] for lane in Priority},
                ewma_request_seconds=self._ewma_request_seconds,
            )

    async def _worker_loop(self) -> None:
        assert self._wakeup is not None and self._loop is not None
        while True:
            self._maybe_adapt()
            # Phase 1: wait for traffic (or for close + empty lanes, with no
            # submit still on its way into a lane).
            while self._queue_depth() == 0:
                if self._closed and self._admitting == 0:
                    return
                self._maybe_adapt()
                self._wakeup.clear()
                try:
                    await asyncio.wait_for(self._wakeup.wait(), timeout=_IDLE_POLL_SECONDS)
                except asyncio.TimeoutError:
                    continue
            # Phase 2: let the batch fill until size or deadline (skipped when
            # draining a close — waiting would only delay the flush).
            window_started = self._clock()
            while not self._closed and self._queue_depth() < self.max_batch_size:
                remaining = self.max_wait_seconds - (self._clock() - window_started)
                if remaining <= 0:
                    break
                self._wakeup.clear()
                try:
                    await asyncio.wait_for(self._wakeup.wait(), timeout=remaining)
                except asyncio.TimeoutError:
                    break
            batch = self._drain_batch()
            if not batch:
                continue
            started = self._clock()
            for request in batch:
                if request.trace is not None:
                    request.trace.add(
                        "batch.assemble",
                        window_started,
                        started,
                        batch_size=len(batch),
                    )
            try:
                outcomes = await self._loop.run_in_executor(
                    None, functools.partial(self._process_batch, batch)
                )
            except Exception as exc:  # noqa: BLE001 - never kill the worker silently
                for request in batch:
                    if not request.future.done():
                        request.future.set_exception(exc)
                        self._failed += 1
                continue
            elapsed = self._clock() - started
            per_request = elapsed / len(batch)
            if self._ewma_request_seconds <= 0.0:
                self._ewma_request_seconds = per_request
            else:
                self._ewma_request_seconds += _EWMA_ALPHA * (
                    per_request - self._ewma_request_seconds
                )
            self._batches += 1
            self._batched_items += len(batch)
            self._resolve_outcomes(outcomes)

    def _drain_batch(self) -> List[_AsyncRequest]:
        """Weighted round-robin drain; sheds queued requests past deadline."""
        now = self._clock()
        batch: List[_AsyncRequest] = []
        while len(batch) < self.max_batch_size:
            progressed = False
            for lane in Priority:
                state = self._lanes[lane]
                quota = self.lane_weights[lane]
                while quota > 0 and state.queue and len(batch) < self.max_batch_size:
                    request = state.queue.popleft()
                    if request.future.done():
                        continue  # caller went away (cancelled) while queued
                    if request.deadline_at is not None and now > request.deadline_at:
                        state.shed_expired += 1
                        request.future.set_exception(
                            DeadlineExceededError(
                                f"deadline passed after {now - request.submitted_at:.3f}s "
                                f"in the {lane.name} lane"
                            )
                        )
                        continue
                    if request.trace is not None:
                        request.trace.add(
                            "queue.wait",
                            request.submitted_at,
                            now,
                            lane=lane.name.lower(),
                        )
                    batch.append(request)
                    quota -= 1
                    progressed = True
            if not progressed:
                break
        if self._space is not None and (batch or self._queue_depth() < self.queue_size):
            self._space.set()  # lane slots freed: wake blocked submitters
        return batch

    def _process_batch(
        self, batch: List[_AsyncRequest]
    ) -> List[Tuple[_AsyncRequest, Any, bool, bool, Optional[np.ndarray]]]:
        """Compute a batch on a worker thread; returns per-request outcomes.

        Outcome tuples are ``(request, result-or-exception, cache_hit,
        coalesced, binary)``; futures are resolved back on the event loop.
        """
        groups: Dict[CacheKey, List[_AsyncRequest]] = {}
        order: List[CacheKey] = []
        for request in batch:
            if request.key not in groups:
                groups[request.key] = []
                order.append(request.key)
            groups[request.key].append(request)

        outcomes: List[Tuple[_AsyncRequest, Any, bool, bool, Optional[np.ndarray]]] = []

        def _emit(requests, segmentation, cache_hit, binary):
            for position, request in enumerate(requests):
                coalesced = not cache_hit and position > 0
                trace = request.trace
                if trace is not None:
                    trace.annotate(cache_hit=cache_hit, coalesced=coalesced)
                    score_start = trace.clock()
                try:
                    result = _score_request(
                        self.engine,
                        request.ground_truth,
                        request.void_mask,
                        segmentation,
                        binary,
                        cache_hit,
                        coalesced,
                    )
                except Exception as exc:  # reprolint: disable=RL004 set on the request future below
                    outcomes.append((request, exc, cache_hit, coalesced, binary))
                    continue
                if trace is not None:
                    trace.add("scoring", score_start, trace.clock())
                outcomes.append((request, result, cache_hit, coalesced, binary))

        remaining: List[CacheKey] = []
        delta_keys: List[CacheKey] = []
        for group_key in order:
            cached = self._cache_get(group_key, groups[group_key][0].trace)
            if cached is not None:
                segmentation, binary = cached
                _emit(groups[group_key], segmentation, True, binary)
            elif self._delta is not None and groups[group_key][0].stream_id is not None:
                delta_keys.append(group_key)
            else:
                remaining.append(group_key)

        # Stream frames run the dirty-tile path sequentially: frame N+1 of a
        # stream diffs against frame N's committed ancestor, so scattering
        # frames of one stream across the executor would race the ancestor.
        for group_key in delta_keys:
            representative = groups[group_key][0]
            compute_start = self._clock()
            try:
                outcome: Any = self._delta.segment(representative.image, representative.stream_id)
            except Exception as exc:  # reprolint: disable=RL004 delivered on the request futures below
                outcome = exc
            compute_end = self._clock()
            requests = groups[group_key]
            if isinstance(outcome, Exception):
                for request in requests:
                    outcomes.append((request, outcome, False, False, None))
                continue
            delta_stats = outcome.extras.get("delta") or {}
            for request in requests:
                if request.trace is not None:
                    request.trace.add(
                        "engine.compute",
                        compute_start,
                        compute_end,
                        strategy=str(outcome.extras.get("fast_path", "direct")),
                        runtime_seconds=float(outcome.runtime_seconds),
                        tiles_reused=int(delta_stats.get("tiles_reused", 0)),
                        tiles_recomputed=int(delta_stats.get("tiles_recomputed", 0)),
                    )
            binary = binarize_largest_background(outcome.labels)
            if self.cache is not None:
                self.cache.put(group_key, (outcome, binary))
            _emit(requests, outcome, False, binary)

        if remaining:
            representatives = [groups[group_key][0].image for group_key in remaining]
            compute_start = self._clock()
            results = self.engine.executor.map(
                functools.partial(_segment_image, self.engine), representatives
            )
            compute_end = self._clock()
            for group_key, outcome in zip(remaining, results):
                requests = groups[group_key]
                if isinstance(outcome, Exception):
                    for request in requests:
                        outcomes.append((request, outcome, False, False, None))
                    continue
                for request in requests:
                    if request.trace is not None:
                        # The compute span covers the batch scatter window
                        # (groups run concurrently on the engine executor);
                        # per-image strategy/runtime ride along as fields.
                        request.trace.add(
                            "engine.compute",
                            compute_start,
                            compute_end,
                            strategy=str(outcome.extras.get("fast_path", "direct")),
                            runtime_seconds=float(outcome.runtime_seconds),
                            prepare_seconds=float(outcome.extras.get("prepare_seconds", 0.0)),
                            batch_groups=len(remaining),
                        )
                binary = binarize_largest_background(outcome.labels)
                if self.cache is not None:
                    self.cache.put(group_key, (outcome, binary))
                _emit(requests, outcome, False, binary)
        return outcomes

    def _resolve_outcomes(self, outcomes) -> None:
        now = self._clock()
        for request, result, cache_hit, coalesced, _ in outcomes:
            if request.future.done():
                continue  # cancelled while computing; nothing to deliver
            if isinstance(result, BaseException):
                request.future.set_exception(result)
                self._failed += 1
                continue
            if coalesced:
                self._coalesced += 1
            state = self._lanes[request.priority]
            if not cache_hit and not coalesced:
                # Freshly computed this batch (a whole-image cache hit may
                # carry stale delta extras from the frame that produced it —
                # counting those would double-book tiles).  Runs here, on the
                # event loop thread, like every other counter mutation.
                delta_stats = result.segmentation.extras.get("delta")
                if delta_stats and request.stream_id is not None:
                    reused = int(delta_stats.get("tiles_reused", 0))
                    recomputed = int(delta_stats.get("tiles_recomputed", 0))
                    state.delta_frames += 1
                    state.delta_tiles_reused += reused
                    state.delta_tiles_recomputed += recomputed
                    self._delta_frames += 1
                    self._delta_tiles_reused += reused
                    self._delta_tiles_recomputed += recomputed
            self._record_completion(state, request.submitted_at, now=now, trace=request.trace)
            request.future.set_result(result)

    def _record_completion(
        self,
        state: _LaneState,
        submitted_at: float,
        now: Optional[float] = None,
        trace: Optional[Trace] = None,
    ) -> None:
        elapsed = (now if now is not None else self._clock()) - submitted_at
        state.completed += 1
        state.latency.record(elapsed)
        self._latency.record(elapsed)
        self._completed += 1
        if trace is not None:
            exemplar = self._exemplar
            if (
                exemplar is None
                or elapsed >= exemplar["seconds"]
                or self._completed - exemplar["at"] > 512
            ):
                self._exemplar = {
                    "trace_id": trace.trace_id,
                    "seconds": elapsed,
                    "at": self._completed,
                }

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def metrics(self) -> Dict[str, Any]:
        """JSON-friendly snapshot: totals, per-lane health, cache tiers."""
        elapsed = self._clock() - self._started_at if self._started_at is not None else 0.0
        lanes = {}
        for lane in Priority:
            state = self._lanes[lane]
            lanes[lane.name.lower()] = {
                "depth": len(state.queue),
                "submitted": state.submitted,
                "completed": state.completed,
                "shed_admission": state.shed_admission,
                "shed_expired": state.shed_expired,
                "weight": self.lane_weights[lane],
                "latency_seconds": state.latency.summary(),
                "latency_sketch": state.latency.sketch(),
                "delta": {
                    "frames": state.delta_frames,
                    "tiles_reused": state.delta_tiles_reused,
                    "tiles_recomputed": state.delta_tiles_recomputed,
                },
            }
        cache_stats = None
        if self.cache is not None:
            stats = getattr(self.cache, "stats", None)
            if stats is not None:
                cache_stats = stats.as_dict() if hasattr(stats, "as_dict") else dict(stats)
        return {
            "requests": self._requests,
            "completed": self._completed,
            "failed": self._failed,
            "cancelled": self._cancelled,
            "coalesced": self._coalesced,
            "quota_rejections": self._quota_rejections,
            "shed": {
                "admission": sum(state.shed_admission for state in self._lanes.values()),
                "expired": sum(state.shed_expired for state in self._lanes.values()),
            },
            "queue_depth": self._queue_depth(),
            "lanes": lanes,
            "uptime_seconds": elapsed,
            "throughput_rps": self._completed / elapsed if elapsed > 0 else 0.0,
            "latency_seconds": self._latency.summary(),
            "latency_sketch": self._latency.sketch(),
            "batches": self._batches,
            "mean_batch_size": self._batched_items / self._batches if self._batches else 0.0,
            "ewma_request_seconds": self._ewma_request_seconds,
            "backend": self.engine.backend.name,
            "adaptive": self._adaptive_metrics(),
            "delta": self._delta_metrics(),
            "cache": cache_stats,
            "trace": self.tracer.counters(),
            "latency_exemplar": (
                {"trace_id": self._exemplar["trace_id"], "seconds": self._exemplar["seconds"]}
                if self._exemplar is not None
                else None
            ),
        }

    def trace(self, trace_id: str) -> Optional[Dict[str, Any]]:
        """A completed trace from the flight recorder, or ``None``."""
        return self.tracer.get(trace_id)

    def traces(self, slowest: int = 10) -> List[Dict[str, Any]]:
        """The slowest retained traces, slowest first."""
        return self.tracer.slowest(slowest)

    def _delta_metrics(self) -> Optional[Dict[str, Any]]:
        if self._delta is None:
            return None
        tiles = self._delta_tiles_reused + self._delta_tiles_recomputed
        return {
            "enabled": True,
            "supported": self._delta.supports_delta,
            "tile_shape": list(self._delta.tile_shape),
            "streams": len(self._delta.store),
            "max_streams": self._delta.store.max_streams,
            "frames": self._delta_frames,
            "tiles_reused": self._delta_tiles_reused,
            "tiles_recomputed": self._delta_tiles_recomputed,
            "reuse_ratio": self._delta_tiles_reused / tiles if tiles else 0.0,
        }

    def _adaptive_metrics(self) -> Optional[Dict[str, Any]]:
        controller = self._adaptive
        if controller is None:
            return None
        return {
            "enabled": True,
            "ticks": controller.ticks,
            "batch_adjustments": controller.batch_adjustments,
            "weight_adjustments": controller.weight_adjustments,
            "max_batch_size": self.max_batch_size,
            "lane_weights": {lane.name.lower(): self.lane_weights[lane] for lane in Priority},
            "lane_floors": {
                lane.name.lower(): self._base_lane_weights[lane] for lane in Priority
            },
        }

    def capabilities(self) -> Dict[str, Any]:
        """The stable, machine-readable feature contract of this service.

        Served as ``GET /v1/capabilities`` so clients can discover what this
        deployment supports — API version, accepted/produced payload formats,
        and which array backends exist here — before sending work.  Unlike
        :meth:`describe` (internal tuning knobs, free to change between
        releases), this document is part of the stable HTTP surface.
        """
        from ..backend.registry import backend_status

        return {
            "api_version": "v1",
            "endpoints": [
                "/healthz",
                "/v1/capabilities",
                "/v1/metrics",
                "/v1/segment",
                "/v1/trace/{id}",
                "/v1/traces",
            ],
            "request_formats": [
                "application/json",
                "application/octet-stream",
                "application/x-npy",
            ],
            "response_formats": ["application/json", "application/x-npy"],
            "backend": self.engine.backend.name,
            "backends": backend_status(),
            "float_compute": self.engine.float_compute,
            "config_digest": self._config_digest,
            "delta_streams": self._delta is not None and self._delta.supports_delta,
        }

    def describe(self) -> Dict[str, Any]:
        """Static configuration (engine + front-end knobs), JSON-friendly."""
        return {
            "engine": self.engine.describe(),
            "config_digest": self._config_digest,
            "max_batch_size": self.max_batch_size,
            "max_wait_seconds": self.max_wait_seconds,
            "queue_size": self.queue_size,
            "lane_weights": {lane.name.lower(): self.lane_weights[lane] for lane in Priority},
            "client_rate": self.client_rate,
            "client_burst": self.client_burst,
            "default_deadline": self.default_deadline,
            "adaptive": self._adaptive is not None,
            "delta": self._delta.describe() if self._delta is not None else None,
            "cache": repr(self.cache) if self.cache is not None else None,
            "trace_sample_rate": self.tracer.sample_rate,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AsyncSegmentationService(engine={self.engine!r}, "
            f"max_batch_size={self.max_batch_size}, closed={self._closed})"
        )

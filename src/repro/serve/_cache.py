"""Content-addressed result cache: LRU + TTL keyed by image digest + config.

The IQFT segmenters are pure functions of ``(image, θ, config)``, which makes
their output perfectly cacheable: two byte-identical images under the same
engine configuration always segment identically.  :class:`ResultCache`
exploits that with a content-addressed store — keys are
``(blake2b(image bytes), blake2b(engine config))`` — so the serving layer can
answer repeated inputs without recomputation, regardless of which request or
file they arrived through.

The cache is a plain thread-safe LRU with optional TTL expiry.  Values are
whatever the caller stores (the service stores the per-image
:class:`~repro.base.SegmentationResult`, *not* the scored
:class:`~repro.core.pipeline.PipelineResult`, so one cached segmentation
serves requests with different ground-truth masks).
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional, Tuple

import numpy as np

from ..base import SegmentationResult
from ..errors import ParameterError

__all__ = [
    "CacheStats",
    "ResultCache",
    "TieredCacheStats",
    "TieredResultCache",
    "TileCacheAdapter",
    "image_digest",
    "config_digest",
    "tile_key",
    "value_nbytes",
    "TILE_KEY_PREFIX",
]

CacheKey = Tuple[str, str]

#: Namespace prefix distinguishing per-tile entries from whole-image ones in
#: the shared key space (see :func:`tile_key`).
TILE_KEY_PREFIX = "tile-"


def image_digest(image: np.ndarray) -> str:
    """A content digest of an array: dtype + shape + raw bytes (blake2b-128).

    Two arrays receive equal digests iff they are byte-identical in the same
    dtype and shape — exactly the condition under which a pointwise segmenter
    is guaranteed to produce identical output.
    """
    arr = np.ascontiguousarray(image)
    hasher = hashlib.blake2b(digest_size=16)
    hasher.update(str(arr.dtype).encode("ascii"))
    hasher.update(str(arr.shape).encode("ascii"))
    hasher.update(arr.data if arr.size else b"")
    return hasher.hexdigest()


def config_digest(config: Mapping[str, Any]) -> str:
    """A digest of a JSON-friendly configuration mapping (order-insensitive)."""
    payload = json.dumps(dict(config), sort_keys=True, default=str)
    return hashlib.blake2b(payload.encode("utf-8"), digest_size=16).hexdigest()


def tile_key(tile_digest: str, config: str) -> CacheKey:
    """The cache key of one delta tile's label block.

    **Per-tile key format.**  Whole-image entries use
    ``(image_digest(image), config_digest)``; per-tile entries share the same
    two-part key space but prefix the content digest:
    ``("tile-" + tile_digest(block), config_digest)``, where ``tile_digest``
    is :func:`repro.parallel.tiling.tile_digest` — the same
    dtype + shape + raw-bytes blake2b-128 construction as
    :func:`image_digest`, applied to the prepared tile block.  The prefix
    keeps the two populations from colliding (a 64×64 tile and a 64×64 image
    with equal bytes segment identically, but their cached payload shapes
    differ), and because the disk tier renders keys as
    ``{config_part}-{image_part}.npz`` the prefix is path-safe.
    """
    return (TILE_KEY_PREFIX + tile_digest, config)


class TileCacheAdapter:
    """Adapts a whole-image result cache into the delta engine's tile hook.

    :class:`~repro.engine.delta.DeltaStreamEngine` wants a minimal
    ``get(digest) -> labels | None`` / ``put(digest, labels)`` store.  This
    adapter maps those onto any serve-side cache speaking the
    ``get(key)``/``put(key, value)`` protocol (:class:`ResultCache`,
    :class:`TieredResultCache`, the shm tier, ...), namespacing entries with
    :func:`tile_key` and wrapping each label block as a
    ``(SegmentationResult, binary)`` pair — the exact value shape every tier
    (and both disk/shm serializers) already round-trips, so per-tile entries
    ride the existing mem/shm/disk plumbing with zero serializer changes.
    """

    def __init__(self, cache: Any, config: str):
        if not (callable(getattr(cache, "get", None)) and callable(getattr(cache, "put", None))):
            raise ParameterError("cache must provide get(key) and put(key, value)")
        self.cache = cache
        self.config = str(config)

    def get(self, tile_digest: str) -> Optional[np.ndarray]:
        """The cached label block for a tile digest, or ``None``."""
        value = self.cache.get(tile_key(tile_digest, self.config))
        if value is None:
            return None
        result = value[0] if isinstance(value, (tuple, list)) else value
        labels = getattr(result, "labels", None)
        if not isinstance(labels, np.ndarray):
            return None
        return labels

    def put(self, tile_digest: str, labels: np.ndarray) -> None:
        """Publish one tile's label block to every cache tier."""
        result = SegmentationResult(
            labels=np.asarray(labels),
            num_segments=0,
            runtime_seconds=0.0,
            method="delta-tile",
            extras={"fast_path": "delta-tile"},
        )
        # The placeholder binary keeps the stored value shape identical to
        # whole-image entries so the shm/disk serializers apply unchanged.
        self.cache.put(tile_key(tile_digest, self.config), (result, np.zeros((1, 1), dtype=bool)))


def value_nbytes(value: Any) -> int:
    """Approximate payload size of a cached value (array bytes only).

    Cached values are :class:`~repro.base.SegmentationResult`-like objects,
    bare arrays, or tuples of either; anything unrecognized counts zero
    rather than guessing.  Used to annotate cache-hit trace spans with the
    bytes a hit avoided recomputing/transferring.
    """
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, (tuple, list)):
        return sum(value_nbytes(item) for item in value)
    labels = getattr(value, "labels", None)
    if isinstance(labels, np.ndarray):
        return int(labels.nbytes)
    return 0


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of cache effectiveness counters."""

    hits: int
    misses: int
    evictions: int
    expirations: int
    currsize: int
    maxsize: int

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when the cache has never been queried)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> dict:
        """JSON-friendly form used by service metric snapshots."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "currsize": self.currsize,
            "maxsize": self.maxsize,
            "hit_rate": self.hit_rate,
        }


class ResultCache:
    """Thread-safe LRU + TTL cache addressed by content digests.

    Parameters
    ----------
    max_entries:
        Capacity; the least-recently-used entry is evicted on overflow.
    ttl_seconds:
        Optional time-to-live.  Entries older than this are treated as misses
        (and dropped) when looked up.  ``None`` disables expiry.
    clock:
        Monotonic time source, injectable for deterministic TTL tests.
    """

    def __init__(
        self,
        max_entries: int = 256,
        ttl_seconds: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_entries < 1:
            raise ParameterError("max_entries must be >= 1")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ParameterError("ttl_seconds must be positive or None")
        self.max_entries = int(max_entries)
        self.ttl_seconds = float(ttl_seconds) if ttl_seconds is not None else None
        self._clock = clock
        self._entries: "OrderedDict[CacheKey, Tuple[Any, float]]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._expirations = 0

    # ------------------------------------------------------------------ #
    #: The serve layer passes ``get(key, trace=...)`` when this is set.
    supports_trace = True

    def key_for(self, image: np.ndarray, config: str) -> CacheKey:
        """Build the cache key for ``image`` under a config digest."""
        return (image_digest(image), config)

    def get(self, key: CacheKey, trace: Any = None) -> Optional[Any]:
        """The cached value, or ``None`` on miss/expiry (which counts a miss)."""
        if trace is not None:
            start = trace.clock()
            value = self.get(key)
            trace.add(
                "cache.memory",
                start,
                trace.clock(),
                parent="cache.probe",
                hit=value is not None,
                bytes=value_nbytes(value) if value is not None else 0,
            )
            return value
        now = self._clock()
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            value, stored_at = entry
            if self.ttl_seconds is not None and now - stored_at > self.ttl_seconds:
                del self._entries[key]
                self._expirations += 1
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: CacheKey, value: Any) -> None:
        """Insert/refresh an entry, evicting the LRU entry on overflow."""
        with self._lock:
            self._entries[key] = (value, self._clock())
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        """Drop every entry (statistics counters are preserved)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def stats(self) -> CacheStats:
        """A consistent snapshot of the effectiveness counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                expirations=self._expirations,
                currsize=len(self._entries),
                maxsize=self.max_entries,
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ResultCache(max_entries={self.max_entries}, "
            f"ttl_seconds={self.ttl_seconds}, size={len(self)})"
        )


@dataclass(frozen=True)
class TieredCacheStats:
    """Combined effectiveness snapshot of a tiered (L1 [+ shm] + L2) cache."""

    l1: Any
    l2: Any
    shm: Any = None

    @property
    def l1_hit_rate(self) -> float:
        """L1 hits over all lookups seen by the tiered cache."""
        return self.l1.hit_rate

    @property
    def l2_hit_rate(self) -> float:
        """L2 hits over the lookups that fell through the faster tiers."""
        return self.l2.hit_rate

    @property
    def shm_hit_rate(self) -> float:
        """Shm hits over the lookups that fell through L1 (0.0 without shm)."""
        return self.shm.hit_rate if self.shm is not None else 0.0

    def as_dict(self) -> dict:
        """JSON-friendly form used by service metric snapshots."""
        document = {
            "l1": self.l1.as_dict(),
            "l2": self.l2.as_dict(),
            "l1_hit_rate": self.l1_hit_rate,
            "l2_hit_rate": self.l2_hit_rate,
            "hit_rate": self.hit_rate,
        }
        if self.shm is not None:
            document["shm"] = self.shm.as_dict()
            document["shm_hit_rate"] = self.shm_hit_rate
        return document

    @property
    def hit_rate(self) -> float:
        """Overall hit rate: a hit in any tier counts."""
        lookups = self.l1.hits + self.l1.misses
        if not lookups:
            return 0.0
        hits = self.l1.hits + self.l2.hits
        if self.shm is not None:
            hits += self.shm.hits
        return hits / lookups


class TieredResultCache:
    """L1 (in-memory) over L2 (persistent) behind the one-cache protocol.

    ``get`` tries the fast in-memory tier first, then the L2; an L2 hit is
    *promoted* into L1 so the working set re-warms after a restart.  ``put``
    writes through to both tiers, so a value computed by any worker process
    becomes visible to every process sharing the L2 directory.

    An optional **shm** middle tier (the L1.5 of a same-host fleet, a
    :class:`~repro.serve.shmcache.SharedMemoryResultCache`) slots between
    them: probed after an L1 miss, promoted into on an L2 hit, and written
    through on every put — so one worker's computation becomes another
    worker's single-memcpy hit without touching the disk.

    The tiers stay plain ``get``/``put`` objects — an L1
    :class:`ResultCache` and an L2
    :class:`~repro.serve.diskcache.DiskResultCache` in production, anything
    duck-compatible in tests.
    """

    def __init__(self, l1: Any, l2: Any, shm: Any = None):
        for tier, name in ((l1, "l1"), (l2, "l2"), (shm, "shm")):
            if tier is None and name == "shm":
                continue
            if not (callable(getattr(tier, "get", None)) and callable(getattr(tier, "put", None))):
                raise ParameterError(f"{name} must provide get(key) and put(key, value)")
        self.l1 = l1
        self.l2 = l2
        self.shm = shm

    #: The serve layer passes ``get(key, trace=...)`` when this is set.
    supports_trace = True

    def get(self, key: CacheKey, trace: Any = None) -> Optional[Any]:
        """L1 value, else shm, else the L2 value (promoted upward), else ``None``.

        With a ``trace``, each tier probed gets its own span
        (``cache.l1`` / ``cache.shm`` / ``cache.l2``, nested under the
        service's ``cache.probe`` span) annotated with hit-or-miss and the
        payload bytes a hit returned.
        """
        if trace is not None:
            return self._get_traced(key, trace)
        value = self.l1.get(key)
        if value is not None:
            return value
        if self.shm is not None:
            value = self.shm.get(key)
            if value is not None:
                self.l1.put(key, value)
                return value
        value = self.l2.get(key)
        if value is not None:
            if self.shm is not None:
                self.shm.put(key, value)
            self.l1.put(key, value)
        return value

    def _get_traced(self, key: CacheKey, trace: Any) -> Optional[Any]:
        def probe(tier: Any, name: str) -> Optional[Any]:
            start = trace.clock()
            value = tier.get(key)
            trace.add(
                name,
                start,
                trace.clock(),
                parent="cache.probe",
                hit=value is not None,
                bytes=value_nbytes(value) if value is not None else 0,
            )
            return value

        value = probe(self.l1, "cache.l1")
        if value is not None:
            return value
        if self.shm is not None:
            value = probe(self.shm, "cache.shm")
            if value is not None:
                self.l1.put(key, value)
                return value
        value = probe(self.l2, "cache.l2")
        if value is not None:
            if self.shm is not None:
                self.shm.put(key, value)
            self.l1.put(key, value)
        return value

    def put(self, key: CacheKey, value: Any) -> None:
        """Write-through: publish to every tier."""
        self.l1.put(key, value)
        if self.shm is not None:
            self.shm.put(key, value)
        self.l2.put(key, value)

    def clear(self) -> None:
        """Drop every entry in every tier."""
        self.l1.clear()
        if self.shm is not None:
            self.shm.clear()
        self.l2.clear()

    def close(self) -> None:
        """Release tiers that hold OS resources (e.g. an shm mapping)."""
        for tier in (self.l1, self.shm, self.l2):
            closer = getattr(tier, "close", None)
            if callable(closer):
                closer()

    def __contains__(self, key: CacheKey) -> bool:
        if key in self.l1 or key in self.l2:
            return True
        return self.shm is not None and key in self.shm

    @property
    def stats(self) -> TieredCacheStats:
        """Per-tier counters plus combined hit rates."""
        return TieredCacheStats(
            l1=self.l1.stats,
            l2=self.l2.stats,
            shm=self.shm.stats if self.shm is not None else None,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TieredResultCache(l1={self.l1!r}, shm={self.shm!r}, l2={self.l2!r})"

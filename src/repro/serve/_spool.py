"""Job sources and the driver for ``repro-segment serve``.

The CLI feeds a :class:`~repro.serve.service.SegmentationService` from one of
two job sources:

* a **spool directory** — every supported image file is one job.  One-shot
  mode processes the current directory contents (sorted, deterministic) and
  exits; watch mode keeps polling for newly spooled files until a stop file
  appears or a job limit is reached.
* **JSONL job lines** — each line is ``{"path": "...", "id": "..."}`` (``id``
  optional, defaults to the path); blank lines are skipped and malformed
  lines become per-job error entries instead of aborting the stream.  A
  configurable priority field (default ``"priority"``) and a
  ``"deadline_ms"`` key route each job through the async front end's lanes.

Jobs are submitted eagerly (so the micro-batcher can coalesce them) with a
bounded number of pending futures — the driver itself obeys the same
bounded-memory discipline as the service it feeds.  Each finished job yields
one report entry; :func:`build_report` wraps them into the
``repro-serve-report/v1`` summary document.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import os
import time
from collections import deque
from typing import Any, Dict, Iterable, Iterator, List, Optional, TextIO

import numpy as np

from ..imaging.io_dispatch import IMAGE_EXTENSIONS
from ..obs import get_logger
from ._service import SegmentationService

__all__ = [
    "Job",
    "iter_spool_jobs",
    "iter_jsonl_jobs",
    "run_jobs",
    "run_jobs_async",
    "build_report",
]

#: Default stop-file name ending a ``--watch`` serve loop.
DEFAULT_STOP_FILE = ".stop"


@dataclasses.dataclass
class Job:
    """One unit of serving work: an image on disk (or a pre-failed stub)."""

    id: str
    path: Optional[str] = None
    error: Optional[str] = None  # set for malformed job lines
    priority: str = "normal"  # lane name for the async front end
    deadline_ms: Optional[float] = None  # per-job deadline override
    client: Optional[str] = None  # quota key for the async front end

    @property
    def output_name(self) -> str:
        """Basename (no extension) used for the per-job result file."""
        base = os.path.basename(self.path) if self.path else self.id
        stem = os.path.splitext(base)[0]
        return stem or "job"


def iter_spool_jobs(
    directory: str,
    watch: bool = False,
    poll_seconds: float = 0.2,
    stop_file: str = DEFAULT_STOP_FILE,
    limit: Optional[int] = None,
) -> Iterator[Job]:
    """Yield jobs from a spool directory, optionally watching for new files.

    One-shot mode (``watch=False``) snapshots the directory once, sorted by
    name for determinism.  Watch mode re-scans every ``poll_seconds`` and
    stops when ``directory/stop_file`` exists or ``limit`` jobs have been
    yielded.  A file spotted mid-write would fail to decode and be recorded
    as a permanent error, so watch mode holds a new file back until its size
    and mtime are unchanged across two consecutive scans; once the stop file
    appears, everything still settling is flushed (files spooled together
    with the stop file are served without an extra poll round).

    The stop file is checked *before* the directory is listed: any job
    spooled before the stop file was created is therefore guaranteed to be
    visible in the final scan and served.  (Checking afterwards loses jobs
    when the producer drops files plus the stop file mid-scan — the stop is
    observed but the listing predates the files.)
    """
    seen = set()
    settling: dict = {}  # name -> (size, mtime_ns) from the previous scan
    yielded = 0
    while True:
        stopping = not watch or os.path.exists(os.path.join(directory, stop_file))
        names = sorted(
            entry
            for entry in os.listdir(directory)
            if entry.lower().endswith(IMAGE_EXTENSIONS) and entry not in seen
        )
        ready = []
        for name in names:
            if stopping:
                ready.append(name)
                continue
            try:
                stat = os.stat(os.path.join(directory, name))
            except OSError:
                continue  # vanished between listdir and stat
            signature = (stat.st_size, stat.st_mtime_ns)
            if settling.get(name) == signature:
                ready.append(name)
            else:
                settling[name] = signature  # hold back until it settles
        for name in ready:
            seen.add(name)
            settling.pop(name, None)
            yield Job(id=name, path=os.path.join(directory, name))
            yielded += 1
            if limit is not None and yielded >= limit:
                return
        if stopping:
            return
        time.sleep(poll_seconds)


def iter_jsonl_jobs(stream: TextIO, priority_field: str = "priority") -> Iterator[Job]:
    """Yield jobs from JSONL lines; malformed lines become error jobs.

    ``priority_field`` names the JSON key holding the lane (``"high"`` /
    ``"normal"`` / ``"low"``, default lane when absent); a ``"deadline_ms"``
    key sets a per-job deadline.  Both only matter to the async front end —
    the sync service ignores them.
    """
    for lineno, line in enumerate(stream, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
            if not isinstance(payload, dict) or "path" not in payload:
                raise ValueError('job line must be an object with a "path" key')
            deadline_ms = payload.get("deadline_ms")
            if deadline_ms is not None:
                deadline_ms = float(deadline_ms)
        except (TypeError, ValueError) as exc:
            get_logger().warning("spool.bad_job_line", line=lineno, error=str(exc))
            yield Job(id=f"line-{lineno}", error=f"invalid job line: {exc}")
            continue
        path = str(payload["path"])
        client = payload.get("client")
        yield Job(
            id=str(payload.get("id", path)),
            path=path,
            priority=str(payload.get(priority_field, "normal")),
            deadline_ms=deadline_ms,
            client=str(client) if client is not None else None,
        )


def _job_entry(job: Job, outcome: Any) -> Dict[str, Any]:
    """Collapse a finished job into one JSON-friendly report entry."""
    entry: Dict[str, Any] = {"id": job.id, "file": job.path}
    if isinstance(outcome, BaseException):
        entry["error"] = f"{type(outcome).__name__}: {outcome}"
        get_logger().warning(
            "spool.job_error", job_id=job.id, file=job.path, error=entry["error"]
        )
        return entry
    seg = outcome.segmentation
    entry.update(
        {
            "shape": [int(v) for v in seg.labels.shape],
            "num_segments": int(seg.num_segments),
            "fast_path": str(seg.extras.get("fast_path", "direct")),
            "cache_hit": bool(seg.extras.get("cache_hit", False)),
            "coalesced": bool(seg.extras.get("coalesced", False)),
            "runtime_seconds": float(seg.runtime_seconds),
            "metrics": {key: float(value) for key, value in outcome.metrics.items()},
        }
    )
    return entry


def _write_entry_file(path: str, entry: Dict[str, Any]) -> None:
    """Write one per-job result file (sync: async callers run it off-loop)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(entry, fh, indent=2, sort_keys=True)
        fh.write("\n")


def run_jobs(
    service: SegmentationService,
    jobs: Iterable[Job],
    out_dir: Optional[str] = None,
    max_pending: Optional[int] = None,
) -> List[Dict[str, Any]]:
    """Feed ``jobs`` through ``service`` and return one report entry per job.

    Jobs are submitted as they arrive so the micro-batcher can coalesce them;
    at most ``max_pending`` futures are outstanding (default: twice the
    service queue size), keeping driver memory bounded on endless watch
    streams.  Unreadable images and per-request failures become error entries
    — one bad job never aborts the run.  With ``out_dir``, each successful
    job also writes ``<out_dir>/<job>.json``.
    """
    from ..imaging.io_dispatch import read_image  # local: keep import cost off the hot path

    if max_pending is None:
        max_pending = 2 * service._batcher.queue_size
    if out_dir is not None:
        os.makedirs(out_dir, exist_ok=True)

    entries: List[Dict[str, Any]] = []
    pending: deque = deque()  # (job, future)

    def _finish(job: Job, future) -> None:
        try:
            outcome = future.result()
        except Exception as exc:  # reprolint: disable=RL004 error becomes the job's report entry
            outcome = exc
        entry = _job_entry(job, outcome)
        if out_dir is not None and "error" not in entry:
            path = os.path.join(out_dir, f"{job.output_name}.json")
            _write_entry_file(path, entry)
            entry["result_file"] = path
        entries.append(entry)

    for job in jobs:
        if job.error is not None:
            entries.append({"id": job.id, "file": job.path, "error": job.error})
            continue
        try:
            image = np.asarray(read_image(job.path))
        except Exception as exc:  # reprolint: disable=RL004 error becomes the job's report entry
            entries.append(_job_entry(job, exc))
            continue
        pending.append((job, service.submit(image)))
        while len(pending) >= max_pending:
            _finish(*pending.popleft())

    while pending:
        _finish(*pending.popleft())
    return entries


async def run_jobs_async(
    service,
    jobs: Iterable[Job],
    out_dir: Optional[str] = None,
    max_pending: Optional[int] = None,
    default_deadline_ms: Optional[float] = None,
) -> List[Dict[str, Any]]:
    """The :func:`run_jobs` driver for an ``AsyncSegmentationService``.

    Jobs carry their lane in ``job.priority`` and an optional per-job
    ``deadline_ms`` (falling back to ``default_deadline_ms``).  The job
    iterable may block (spool watching) — it is advanced on a worker thread
    so the event loop keeps resolving in-flight requests.  Shed and expired
    requests surface as per-job ``error`` entries
    (``DeadlineExceededError: ...``), exactly like any other per-job failure.
    """
    from ..imaging.io_dispatch import read_image  # local: keep import cost off the hot path

    if max_pending is None:
        max_pending = 2 * service.queue_size
    if out_dir is not None:
        os.makedirs(out_dir, exist_ok=True)
    loop = asyncio.get_running_loop()

    entries: List[Dict[str, Any]] = []
    pending: deque = deque()  # (job, task)

    async def _finish(job: Job, task) -> None:
        try:
            outcome = await task
        except Exception as exc:  # reprolint: disable=RL004 error becomes the job's report entry
            outcome = exc
        entry = _job_entry(job, outcome)
        entry["priority"] = job.priority
        if out_dir is not None and "error" not in entry:
            path = os.path.join(out_dir, f"{job.output_name}.json")
            # Off-loop: report writes must not stall concurrently awaited jobs.
            await loop.run_in_executor(None, _write_entry_file, path, entry)
            entry["result_file"] = path
        entries.append(entry)

    _DONE = object()
    job_iter = iter(jobs)

    def _next_job():
        return next(job_iter, _DONE)

    while True:
        job = await loop.run_in_executor(None, _next_job)
        if job is _DONE:
            break
        if job.error is not None:
            entries.append({"id": job.id, "file": job.path, "error": job.error})
            continue
        try:
            image = np.asarray(await loop.run_in_executor(None, read_image, job.path))
        except Exception as exc:  # reprolint: disable=RL004 error becomes the job's report entry
            entry = _job_entry(job, exc)
            entry["priority"] = job.priority
            entries.append(entry)
            continue
        deadline_ms = job.deadline_ms if job.deadline_ms is not None else default_deadline_ms
        task = asyncio.ensure_future(
            service.submit(
                image,
                priority=job.priority,
                deadline=deadline_ms / 1000.0 if deadline_ms is not None else None,
                client_id=job.client,
            )
        )
        pending.append((job, task))
        while len(pending) >= max_pending:
            await _finish(*pending.popleft())

    while pending:
        await _finish(*pending.popleft())
    return entries


def build_report(
    service,
    entries: List[Dict[str, Any]],
    method: str,
    parameters: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """The ``repro-serve-report/v1`` summary document for a serve run."""
    succeeded = [entry for entry in entries if "error" not in entry]
    scored = [entry for entry in succeeded if entry.get("metrics")]
    summary = {
        "num_failed": len(entries) - len(succeeded),
        "num_cache_hits": sum(1 for entry in succeeded if entry.get("cache_hit")),
        "num_coalesced": sum(1 for entry in succeeded if entry.get("coalesced")),
        "mean_num_segments": (
            float(np.mean([entry["num_segments"] for entry in succeeded]))
            if succeeded
            else None
        ),
        "mean_miou": (
            float(np.mean([entry["metrics"]["miou"] for entry in scored]))
            if scored
            else None
        ),
    }
    return {
        "schema": "repro-serve-report/v1",
        "method": method,
        "parameters": parameters or {},
        "service": service.describe(),
        "metrics": service.metrics(),
        "num_jobs": len(entries),
        "jobs": entries,
        "summary": summary,
    }

"""Micro-batching over a bounded queue: flush on size or on deadline.

:class:`MicroBatcher` is the coalescing heart of the serving layer.  Producers
push individual items through :meth:`put` (a *bounded* queue — when it is
full, backpressure either blocks the producer or rejects the item, never
growing memory without limit).  A single consumer repeatedly calls
:meth:`next_batch`, which gathers items into a batch and flushes when either

* the batch reaches ``max_batch_size`` (*size flush* — a full engine batch is
  ready, waiting longer only adds latency), or
* ``max_wait_seconds`` have elapsed since the first item of the batch arrived
  (*deadline flush* — bounded latency under light traffic), or
* the batcher is closed and the queue has drained (*close flush*).

The batcher is payload-agnostic; :class:`repro.serve.service.SegmentationService`
feeds it request records, but tests drive it with plain integers.

This module also hosts the **adaptive control loop** used by the async front
end: :class:`AdaptiveController` re-derives the micro-batch flush size and
the priority-lane drain weights from live telemetry (the EWMA per-request
service time, per-lane queue depths and shed counters) once per control
tick.  The controller is deliberately *bounded and gradual* — every derived
value stays inside a configured ``[min, max]`` corridor and moves by small
steps, so an adaptive service remains predictable under pathological
telemetry (a latency spike cannot flip the batch size from 1 to 512 in one
tick, and a lane's weight can never fall below its configured floor).
"""

from __future__ import annotations

import dataclasses
import queue
import threading
import time
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..errors import ParameterError

__all__ = ["MicroBatcher", "AdaptiveConfig", "AdaptiveController"]


class MicroBatcher:
    """Bounded-queue micro-batcher with size- and deadline-based flushing.

    Parameters
    ----------
    max_batch_size:
        Flush as soon as a batch holds this many items.
    max_wait_seconds:
        Flush a non-empty batch at most this long after its first item
        arrived.  Zero means "whatever is immediately available".
    queue_size:
        Capacity of the ingress queue (the backpressure bound).
    clock:
        Monotonic time source, injectable for tests.
    """

    def __init__(
        self,
        max_batch_size: int = 16,
        max_wait_seconds: float = 0.005,
        queue_size: int = 64,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_batch_size < 1:
            raise ParameterError("max_batch_size must be >= 1")
        if max_wait_seconds < 0:
            raise ParameterError("max_wait_seconds must be >= 0")
        if queue_size < 1:
            raise ParameterError("queue_size must be >= 1")
        self.max_batch_size = int(max_batch_size)
        self.max_wait_seconds = float(max_wait_seconds)
        self.queue_size = int(queue_size)
        self._clock = clock
        self._queue: "queue.Queue[Any]" = queue.Queue(maxsize=self.queue_size)
        self._closed = threading.Event()
        # Idle poll granularity while waiting for a first item: small enough
        # to notice close() promptly, large enough to not busy-spin.
        self._poll_seconds = 0.02
        self._lock = threading.Lock()
        self._batches = 0
        self._items = 0
        self._max_batch_seen = 0
        self._flushes: Dict[str, int] = {"size": 0, "deadline": 0, "close": 0}
        self._last_flush: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        """True once :meth:`close` has been called (puts are rejected)."""
        return self._closed.is_set()

    @property
    def queue_depth(self) -> int:
        """Number of items currently waiting in the ingress queue."""
        return self._queue.qsize()

    def put(self, item: Any, block: bool = True, timeout: Optional[float] = None) -> None:
        """Enqueue one item, honouring the queue bound.

        With ``block=True`` (default) the caller waits for space — that *is*
        the backpressure: a fast producer slows to the service's pace instead
        of ballooning memory.  With ``block=False`` (or on timeout) a full
        queue raises :class:`queue.Full` for the caller to translate.  A
        blocked producer re-checks the closed flag while waiting, so
        :meth:`close` wakes it with :class:`~repro.errors.ParameterError`
        instead of letting it enqueue into a batcher whose consumer is gone.
        """
        if self._closed.is_set():
            raise ParameterError("cannot put into a closed MicroBatcher")
        if not block:
            self._queue.put_nowait(item)
            return
        deadline = None if timeout is None else self._clock() + float(timeout)
        while True:
            wait = self._poll_seconds
            if deadline is not None:
                remaining = deadline - self._clock()
                if remaining <= 0:
                    raise queue.Full
                wait = min(wait, remaining)
            try:
                self._queue.put(item, timeout=wait)
                return
            except queue.Full:
                if self._closed.is_set():
                    raise ParameterError("cannot put into a closed MicroBatcher") from None

    def next_batch(self) -> Optional[List[Any]]:
        """Gather the next batch, or ``None`` when closed and fully drained.

        Blocks until at least one item is available (polling the closed flag
        while idle), then keeps gathering until a size or deadline flush.
        """
        while True:
            try:
                first = self._queue.get(timeout=self._poll_seconds)
                break
            except queue.Empty:
                if self._closed.is_set() and self._queue.empty():
                    return None

        batch = [first]
        reason = "size"
        assembly_started = self._clock()
        deadline = assembly_started + self.max_wait_seconds
        while len(batch) < self.max_batch_size:
            # Whatever is already queued joins the batch for free — even with
            # max_wait_seconds=0 a backlog flushes as one batch, not as a
            # stream of singletons.
            try:
                batch.append(self._queue.get_nowait())
                continue
            except queue.Empty:
                pass
            remaining = deadline - self._clock()
            if remaining <= 0:
                reason = "deadline"
                break
            if self._closed.is_set():
                # Shutdown drain: flush immediately instead of waiting out
                # the deadline on traffic that will never arrive.
                reason = "close"
                break
            try:
                batch.append(self._queue.get(timeout=min(remaining, self._poll_seconds)))
            except queue.Empty:
                continue

        with self._lock:
            self._batches += 1
            self._items += len(batch)
            self._max_batch_seen = max(self._max_batch_seen, len(batch))
            self._flushes[reason] += 1
            self._last_flush = {
                "reason": reason,
                "batch_size": len(batch),
                "assembly_seconds": self._clock() - assembly_started,
            }
        return batch

    def drain(self) -> List[Any]:
        """Pop and return everything currently queued (used by hard shutdown)."""
        items: List[Any] = []
        while True:
            try:
                items.append(self._queue.get_nowait())
            except queue.Empty:
                return items

    def close(self) -> None:
        """Stop accepting items; :meth:`next_batch` drains then returns ``None``."""
        self._closed.set()

    @property
    def stats(self) -> Dict[str, Any]:
        """Batch-shape statistics: counts, mean/max size, flush reasons."""
        with self._lock:
            return {
                "batches": self._batches,
                "items": self._items,
                "mean_batch_size": self._items / self._batches if self._batches else 0.0,
                "max_batch_size": self._max_batch_seen,
                "flushes": dict(self._flushes),
                "last_flush": dict(self._last_flush) if self._last_flush else None,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MicroBatcher(max_batch_size={self.max_batch_size}, "
            f"max_wait_seconds={self.max_wait_seconds}, queue_size={self.queue_size})"
        )


@dataclasses.dataclass(frozen=True)
class AdaptiveConfig:
    """Bounds and cadence of the adaptive control loop.

    Parameters
    ----------
    tick_seconds:
        Minimum time between control decisions; telemetry arriving faster
        than this is simply observed, not acted on.
    min_batch_size, max_batch_size:
        Corridor for the derived micro-batch flush size.  The configured
        service batch size is the starting point; the controller never
        leaves this corridor.
    target_batch_seconds:
        The compute budget one flushed batch should cost.  The ideal batch
        size is ``target_batch_seconds / ewma_request_seconds`` — a service
        whose requests got cheaper batches more aggressively, one whose
        requests got slower shrinks its batches to keep flush latency flat.
    weight_ceiling_factor:
        Each lane's drain weight may rise to ``configured_weight × factor``
        when the lane is backlogged or shedding; the configured weight is
        the floor it decays back to once pressure clears.
    backlog_boost_depth:
        Queue depth at which a lane counts as backlogged and earns a weight
        boost even before it sheds anything.
    """

    tick_seconds: float = 0.5
    min_batch_size: int = 1
    max_batch_size: int = 64
    target_batch_seconds: float = 0.05
    weight_ceiling_factor: int = 4
    backlog_boost_depth: int = 8

    def __post_init__(self) -> None:
        if self.tick_seconds <= 0:
            raise ParameterError("tick_seconds must be positive")
        if self.min_batch_size < 1:
            raise ParameterError("min_batch_size must be >= 1")
        if self.max_batch_size < self.min_batch_size:
            raise ParameterError("max_batch_size must be >= min_batch_size")
        if self.target_batch_seconds <= 0:
            raise ParameterError("target_batch_seconds must be positive")
        if self.weight_ceiling_factor < 1:
            raise ParameterError("weight_ceiling_factor must be >= 1")
        if self.backlog_boost_depth < 1:
            raise ParameterError("backlog_boost_depth must be >= 1")


class AdaptiveController:
    """Derives batch size and lane weights from live serving telemetry.

    The controller is a pure decision function plus a little memory (the
    previous tick's shed counters and its own current outputs); it never
    touches the service directly.  Each :meth:`update` call is one control
    tick and returns ``(batch_size, lane_weights, changed)``; callers apply
    the returned values to whatever they batch with.

    Policy, kept deliberately simple and monotone:

    * **batch size** — move the current size one doubling/halving step per
      tick toward ``target_batch_seconds / ewma_request_seconds``, clamped
      to the configured corridor.  No estimate (EWMA still 0) means no move.
    * **lane weights** — a lane that shed requests since the last tick, or
      whose depth reached ``backlog_boost_depth``, gains +1 weight up to
      ``floor × weight_ceiling_factor``; an unpressured lane decays -1 back
      toward its configured floor.  Weighted fairness is preserved: a floor
      is never undercut, so no lane can be starved by the controller.
    """

    def __init__(self, config: AdaptiveConfig, batch_size: int, lane_weights: Mapping[Any, int]):
        self.config = config
        self.batch_size = int(
            min(max(batch_size, config.min_batch_size), config.max_batch_size)
        )
        self.lane_floors: Dict[Any, int] = {lane: int(w) for lane, w in lane_weights.items()}
        if any(weight < 1 for weight in self.lane_floors.values()):
            raise ParameterError("lane weight floors must be >= 1")
        self.lane_weights: Dict[Any, int] = dict(self.lane_floors)
        self._last_tick_at: Optional[float] = None
        self._last_shed: Dict[Any, int] = {lane: 0 for lane in self.lane_floors}
        self.ticks = 0
        self.batch_adjustments = 0
        self.weight_adjustments = 0

    def due(self, now: float) -> bool:
        """True when at least one control period elapsed since the last tick."""
        return self._last_tick_at is None or now - self._last_tick_at >= self.config.tick_seconds

    def update(
        self,
        now: float,
        ewma_request_seconds: float,
        lane_stats: Mapping[Any, Mapping[str, int]],
    ) -> Tuple[int, Dict[Any, int], bool]:
        """One control tick; ``lane_stats`` maps lane -> {"depth", "shed"}.

        ``shed`` is the lane's *cumulative* shed counter (admission +
        expiry); the controller differences it against the previous tick
        itself, so callers just hand over their live counters.
        """
        self._last_tick_at = now
        self.ticks += 1
        changed = False

        if ewma_request_seconds > 0.0:
            ideal = self.config.target_batch_seconds / ewma_request_seconds
            step = self.batch_size
            if ideal >= self.batch_size * 2:
                step = self.batch_size * 2
            elif ideal < self.batch_size * 0.75:
                step = max(1, self.batch_size // 2)
            step = min(max(step, self.config.min_batch_size), self.config.max_batch_size)
            if step != self.batch_size:
                self.batch_size = step
                self.batch_adjustments += 1
                changed = True

        for lane, floor in self.lane_floors.items():
            stats = lane_stats.get(lane, {})
            depth = int(stats.get("depth", 0))
            shed = int(stats.get("shed", 0))
            shed_delta = shed - self._last_shed.get(lane, 0)
            self._last_shed[lane] = shed
            current = self.lane_weights[lane]
            ceiling = floor * self.config.weight_ceiling_factor
            if shed_delta > 0 or depth >= self.config.backlog_boost_depth:
                target = min(current + 1, ceiling)
            else:
                target = max(current - 1, floor)
            if target != current:
                self.lane_weights[lane] = target
                self.weight_adjustments += 1
                changed = True

        return self.batch_size, dict(self.lane_weights), changed

    def snapshot(self) -> Dict[str, Any]:
        """JSON-friendly controller state for metric snapshots."""
        return {
            "ticks": self.ticks,
            "batch_adjustments": self.batch_adjustments,
            "weight_adjustments": self.weight_adjustments,
            "batch_size": self.batch_size,
            "lane_weights": {str(lane): weight for lane, weight in self.lane_weights.items()},
            "lane_floors": {str(lane): weight for lane, weight in self.lane_floors.items()},
        }

"""Micro-batching over a bounded queue: flush on size or on deadline.

:class:`MicroBatcher` is the coalescing heart of the serving layer.  Producers
push individual items through :meth:`put` (a *bounded* queue — when it is
full, backpressure either blocks the producer or rejects the item, never
growing memory without limit).  A single consumer repeatedly calls
:meth:`next_batch`, which gathers items into a batch and flushes when either

* the batch reaches ``max_batch_size`` (*size flush* — a full engine batch is
  ready, waiting longer only adds latency), or
* ``max_wait_seconds`` have elapsed since the first item of the batch arrived
  (*deadline flush* — bounded latency under light traffic), or
* the batcher is closed and the queue has drained (*close flush*).

The batcher is payload-agnostic; :class:`repro.serve.service.SegmentationService`
feeds it request records, but tests drive it with plain integers.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from ..errors import ParameterError

__all__ = ["MicroBatcher"]


class MicroBatcher:
    """Bounded-queue micro-batcher with size- and deadline-based flushing.

    Parameters
    ----------
    max_batch_size:
        Flush as soon as a batch holds this many items.
    max_wait_seconds:
        Flush a non-empty batch at most this long after its first item
        arrived.  Zero means "whatever is immediately available".
    queue_size:
        Capacity of the ingress queue (the backpressure bound).
    clock:
        Monotonic time source, injectable for tests.
    """

    def __init__(
        self,
        max_batch_size: int = 16,
        max_wait_seconds: float = 0.005,
        queue_size: int = 64,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_batch_size < 1:
            raise ParameterError("max_batch_size must be >= 1")
        if max_wait_seconds < 0:
            raise ParameterError("max_wait_seconds must be >= 0")
        if queue_size < 1:
            raise ParameterError("queue_size must be >= 1")
        self.max_batch_size = int(max_batch_size)
        self.max_wait_seconds = float(max_wait_seconds)
        self.queue_size = int(queue_size)
        self._clock = clock
        self._queue: "queue.Queue[Any]" = queue.Queue(maxsize=self.queue_size)
        self._closed = threading.Event()
        # Idle poll granularity while waiting for a first item: small enough
        # to notice close() promptly, large enough to not busy-spin.
        self._poll_seconds = 0.02
        self._lock = threading.Lock()
        self._batches = 0
        self._items = 0
        self._max_batch_seen = 0
        self._flushes: Dict[str, int] = {"size": 0, "deadline": 0, "close": 0}

    # ------------------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        """True once :meth:`close` has been called (puts are rejected)."""
        return self._closed.is_set()

    @property
    def queue_depth(self) -> int:
        """Number of items currently waiting in the ingress queue."""
        return self._queue.qsize()

    def put(self, item: Any, block: bool = True, timeout: Optional[float] = None) -> None:
        """Enqueue one item, honouring the queue bound.

        With ``block=True`` (default) the caller waits for space — that *is*
        the backpressure: a fast producer slows to the service's pace instead
        of ballooning memory.  With ``block=False`` (or on timeout) a full
        queue raises :class:`queue.Full` for the caller to translate.  A
        blocked producer re-checks the closed flag while waiting, so
        :meth:`close` wakes it with :class:`~repro.errors.ParameterError`
        instead of letting it enqueue into a batcher whose consumer is gone.
        """
        if self._closed.is_set():
            raise ParameterError("cannot put into a closed MicroBatcher")
        if not block:
            self._queue.put_nowait(item)
            return
        deadline = None if timeout is None else self._clock() + float(timeout)
        while True:
            wait = self._poll_seconds
            if deadline is not None:
                remaining = deadline - self._clock()
                if remaining <= 0:
                    raise queue.Full
                wait = min(wait, remaining)
            try:
                self._queue.put(item, timeout=wait)
                return
            except queue.Full:
                if self._closed.is_set():
                    raise ParameterError("cannot put into a closed MicroBatcher") from None

    def next_batch(self) -> Optional[List[Any]]:
        """Gather the next batch, or ``None`` when closed and fully drained.

        Blocks until at least one item is available (polling the closed flag
        while idle), then keeps gathering until a size or deadline flush.
        """
        while True:
            try:
                first = self._queue.get(timeout=self._poll_seconds)
                break
            except queue.Empty:
                if self._closed.is_set() and self._queue.empty():
                    return None

        batch = [first]
        reason = "size"
        deadline = self._clock() + self.max_wait_seconds
        while len(batch) < self.max_batch_size:
            # Whatever is already queued joins the batch for free — even with
            # max_wait_seconds=0 a backlog flushes as one batch, not as a
            # stream of singletons.
            try:
                batch.append(self._queue.get_nowait())
                continue
            except queue.Empty:
                pass
            remaining = deadline - self._clock()
            if remaining <= 0:
                reason = "deadline"
                break
            if self._closed.is_set():
                # Shutdown drain: flush immediately instead of waiting out
                # the deadline on traffic that will never arrive.
                reason = "close"
                break
            try:
                batch.append(self._queue.get(timeout=min(remaining, self._poll_seconds)))
            except queue.Empty:
                continue

        with self._lock:
            self._batches += 1
            self._items += len(batch)
            self._max_batch_seen = max(self._max_batch_seen, len(batch))
            self._flushes[reason] += 1
        return batch

    def drain(self) -> List[Any]:
        """Pop and return everything currently queued (used by hard shutdown)."""
        items: List[Any] = []
        while True:
            try:
                items.append(self._queue.get_nowait())
            except queue.Empty:
                return items

    def close(self) -> None:
        """Stop accepting items; :meth:`next_batch` drains then returns ``None``."""
        self._closed.set()

    @property
    def stats(self) -> Dict[str, Any]:
        """Batch-shape statistics: counts, mean/max size, flush reasons."""
        with self._lock:
            return {
                "batches": self._batches,
                "items": self._items,
                "mean_batch_size": self._items / self._batches if self._batches else 0.0,
                "max_batch_size": self._max_batch_seen,
                "flushes": dict(self._flushes),
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MicroBatcher(max_batch_size={self.max_batch_size}, "
            f"max_wait_seconds={self.max_wait_seconds}, queue_size={self.queue_size})"
        )

"""Persistent content-addressed result cache: the on-disk L2 tier.

The in-memory :class:`~repro.serve.cache.ResultCache` dies with its process,
which wastes the one property that makes segmentation results cacheable at
all — they are pure functions of ``(image bytes, engine config)``.
:class:`DiskResultCache` keeps the same content-addressed keys
(``blake2b(image)`` + config digest) but stores each entry as one file under a
cache directory, so

* warm results **survive process restarts** (a redeployed service answers its
  working set from disk instead of recomputing it), and
* results are **shared across worker processes** pointed at the same
  directory (``repro-segment serve --jobs N --cache-dir ...``).

Design constraints and how they are met:

* **crash safety** — an entry is written to a temporary file in the cache
  directory and published with :func:`os.replace` (atomic on POSIX and
  Windows).  A reader never observes a half-written entry; a crash mid-write
  leaves only a ``*.tmp-*`` orphan, which eviction sweeps remove.
* **concurrent processes** — reads need no coordination (atomic publish);
  mutations that scan-and-delete (eviction, :meth:`clear`) serialize on a
  best-effort lock file (``O_CREAT | O_EXCL`` with a staleness timeout, so a
  crashed holder cannot wedge the cache forever).  Losing a race simply means
  a ``FileNotFoundError`` on an entry another process already removed, which
  every path tolerates.
* **size bound** — both an entry-count and a byte bound; the oldest entries
  by mtime are evicted first.  A hit refreshes the entry's mtime, making the
  policy LRU across *all* processes sharing the directory, not just this one.
* **corruption tolerance** — an unreadable or truncated entry is treated as a
  miss, deleted, and counted in ``stats.errors`` instead of raising.

Entries hold exactly what the serving layer caches in memory: the raw
:class:`~repro.base.SegmentationResult` plus the annotation-free binary mask,
serialized as an ``.npz`` (labels + binary arrays + a JSON metadata blob).
Only JSON-friendly ``extras`` survive the round-trip; opaque diagnostics are
dropped rather than pickled, keeping the on-disk format safe to load.
"""

from __future__ import annotations

import io
import json
import os
import tempfile
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..base import SegmentationResult
from ..errors import CacheError, ParameterError
from ._cache import CacheKey

__all__ = ["DiskCacheStats", "DiskResultCache"]

#: Default byte bound — generous for label maps, tiny next to image datasets.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

_ENTRY_SUFFIX = ".npz"
_TMP_MARKER = ".tmp-"
_LOCK_NAME = ".repro-cache.lock"

#: A lock file older than this is considered abandoned and is broken.
_LOCK_STALE_SECONDS = 30.0

#: Full directory rescans happen at most every this many puts while the
#: approximate counters stay under the bounds — keeps the per-put cost O(1)
#: while still noticing entries written by other processes.
_RESYNC_EVERY_PUTS = 64

#: A read-mostly process resyncs its approximate footprint after observing
#: this many entries vanish (lookups hitting ``FileNotFoundError`` while the
#: counters still claim content) — without it, a worker whose siblings evict
#: would hold a stale over-estimate indefinitely and keep sweeping.
_VANISH_RESYNC_OBSERVATIONS = 16


def _json_safe(value: Any, depth: int = 0) -> Tuple[bool, Any]:
    """``(keep, converted)`` — JSON-friendly view of an extras value.

    Scalars pass through (numpy scalars via ``item()``); lists/tuples/dicts
    recurse to a bounded depth.  Anything else (arrays, generators, objects)
    is dropped: the disk format must never need pickle to load.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return True, value
    if isinstance(value, (np.bool_, np.integer, np.floating)):
        return True, value.item()
    if depth >= 4:
        return False, None
    if isinstance(value, (list, tuple)):
        items = [_json_safe(item, depth + 1) for item in value]
        if all(keep for keep, _ in items):
            return True, [converted for _, converted in items]
        return False, None
    if isinstance(value, dict):
        out = {}
        for key, item in value.items():
            keep, converted = _json_safe(item, depth + 1)
            if not keep or not isinstance(key, str):
                return False, None
            out[key] = converted
        return True, out
    return False, None


@dataclass(frozen=True)
class DiskCacheStats:
    """Point-in-time effectiveness counters of a :class:`DiskResultCache`.

    ``evictions``/``evicted_bytes`` count entries (and their on-disk bytes)
    removed by bound-enforcing sweeps; ``corrupt_dropped`` counts entries
    deleted because they failed to decode (every one is also counted in
    ``errors``, which additionally covers I/O failures).  Together with the
    hit/miss counters these are the cache-warming and eviction telemetry the
    serving layer surfaces through ``service.metrics()``.
    """

    hits: int
    misses: int
    stores: int
    evictions: int
    evicted_bytes: int
    expirations: int
    corrupt_dropped: int
    errors: int
    currsize: int
    current_bytes: int
    max_entries: int
    max_bytes: int
    hit_bytes: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when the cache has never been queried)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> dict:
        """JSON-friendly form used by service metric snapshots."""
        return {
            "hits": self.hits,
            "hit_bytes": self.hit_bytes,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "evicted_bytes": self.evicted_bytes,
            "expirations": self.expirations,
            "corrupt_dropped": self.corrupt_dropped,
            "errors": self.errors,
            "currsize": self.currsize,
            "current_bytes": self.current_bytes,
            "max_entries": self.max_entries,
            "max_bytes": self.max_bytes,
            "hit_rate": self.hit_rate,
        }


class _DirectoryLock:
    """Best-effort cross-process lock: ``O_CREAT | O_EXCL`` on a lock file.

    Mutating sweeps (eviction, clear) hold it so two processes do not race
    each other's scan-and-delete.  A holder that died is detected by the lock
    file's age and broken — safety degrades to "at worst both processes
    sweep", which the tolerant delete paths already absorb.
    """

    def __init__(self, path: str, stale_seconds: float = _LOCK_STALE_SECONDS):
        self._path = path
        self._stale_seconds = stale_seconds
        self._held = False

    def __enter__(self) -> "_DirectoryLock":
        deadline = time.monotonic() + self._stale_seconds
        while True:
            try:
                fd = os.open(self._path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.close(fd)
                self._held = True
                return self
            except FileExistsError:
                try:
                    # Clamp at 0: a backwards wall-clock step (NTP, VM
                    # migration) must not yield a negative age that keeps a
                    # genuinely stale lock looking "fresh" forever — the
                    # monotonic deadline below stays the hard upper bound.
                    age = max(0.0, time.time() - os.path.getmtime(self._path))
                except OSError:
                    # Holder released between open and stat — or stat keeps
                    # failing.  This retry must pace itself and still honour
                    # the deadline like the fresh-lock path below, or a
                    # contended lock degenerates into a hot spin (and a
                    # permanently failing stat into an unbreakable one).
                    if time.monotonic() > deadline:
                        try:
                            os.unlink(self._path)
                        except FileNotFoundError:
                            pass
                        continue
                    time.sleep(0.01)
                    continue
                if age > self._stale_seconds or time.monotonic() > deadline:
                    try:  # break the stale lock and retry the exclusive open
                        os.unlink(self._path)
                    except FileNotFoundError:
                        pass
                    continue
                time.sleep(0.01)

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._held:
            self._held = False
            try:
                os.unlink(self._path)
            except FileNotFoundError:
                pass


class DiskResultCache:
    """Size-bounded, crash-safe, multi-process content-addressed disk cache.

    Parameters
    ----------
    cache_dir:
        Directory holding the entries (created if missing).  Multiple
        processes may point at the same directory concurrently.
    max_entries, max_bytes:
        Capacity bounds; exceeding either evicts the oldest entries by mtime.
    ttl_seconds:
        Optional time-to-live since an entry was *stored* (wall clock, read
        from the timestamp persisted inside the entry — the only clock that
        is meaningful across process restarts).  Expired entries are deleted
        on lookup and counted as expirations.  ``None`` disables expiry.

    Values are ``(SegmentationResult, binary)`` pairs exactly as the
    in-memory :class:`~repro.serve.cache.ResultCache` stores them, so the two
    tiers are interchangeable behind the same ``get``/``put`` protocol.
    """

    def __init__(
        self,
        cache_dir: str,
        max_entries: int = 4096,
        max_bytes: int = DEFAULT_MAX_BYTES,
        ttl_seconds: Optional[float] = None,
    ):
        if max_entries < 1:
            raise ParameterError("max_entries must be >= 1")
        if max_bytes < 1:
            raise ParameterError("max_bytes must be >= 1")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ParameterError("ttl_seconds must be positive or None")
        self.cache_dir = str(cache_dir)
        self.max_entries = int(max_entries)
        self.max_bytes = int(max_bytes)
        self.ttl_seconds = float(ttl_seconds) if ttl_seconds is not None else None
        try:
            os.makedirs(self.cache_dir, exist_ok=True)
        except OSError as exc:
            raise CacheError(f"cannot create cache directory {cache_dir!r}: {exc}") from exc
        if not os.path.isdir(self.cache_dir):
            raise CacheError(f"cache path {cache_dir!r} is not a directory")
        self._lock_path = os.path.join(self.cache_dir, _LOCK_NAME)
        # Counter/approximation guard: gets and puts run concurrently on
        # executor threads (the async front end probes the cache off-loop).
        self._stats_lock = threading.Lock()
        self._hits = 0
        self._hit_bytes = 0
        self._misses = 0
        self._stores = 0
        self._evictions = 0
        self._evicted_bytes = 0
        self._expirations = 0
        self._corrupt_dropped = 0
        self._errors = 0
        # Approximate footprint, resynced from a real scan periodically and
        # whenever the bounds look exceeded; overwrites are double-counted,
        # which only makes enforcement *earlier*, never later.
        rows = self._scan()
        self._approx_entries = len(rows)
        self._approx_bytes = sum(size for _, _, _, size in rows)
        self._puts_since_scan = 0
        self._vanished_since_scan = 0

    # ------------------------------------------------------------------ #
    # paths + serialization
    # ------------------------------------------------------------------ #
    def path_for(self, key: CacheKey) -> str:
        """The entry file for ``key`` (exists only if the entry is cached)."""
        image_part, config_part = key
        return os.path.join(self.cache_dir, f"{config_part}-{image_part}{_ENTRY_SUFFIX}")

    @staticmethod
    def _encode(value: Tuple[SegmentationResult, np.ndarray]) -> bytes:
        segmentation, binary = value
        extras: Dict[str, Any] = {}
        for attr, item in segmentation.extras.items():
            keep, converted = _json_safe(item, depth=1)
            if keep and isinstance(attr, str):
                extras[attr] = converted
        meta = {
            "format": "repro-disk-cache/v1",
            "stored_at": time.time(),  # wall clock: survives restarts/reboots
            "num_segments": int(segmentation.num_segments),
            "runtime_seconds": float(segmentation.runtime_seconds),
            "method": str(segmentation.method),
            "extras": extras,
        }
        buffer = io.BytesIO()
        np.savez_compressed(
            buffer,
            labels=np.asarray(segmentation.labels),
            binary=np.asarray(binary),
            meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
        )
        return buffer.getvalue()

    @staticmethod
    def _decode(payload: bytes) -> Tuple[SegmentationResult, np.ndarray, float]:
        with np.load(io.BytesIO(payload), allow_pickle=False) as archive:
            labels = np.asarray(archive["labels"])
            binary = np.asarray(archive["binary"])
            meta = json.loads(bytes(archive["meta"].tobytes()).decode("utf-8"))
        if meta.get("format") != "repro-disk-cache/v1":
            raise CacheError(f"unsupported cache entry format {meta.get('format')!r}")
        segmentation = SegmentationResult(
            labels=labels,
            num_segments=int(meta["num_segments"]),
            runtime_seconds=float(meta["runtime_seconds"]),
            method=str(meta["method"]),
            extras=dict(meta["extras"]),
        )
        return segmentation, binary, float(meta.get("stored_at", 0.0))

    # ------------------------------------------------------------------ #
    # cache protocol
    # ------------------------------------------------------------------ #
    def get(self, key: CacheKey) -> Optional[Tuple[SegmentationResult, np.ndarray]]:
        """The cached value, or ``None`` on miss (corrupt entries are purged)."""
        path = self.path_for(key)
        try:
            with open(path, "rb") as fh:
                payload = fh.read()
        except FileNotFoundError:
            with self._stats_lock:
                self._misses += 1
            # The entry may simply never have existed — but while the
            # approximate footprint claims the directory holds content,
            # enough of these observations mean sibling processes are
            # evicting and this process's counters are drifting stale.
            self._note_vanished()
            return None
        except OSError:
            with self._stats_lock:
                self._misses += 1
                self._errors += 1
            return None
        try:
            segmentation, binary, stored_at = self._decode(payload)
        except Exception:  # noqa: BLE001 - any corrupt entry is just a miss
            with self._stats_lock:
                self._misses += 1
                self._errors += 1
                self._corrupt_dropped += 1
            self._drop_entry(path, len(payload))
            return None
        # Age clamped at 0: after a backwards wall-clock step an entry can
        # carry a stored_at from the "future"; it is then simply fresh, not
        # a source of negative ages that would distort the expiry stats.
        if self.ttl_seconds is not None and max(0.0, time.time() - stored_at) > self.ttl_seconds:
            with self._stats_lock:
                self._misses += 1
                self._expirations += 1
            self._drop_entry(path, len(payload))
            return None
        try:
            os.utime(path)  # refresh mtime: LRU across every sharing process
        except OSError:
            # Evicted under us after the read — the value is still good, but
            # the vanish is real drift evidence like any other.
            self._note_vanished()
        with self._stats_lock:
            self._hits += 1
            self._hit_bytes += len(payload)
        return segmentation, binary

    def _drop_entry(self, path: str, size: int) -> None:
        """Unlink an entry this process decided to purge, keeping the
        approximate footprint in step (no full rescan needed — the size of
        what vanished is known exactly)."""
        try:
            os.unlink(path)
        except OSError:
            return
        with self._stats_lock:
            self._approx_entries = max(0, self._approx_entries - 1)
            self._approx_bytes = max(0, self._approx_bytes - size)

    def _note_vanished(self) -> None:
        """Record an observed-vanished entry; resync once they accumulate."""
        with self._stats_lock:
            if self._approx_entries <= 0:
                return
            self._vanished_since_scan += 1
            if self._vanished_since_scan < _VANISH_RESYNC_OBSERVATIONS:
                return
        rows = self._scan()
        with self._stats_lock:
            self._approx_entries = len(rows)
            self._approx_bytes = sum(size for _, _, _, size in rows)
            self._vanished_since_scan = 0

    def put(self, key: CacheKey, value: Tuple[SegmentationResult, np.ndarray]) -> None:
        """Publish an entry atomically, then enforce the size bounds."""
        payload = self._encode(value)
        path = self.path_for(key)
        fd, tmp_path = tempfile.mkstemp(
            prefix=os.path.basename(path) + _TMP_MARKER, dir=self.cache_dir
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(payload)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp_path, path)
        except OSError:
            with self._stats_lock:
                self._errors += 1
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            return  # a full/readonly disk degrades to "not cached", not a crash
        with self._stats_lock:
            self._stores += 1
            self._approx_entries += 1
            self._approx_bytes += len(payload)
            self._puts_since_scan += 1
            needs_sweep = (
                self._approx_entries > self.max_entries
                or self._approx_bytes > self.max_bytes
                or self._puts_since_scan >= _RESYNC_EVERY_PUTS
            )
        if needs_sweep:
            self._enforce_bounds()

    def clear(self) -> None:
        """Delete every entry (and stray temp files); counters are preserved."""
        with _DirectoryLock(self._lock_path):
            for _, path, _, _ in self._scan(include_tmp=True):
                try:
                    os.unlink(path)
                except OSError:
                    pass
        with self._stats_lock:
            self._approx_entries = 0
            self._approx_bytes = 0
            self._puts_since_scan = 0
            self._vanished_since_scan = 0

    def __len__(self) -> int:
        return len(self._scan())

    def __contains__(self, key: CacheKey) -> bool:
        return os.path.exists(self.path_for(key))

    # ------------------------------------------------------------------ #
    # bounds + bookkeeping
    # ------------------------------------------------------------------ #
    def _scan(self, include_tmp: bool = False) -> List[Tuple[str, str, float, int]]:
        """``(name, path, mtime, size)`` per entry file, oldest first."""
        rows = []
        try:
            names = os.listdir(self.cache_dir)
        except OSError:
            return []
        for name in names:
            if name == _LOCK_NAME:
                continue
            is_tmp = _TMP_MARKER in name
            if is_tmp and not include_tmp:
                continue
            if not is_tmp and not name.endswith(_ENTRY_SUFFIX):
                continue
            path = os.path.join(self.cache_dir, name)
            try:
                stat = os.stat(path)
            except OSError:
                continue  # removed by a concurrent process mid-scan
            rows.append((name, path, stat.st_mtime, int(stat.st_size)))
        rows.sort(key=lambda row: (row[2], row[0]))
        return rows

    def _enforce_bounds(self) -> None:
        rows = self._scan()
        total_bytes = sum(size for _, _, _, size in rows)
        if len(rows) <= self.max_entries and total_bytes <= self.max_bytes:
            with self._stats_lock:
                self._puts_since_scan = 0
                self._vanished_since_scan = 0
                self._approx_entries = len(rows)
                self._approx_bytes = total_bytes
            return
        index = 0
        evicted = 0
        evicted_bytes = 0
        failed = 0
        try:
            with _DirectoryLock(self._lock_path):
                rows = self._scan()  # re-scan under the lock: another process
                total_bytes = sum(size for _, _, _, size in rows)  # may have evicted
                while rows[index:] and (
                    len(rows) - index > self.max_entries or total_bytes > self.max_bytes
                ):
                    _, path, _, size = rows[index]
                    index += 1
                    try:
                        os.unlink(path)
                    except FileNotFoundError:
                        # Another process evicted it between our scan and now:
                        # the bytes are gone all the same, so the running total
                        # must shrink or this sweep over-evicts survivors.
                        total_bytes -= size
                        continue
                    except OSError:
                        failed += 1
                        continue
                    total_bytes -= size
                    evicted += 1
                    evicted_bytes += size
                with self._stats_lock:
                    self._approx_entries = max(0, len(rows) - index)
                    self._approx_bytes = total_bytes
        finally:
            # Committed even when the sweep aborts part-way — a failure while
            # releasing (or re-acquiring) the lock file must not erase the
            # record of entries this sweep already deleted.
            with self._stats_lock:
                self._puts_since_scan = 0
                self._vanished_since_scan = 0
                self._evictions += evicted
                self._evicted_bytes += evicted_bytes
                self._errors += failed

    @property
    def stats(self) -> DiskCacheStats:
        """Effectiveness counters plus the current on-disk footprint."""
        rows = self._scan()
        with self._stats_lock:
            return DiskCacheStats(
                hits=self._hits,
                hit_bytes=self._hit_bytes,
                misses=self._misses,
                stores=self._stores,
                evictions=self._evictions,
                evicted_bytes=self._evicted_bytes,
                expirations=self._expirations,
                corrupt_dropped=self._corrupt_dropped,
                errors=self._errors,
                currsize=len(rows),
                current_bytes=sum(size for _, _, _, size in rows),
                max_entries=self.max_entries,
                max_bytes=self.max_bytes,
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DiskResultCache(cache_dir={self.cache_dir!r}, "
            f"max_entries={self.max_entries}, max_bytes={self.max_bytes})"
        )

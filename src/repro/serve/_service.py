"""The streaming segmentation service: queue → micro-batch → engine → cache.

:class:`SegmentationService` turns the one-shot
:class:`~repro.engine.BatchSegmentationEngine` into a long-lived server:

* **submit** — callers hand in one image at a time and get a
  :class:`concurrent.futures.Future` back.  The ingress queue is bounded, so a
  producer that outruns the engine either blocks (default) or gets a
  :class:`~repro.errors.ServiceOverloadedError` — memory stays flat under
  overload instead of OOMing.
* **cache** — before a request is queued, a content-addressed
  :class:`~repro.serve.cache.ResultCache` lookup (image digest + engine config
  digest) answers repeats instantly.  The cache stores the raw per-image
  :class:`~repro.base.SegmentationResult`; scoring against the request's own
  ground truth happens per request, so one cached segmentation serves
  differently-annotated copies of the same image.
* **micro-batching** — a worker thread coalesces queued requests through a
  :class:`~repro.serve.batcher.MicroBatcher` (flush on batch size or
  deadline), dedupes identical images *within* the batch, and scatters the
  distinct ones over the engine's executor.
* **metrics** — throughput, latency percentiles
  (:class:`repro.metrics.runtime.LatencyRecorder`), cache hit rate, queue
  depth and batch-shape statistics via :meth:`SegmentationService.metrics`.
* **graceful shutdown** — :meth:`close` drains queued work before the worker
  exits (or cancels it with ``drain=False``); the service is a context
  manager.
"""

from __future__ import annotations

import dataclasses
import functools
import threading
import time
import queue as queue_module
from concurrent.futures import Future
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from ..base import SegmentationResult
from ..engine import (
    BatchSegmentationEngine,
    PipelineResult,
    binarize_largest_background,
)
from ..errors import ParameterError, ServiceClosedError, ServiceOverloadedError
from ..metrics.runtime import LatencyRecorder
from ..obs.trace import Trace, Tracer
from ._batcher import MicroBatcher
from ._cache import CacheKey, ResultCache, config_digest, image_digest

__all__ = ["SegmentationService"]


def _fingerprint_value(value: Any, depth: int = 0) -> Any:
    """Reduce arbitrary segmenter state to a stable, JSON-friendly form.

    Primitives pass through; sequences recurse; objects with a ``__dict__``
    (parameter holders like ``NoiseModel``) are expanded one-and-a-half
    levels deep so that their numeric fields enter the digest.  Anything
    deeper or opaque (classifier matrices, random generators) collapses to
    its type name — such state either doesn't affect labels or (generators)
    makes the output uncacheable anyway.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (tuple, list)):
        return [_fingerprint_value(item, depth + 1) for item in value]
    if depth < 2:
        try:
            state = vars(value)
        except TypeError:
            state = None
        if state is not None:
            expanded: Dict[str, Any] = {"__class__": type(value).__qualname__}
            for attr, item in sorted(state.items()):
                expanded[attr] = _fingerprint_value(item, depth + 1)
            return expanded
    return f"<{type(value).__qualname__}>"


def _engine_fingerprint(engine: BatchSegmentationEngine) -> Dict[str, Any]:
    """Everything that can change the labels an engine produces.

    ``engine.describe()`` is display-oriented and only names the segmenter,
    so two engines wrapping differently-parameterized segmenters (different
    θ, normalization, noise models, ...) would collide.  The fingerprint
    therefore also walks the segmenter's own attributes via
    :func:`_fingerprint_value` — for the library's segmenters that covers
    thetas/theta, normalize, max_value, multiband, shot counts and the
    fields of an attached noise model.

    Backend identity enters the digest **only when it can change results**
    (``engine.backend_invariant`` is False).  Integer fast paths are bit-exact
    on every backend and the float kernel stays on the exact reference unless
    explicitly routed elsewhere, so for invariant engines the backend is
    scrubbed: warm cache tiers survive a backend switch, and a mixed-backend
    fleet shares one cache without ever serving divergent labels.
    """
    fingerprint = dict(engine.describe())
    fingerprint.pop("backend", None)
    fingerprint.pop("float_compute", None)
    invariant = bool(getattr(engine, "backend_invariant", True))
    if not invariant:
        fingerprint["float_backend"] = engine.backend.name
    segmenter = engine.segmenter
    fingerprint["segmenter_class"] = type(segmenter).__qualname__
    params = {
        attr: _fingerprint_value(value, depth=1)
        for attr, value in sorted(vars(segmenter).items())
    }
    if invariant:
        # The classifier's wired backend shows up in the attribute walk as a
        # type name; results are backend-independent here, so drop it.
        for value in params.values():
            if isinstance(value, dict) and "_backend" in value:
                value["_backend"] = None
    fingerprint["segmenter_params"] = params
    return fingerprint


def _segment_image(engine: BatchSegmentationEngine, image: np.ndarray):
    # Module-level so batches stay picklable for process executors; exceptions
    # are returned, not raised, to keep per-image isolation inside a batch.
    try:
        return engine.segment(image)
    except Exception as exc:  # reprolint: disable=RL004 returned and set on the request future
        return exc


class _Request:
    """One in-flight request: payload, cache key, future, and timing."""

    __slots__ = ("image", "ground_truth", "void_mask", "key", "future", "submitted_at", "trace")

    def __init__(self, image, ground_truth, void_mask, key, submitted_at, trace=None):
        self.image = image
        self.ground_truth = ground_truth
        self.void_mask = void_mask
        self.key = key
        self.future: "Future[PipelineResult]" = Future()
        self.submitted_at = submitted_at
        self.trace = trace


class SegmentationService:
    """A micro-batching, caching segmentation server over a batch engine.

    Parameters
    ----------
    engine:
        The :class:`~repro.engine.BatchSegmentationEngine` that does the
        actual work (its executor is reused to scatter each micro-batch).
    max_batch_size, max_wait_seconds, queue_size:
        Micro-batcher knobs — see :class:`~repro.serve.batcher.MicroBatcher`.
    cache:
        ``None`` to disable caching, the string ``"default"`` for a
        256-entry in-memory LRU, or any object with ``get(key) ->
        value|None`` and ``put(key, value)`` — a
        :class:`~repro.serve.cache.ResultCache`, a
        :class:`~repro.serve.diskcache.DiskResultCache`, or the two stacked
        as a :class:`~repro.serve.cache.TieredResultCache` (memory L1 over a
        persistent disk L2 shared across processes).
    clock:
        Monotonic time source used for every latency/uptime measurement,
        injectable for deterministic tests.  Never wall-clock
        (``time.time``): a system clock step must not distort deadlines,
        TTLs, or latency percentiles.

    The worker thread starts lazily on the first :meth:`submit` (or
    explicitly via :meth:`start`); ``with SegmentationService(...) as svc:``
    guarantees a drained shutdown.
    """

    def __init__(
        self,
        engine: BatchSegmentationEngine,
        max_batch_size: int = 16,
        max_wait_seconds: float = 0.005,
        queue_size: int = 64,
        cache: Any = "default",
        clock: Callable[[], float] = time.monotonic,
        tracer: Optional[Tracer] = None,
    ):
        if not isinstance(engine, BatchSegmentationEngine):
            raise ParameterError("engine must be a BatchSegmentationEngine instance")
        self.engine = engine
        if cache == "default":
            cache = ResultCache(max_entries=256)
        if cache is not None and not (
            callable(getattr(cache, "get", None)) and callable(getattr(cache, "put", None))
        ):
            raise ParameterError('cache must provide get/put, be None, or "default"')
        self.cache = cache
        self._clock = clock
        self._config_digest = config_digest(_engine_fingerprint(engine))
        self._batcher = MicroBatcher(
            max_batch_size=max_batch_size,
            max_wait_seconds=max_wait_seconds,
            queue_size=queue_size,
        )
        self._latency = LatencyRecorder()
        self._lock = threading.Lock()
        self._worker: Optional[threading.Thread] = None
        self._closed = False
        self._started_at: Optional[float] = None
        self._requests = 0
        self._completed = 0
        self._failed = 0
        self._cancelled = 0
        self._coalesced = 0
        self.tracer = tracer if tracer is not None else Tracer(clock=clock)
        self._cache_traced = bool(getattr(cache, "supports_trace", False))

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "SegmentationService":
        """Start the worker thread (idempotent); returns ``self``."""
        with self._lock:
            if self._closed:
                raise ServiceClosedError("service is closed")
            if self._worker is None:
                self._started_at = self._clock()
                self._worker = threading.Thread(
                    target=self._worker_loop, name="repro-serve-worker", daemon=True
                )
                self._worker.start()
        return self

    def close(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Shut down: reject new submits, then drain or cancel queued work.

        With ``drain=True`` (default) every request already accepted is still
        processed before the worker exits — the graceful path.  With
        ``drain=False`` queued-but-unstarted requests are cancelled (their
        futures transition to cancelled) and only the batch currently being
        processed finishes.  Idempotent; ``timeout`` bounds the join.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            worker = self._worker
        if not drain:
            for request in self._batcher.drain():
                if request.future.cancel():
                    with self._lock:
                        self._cancelled += 1
        self._batcher.close()
        if worker is not None:
            worker.join(timeout)
            if not worker.is_alive():
                # Sweep stragglers: a submit blocked on a full queue can race
                # past the closed check in the instant close() runs and land
                # its request after the worker drained and exited.  Cancel
                # them so their futures never hang.
                for request in self._batcher.drain():
                    if request.future.cancel():
                        with self._lock:
                            self._cancelled += 1

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has been called."""
        with self._lock:
            return self._closed

    def __enter__(self) -> "SegmentationService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)

    # ------------------------------------------------------------------ #
    # request path
    # ------------------------------------------------------------------ #
    def submit(
        self,
        image: np.ndarray,
        ground_truth: Optional[np.ndarray] = None,
        void_mask: Optional[np.ndarray] = None,
        block: bool = True,
        timeout: Optional[float] = None,
    ) -> "Future[PipelineResult]":
        """Submit one image; returns a future resolving to a scored result.

        A cache hit resolves the future before this call returns (no queue
        round-trip).  On a miss the request enters the bounded queue:
        ``block=True`` waits for space (backpressure), ``block=False`` or an
        expired ``timeout`` raises
        :class:`~repro.errors.ServiceOverloadedError` instead.

        The image is snapshotted (copied) before it is queued, so callers may
        freely reuse or mutate their buffer after submit — the streaming
        video-frame pattern — without corrupting in-flight requests or the
        content-addressed cache.
        """
        arr = np.asarray(image)
        submitted_at = self._clock()
        # The content key drives both caching and within-batch coalescing, so
        # it is computed even when the cache is disabled.
        key: CacheKey = (image_digest(arr), self._config_digest)
        trace = self.tracer.begin()
        request = _Request(arr, ground_truth, void_mask, key, submitted_at, trace=trace)

        with self._lock:
            if self._closed:
                raise ServiceClosedError("cannot submit to a closed service")
            self._requests += 1
        if self._worker is None:
            self.start()

        if self.cache is not None:
            cached = self._cache_get(key, trace)
            if cached is not None:
                segmentation, binary = cached
                self._resolve(request, segmentation, cache_hit=True, binary=binary)
                return request.future
        # Snapshot the arrays before queueing: the digest above described the
        # buffer *now*, and the caller is free to overwrite it once submit
        # returns.  (Cache hits never queue, so they skip the copy.)
        request.image = np.array(arr, copy=True)
        if ground_truth is not None:
            request.ground_truth = np.array(ground_truth, copy=True)
        if void_mask is not None:
            request.void_mask = np.array(void_mask, copy=True)
        try:
            self._batcher.put(request, block=block, timeout=timeout)
        except queue_module.Full:
            with self._lock:
                self._requests -= 1
            raise ServiceOverloadedError(
                f"service queue is full ({self._batcher.queue_size} pending requests)"
            ) from None
        except ParameterError:
            # close() raced us between the closed check and the enqueue.
            with self._lock:
                self._requests -= 1
            raise ServiceClosedError("cannot submit to a closed service") from None
        return request.future

    def map(self, images, ground_truths=None, void_masks=None) -> List[PipelineResult]:
        """Convenience: submit a whole batch and wait for all results in order."""
        images = list(images)
        gts = list(ground_truths) if ground_truths is not None else [None] * len(images)
        voids = list(void_masks) if void_masks is not None else [None] * len(images)
        if not (len(images) == len(gts) == len(voids)):
            raise ParameterError("images, ground_truths and void_masks lengths differ")
        futures = [
            self.submit(image, gt, void) for image, gt, void in zip(images, gts, voids)
        ]
        return [future.result() for future in futures]

    def _cache_get(self, key: CacheKey, trace: Optional[Trace] = None) -> Optional[Any]:
        """Cache probe recording a ``cache.probe`` span (tier spans nested)."""
        if self.cache is None:
            return None
        if trace is None:
            return self.cache.get(key)
        start = trace.clock()
        if self._cache_traced:
            value = self.cache.get(key, trace=trace)
        else:
            value = self.cache.get(key)
        trace.add("cache.probe", start, trace.clock(), hit=value is not None)
        return value

    # ------------------------------------------------------------------ #
    # worker
    # ------------------------------------------------------------------ #
    def _worker_loop(self) -> None:
        while True:
            batch = self._batcher.next_batch()
            if batch is None:
                return
            try:
                self._process(batch)
            except Exception as exc:  # noqa: BLE001 - never kill the worker silently
                failed = 0
                for request in batch:
                    if not request.future.done():
                        request.future.set_exception(exc)
                        failed += 1
                with self._lock:
                    self._failed += failed

    def _process(self, batch: List[_Request]) -> None:
        live = []
        dropped = 0
        for request in batch:
            if request.future.set_running_or_notify_cancel():
                live.append(request)
            else:
                dropped += 1  # the caller cancelled the future while queued
        if dropped:
            with self._lock:
                self._cancelled += dropped
        if not live:
            return
        drained_at = self._clock()
        for request in live:
            if request.trace is not None:
                request.trace.add("queue.wait", request.submitted_at, drained_at)
        # Coalesce identical images within the batch: one engine evaluation
        # per distinct content digest (independent of whether the cache is
        # enabled — the digest is always computed at submit time).
        groups: Dict[CacheKey, List[_Request]] = {}
        order: List[CacheKey] = []
        for request in live:
            if request.key not in groups:
                groups[request.key] = []
                order.append(request.key)
            groups[request.key].append(request)

        # Re-check the cache per group: a request that missed at submit time
        # may have been computed by an earlier batch while it sat in the
        # queue (batches are processed sequentially, so this is race-free).
        if self.cache is not None:
            remaining = []
            for group_key in order:
                requests = groups[group_key]
                cached = self._cache_get(group_key, requests[0].trace)
                if cached is not None:
                    segmentation, binary = cached
                    for request in requests:
                        self._resolve(request, segmentation, cache_hit=True, binary=binary)
                else:
                    remaining.append(group_key)
            order = remaining
            if not order:
                return

        representatives = [groups[group_key][0].image for group_key in order]
        compute_start = self._clock()
        results = self.engine.executor.map(
            functools.partial(_segment_image, self.engine), representatives
        )
        compute_end = self._clock()
        for group_key, outcome in zip(order, results):
            requests = groups[group_key]
            if not isinstance(outcome, Exception):
                for request in requests:
                    if request.trace is not None:
                        request.trace.add(
                            "engine.compute",
                            compute_start,
                            compute_end,
                            strategy=str(outcome.extras.get("fast_path", "direct")),
                            runtime_seconds=float(outcome.runtime_seconds),
                            prepare_seconds=float(outcome.extras.get("prepare_seconds", 0.0)),
                            batch_groups=len(order),
                        )
            if isinstance(outcome, Exception):
                for request in requests:
                    request.future.set_exception(outcome)
                with self._lock:
                    self._failed += len(requests)
                continue
            # Pre-compute the annotation-free binarization once per distinct
            # image: it is a pure function of the labels, so cache hits for
            # unannotated requests can skip scoring entirely.
            binary = binarize_largest_background(outcome.labels)
            if self.cache is not None:
                self.cache.put(group_key, (outcome, binary))
            for position, request in enumerate(requests):
                self._resolve(
                    request,
                    outcome,
                    cache_hit=False,
                    coalesced=position > 0,
                    binary=binary,
                )

    def _resolve(
        self,
        request: _Request,
        segmentation: SegmentationResult,
        cache_hit: bool,
        coalesced: bool = False,
        binary: Optional[np.ndarray] = None,
    ) -> None:
        if coalesced:
            with self._lock:
                self._coalesced += 1
        trace = request.trace
        score_start = trace.clock() if trace is not None else 0.0
        try:
            tagged = dataclasses.replace(
                segmentation,
                extras={
                    **segmentation.extras,
                    "cache_hit": cache_hit,
                    "coalesced": coalesced,
                },
            )
            if request.ground_truth is None and binary is not None:
                # No annotation to score against: the pre-computed
                # binarization is the entire evaluation protocol.
                result = PipelineResult(segmentation=tagged, binary=binary, metrics={})
            else:
                result = self.engine.pipeline.score(
                    tagged, request.ground_truth, request.void_mask
                )
        except Exception as exc:  # noqa: BLE001 - scoring failures stay per-request
            if not request.future.done():
                request.future.set_exception(exc)
            with self._lock:
                self._failed += 1
            if trace is not None:
                trace.annotate(error=type(exc).__name__)
                self.tracer.record(trace)
            return
        self._latency.record(self._clock() - request.submitted_at)
        with self._lock:
            self._completed += 1
        if trace is not None:
            trace.add("scoring", score_start, trace.clock())
            trace.annotate(cache_hit=cache_hit, coalesced=coalesced)
            self.tracer.record(trace)
        request.future.set_result(result)

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def metrics(self) -> Dict[str, Any]:
        """A JSON-friendly snapshot of service health and performance."""
        with self._lock:
            requests, completed = self._requests, self._completed
            failed, cancelled = self._failed, self._cancelled
            coalesced = self._coalesced
            started_at = self._started_at
        elapsed = self._clock() - started_at if started_at is not None else 0.0
        return {
            "requests": requests,
            "completed": completed,
            "failed": failed,
            "cancelled": cancelled,
            "coalesced": coalesced,
            "in_flight": requests - completed - failed - cancelled,
            "queue_depth": self._batcher.queue_depth,
            "uptime_seconds": elapsed,
            "throughput_rps": completed / elapsed if elapsed > 0 else 0.0,
            "latency_seconds": self._latency.summary(),
            "latency_sketch": self._latency.sketch(),
            "batcher": self._batcher.stats,
            "cache": self._cache_stats(),
            "trace": self.tracer.counters(),
        }

    def trace(self, trace_id: str) -> Optional[Dict[str, Any]]:
        """A completed trace from the flight recorder, or ``None``."""
        return self.tracer.get(trace_id)

    def traces(self, slowest: int = 10) -> List[Dict[str, Any]]:
        """The slowest retained traces, slowest first."""
        return self.tracer.slowest(slowest)

    def _cache_stats(self) -> Optional[Dict[str, Any]]:
        """Stats of whatever cache is attached (tiered caches report L1/L2)."""
        if self.cache is None:
            return None
        stats = getattr(self.cache, "stats", None)
        if stats is None:
            return None
        return stats.as_dict() if hasattr(stats, "as_dict") else dict(stats)

    def describe(self) -> Dict[str, Any]:
        """Static configuration (engine + service knobs), JSON-friendly."""
        return {
            "engine": self.engine.describe(),
            "config_digest": self._config_digest,
            "max_batch_size": self._batcher.max_batch_size,
            "max_wait_seconds": self._batcher.max_wait_seconds,
            "queue_size": self._batcher.queue_size,
            "cache": (
                {
                    "max_entries": getattr(self.cache, "max_entries", None),
                    "ttl_seconds": getattr(self.cache, "ttl_seconds", None),
                }
                if self.cache is not None
                else None
            ),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SegmentationService(engine={self.engine!r}, "
            f"max_batch_size={self._batcher.max_batch_size}, "
            f"closed={self.closed})"
        )

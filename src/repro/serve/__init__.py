"""The serving layer: streaming segmentation with micro-batching and caching.

This subsystem turns the one-shot batch engine into a long-lived service fit
for request/response traffic:

* :class:`SegmentationService` — bounded ingress queue (backpressure, not
  OOM), request coalescing through a :class:`MicroBatcher` (flush on batch
  size or deadline), a content-addressed :class:`ResultCache` in front of the
  engine (LRU + TTL keyed by image digest + engine-config digest), service
  metrics (throughput, latency percentiles, cache hit rate, queue depth) and
  graceful draining shutdown.
* :mod:`repro.serve.spool` — the job sources behind ``repro-segment serve``:
  a watched spool directory or JSONL job lines, emitting a
  ``repro-serve-report/v1`` summary.

The streaming counterpart on the engine itself is
:meth:`repro.engine.BatchSegmentationEngine.map_stream`, which flows an
arbitrarily large dataset through a bounded in-flight window.

Quick start
-----------
>>> import numpy as np
>>> from repro import BatchSegmentationEngine, IQFTSegmenter
>>> from repro.serve import SegmentationService
>>> engine = BatchSegmentationEngine(IQFTSegmenter(thetas=np.pi))
>>> image = (np.random.default_rng(0).random((16, 16, 3)) * 255).astype(np.uint8)
>>> with SegmentationService(engine) as service:
...     result = service.submit(image).result()
...     repeat = service.submit(image).result()  # served from the cache
>>> bool(repeat.segmentation.extras["cache_hit"])
True
"""

from .batcher import MicroBatcher
from .cache import CacheStats, ResultCache, config_digest, image_digest
from .service import SegmentationService
from .spool import Job, build_report, iter_jsonl_jobs, iter_spool_jobs, run_jobs

__all__ = [
    "SegmentationService",
    "MicroBatcher",
    "ResultCache",
    "CacheStats",
    "image_digest",
    "config_digest",
    "Job",
    "iter_spool_jobs",
    "iter_jsonl_jobs",
    "run_jobs",
    "build_report",
]

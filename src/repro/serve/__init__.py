"""The serving layer: streaming segmentation with micro-batching and caching.

This subsystem turns the one-shot batch engine into a long-lived service fit
for request/response traffic:

* :class:`SegmentationService` — bounded ingress queue (backpressure, not
  OOM), request coalescing through a :class:`MicroBatcher` (flush on batch
  size or deadline), a content-addressed :class:`ResultCache` in front of the
  engine (LRU + TTL keyed by image digest + engine-config digest), service
  metrics (throughput, latency percentiles, cache hit rate, queue depth) and
  graceful draining shutdown.
* :class:`AsyncSegmentationService` — the asyncio-native front end over the
  same engine machinery: ``await submit(image, priority=..., deadline=...,
  client_id=...)`` with HIGH/NORMAL/LOW priority lanes (weighted draining),
  per-client token-bucket quotas, deadline-aware admission and shedding
  (:class:`~repro.errors.DeadlineExceededError`) and graceful ``aclose()``.
* :class:`HttpSegmentationServer` — the stdlib-only asyncio HTTP/1.1 front
  end over the async service (``POST /v1/segment``, ``GET /v1/metrics``,
  ``GET /v1/capabilities``, draining-aware ``GET /healthz``) with every
  serve error mapped to a precise status code, plus :class:`SegmentClient`,
  the blocking reference client that raises those errors back as the
  library's own exceptions.  CLI: ``repro-segment serve --http HOST:PORT``.
* :class:`DiskResultCache` — a persistent, crash-safe, size-bounded on-disk
  cache tier (atomic writes, mtime-LRU eviction, multi-process safe) that
  stacks under the in-memory cache as :class:`TieredResultCache`, so warm
  results survive restarts and are shared across worker processes.
* :class:`SharedMemoryResultCache` — the same-host shared-memory L1.5 tier
  for worker fleets: a fixed ring of digest-keyed slots in one
  ``multiprocessing.shared_memory`` segment, validated lock-free with
  generation counters + payload checksums (torn writes degrade to misses).
  Stacked into :class:`TieredResultCache` between L1 and the disk L2, a warm
  hit costs one memcpy instead of a file open + npz inflate.
* :class:`ServeFleet` — the multi-process scale-out layer: a supervisor
  running N HTTP worker processes behind one HOST:PORT via ``SO_REUSEPORT``
  (kernel load balancing; single shared listener as the fallback), all
  sharing one disk-cache directory as their L2.  Staggered startup,
  heartbeat liveness, crash-restart with exponential backoff, fleet-wide
  SIGTERM drain, and merged metrics/health across the workers.  Fleets may
  mix array backends per worker (``backends=["torch", "numpy"]``) — integer
  fast paths are bit-exact on every backend, so the mixed fleet serves
  identical answers from one shared cache.  Workers can run the adaptive
  control loop (:class:`AdaptiveController`): batch size and lane weights
  re-derived each tick from live telemetry, within bounds.
  CLI: ``repro-segment serve --http HOST:PORT --workers N [--backend ...]``.
* the spool job sources behind ``repro-segment serve``: a watched spool
  directory or JSONL job lines (with optional per-job priority and
  deadline), emitting a ``repro-serve-report/v1`` summary.

This module is the serving layer's **only stable import surface**: every
public name is re-exported here (lazily, via PEP 562, so ``import
repro.serve`` stays cheap) and the ``repro.serve.<submodule>`` deep paths
are deprecated shims.  The streaming counterpart on the engine itself is
:meth:`repro.engine.BatchSegmentationEngine.map_stream`, which flows an
arbitrarily large dataset through a bounded in-flight window.

Quick start
-----------
>>> import numpy as np
>>> from repro import BatchSegmentationEngine, IQFTSegmenter
>>> from repro.serve import SegmentationService
>>> engine = BatchSegmentationEngine(IQFTSegmenter(thetas=np.pi))
>>> image = (np.random.default_rng(0).random((16, 16, 3)) * 255).astype(np.uint8)
>>> with SegmentationService(engine) as service:
...     result = service.submit(image).result()
...     repeat = service.submit(image).result()  # served from the cache
>>> bool(repeat.segmentation.extras["cache_hit"])
True
"""

from importlib import import_module
from typing import TYPE_CHECKING

#: Public name → private implementation module.  Names resolve on first
#: attribute access (PEP 562), so importing :mod:`repro.serve` does not pay
#: for asyncio, multiprocessing, or the HTTP stack until they are used.
_EXPORTS = {
    "SegmentationService": "_service",
    "AsyncSegmentationService": "_aio",
    "Priority": "_aio",
    "TokenBucket": "_aio",
    "MicroBatcher": "_batcher",
    "AdaptiveConfig": "_batcher",
    "AdaptiveController": "_batcher",
    "ServeFleet": "_fleet",
    "WorkerSpec": "_fleet",
    "merge_worker_metrics": "_fleet",
    "HttpSegmentationServer": "_http",
    "status_for_exception": "_http",
    "SegmentClient": "_http_client",
    "HttpSegmentResult": "_http_client",
    "ResultCache": "_cache",
    "CacheStats": "_cache",
    "TieredResultCache": "_cache",
    "TieredCacheStats": "_cache",
    "image_digest": "_cache",
    "config_digest": "_cache",
    "tile_key": "_cache",
    "TileCacheAdapter": "_cache",
    "DiskResultCache": "_diskcache",
    "DiskCacheStats": "_diskcache",
    "SharedMemoryResultCache": "_shmcache",
    "ShmCacheStats": "_shmcache",
    "Job": "_spool",
    "iter_spool_jobs": "_spool",
    "iter_jsonl_jobs": "_spool",
    "run_jobs": "_spool",
    "run_jobs_async": "_spool",
    "build_report": "_spool",
}

__all__ = list(_EXPORTS)


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(import_module(f".{module}", __name__), name)
    globals()[name] = value  # cache: next access skips this hook
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))


if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from ._aio import AsyncSegmentationService, Priority, TokenBucket
    from ._batcher import AdaptiveConfig, AdaptiveController, MicroBatcher
    from ._cache import (
        CacheStats,
        ResultCache,
        TieredCacheStats,
        TieredResultCache,
        TileCacheAdapter,
        config_digest,
        image_digest,
        tile_key,
    )
    from ._diskcache import DiskCacheStats, DiskResultCache
    from ._fleet import ServeFleet, WorkerSpec, merge_worker_metrics
    from ._http import HttpSegmentationServer, status_for_exception
    from ._http_client import HttpSegmentResult, SegmentClient
    from ._service import SegmentationService
    from ._shmcache import SharedMemoryResultCache, ShmCacheStats
    from ._spool import (
        Job,
        build_report,
        iter_jsonl_jobs,
        iter_spool_jobs,
        run_jobs,
        run_jobs_async,
    )

"""From-scratch K-means clustering and the K-means colour segmenter baseline.

The paper uses ``sklearn.cluster.KMeans`` with default settings as one of its
two baselines.  This module re-implements the algorithm with the same
behaviourally relevant defaults — k-means++ initialization, several restarts
(``n_init``), Lloyd iterations until the centre shift falls below ``tol`` — in
pure numpy, fully vectorized (distance computations are a single broadcasted
``(N, 1, D) − (1, K, D)`` reduction per iteration, chunked for large images).

:class:`KMeansSegmenter` applies the clustering to per-pixel colour vectors
(RGB) or intensities (grayscale), exactly like the baseline in the paper.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..base import BaseSegmenter
from ..config import SeedLike, as_generator
from ..errors import ParameterError, SegmentationError
from ..imaging.image import as_float_image

__all__ = ["KMeans", "KMeansSegmenter"]


class KMeans:
    """Vectorized Lloyd's algorithm with k-means++ initialization.

    Parameters
    ----------
    n_clusters:
        Number of clusters ``k``.
    n_init:
        Number of independent restarts; the run with the lowest inertia wins
        (scikit-learn's classic default of 10 is used).
    max_iter:
        Maximum Lloyd iterations per restart.
    tol:
        Convergence threshold on the squared centre shift, relative to the
        mean feature variance (matching scikit-learn's interpretation).
    seed:
        Seed or generator controlling the initialization.
    """

    def __init__(
        self,
        n_clusters: int = 2,
        n_init: int = 10,
        max_iter: int = 300,
        tol: float = 1e-4,
        seed: SeedLike = None,
    ):
        if n_clusters < 1:
            raise ParameterError("n_clusters must be >= 1")
        if n_init < 1:
            raise ParameterError("n_init must be >= 1")
        if max_iter < 1:
            raise ParameterError("max_iter must be >= 1")
        if tol < 0:
            raise ParameterError("tol must be non-negative")
        self.n_clusters = int(n_clusters)
        self.n_init = int(n_init)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.seed = seed
        self.cluster_centers_: Optional[np.ndarray] = None
        self.labels_: Optional[np.ndarray] = None
        self.inertia_: Optional[float] = None
        self.n_iter_: int = 0

    # ------------------------------------------------------------------ #
    @staticmethod
    def _squared_distances(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
        """Pairwise squared Euclidean distances, ``(N, K)``.

        Uses the ``|x|² − 2x·c + |c|²`` expansion so the dominant cost is one
        GEMM instead of a broadcasted subtraction that would materialize an
        ``(N, K, D)`` intermediate.
        """
        x_sq = np.einsum("nd,nd->n", points, points)[:, None]
        c_sq = np.einsum("kd,kd->k", centers, centers)[None, :]
        cross = points @ centers.T
        d = x_sq - 2.0 * cross + c_sq
        np.maximum(d, 0.0, out=d)
        return d

    def _init_centers(self, points: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """k-means++ seeding."""
        n_samples = points.shape[0]
        centers = np.empty((self.n_clusters, points.shape[1]), dtype=np.float64)
        first = int(rng.integers(n_samples))
        centers[0] = points[first]
        closest = self._squared_distances(points, centers[:1]).reshape(-1)
        for idx in range(1, self.n_clusters):
            total = closest.sum()
            if total <= 0:
                # All points coincide with existing centres; duplicate one.
                centers[idx:] = centers[0]
                break
            probs = closest / total
            choice = int(rng.choice(n_samples, p=probs))
            centers[idx] = points[choice]
            new_d = self._squared_distances(points, centers[idx : idx + 1]).reshape(-1)
            np.minimum(closest, new_d, out=closest)
        return centers

    def _single_run(
        self, points: np.ndarray, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray, float, int]:
        centers = self._init_centers(points, rng)
        variance = float(np.mean(np.var(points, axis=0))) or 1.0
        threshold = self.tol * variance
        labels = np.zeros(points.shape[0], dtype=np.int64)
        for iteration in range(1, self.max_iter + 1):
            distances = self._squared_distances(points, centers)
            labels = np.argmin(distances, axis=1)
            new_centers = np.empty_like(centers)
            for k in range(self.n_clusters):
                mask = labels == k
                if mask.any():
                    new_centers[k] = points[mask].mean(axis=0)
                else:
                    # Re-seed an empty cluster at the point farthest from its centre.
                    farthest = int(np.argmax(distances[np.arange(points.shape[0]), labels]))
                    new_centers[k] = points[farthest]
            shift = float(np.sum((new_centers - centers) ** 2))
            centers = new_centers
            if shift <= threshold:
                break
        distances = self._squared_distances(points, centers)
        labels = np.argmin(distances, axis=1)
        inertia = float(distances[np.arange(points.shape[0]), labels].sum())
        return centers, labels, inertia, iteration

    # ------------------------------------------------------------------ #
    def fit(self, points: np.ndarray) -> "KMeans":
        """Cluster ``(N, D)`` feature vectors (a 1-D array is treated as (N, 1))."""
        data = np.asarray(points, dtype=np.float64)
        if data.ndim == 1:
            data = data[:, None]
        if data.ndim != 2:
            raise ParameterError(f"expected an (N, D) array, got shape {data.shape}")
        if data.shape[0] < self.n_clusters:
            raise SegmentationError(
                f"cannot form {self.n_clusters} clusters from {data.shape[0]} samples"
            )
        rng = as_generator(self.seed)
        best: Optional[Tuple[np.ndarray, np.ndarray, float, int]] = None
        for _ in range(self.n_init):
            run = self._single_run(data, rng)
            if best is None or run[2] < best[2]:
                best = run
        assert best is not None
        self.cluster_centers_, self.labels_, self.inertia_, self.n_iter_ = best
        return self

    def predict(self, points: np.ndarray) -> np.ndarray:
        """Assign new points to the nearest fitted centre."""
        if self.cluster_centers_ is None:
            raise SegmentationError("KMeans.predict called before fit")
        data = np.asarray(points, dtype=np.float64)
        if data.ndim == 1:
            data = data[:, None]
        distances = self._squared_distances(data, self.cluster_centers_)
        return np.argmin(distances, axis=1).astype(np.int64)

    def fit_predict(self, points: np.ndarray) -> np.ndarray:
        """Convenience: ``fit(points)`` then return the training labels."""
        self.fit(points)
        assert self.labels_ is not None
        return self.labels_


class KMeansSegmenter(BaseSegmenter):
    """K-means colour clustering as an image segmenter (the paper's baseline).

    Parameters
    ----------
    n_clusters:
        Number of colour clusters.  The paper runs scikit-learn defaults; for
        the binary foreground/background evaluation the harness uses ``k=2``
        (and the majority-overlap binarization handles any ``k``).
    n_init, max_iter, tol, seed:
        Passed through to :class:`KMeans`.
    sample_limit:
        When an image has more pixels than this, the model is fitted on a
        uniformly-sampled subset of pixels and then used to predict labels for
        all pixels — the standard trick for keeping K-means on megapixel
        images tractable without changing the result materially.
    """

    name = "kmeans"

    def __init__(
        self,
        n_clusters: int = 2,
        n_init: int = 10,
        max_iter: int = 300,
        tol: float = 1e-4,
        seed: SeedLike = 0,
        sample_limit: int = 200_000,
    ):
        super().__init__()
        if sample_limit < 1:
            raise ParameterError("sample_limit must be positive")
        self.n_clusters = int(n_clusters)
        self.n_init = int(n_init)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.seed = seed
        self.sample_limit = int(sample_limit)
        self._last_centers: Optional[np.ndarray] = None

    def _segment(self, image: np.ndarray) -> np.ndarray:
        img = as_float_image(image)
        height, width = img.shape[:2]
        features = img.reshape(height * width, -1)
        model = KMeans(
            n_clusters=self.n_clusters,
            n_init=self.n_init,
            max_iter=self.max_iter,
            tol=self.tol,
            seed=self.seed,
        )
        if features.shape[0] > self.sample_limit:
            rng = as_generator(self.seed)
            subset = rng.choice(features.shape[0], size=self.sample_limit, replace=False)
            model.fit(features[subset])
            labels = model.predict(features)
        else:
            labels = model.fit_predict(features)
        self._last_centers = model.cluster_centers_
        return labels.reshape(height, width)

    def _extras(self) -> dict:
        return {"cluster_centers": self._last_centers}

"""Otsu's thresholding (and a multi-level extension) as a baseline segmenter.

Otsu's method picks the intensity threshold maximizing the between-class
variance of the resulting two-class split of the histogram; it is exactly what
``skimage.filters.threshold_otsu`` computes, which is the implementation the
paper used.  The multi-level variant exhaustively maximizes the same criterion
over pairs/triples of thresholds on the 256-bin histogram (practical because
the search space is tiny), and exists to mirror the Figure-4 discussion about
needing several thresholds.
"""

from __future__ import annotations

import itertools
from typing import List, Optional

import numpy as np

from ..base import BaseSegmenter
from ..errors import ParameterError, SegmentationError
from ..imaging.color import rgb_to_gray
from ..imaging.histogram import histogram
from ..imaging.image import as_float_image

__all__ = ["otsu_threshold", "multi_otsu_thresholds", "OtsuSegmenter", "MultiOtsuSegmenter"]


def otsu_threshold(image: np.ndarray, bins: int = 256) -> float:
    """Return Otsu's threshold for a grayscale image, as a float in ``[0, 1]``.

    RGB input is converted to grayscale with the paper's equation (17) first.
    Raises :class:`~repro.errors.SegmentationError` when the image is constant
    (no threshold separates anything).
    """
    img = as_float_image(image)
    if img.ndim == 3:
        img = rgb_to_gray(img)
    if float(img.max()) == float(img.min()):
        raise SegmentationError("cannot compute an Otsu threshold of a constant image")
    counts, centers = histogram(img, bins=bins)
    total = counts.sum()
    probabilities = counts / total

    # Cumulative class probabilities and means for every candidate split.
    weight_bg = np.cumsum(probabilities)
    weight_fg = 1.0 - weight_bg
    cumulative_mean = np.cumsum(probabilities * centers)
    global_mean = cumulative_mean[-1]

    with np.errstate(divide="ignore", invalid="ignore"):
        mean_bg = cumulative_mean / weight_bg
        mean_fg = (global_mean - cumulative_mean) / weight_fg
        between = weight_bg * weight_fg * (mean_bg - mean_fg) ** 2
    between = np.nan_to_num(between, nan=-1.0, posinf=-1.0, neginf=-1.0)
    # The threshold sits between bin t and t+1; use the upper edge (bin centre
    # of t plus half a bin) so that "intensity > threshold" matches skimage.
    best = int(np.argmax(between[:-1]))
    bin_width = centers[1] - centers[0]
    return float(centers[best] + 0.5 * bin_width)


def multi_otsu_thresholds(image: np.ndarray, classes: int = 3, bins: int = 128) -> List[float]:
    """Multi-level Otsu: thresholds splitting the histogram into ``classes`` bands.

    Maximizes the between-class variance over all ``classes − 1`` subsets of
    bin boundaries by exhaustive search (the histogram is coarse enough that
    this stays fast for ``classes ≤ 4``).
    """
    if classes < 2:
        raise ParameterError("classes must be >= 2")
    if classes > 5:
        raise ParameterError("multi_otsu_thresholds supports at most 5 classes")
    img = as_float_image(image)
    if img.ndim == 3:
        img = rgb_to_gray(img)
    counts, centers = histogram(img, bins=bins)
    probabilities = counts / counts.sum()

    cumulative_p = np.concatenate([[0.0], np.cumsum(probabilities)])
    cumulative_m = np.concatenate([[0.0], np.cumsum(probabilities * centers)])

    def class_term(lo: int, hi: int) -> float:
        """Between-class contribution of bins [lo, hi)."""
        w = cumulative_p[hi] - cumulative_p[lo]
        if w <= 0:
            return 0.0
        m = (cumulative_m[hi] - cumulative_m[lo]) / w
        return w * m * m

    best_score = -np.inf
    best_cut: Optional[tuple] = None
    for cut in itertools.combinations(range(1, bins), classes - 1):
        edges = (0,) + cut + (bins,)
        score = sum(class_term(edges[i], edges[i + 1]) for i in range(classes))
        if score > best_score:
            best_score = score
            best_cut = cut
    assert best_cut is not None
    bin_width = centers[1] - centers[0]
    return [float(centers[c - 1] + 0.5 * bin_width) for c in best_cut]


class OtsuSegmenter(BaseSegmenter):
    """Binary Otsu thresholding baseline (foreground = intensity above threshold)."""

    name = "otsu"

    def __init__(self, bins: int = 256):
        super().__init__()
        if bins < 2:
            raise ParameterError("bins must be >= 2")
        self.bins = int(bins)
        self._last_threshold: Optional[float] = None

    def _segment(self, image: np.ndarray) -> np.ndarray:
        img = as_float_image(image)
        if img.ndim == 3:
            img = rgb_to_gray(img)
        if float(img.max()) == float(img.min()):
            # A constant image has a single segment; label everything 0.
            self._last_threshold = None
            return np.zeros(img.shape, dtype=np.int64)
        threshold = otsu_threshold(img, bins=self.bins)
        self._last_threshold = threshold
        return (img > threshold).astype(np.int64)

    def _extras(self) -> dict:
        return {"threshold": self._last_threshold}


class MultiOtsuSegmenter(BaseSegmenter):
    """Multi-level Otsu segmenter labelling each intensity band separately."""

    name = "multi-otsu"

    def __init__(self, classes: int = 3, bins: int = 128):
        super().__init__()
        self.classes = int(classes)
        self.bins = int(bins)
        self._last_thresholds: Optional[List[float]] = None

    def _segment(self, image: np.ndarray) -> np.ndarray:
        img = as_float_image(image)
        if img.ndim == 3:
            img = rgb_to_gray(img)
        if float(img.max()) == float(img.min()):
            self._last_thresholds = []
            return np.zeros(img.shape, dtype=np.int64)
        thresholds = multi_otsu_thresholds(img, classes=self.classes, bins=self.bins)
        self._last_thresholds = thresholds
        return np.digitize(img, np.asarray(thresholds)).astype(np.int64)

    def _extras(self) -> dict:
        return {"thresholds": self._last_thresholds}

"""Simple thresholding segmenters used in ablations and tests.

These are not paper baselines; they exist to (a) sanity-check the evaluation
plumbing with methods whose behaviour is trivially predictable, and (b) serve
as the reference implementation for the θ ↔ threshold equivalence tests
(an :class:`IQFTGrayscaleSegmenter` with a single threshold must agree exactly
with a :class:`FixedThresholdSegmenter` at that threshold).
"""

from __future__ import annotations


import numpy as np
from scipy import ndimage

from ..base import BaseSegmenter
from ..errors import ParameterError
from ..imaging.color import rgb_to_gray
from ..imaging.image import as_float_image

__all__ = ["FixedThresholdSegmenter", "AdaptiveMeanThresholdSegmenter"]


class FixedThresholdSegmenter(BaseSegmenter):
    """Label 1 where the (grayscale) intensity exceeds a fixed threshold."""

    name = "fixed-threshold"

    def __init__(self, threshold: float = 0.5):
        super().__init__()
        if not 0.0 <= threshold <= 1.0:
            raise ParameterError("threshold must lie in [0, 1]")
        self.threshold = float(threshold)

    def _segment(self, image: np.ndarray) -> np.ndarray:
        img = as_float_image(image)
        if img.ndim == 3:
            img = rgb_to_gray(img)
        return (img > self.threshold).astype(np.int64)

    def _extras(self) -> dict:
        return {"threshold": self.threshold}


class AdaptiveMeanThresholdSegmenter(BaseSegmenter):
    """Local adaptive thresholding: compare each pixel to its neighbourhood mean.

    A pixel is foreground when it exceeds the mean of a ``window × window``
    neighbourhood by at least ``offset``.  Included as the representative of
    "adaptive thresholding" from the related-work taxonomy; useful on images
    with strong illumination gradients where global methods (Otsu, fixed θ)
    struggle.
    """

    name = "adaptive-mean"

    def __init__(self, window: int = 31, offset: float = 0.0):
        super().__init__()
        if window < 3 or window % 2 == 0:
            raise ParameterError("window must be an odd integer >= 3")
        self.window = int(window)
        self.offset = float(offset)

    def _segment(self, image: np.ndarray) -> np.ndarray:
        img = as_float_image(image)
        if img.ndim == 3:
            img = rgb_to_gray(img)
        local_mean = ndimage.uniform_filter(img, size=self.window, mode="reflect")
        return (img > local_mean + self.offset).astype(np.int64)

    def _extras(self) -> dict:
        return {"window": self.window, "offset": self.offset}

"""Name-based registry of every segmentation method in the library.

The experiment harness, the CLI and the examples construct methods by name
through :func:`get_segmenter`, so adding a new method to the comparison tables
only requires registering a factory here (or calling
:func:`register_segmenter` from user code).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..base import BaseSegmenter
from ..errors import ParameterError

__all__ = ["register_segmenter", "get_segmenter", "available_segmenters"]

_FACTORIES: Dict[str, Callable[..., BaseSegmenter]] = {}


def register_segmenter(name: str, factory: Callable[..., BaseSegmenter]) -> None:
    """Register a segmenter factory under ``name`` (overwrites silently)."""
    if not name:
        raise ParameterError("segmenter name must be non-empty")
    _FACTORIES[name] = factory


def get_segmenter(name: str, **kwargs) -> BaseSegmenter:
    """Construct a registered segmenter by name, forwarding keyword arguments."""
    try:
        factory = _FACTORIES[name]
    except KeyError as exc:
        raise ParameterError(
            f"unknown segmenter {name!r}; available: {sorted(_FACTORIES)}"
        ) from exc
    segmenter = factory(**kwargs)
    if not isinstance(segmenter, BaseSegmenter):
        raise ParameterError(f"factory for {name!r} did not return a BaseSegmenter")
    return segmenter


def available_segmenters() -> List[str]:
    """Sorted list of registered method names."""
    return sorted(_FACTORIES)


def _register_builtins() -> None:
    """Register the built-in methods lazily to avoid import cycles."""
    from ..core.grayscale_segmenter import IQFTGrayscaleSegmenter
    from ..core.rgb_segmenter import IQFTSegmenter
    from .kmeans import KMeansSegmenter
    from .otsu import MultiOtsuSegmenter, OtsuSegmenter
    from .region import ConnectedComponentsSegmenter, RegionGrowingSegmenter
    from .threshold import AdaptiveMeanThresholdSegmenter, FixedThresholdSegmenter

    from ..core.feature_segmenter import FeatureIQFTSegmenter
    from ..core.sampling_segmenter import ShotBasedIQFTSegmenter

    register_segmenter("iqft-rgb", IQFTSegmenter)
    register_segmenter("iqft-gray", IQFTGrayscaleSegmenter)
    register_segmenter("iqft-features", FeatureIQFTSegmenter)
    register_segmenter("iqft-rgb-shots", ShotBasedIQFTSegmenter)
    register_segmenter("kmeans", KMeansSegmenter)
    register_segmenter("otsu", OtsuSegmenter)
    register_segmenter("multi-otsu", MultiOtsuSegmenter)
    register_segmenter("fixed-threshold", FixedThresholdSegmenter)
    register_segmenter("adaptive-mean", AdaptiveMeanThresholdSegmenter)
    register_segmenter("connected-components", ConnectedComponentsSegmenter)
    register_segmenter("region-growing", RegionGrowingSegmenter)


_register_builtins()

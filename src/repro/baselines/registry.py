"""Name-based registry of every segmentation method in the library.

The experiment harness, the CLI and the examples construct methods by name
through :func:`get_segmenter`, so adding a new method to the comparison tables
only requires registering a factory here (or calling
:func:`register_segmenter` from user code).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..base import BaseSegmenter
from ..errors import ParameterError

__all__ = [
    "register_segmenter",
    "get_segmenter",
    "available_segmenters",
    "SEEDED_METHODS",
    "THETA_KEYWORDS",
    "method_kwargs",
]

_FACTORIES: Dict[str, Callable[..., BaseSegmenter]] = {}

#: Methods whose factory accepts a ``seed`` keyword (stochastic methods).
SEEDED_METHODS = frozenset({"kmeans", "iqft-rgb-shots"})

#: Methods that accept an angle parameter, and the keyword it travels under.
THETA_KEYWORDS: Dict[str, str] = {
    "iqft-rgb": "thetas",
    "iqft-rgb-shots": "thetas",
    "iqft-features": "thetas",
    "iqft-gray": "theta",
}


def method_kwargs(
    method: str, theta: Optional[float] = None, seed: Optional[int] = None
) -> Dict[str, Any]:
    """Factory keyword arguments for ``method`` from the generic θ/seed knobs.

    Every front end (CLI ``batch``/``serve``, the fleet's ``WorkerSpec``)
    derives its factory call through this one mapping, so "which methods
    take θ, and under which keyword" lives in exactly one place.  Knobs a
    method does not accept are silently dropped.
    """
    kwargs: Dict[str, Any] = {}
    keyword = THETA_KEYWORDS.get(method)
    if keyword is not None and theta is not None:
        kwargs[keyword] = theta
    if seed is not None and method in SEEDED_METHODS:
        kwargs["seed"] = seed
    return kwargs


def register_segmenter(name: str, factory: Callable[..., BaseSegmenter]) -> None:
    """Register a segmenter factory under ``name`` (overwrites silently)."""
    if not name:
        raise ParameterError("segmenter name must be non-empty")
    _FACTORIES[name] = factory


def get_segmenter(name: str, **kwargs) -> BaseSegmenter:
    """Construct a registered segmenter by name, forwarding keyword arguments."""
    try:
        factory = _FACTORIES[name]
    except KeyError as exc:
        raise ParameterError(
            f"unknown segmenter {name!r}; available: {sorted(_FACTORIES)}"
        ) from exc
    segmenter = factory(**kwargs)
    if not isinstance(segmenter, BaseSegmenter):
        raise ParameterError(f"factory for {name!r} did not return a BaseSegmenter")
    return segmenter


def available_segmenters() -> List[str]:
    """Sorted list of registered method names."""
    return sorted(_FACTORIES)


def _register_builtins() -> None:
    """Register the built-in methods lazily to avoid import cycles."""
    from ..core.grayscale_segmenter import IQFTGrayscaleSegmenter
    from ..core.rgb_segmenter import IQFTSegmenter
    from .kmeans import KMeansSegmenter
    from .otsu import MultiOtsuSegmenter, OtsuSegmenter
    from .region import ConnectedComponentsSegmenter, RegionGrowingSegmenter
    from .threshold import AdaptiveMeanThresholdSegmenter, FixedThresholdSegmenter

    from ..core.feature_segmenter import FeatureIQFTSegmenter
    from ..core.sampling_segmenter import ShotBasedIQFTSegmenter

    register_segmenter("iqft-rgb", IQFTSegmenter)
    register_segmenter("iqft-gray", IQFTGrayscaleSegmenter)
    register_segmenter("iqft-features", FeatureIQFTSegmenter)
    register_segmenter("iqft-rgb-shots", ShotBasedIQFTSegmenter)
    register_segmenter("kmeans", KMeansSegmenter)
    register_segmenter("otsu", OtsuSegmenter)
    register_segmenter("multi-otsu", MultiOtsuSegmenter)
    register_segmenter("fixed-threshold", FixedThresholdSegmenter)
    register_segmenter("adaptive-mean", AdaptiveMeanThresholdSegmenter)
    register_segmenter("connected-components", ConnectedComponentsSegmenter)
    register_segmenter("region-growing", RegionGrowingSegmenter)


_register_builtins()

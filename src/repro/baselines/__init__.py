"""Baseline segmentation methods the paper compares against (and a few extras).

* :class:`KMeansSegmenter` — from-scratch K-means clustering in colour space
  (k-means++ initialization, vectorized Lloyd iterations), mirroring the
  scikit-learn defaults the paper used.
* :class:`OtsuSegmenter` / :func:`otsu_threshold` — Otsu's between-class
  variance maximization, plus a multi-level extension.
* :class:`FixedThresholdSegmenter`, :class:`AdaptiveMeanThresholdSegmenter` —
  simple thresholding methods used in ablations and tests.
* :class:`RegionGrowingSegmenter`, :class:`ConnectedComponentsSegmenter` —
  region-based methods from the related-work taxonomy, included as extensions.
* :func:`get_segmenter` / :func:`available_segmenters` — a registry so the
  experiment harness and CLI can construct any method by name.
"""

from .kmeans import KMeans, KMeansSegmenter
from .otsu import otsu_threshold, multi_otsu_thresholds, OtsuSegmenter, MultiOtsuSegmenter
from .threshold import FixedThresholdSegmenter, AdaptiveMeanThresholdSegmenter
from .region import RegionGrowingSegmenter, ConnectedComponentsSegmenter
from .registry import get_segmenter, available_segmenters, register_segmenter

__all__ = [
    "KMeans",
    "KMeansSegmenter",
    "otsu_threshold",
    "multi_otsu_thresholds",
    "OtsuSegmenter",
    "MultiOtsuSegmenter",
    "FixedThresholdSegmenter",
    "AdaptiveMeanThresholdSegmenter",
    "RegionGrowingSegmenter",
    "ConnectedComponentsSegmenter",
    "get_segmenter",
    "available_segmenters",
    "register_segmenter",
]

"""Region-based segmenters (extensions beyond the paper's two baselines).

The related-work section of the paper lists region-based and clustering-based
techniques as the traditional alternatives to thresholding; these two methods
round out the method registry so the benchmark harness can show where the
IQFT approach sits relative to spatially-aware techniques, not only point-wise
ones.

* :class:`ConnectedComponentsSegmenter` — threshold (Otsu) then split the
  foreground into 8-connected components; each component becomes a segment.
* :class:`RegionGrowingSegmenter` — seeded flood growth on intensity
  similarity, implemented as an iterative label propagation (vectorized with
  ``scipy.ndimage`` primitives rather than a per-pixel queue).
"""

from __future__ import annotations


import numpy as np
from scipy import ndimage

from ..base import BaseSegmenter
from ..errors import ParameterError
from ..imaging.color import rgb_to_gray
from ..imaging.image import as_float_image
from .otsu import otsu_threshold

__all__ = ["ConnectedComponentsSegmenter", "RegionGrowingSegmenter"]


class ConnectedComponentsSegmenter(BaseSegmenter):
    """Otsu thresholding followed by 8-connected component labelling.

    The background keeps label 0; each foreground component gets a distinct
    positive label.  Components smaller than ``min_size`` pixels are merged
    into the background (removes salt noise).
    """

    name = "connected-components"

    def __init__(self, min_size: int = 16):
        super().__init__()
        if min_size < 0:
            raise ParameterError("min_size must be non-negative")
        self.min_size = int(min_size)

    def _segment(self, image: np.ndarray) -> np.ndarray:
        img = as_float_image(image)
        if img.ndim == 3:
            img = rgb_to_gray(img)
        if float(img.max()) == float(img.min()):
            return np.zeros(img.shape, dtype=np.int64)
        threshold = otsu_threshold(img)
        mask = img > threshold
        structure = np.ones((3, 3), dtype=bool)
        labelled, count = ndimage.label(mask, structure=structure)
        if self.min_size > 0 and count > 0:
            sizes = ndimage.sum_labels(
                np.ones_like(labelled), labelled, index=np.arange(1, count + 1)
            )
            small = np.flatnonzero(sizes < self.min_size) + 1
            if small.size:
                labelled[np.isin(labelled, small)] = 0
        # Relabel so that labels are consecutive.
        _, relabelled = np.unique(labelled, return_inverse=True)
        return relabelled.reshape(img.shape).astype(np.int64)


class RegionGrowingSegmenter(BaseSegmenter):
    """Seeded region growing by iterative neighbourhood dilation.

    ``num_seeds`` seeds are placed on a uniform grid; at each round every
    unlabelled pixel adjacent to a region joins it if its intensity differs
    from the region's running mean by at most ``tolerance``.  Pixels that never
    join any region are assigned to the nearest region at the end.
    """

    name = "region-growing"

    def __init__(self, num_seeds: int = 4, tolerance: float = 0.1, max_rounds: int = 256):
        super().__init__()
        if num_seeds < 1:
            raise ParameterError("num_seeds must be >= 1")
        if tolerance <= 0:
            raise ParameterError("tolerance must be positive")
        if max_rounds < 1:
            raise ParameterError("max_rounds must be >= 1")
        self.num_seeds = int(num_seeds)
        self.tolerance = float(tolerance)
        self.max_rounds = int(max_rounds)

    def _seed_positions(self, shape) -> np.ndarray:
        """Seed coordinates on a near-square grid covering the image."""
        height, width = shape
        grid = int(np.ceil(np.sqrt(self.num_seeds)))
        rows = np.linspace(0, height - 1, grid + 2, dtype=int)[1:-1]
        cols = np.linspace(0, width - 1, grid + 2, dtype=int)[1:-1]
        coords = [(r, c) for r in rows for c in cols]
        return np.asarray(coords[: self.num_seeds], dtype=int)

    def _segment(self, image: np.ndarray) -> np.ndarray:
        img = as_float_image(image)
        if img.ndim == 3:
            img = rgb_to_gray(img)
        height, width = img.shape
        labels = np.zeros((height, width), dtype=np.int64)  # 0 = unassigned
        seeds = self._seed_positions((height, width))
        means = np.zeros(len(seeds) + 1, dtype=np.float64)
        counts = np.zeros(len(seeds) + 1, dtype=np.int64)
        for idx, (r, c) in enumerate(seeds, start=1):
            labels[r, c] = idx
            means[idx] = img[r, c]
            counts[idx] = 1

        structure = np.ones((3, 3), dtype=bool)
        for _ in range(self.max_rounds):
            grew = False
            for idx in range(1, len(seeds) + 1):
                region = labels == idx
                if not region.any():
                    continue
                frontier = ndimage.binary_dilation(region, structure=structure) & (labels == 0)
                if not frontier.any():
                    continue
                accept = frontier & (np.abs(img - means[idx]) <= self.tolerance)
                if accept.any():
                    labels[accept] = idx
                    new_count = counts[idx] + int(accept.sum())
                    means[idx] = (means[idx] * counts[idx] + float(img[accept].sum())) / new_count
                    counts[idx] = new_count
                    grew = True
            if not grew:
                break

        if (labels == 0).any():
            # Assign leftover pixels to the region with the closest mean intensity.
            unassigned = labels == 0
            diffs = np.abs(img[unassigned][:, None] - means[1 : len(seeds) + 1][None, :])
            labels[unassigned] = np.argmin(diffs, axis=1) + 1
        # Make labels start at 0 for consistency with the other methods.
        return (labels - 1).astype(np.int64)

"""Optional torch adapter: the engine's kernels on any device torch drives.

Install with ``pip install repro-iqft-segmentation[torch]``.  The module
imports cleanly without torch — :meth:`TorchBackend.is_available` reports
``False`` and the registry skips the backend (skip-not-fail) — so the core
library keeps zero hard dependencies beyond NumPy.

Exactness: the integer kernels (``gather``, ``unique_inverse``) are pure
index/sort operations and stay bit-identical to the NumPy reference on every
device, so LUT segmentation through this backend produces byte-for-byte the
labels of the reference path.  The float kernel lets torch fuse and
reassociate the complex matmul, so amplitudes match the reference only
within the documented tolerances (``float_rtol``/``float_atol``) — which is
why the engine routes float compute here only when explicitly asked to
(``float_compute="backend"``).
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import numpy as np

from .base import ArrayBackend

try:  # pragma: no cover - exercised on the CI torch leg, absent locally
    import torch
except ImportError:  # pragma: no cover - the numpy-only install path
    torch = None

__all__ = ["TorchBackend"]


def _writable(arr: np.ndarray) -> np.ndarray:
    # torch.from_numpy refuses read-only arrays (the LUT tables are published
    # read-only on purpose); a copy of a 256-entry table is negligible.
    arr = np.ascontiguousarray(arr)
    return arr if arr.flags.writeable else arr.copy()


class TorchBackend(ArrayBackend):  # pragma: no cover - exercised on the CI torch leg
    """Kernel adapter over torch tensors (CPU or CUDA/MPS device).

    Parameters
    ----------
    device:
        A torch device string; ``None`` picks ``"cuda"`` when available,
        else ``"cpu"``.
    """

    name = "torch"
    bit_exact_float = False
    #: Complex128 matmul reassociation across BLAS/cuBLAS kernels; measured
    #: deviations are ~1e-15 relative, the bound leaves two orders of slack.
    float_rtol = 1e-12
    float_atol = 1e-13

    def __init__(self, device: Any = None):
        if torch is None:
            raise RuntimeError("torch is not installed (pip install repro[torch])")
        if device is None:
            device = "cuda" if torch.cuda.is_available() else "cpu"
        self._device = torch.device(device)

    @classmethod
    def is_available(cls) -> bool:
        return torch is not None

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "device": str(self._device),
            "substrate": f"torch {torch.__version__}",
            "bit_exact_float": False,
        }

    # ------------------------------------------------------------------ #
    def _to_device(self, arr: np.ndarray) -> "torch.Tensor":
        return torch.from_numpy(_writable(arr)).to(self._device)

    def gather(self, table: np.ndarray, indices: np.ndarray) -> np.ndarray:
        idx = np.asarray(indices)
        flat = self._to_device(idx.astype(np.int64, copy=False).reshape(-1))
        out = self._to_device(np.asarray(table))[flat]
        result = out.cpu().numpy()
        return result.reshape(idx.shape + np.asarray(table).shape[1:])

    def unique_inverse(self, codes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        tensor = self._to_device(np.asarray(codes).reshape(-1))
        unique, inverse = torch.unique(tensor, sorted=True, return_inverse=True)
        return unique.cpu().numpy(), inverse.cpu().numpy().reshape(-1)

    def phase_amplitudes(
        self, phases: np.ndarray, bits: np.ndarray, matrix: np.ndarray
    ) -> np.ndarray:
        phase = self._to_device(np.asarray(phases, dtype=np.float64))
        bit_matrix = self._to_device(np.asarray(bits, dtype=np.float64))
        w = self._to_device(np.ascontiguousarray(matrix))
        block = torch.exp(1j * (phase @ bit_matrix.T)).to(torch.complex128)
        amps = (block @ w) / matrix.shape[0]
        return amps.cpu().numpy()

    # ------------------------------------------------------------------ #
    def cost_hints(self) -> Dict[str, float]:
        if self._device.type == "cpu":
            # Host tensors view numpy memory: no transfer cliff to dodge.
            return {"gather_min_pixels": 0.0, "tile_pixels_scale": 1.0}
        # Device kernels only win once the PCIe round-trip is amortized, and
        # they prefer whole images over tiles (launch overhead per tile).
        return {"gather_min_pixels": 65536.0, "tile_pixels_scale": 8.0}

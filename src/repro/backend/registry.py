"""Backend registry: names → lazily-constructed :class:`ArrayBackend` singletons.

Selection precedence, lowest to highest:

1. the library default (``"numpy"``, always available);
2. the ``REPRO_BACKEND`` environment variable (deploy-wide default —
   this is what a fleet supervisor exports for accelerator hosts);
3. an explicit ``backend=`` argument to the engine / CLI ``--backend``.

Optional backends (torch, CuPy) register *factories*, not instances, and
availability is probed lazily — listing backends never imports an optional
dependency that is not installed, and asking for an unavailable one raises
:class:`~repro.errors.ParameterError` naming every registered alternative
(so the CLI error message is self-documenting).
"""

from __future__ import annotations

import os
import threading
from typing import Callable, Dict, List, Optional, Union

from ..errors import ParameterError
from .base import ArrayBackend

__all__ = [
    "ENV_BACKEND",
    "available_backends",
    "backend_status",
    "default_backend_name",
    "get_backend",
    "register_backend",
    "registered_backends",
    "resolve_backend",
]

#: Environment variable naming the process-wide default backend.
ENV_BACKEND = "REPRO_BACKEND"

_lock = threading.Lock()
_factories: Dict[str, Callable[[], ArrayBackend]] = {}
_probes: Dict[str, Callable[[], bool]] = {}
_instances: Dict[str, ArrayBackend] = {}


def register_backend(
    name: str,
    factory: Callable[[], ArrayBackend],
    *,
    probe: Optional[Callable[[], bool]] = None,
) -> None:
    """Register (or replace) a backend factory under ``name``.

    ``factory`` is called at most once, on first :func:`get_backend` use;
    ``probe`` is the cheap availability check (defaults to "always
    available").  Third-party packages call this at import time to plug
    their own substrate into the engine.
    """
    if not name or not isinstance(name, str):
        raise ParameterError("backend name must be a non-empty string")
    with _lock:
        _factories[name] = factory
        _probes[name] = probe if probe is not None else (lambda: True)
        _instances.pop(name, None)


def registered_backends() -> List[str]:
    """Every registered backend name, available or not (sorted)."""
    with _lock:
        return sorted(_factories)


def available_backends() -> List[str]:
    """Registered backends whose substrate can run here (sorted).

    The reference backend is always included; optional backends appear once
    their dependency imports and their device probe passes.  Probes are the
    backends' own :meth:`~repro.backend.base.ArrayBackend.is_available` and
    must never raise.
    """
    names = registered_backends()
    return [name for name in names if _probes[name]()]


def backend_status() -> Dict[str, bool]:
    """``{name: available}`` for every registered backend (capabilities doc)."""
    return {name: _probes[name]() for name in registered_backends()}


def default_backend_name() -> str:
    """The process default: ``$REPRO_BACKEND`` when set, else ``"numpy"``."""
    return os.environ.get(ENV_BACKEND, "").strip() or "numpy"


def get_backend(name: Optional[str] = None) -> ArrayBackend:
    """The backend singleton registered under ``name``.

    ``None`` resolves through :func:`default_backend_name`.  An unregistered
    name, or a registered backend whose optional dependency is missing,
    raises :class:`~repro.errors.ParameterError` listing what *is* known —
    selection mistakes are configuration errors, reported up front, not at
    the bottom of a compute stack.
    """
    name = name or default_backend_name()
    with _lock:
        instance = _instances.get(name)
        if instance is not None:
            return instance
        factory = _factories.get(name)
    if factory is None:
        raise ParameterError(
            f"unknown backend {name!r}; registered backends: "
            f"{', '.join(registered_backends())}"
        )
    if not _probes[name]():
        raise ParameterError(
            f"backend {name!r} is registered but not available on this host "
            f"(optional dependency missing or no device); available backends: "
            f"{', '.join(available_backends())}"
        )
    instance = factory()
    with _lock:
        return _instances.setdefault(name, instance)


def resolve_backend(backend: Union[ArrayBackend, str, None]) -> ArrayBackend:
    """Coerce an engine-style ``backend`` argument to an instance.

    ``None`` → the process default, a string → :func:`get_backend`, an
    :class:`ArrayBackend` instance passes through (letting callers inject a
    custom-configured backend, e.g. a specific torch device).
    """
    if backend is None:
        return get_backend()
    if isinstance(backend, ArrayBackend):
        return backend
    if isinstance(backend, str):
        return get_backend(backend)
    raise ParameterError(
        f"backend must be a name, an ArrayBackend instance or None, got {type(backend).__name__}"
    )


def _register_builtins() -> None:
    from .cupy_backend import CupyBackend
    from .numpy_backend import NumpyBackend
    from .torch_backend import TorchBackend

    register_backend("numpy", NumpyBackend, probe=NumpyBackend.is_available)
    register_backend("torch", TorchBackend, probe=TorchBackend.is_available)
    register_backend("cupy", CupyBackend, probe=CupyBackend.is_available)


_register_builtins()

"""The NumPy reference backend: the exactness oracle every other backend chases.

This backend *is* the semantics of the kernel contract — its integer kernels
are NumPy fancy indexing and :func:`numpy.unique`, and its float kernel is
the fixed-order accumulation the classifier has always used (see the BLAS
rounding note inside :meth:`NumpyBackend.phase_amplitudes`).  The parity
suite compares every other backend against this one.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import numpy as np

from .base import ArrayBackend

__all__ = ["NumpyBackend"]


class NumpyBackend(ArrayBackend):
    """Host-side reference implementation of the kernel contract."""

    name = "numpy"
    bit_exact_float = True
    float_rtol = 0.0
    float_atol = 0.0

    @classmethod
    def is_available(cls) -> bool:
        return True

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "device": "cpu",
            "substrate": f"numpy {np.__version__}",
            "bit_exact_float": True,
        }

    # ------------------------------------------------------------------ #
    def gather(self, table: np.ndarray, indices: np.ndarray) -> np.ndarray:
        return table[np.asarray(indices)]

    def unique_inverse(self, codes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        unique, inverse = np.unique(np.asarray(codes), return_inverse=True)
        return unique, np.asarray(inverse).reshape(-1)

    def phase_amplitudes(
        self, phases: np.ndarray, bits: np.ndarray, matrix: np.ndarray
    ) -> np.ndarray:
        block = np.exp(1j * (np.asarray(phases, dtype=np.float64) @ bits.T))
        dim = matrix.shape[0]
        out = np.empty((block.shape[0], dim), dtype=np.complex128)
        # amp_j = (1/N) Σ_k F_k · ω^{-jk}; W is symmetric so F @ W works
        # row-wise without a transpose.  The sum over k is accumulated in
        # fixed column order rather than via np.matmul: BLAS gemm kernels
        # round differently depending on the batch size N, which would make
        # the LUT tables (built over a fixed 256-value ramp) differ in the
        # last ulp from direct segmentation of arbitrary-size images.
        np.multiply(block[:, :1], matrix[0], out=out)
        for k in range(1, dim):
            out += block[:, k : k + 1] * matrix[k]
        out *= 1.0 / dim
        return out

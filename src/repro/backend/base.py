"""The :class:`ArrayBackend` contract: compute kernels the engine dispatches to.

The segmentation engine's hot paths reduce to three array kernels — an
integer table gather (the LUT fast path), an integer dedup (the RGB palette
path), and the complex phase/IQFT matrix product (the exact classifier).  A
backend is an object that implements those kernels on some substrate (NumPy
on the host, a CUDA device through CuPy, any device torch can drive) behind
one uniform, host-array-in / host-array-out signature, so the engine, the
serving stack and the caches never see device arrays.

Exactness contract
------------------
Every backend MUST satisfy, and the parity suite
(``tests/test_backend_parity.py``) enforces:

* **Integer kernels are bit-exact.**  :meth:`ArrayBackend.gather` and
  :meth:`ArrayBackend.unique_inverse` operate on integer arrays and must
  return results bit-identical to the NumPy reference — same values, same
  dtype, same ordering (``unique_inverse`` returns the unique values in
  ascending order, like :func:`numpy.unique`).  There is no tolerance: the
  LUT fast path's promise is "bit-identical to the matrix path", and that
  promise must hold on every backend.
* **Float kernels are tolerance-exact.**  :meth:`ArrayBackend.phase_amplitudes`
  may reassociate sums and fuse multiplies, so its output is only required
  to match the reference within :attr:`ArrayBackend.float_rtol` /
  :attr:`ArrayBackend.float_atol` (documented per backend, asserted by the
  parity suite).  Backends whose float kernels are bit-identical to the
  reference (the NumPy backend itself) set :attr:`bit_exact_float` so the
  engine-config digest can treat them as result-invariant.

Because integer kernels are bit-exact everywhere, switching backends never
changes the labels produced by the LUT fast paths — which is why the serving
caches deliberately exclude the backend name from the engine-config digest
(warm caches survive a backend switch, and mixed-backend fleets share one
cache).  Float compute is only routed through a non-reference backend when
the engine is explicitly configured for it (``float_compute="backend"``),
and in that case the digest *does* incorporate the backend identity.

Writing a backend
-----------------
Subclass :class:`ArrayBackend`, implement the three kernels plus
:meth:`is_available`, and register a factory with
:func:`repro.backend.register_backend`.  Keep imports of the optional
dependency inside the class or factory so the registry can *list* the
backend without importing it.  Device placement, streams and memory pools
are internal to the backend; the contract is purely functional.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Tuple

import numpy as np

__all__ = ["ArrayBackend"]


class ArrayBackend(abc.ABC):
    """Abstract compute backend for the segmentation engine's array kernels.

    Kernels accept and return **host** :class:`numpy.ndarray` objects; any
    transfer to and from a device is the backend's internal business.  This
    keeps the contract trivially composable with the rest of the system —
    caches digest host bytes, HTTP responses serialize host arrays — at the
    cost of one transfer per kernel call, which the chunked call sites
    amortize over large blocks.
    """

    #: Registry name (``"numpy"``, ``"torch"``, ``"cupy"``, ...).
    name: str = "abstract"

    #: True when the float kernels are bit-identical to the NumPy reference
    #: (then the backend can never change any result and is invisible to the
    #: engine-config digest even for float compute).
    bit_exact_float: bool = False

    #: Documented parity tolerances for :meth:`phase_amplitudes` against the
    #: NumPy reference; the parity suite asserts them.
    float_rtol: float = 1e-9
    float_atol: float = 1e-12

    # ------------------------------------------------------------------ #
    # availability / identity
    # ------------------------------------------------------------------ #
    @classmethod
    @abc.abstractmethod
    def is_available(cls) -> bool:
        """True when the backend's substrate can actually run here.

        Must be cheap and must never raise: a missing optional dependency or
        an absent device returns ``False`` (skip-not-fail).
        """

    def describe(self) -> Dict[str, Any]:
        """JSON-friendly identity: name, device, substrate version."""
        return {"name": self.name, "device": "cpu", "bit_exact_float": self.bit_exact_float}

    # ------------------------------------------------------------------ #
    # kernels
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def gather(self, table: np.ndarray, indices: np.ndarray) -> np.ndarray:
        """Integer LUT apply: ``table[indices]`` (bit-exact contract).

        ``table`` is a 1-D (or 2-D, for probability tables) array;
        ``indices`` is any integer array whose values index ``table``'s
        first axis.  The result has ``indices``' shape (plus ``table``'s
        trailing axes) and ``table``'s dtype, bit-identical to NumPy fancy
        indexing.
        """

    @abc.abstractmethod
    def unique_inverse(self, codes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Integer dedup: ``(unique_sorted, inverse)`` (bit-exact contract).

        Equivalent to ``np.unique(codes, return_inverse=True)`` for a 1-D
        integer array: unique values ascending, ``unique[inverse]`` rebuilds
        ``codes`` exactly, ``inverse`` is 1-D of the same length.
        """

    @abc.abstractmethod
    def phase_amplitudes(
        self, phases: np.ndarray, bits: np.ndarray, matrix: np.ndarray
    ) -> np.ndarray:
        """The classifier's float kernel (tolerance contract).

        Computes ``exp(1j · phases @ bits.T) @ matrix / matrix.shape[0]`` —
        the equation-(11) amplitudes for one chunk: ``phases`` is ``(N, n)``
        float64, ``bits`` the ``(2^n, n)`` basis bit matrix, ``matrix`` the
        ``(2^n, 2^n)`` symmetric IQFT classification matrix.  Returns an
        ``(N, 2^n)`` complex128 host array matching the NumPy reference
        within :attr:`float_rtol` / :attr:`float_atol`.
        """

    # ------------------------------------------------------------------ #
    # strategy hints
    # ------------------------------------------------------------------ #
    def cost_hints(self) -> Dict[str, float]:
        """Relative-cost hints for the engine's strategy picker.

        Keys (all optional — absent means the NumPy default):

        ``gather_min_pixels``
            Smallest image (in pixels) for which the device gather beats the
            host gather once transfers are counted.  Below it the engine
            applies LUTs with plain NumPy even when this backend is active,
            so tiny images never pay a device round-trip.
        ``tile_pixels_scale``
            Multiplier on the engine's auto-tiling threshold.  Accelerators
            amortize launch overhead over big batches, so they prefer larger
            untiled images (scale > 1).
        """
        return {"gather_min_pixels": 0.0, "tile_pixels_scale": 1.0}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"

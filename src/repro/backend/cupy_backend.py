"""Optional CuPy adapter: the engine's kernels on a CUDA device via CuPy.

Install with ``pip install repro-iqft-segmentation[cupy]`` (pick the wheel
matching the local CUDA toolkit).  Imports cleanly without CuPy; the
registry then lists the backend as unavailable (skip-not-fail).

Exactness mirrors the torch adapter: integer gather/dedup are bit-identical
to the NumPy reference, the float kernel is tolerance-exact (cuBLAS
reassociation), so only explicitly-requested float compute routes here.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import numpy as np

from .base import ArrayBackend

try:  # pragma: no cover - requires a CUDA host
    import cupy
except ImportError:  # pragma: no cover - the numpy-only install path
    cupy = None

__all__ = ["CupyBackend"]


class CupyBackend(ArrayBackend):  # pragma: no cover - requires a CUDA host
    """Kernel adapter over CuPy device arrays."""

    name = "cupy"
    bit_exact_float = False
    float_rtol = 1e-12
    float_atol = 1e-13

    def __init__(self):
        if cupy is None:
            raise RuntimeError("cupy is not installed (pip install repro[cupy])")

    @classmethod
    def is_available(cls) -> bool:
        if cupy is None:
            return False
        try:
            return int(cupy.cuda.runtime.getDeviceCount()) > 0
        except Exception:  # reprolint: disable=RL004 availability probe: any failure means "no device"
            return False

    def describe(self) -> Dict[str, Any]:
        device = cupy.cuda.Device()
        return {
            "name": self.name,
            "device": f"cuda:{device.id}",
            "substrate": f"cupy {cupy.__version__}",
            "bit_exact_float": False,
        }

    # ------------------------------------------------------------------ #
    def gather(self, table: np.ndarray, indices: np.ndarray) -> np.ndarray:
        idx = np.asarray(indices)
        out = cupy.asarray(table)[cupy.asarray(idx.astype(np.int64, copy=False))]
        return cupy.asnumpy(out)

    def unique_inverse(self, codes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        unique, inverse = cupy.unique(cupy.asarray(codes), return_inverse=True)
        return cupy.asnumpy(unique), cupy.asnumpy(inverse).reshape(-1)

    def phase_amplitudes(
        self, phases: np.ndarray, bits: np.ndarray, matrix: np.ndarray
    ) -> np.ndarray:
        phase = cupy.asarray(np.asarray(phases, dtype=np.float64))
        block = cupy.exp(1j * (phase @ cupy.asarray(bits, dtype=np.float64).T))
        amps = (block @ cupy.asarray(matrix)) / matrix.shape[0]
        return cupy.asnumpy(amps)

    # ------------------------------------------------------------------ #
    def cost_hints(self) -> Dict[str, float]:
        return {"gather_min_pixels": 65536.0, "tile_pixels_scale": 8.0}

"""Pluggable array-compute backends for the segmentation engine.

The engine's hot paths — LUT gather, palette dedup, the chunked complex
matmul — dispatch through an :class:`ArrayBackend`, so the same public API
runs on plain NumPy (the always-available reference), torch, or CuPy
without forking any call surface.  See :mod:`repro.backend.base` for the
kernel contract and the per-backend exactness guarantees (integer kernels
bit-exact, float kernels tolerance-exact), and the README's "Writing a
backend" guide for the extension recipe.

Quick start
-----------
>>> from repro.backend import available_backends, get_backend
>>> "numpy" in available_backends()
True
>>> get_backend("numpy").name
'numpy'
"""

from .base import ArrayBackend
from .numpy_backend import NumpyBackend
from .registry import (
    ENV_BACKEND,
    available_backends,
    backend_status,
    default_backend_name,
    get_backend,
    register_backend,
    registered_backends,
    resolve_backend,
)

__all__ = [
    "ArrayBackend",
    "NumpyBackend",
    "ENV_BACKEND",
    "available_backends",
    "backend_status",
    "default_backend_name",
    "get_backend",
    "register_backend",
    "registered_backends",
    "resolve_backend",
]

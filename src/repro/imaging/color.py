"""Colour-space conversions and intensity normalization.

The grayscale conversion uses the weights of the paper's equation (17),
``Y = 0.2125 R + 0.7154 G + 0.0721 B`` — the same coefficients as
``skimage.color.rgb2gray`` which the authors used.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from .image import as_float_image

__all__ = [
    "GRAY_WEIGHTS",
    "rgb_to_gray",
    "gray_to_rgb",
    "rgb_to_hsv",
    "hsv_to_rgb",
    "normalize_intensities",
    "denormalize_intensities",
]

#: Luminance weights of equation (17) (scikit-image / ITU-R 709-ish weights).
GRAY_WEIGHTS = np.array([0.2125, 0.7154, 0.0721], dtype=np.float64)


def rgb_to_gray(rgb: np.ndarray) -> np.ndarray:
    """Convert an RGB image to grayscale with the paper's weighting.

    Accepts ``uint8`` or float input and always returns float in ``[0, 1]``.
    """
    arr = as_float_image(rgb)
    if arr.ndim == 2:
        return arr
    return arr @ GRAY_WEIGHTS


def gray_to_rgb(gray: np.ndarray) -> np.ndarray:
    """Replicate a grayscale image into three identical channels (float)."""
    arr = as_float_image(gray)
    if arr.ndim == 3:
        return arr
    return np.stack([arr, arr, arr], axis=-1)


def rgb_to_hsv(rgb: np.ndarray) -> np.ndarray:
    """Vectorized RGB → HSV conversion (all channels in ``[0, 1]``)."""
    arr = as_float_image(rgb)
    if arr.ndim != 3:
        raise ShapeError("rgb_to_hsv expects an (H, W, 3) array")
    r, g, b = arr[..., 0], arr[..., 1], arr[..., 2]
    maxc = arr.max(axis=-1)
    minc = arr.min(axis=-1)
    value = maxc
    delta = maxc - minc
    saturation = np.where(maxc > 0, delta / np.maximum(maxc, 1e-12), 0.0)

    # Hue computation, guarded against delta == 0.
    safe_delta = np.where(delta > 0, delta, 1.0)
    rc = (maxc - r) / safe_delta
    gc = (maxc - g) / safe_delta
    bc = (maxc - b) / safe_delta
    hue = np.zeros_like(maxc)
    hue = np.where(maxc == r, bc - gc, hue)
    hue = np.where(maxc == g, 2.0 + rc - bc, hue)
    hue = np.where(maxc == b, 4.0 + gc - rc, hue)
    hue = np.where(delta > 0, (hue / 6.0) % 1.0, 0.0)
    return np.stack([hue, saturation, value], axis=-1)


def hsv_to_rgb(hsv: np.ndarray) -> np.ndarray:
    """Vectorized HSV → RGB conversion (all channels in ``[0, 1]``)."""
    arr = np.asarray(hsv, dtype=np.float64)
    if arr.ndim != 3 or arr.shape[2] != 3:
        raise ShapeError("hsv_to_rgb expects an (H, W, 3) array")
    h, s, v = arr[..., 0], arr[..., 1], arr[..., 2]
    i = np.floor(h * 6.0).astype(int) % 6
    f = h * 6.0 - np.floor(h * 6.0)
    p = v * (1.0 - s)
    q = v * (1.0 - s * f)
    t = v * (1.0 - s * (1.0 - f))

    r = np.choose(i, [v, q, p, p, t, v])
    g = np.choose(i, [t, v, v, q, p, p])
    b = np.choose(i, [p, p, t, v, v, q])
    return np.clip(np.stack([r, g, b], axis=-1), 0.0, 1.0)


def normalize_intensities(pixels: np.ndarray, max_value: float = 255.0) -> np.ndarray:
    """Line 1 of Algorithm 1: divide raw intensities by ``max_value``.

    Unlike :func:`repro.imaging.image.as_float_image` this does **not** clip,
    so it can also be used on already-normalized input (values ≤ 1) by passing
    ``max_value=1.0``; negative inputs raise because they indicate corrupted
    data rather than a convention mismatch.
    """
    arr = np.asarray(pixels, dtype=np.float64)
    if max_value <= 0:
        raise ShapeError("max_value must be positive")
    if arr.size and float(arr.min()) < 0:
        raise ShapeError("pixel intensities must be non-negative")
    return arr / float(max_value)


def denormalize_intensities(pixels: np.ndarray, max_value: float = 255.0) -> np.ndarray:
    """Inverse of :func:`normalize_intensities` (returns float, not uint8)."""
    return np.asarray(pixels, dtype=np.float64) * float(max_value)

"""Minimal PNG codec built on :mod:`zlib` only.

Supports the subset of PNG actually produced/consumed by this library:

* 8-bit grayscale (colour type 0) and 8-bit RGB (colour type 2)
* no interlacing, single IDAT stream on write (any split on read)
* all five standard scanline filter types on read, filter 0 (None) on write

This is intentionally not a general-purpose PNG implementation; unsupported
features raise :class:`~repro.errors.ImageDecodeError` with a clear message.
"""

from __future__ import annotations

import io
import os
import struct
import zlib
from typing import List, Union

import numpy as np

from ..errors import ImageDecodeError, ImageEncodeError, ShapeError
from .image import as_uint8_image

__all__ = ["read_png", "write_png"]

PathLike = Union[str, os.PathLike]

_PNG_SIGNATURE = b"\x89PNG\r\n\x1a\n"


def _chunks(data: bytes):
    """Yield ``(type, payload)`` for each chunk, verifying CRCs."""
    pos = len(_PNG_SIGNATURE)
    n = len(data)
    while pos + 8 <= n:
        length, ctype = struct.unpack(">I4s", data[pos : pos + 8])
        payload = data[pos + 8 : pos + 8 + length]
        if len(payload) != length:
            raise ImageDecodeError("truncated PNG chunk")
        crc_stored = struct.unpack(">I", data[pos + 8 + length : pos + 12 + length])[0]
        crc_actual = zlib.crc32(ctype + payload) & 0xFFFFFFFF
        if crc_stored != crc_actual:
            raise ImageDecodeError(f"CRC mismatch in PNG chunk {ctype!r}")
        yield ctype, payload
        pos += 12 + length
        if ctype == b"IEND":
            return
    raise ImageDecodeError("PNG stream ended without an IEND chunk")


def _paeth(a: int, b: int, c: int) -> int:
    p = a + b - c
    pa, pb, pc = abs(p - a), abs(p - b), abs(p - c)
    if pa <= pb and pa <= pc:
        return a
    if pb <= pc:
        return b
    return c


def _unfilter(raw: bytes, height: int, width: int, channels: int) -> np.ndarray:
    stride = width * channels
    expected = height * (stride + 1)
    if len(raw) < expected:
        raise ImageDecodeError("decompressed PNG data shorter than expected")
    out = np.zeros((height, stride), dtype=np.uint8)
    prev = np.zeros(stride, dtype=np.int32)
    pos = 0
    for row in range(height):
        ftype = raw[pos]
        pos += 1
        line = np.frombuffer(raw, dtype=np.uint8, count=stride, offset=pos).astype(np.int32)
        pos += stride
        if ftype == 0:  # None
            recon = line
        elif ftype == 1:  # Sub
            recon = line.copy()
            for i in range(channels, stride):
                recon[i] = (recon[i] + recon[i - channels]) & 0xFF
        elif ftype == 2:  # Up
            recon = (line + prev) & 0xFF
        elif ftype == 3:  # Average
            recon = line.copy()
            for i in range(stride):
                left = recon[i - channels] if i >= channels else 0
                recon[i] = (recon[i] + ((left + prev[i]) >> 1)) & 0xFF
        elif ftype == 4:  # Paeth
            recon = line.copy()
            for i in range(stride):
                left = int(recon[i - channels]) if i >= channels else 0
                upleft = int(prev[i - channels]) if i >= channels else 0
                recon[i] = (recon[i] + _paeth(left, int(prev[i]), upleft)) & 0xFF
        else:
            raise ImageDecodeError(f"unsupported PNG filter type {ftype}")
        out[row] = recon.astype(np.uint8)
        prev = recon
    return out


def _load_bytes(source: Union[PathLike, bytes, io.BufferedIOBase]) -> bytes:
    if isinstance(source, bytes):
        return source
    if hasattr(source, "read"):
        return source.read()
    with open(source, "rb") as fh:
        return fh.read()


def read_png(source: Union[PathLike, bytes, io.BufferedIOBase]) -> np.ndarray:
    """Decode an 8-bit grayscale or RGB PNG into a ``uint8`` array."""
    data = _load_bytes(source)
    if not data.startswith(_PNG_SIGNATURE):
        raise ImageDecodeError("not a PNG file (bad signature)")
    width = height = bit_depth = colour_type = None
    idat: List[bytes] = []
    for ctype, payload in _chunks(data):
        if ctype == b"IHDR":
            width, height, bit_depth, colour_type, comp, filt, interlace = struct.unpack(
                ">IIBBBBB", payload
            )
            if comp != 0 or filt != 0:
                raise ImageDecodeError("unsupported PNG compression/filter method")
            if interlace != 0:
                raise ImageDecodeError("interlaced PNG is not supported")
        elif ctype == b"IDAT":
            idat.append(payload)
        elif ctype == b"IEND":
            break
    if width is None:
        raise ImageDecodeError("PNG is missing an IHDR chunk")
    if bit_depth != 8 or colour_type not in (0, 2):
        raise ImageDecodeError(
            f"only 8-bit grayscale/RGB PNGs are supported "
            f"(bit depth {bit_depth}, colour type {colour_type})"
        )
    channels = 1 if colour_type == 0 else 3
    raw = zlib.decompress(b"".join(idat))
    rows = _unfilter(raw, height, width, channels)
    if channels == 1:
        return rows.reshape(height, width)
    return rows.reshape(height, width, 3)


def _chunk(ctype: bytes, payload: bytes) -> bytes:
    return (
        struct.pack(">I", len(payload))
        + ctype
        + payload
        + struct.pack(">I", zlib.crc32(ctype + payload) & 0xFFFFFFFF)
    )


def write_png(
    path: Union[PathLike, io.BufferedIOBase], pixels: np.ndarray, compress_level: int = 6
) -> None:
    """Encode a ``uint8`` grayscale or RGB array as a PNG file."""
    arr = as_uint8_image(pixels)
    if arr.ndim == 2:
        colour_type, channels = 0, 1
        body = arr[:, :, np.newaxis]
    elif arr.ndim == 3 and arr.shape[2] == 3:
        colour_type, channels = 2, 3
        body = arr
    else:
        raise ShapeError(f"write_png expects (H, W) or (H, W, 3); got {arr.shape}")
    height, width = arr.shape[:2]
    ihdr = struct.pack(">IIBBBBB", width, height, 8, colour_type, 0, 0, 0)

    stride = width * channels
    scanlines = np.zeros((height, stride + 1), dtype=np.uint8)
    scanlines[:, 1:] = body.reshape(height, stride)
    compressed = zlib.compress(scanlines.tobytes(), compress_level)

    blob = (
        _PNG_SIGNATURE
        + _chunk(b"IHDR", ihdr)
        + _chunk(b"IDAT", compressed)
        + _chunk(b"IEND", b"")
    )
    try:
        if hasattr(path, "write"):
            path.write(blob)
        else:
            with open(path, "wb") as fh:
                fh.write(blob)
    except OSError as exc:  # pragma: no cover - passthrough of OS failures
        raise ImageEncodeError(str(exc)) from exc

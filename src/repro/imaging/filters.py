"""Spatial filters implemented with vectorized numpy / scipy primitives.

These filters are used by the synthetic dataset generators (to give objects
soft edges and backgrounds realistic low-frequency structure) and by a few
optional post-processing steps.  They operate on float images in ``[0, 1]``
and are careful to stay vectorized: per-pixel Python loops are never used.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage, signal

from ..errors import ParameterError, ShapeError
from .image import as_float_image

__all__ = [
    "convolve2d",
    "box_blur",
    "gaussian_kernel_1d",
    "gaussian_blur",
    "median_filter",
    "sobel_magnitude",
]


def _per_channel(func, image: np.ndarray, *args, **kwargs) -> np.ndarray:
    """Apply ``func`` to a 2-D image or independently to each RGB channel."""
    if image.ndim == 2:
        return func(image, *args, **kwargs)
    return np.stack(
        [func(image[..., c], *args, **kwargs) for c in range(image.shape[2])], axis=-1
    )


def convolve2d(image: np.ndarray, kernel: np.ndarray, mode: str = "reflect") -> np.ndarray:
    """2-D convolution with edge handling by reflection (or other scipy modes)."""
    img = as_float_image(image)
    k = np.asarray(kernel, dtype=np.float64)
    if k.ndim != 2:
        raise ShapeError("kernel must be 2-D")

    def _conv(channel: np.ndarray) -> np.ndarray:
        return ndimage.convolve(channel, k, mode=mode)

    return _per_channel(_conv, img)


def box_blur(image: np.ndarray, size: int = 3) -> np.ndarray:
    """Uniform (box) blur with a ``size × size`` window."""
    if size < 1 or size % 2 == 0:
        raise ParameterError("box size must be a positive odd integer")
    img = as_float_image(image)

    def _blur(channel: np.ndarray) -> np.ndarray:
        return ndimage.uniform_filter(channel, size=size, mode="reflect")

    return _per_channel(_blur, img)


def gaussian_kernel_1d(sigma: float, truncate: float = 3.0) -> np.ndarray:
    """Return a normalized 1-D Gaussian kernel with standard deviation ``sigma``."""
    if sigma <= 0:
        raise ParameterError("sigma must be positive")
    radius = max(1, int(truncate * float(sigma) + 0.5))
    x = np.arange(-radius, radius + 1, dtype=np.float64)
    kernel = np.exp(-0.5 * (x / sigma) ** 2)
    return kernel / kernel.sum()


def gaussian_blur(image: np.ndarray, sigma: float = 1.0) -> np.ndarray:
    """Separable Gaussian blur (applied per channel for RGB input)."""
    img = as_float_image(image)
    kernel = gaussian_kernel_1d(sigma)

    def _blur(channel: np.ndarray) -> np.ndarray:
        tmp = signal.convolve(
            np.pad(channel, ((kernel.size // 2,) * 2, (0, 0)), mode="reflect"),
            kernel[:, None],
            mode="valid",
        )
        return signal.convolve(
            np.pad(tmp, ((0, 0), (kernel.size // 2,) * 2), mode="reflect"),
            kernel[None, :],
            mode="valid",
        )

    return _per_channel(_blur, img)


def median_filter(image: np.ndarray, size: int = 3) -> np.ndarray:
    """Median filter with a ``size × size`` window (noise removal)."""
    if size < 1 or size % 2 == 0:
        raise ParameterError("median window size must be a positive odd integer")
    img = as_float_image(image)

    def _median(channel: np.ndarray) -> np.ndarray:
        return ndimage.median_filter(channel, size=size, mode="reflect")

    return _per_channel(_median, img)


_SOBEL_X = np.array([[-1, 0, 1], [-2, 0, 2], [-1, 0, 1]], dtype=np.float64)
_SOBEL_Y = _SOBEL_X.T


def sobel_magnitude(image: np.ndarray) -> np.ndarray:
    """Gradient magnitude from the Sobel operator, normalized to ``[0, 1]``.

    RGB input is first reduced to luminance-free mean intensity; the output is
    always single channel.
    """
    img = as_float_image(image)
    if img.ndim == 3:
        img = img.mean(axis=-1)
    gx = ndimage.convolve(img, _SOBEL_X, mode="reflect")
    gy = ndimage.convolve(img, _SOBEL_Y, mode="reflect")
    mag = np.hypot(gx, gy)
    peak = mag.max()
    if peak > 0:
        mag = mag / peak
    return mag

"""The :class:`Image` container and dtype-normalization helpers.

Images are numpy arrays of shape ``(H, W)`` (grayscale) or ``(H, W, 3)``
(RGB).  Two value conventions are used consistently across the library:

* ``uint8`` arrays with values in ``[0, 255]`` — the storage / file format.
* ``float64`` arrays with values in ``[0, 1]`` — the computation format (the
  "normalized" intensities of Algorithm 1 line 1).

The helpers below convert between the two and validate shapes so downstream
modules do not have to repeat those checks.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

from ..errors import ShapeError

__all__ = ["Image", "as_float_image", "as_uint8_image", "ensure_rgb", "ensure_gray"]


def _validate_array(pixels: np.ndarray) -> np.ndarray:
    arr = np.asarray(pixels)
    if arr.ndim == 2:
        return arr
    if arr.ndim == 3 and arr.shape[2] in (1, 3):
        if arr.shape[2] == 1:
            return arr[:, :, 0]
        return arr
    raise ShapeError(
        f"expected an array of shape (H, W) or (H, W, 3); got shape {arr.shape}"
    )


def as_float_image(pixels: np.ndarray) -> np.ndarray:
    """Return the image as ``float64`` in ``[0, 1]``.

    ``uint8`` input is divided by 255; float input is clipped to ``[0, 1]``
    (values outside that range indicate an upstream bug and are clamped rather
    than silently propagated).
    """
    arr = _validate_array(pixels)
    if arr.dtype == np.uint8:
        return arr.astype(np.float64) / 255.0
    out = arr.astype(np.float64, copy=True)
    return np.clip(out, 0.0, 1.0)


def as_uint8_image(pixels: np.ndarray) -> np.ndarray:
    """Return the image as ``uint8`` in ``[0, 255]`` (rounding float input)."""
    arr = _validate_array(pixels)
    if arr.dtype == np.uint8:
        return arr.copy()
    out = np.clip(np.asarray(arr, dtype=np.float64), 0.0, 1.0)
    return np.rint(out * 255.0).astype(np.uint8)


def ensure_rgb(pixels: np.ndarray) -> np.ndarray:
    """Return an ``(H, W, 3)`` view/copy, replicating grayscale channels."""
    arr = _validate_array(pixels)
    if arr.ndim == 2:
        return np.stack([arr, arr, arr], axis=-1)
    return arr


def ensure_gray(pixels: np.ndarray) -> np.ndarray:
    """Return an ``(H, W)`` array; RGB input is reduced with equal weights.

    For the paper's luminance weighting use
    :func:`repro.imaging.color.rgb_to_gray` instead — this helper is only a
    shape normalizer used by codecs and metrics.
    """
    arr = _validate_array(pixels)
    if arr.ndim == 3:
        if arr.dtype == np.uint8:
            return np.rint(arr.astype(np.float64).mean(axis=-1)).astype(np.uint8)
        return arr.mean(axis=-1)
    return arr


@dataclasses.dataclass
class Image:
    """An image plus light metadata.

    Attributes
    ----------
    pixels:
        ``(H, W)`` or ``(H, W, 3)`` array, ``uint8`` or float in ``[0, 1]``.
    name:
        Optional identifier (file stem or synthetic-sample id).
    metadata:
        Free-form dictionary (e.g. the generator parameters of a synthetic
        sample), never interpreted by the library itself.
    """

    pixels: np.ndarray
    name: Optional[str] = None
    metadata: dict = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        self.pixels = _validate_array(self.pixels)

    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        """Array shape of the pixel data."""
        return self.pixels.shape

    @property
    def height(self) -> int:
        """Number of rows."""
        return int(self.pixels.shape[0])

    @property
    def width(self) -> int:
        """Number of columns."""
        return int(self.pixels.shape[1])

    @property
    def num_pixels(self) -> int:
        """Total pixel count ``H*W``."""
        return self.height * self.width

    @property
    def is_rgb(self) -> bool:
        """True for 3-channel images."""
        return self.pixels.ndim == 3

    @property
    def is_gray(self) -> bool:
        """True for single-channel images."""
        return self.pixels.ndim == 2

    # ------------------------------------------------------------------ #
    def to_float(self) -> "Image":
        """Return a copy with float pixels in ``[0, 1]``."""
        return Image(as_float_image(self.pixels), name=self.name, metadata=dict(self.metadata))

    def to_uint8(self) -> "Image":
        """Return a copy with ``uint8`` pixels in ``[0, 255]``."""
        return Image(as_uint8_image(self.pixels), name=self.name, metadata=dict(self.metadata))

    def to_rgb(self) -> "Image":
        """Return a copy guaranteed to have three channels."""
        return Image(ensure_rgb(self.pixels), name=self.name, metadata=dict(self.metadata))

    def copy(self) -> "Image":
        """Deep copy of the image."""
        return Image(self.pixels.copy(), name=self.name, metadata=dict(self.metadata))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Image):
            return NotImplemented
        return (
            self.pixels.shape == other.pixels.shape
            and bool(np.array_equal(self.pixels, other.pixels))
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "rgb" if self.is_rgb else "gray"
        return (
            f"Image(name={self.name!r}, shape={self.shape}, "
            f"kind={kind}, dtype={self.pixels.dtype})"
        )

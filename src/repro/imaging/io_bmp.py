"""Uncompressed 24-bit BMP codec (BITMAPINFOHEADER only).

BMP is included because it is the simplest widely-viewable format that stores
RGB without any compression, which makes round-trip tests bit-exact and keeps
the codec tiny.  Only the variant this library writes is supported on read:
24 bits per pixel, ``BI_RGB`` (no compression), bottom-up row order.
"""

from __future__ import annotations

import io
import os
import struct
from typing import Union

import numpy as np

from ..errors import ImageDecodeError, ImageEncodeError, ShapeError
from .image import as_uint8_image, ensure_rgb

__all__ = ["read_bmp", "write_bmp"]

PathLike = Union[str, os.PathLike]

_FILE_HEADER = struct.Struct("<2sIHHI")
_INFO_HEADER = struct.Struct("<IiiHHIIiiII")


def _row_stride(width: int) -> int:
    return (width * 3 + 3) & ~3


def _load_bytes(source: Union[PathLike, bytes, io.BufferedIOBase]) -> bytes:
    if isinstance(source, bytes):
        return source
    if hasattr(source, "read"):
        return source.read()
    with open(source, "rb") as fh:
        return fh.read()


def read_bmp(source: Union[PathLike, bytes, io.BufferedIOBase]) -> np.ndarray:
    """Decode an uncompressed 24-bit BMP into an ``(H, W, 3) uint8`` array."""
    data = _load_bytes(source)
    if len(data) < _FILE_HEADER.size + _INFO_HEADER.size:
        raise ImageDecodeError("file too small to be a BMP")
    magic, _file_size, _r1, _r2, pixel_offset = _FILE_HEADER.unpack_from(data, 0)
    if magic != b"BM":
        raise ImageDecodeError("not a BMP file (bad magic)")
    (
        header_size,
        width,
        height,
        planes,
        bpp,
        compression,
        _image_size,
        _xppm,
        _yppm,
        _colours,
        _important,
    ) = _INFO_HEADER.unpack_from(data, _FILE_HEADER.size)
    if header_size < 40 or planes != 1:
        raise ImageDecodeError("unsupported BMP header")
    if bpp != 24 or compression != 0:
        raise ImageDecodeError("only uncompressed 24-bit BMPs are supported")
    bottom_up = height > 0
    height = abs(height)
    if width <= 0 or height <= 0:
        raise ImageDecodeError("non-positive BMP dimensions")

    stride = _row_stride(width)
    needed = pixel_offset + stride * height
    if len(data) < needed:
        raise ImageDecodeError("truncated BMP pixel data")
    rows = np.frombuffer(
        data, dtype=np.uint8, count=stride * height, offset=pixel_offset
    ).reshape(height, stride)
    bgr = rows[:, : width * 3].reshape(height, width, 3)
    rgb = bgr[..., ::-1]
    if bottom_up:
        rgb = rgb[::-1]
    return np.ascontiguousarray(rgb)


def write_bmp(path: Union[PathLike, io.BufferedIOBase], pixels: np.ndarray) -> None:
    """Encode an RGB (or grayscale, replicated) image as a 24-bit BMP."""
    arr = ensure_rgb(as_uint8_image(pixels))
    if arr.ndim != 3 or arr.shape[2] != 3:
        raise ShapeError(f"write_bmp expects an image, got shape {arr.shape}")
    height, width = arr.shape[:2]
    stride = _row_stride(width)
    padded = np.zeros((height, stride), dtype=np.uint8)
    padded[:, : width * 3] = arr[..., ::-1].reshape(height, width * 3)
    payload = padded[::-1].tobytes()  # bottom-up row order

    pixel_offset = _FILE_HEADER.size + _INFO_HEADER.size
    file_size = pixel_offset + len(payload)
    header = _FILE_HEADER.pack(b"BM", file_size, 0, 0, pixel_offset)
    info = _INFO_HEADER.pack(40, width, height, 1, 24, 0, len(payload), 2835, 2835, 0, 0)
    blob = header + info + payload
    try:
        if hasattr(path, "write"):
            path.write(blob)
        else:
            with open(path, "wb") as fh:
                fh.write(blob)
    except OSError as exc:  # pragma: no cover - passthrough of OS failures
        raise ImageEncodeError(str(exc)) from exc

"""Self-contained imaging substrate (no PIL / scikit-image dependency).

Provides the image container, colour conversions (including the paper's
equation (17) grayscale weighting), simple codecs (PPM/PGM, PNG, BMP written
with only the standard library), procedural image synthesis, filters,
geometric transforms, histograms and noise models used by the datasets and the
experiment harness.
"""

from .image import Image, as_float_image, as_uint8_image, ensure_rgb, ensure_gray
from .color import (
    GRAY_WEIGHTS,
    rgb_to_gray,
    gray_to_rgb,
    rgb_to_hsv,
    hsv_to_rgb,
    normalize_intensities,
    denormalize_intensities,
)
from .io_ppm import read_ppm, write_ppm, read_pgm, write_pgm
from .io_png import read_png, write_png
from .io_bmp import read_bmp, write_bmp
from .io_dispatch import read_image, write_image
from .histogram import histogram, cumulative_histogram, histogram_equalize
from .transform import resize, crop, pad, flip
from .filters import box_blur, gaussian_blur, median_filter, sobel_magnitude, convolve2d
from .noise import add_gaussian_noise, add_salt_pepper_noise, add_speckle_noise
from . import synthesis

__all__ = [
    "Image",
    "as_float_image",
    "as_uint8_image",
    "ensure_rgb",
    "ensure_gray",
    "GRAY_WEIGHTS",
    "rgb_to_gray",
    "gray_to_rgb",
    "rgb_to_hsv",
    "hsv_to_rgb",
    "normalize_intensities",
    "denormalize_intensities",
    "read_ppm",
    "write_ppm",
    "read_pgm",
    "write_pgm",
    "read_png",
    "write_png",
    "read_bmp",
    "write_bmp",
    "read_image",
    "write_image",
    "histogram",
    "cumulative_histogram",
    "histogram_equalize",
    "resize",
    "crop",
    "pad",
    "flip",
    "box_blur",
    "gaussian_blur",
    "median_filter",
    "sobel_magnitude",
    "convolve2d",
    "add_gaussian_noise",
    "add_salt_pepper_noise",
    "add_speckle_noise",
    "synthesis",
]

"""Noise models used by the synthetic datasets and robustness experiments.

All functions operate on float images in ``[0, 1]``, accept an explicit seed /
generator for determinism and return new arrays (inputs are never mutated).
"""

from __future__ import annotations

import numpy as np

from ..config import SeedLike, as_generator
from ..errors import ParameterError
from .image import as_float_image

__all__ = ["add_gaussian_noise", "add_salt_pepper_noise", "add_speckle_noise"]


def add_gaussian_noise(image: np.ndarray, sigma: float = 0.05, seed: SeedLike = None) -> np.ndarray:
    """Additive zero-mean Gaussian noise with standard deviation ``sigma``."""
    if sigma < 0:
        raise ParameterError("sigma must be non-negative")
    img = as_float_image(image)
    if sigma == 0:
        return img.copy()
    rng = as_generator(seed)
    noisy = img + rng.normal(0.0, sigma, size=img.shape)
    return np.clip(noisy, 0.0, 1.0)


def add_salt_pepper_noise(
    image: np.ndarray, amount: float = 0.01, salt_ratio: float = 0.5, seed: SeedLike = None
) -> np.ndarray:
    """Replace a fraction ``amount`` of pixels with 0 (pepper) or 1 (salt).

    For RGB images a corrupted pixel has all three channels replaced, which is
    what impulse noise from a sensor readout looks like.
    """
    if not 0.0 <= amount <= 1.0:
        raise ParameterError("amount must be in [0, 1]")
    if not 0.0 <= salt_ratio <= 1.0:
        raise ParameterError("salt_ratio must be in [0, 1]")
    img = as_float_image(image).copy()
    if amount == 0:
        return img
    rng = as_generator(seed)
    h, w = img.shape[:2]
    mask = rng.random((h, w)) < amount
    salt = rng.random((h, w)) < salt_ratio
    if img.ndim == 2:
        img[mask & salt] = 1.0
        img[mask & ~salt] = 0.0
    else:
        img[mask & salt, :] = 1.0
        img[mask & ~salt, :] = 0.0
    return img


def add_speckle_noise(image: np.ndarray, sigma: float = 0.1, seed: SeedLike = None) -> np.ndarray:
    """Multiplicative (speckle) noise: ``out = img * (1 + N(0, sigma))``.

    Speckle is characteristic of coherent imaging (SAR); it is included for the
    satellite-style synthetic dataset's robustness variants.
    """
    if sigma < 0:
        raise ParameterError("sigma must be non-negative")
    img = as_float_image(image)
    if sigma == 0:
        return img.copy()
    rng = as_generator(seed)
    noisy = img * (1.0 + rng.normal(0.0, sigma, size=img.shape))
    return np.clip(noisy, 0.0, 1.0)

"""Intensity histograms, CDFs and histogram equalization.

The 256-bin intensity histogram is the work-horse of the Otsu baseline and of
the θ-tuning heuristics, so it lives in the imaging substrate rather than in
the baselines package.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import ParameterError
from .image import as_float_image

__all__ = ["histogram", "cumulative_histogram", "histogram_equalize"]


def histogram(
    image: np.ndarray, bins: int = 256, density: bool = False
) -> Tuple[np.ndarray, np.ndarray]:
    """Intensity histogram of a (grayscale or RGB-averaged) image.

    Parameters
    ----------
    image:
        Input image; RGB input is reduced to its per-pixel channel mean.
    bins:
        Number of equal-width bins covering ``[0, 1]``.
    density:
        When True the counts are normalized to sum to one.

    Returns
    -------
    counts, bin_centers:
        Two arrays of length ``bins``.
    """
    if bins < 2:
        raise ParameterError("need at least two histogram bins")
    img = as_float_image(image)
    if img.ndim == 3:
        img = img.mean(axis=-1)
    counts, edges = np.histogram(img.reshape(-1), bins=bins, range=(0.0, 1.0))
    counts = counts.astype(np.float64)
    if density:
        total = counts.sum()
        if total > 0:
            counts /= total
    centers = 0.5 * (edges[:-1] + edges[1:])
    return counts, centers


def cumulative_histogram(image: np.ndarray, bins: int = 256) -> Tuple[np.ndarray, np.ndarray]:
    """Normalized cumulative distribution of pixel intensities."""
    counts, centers = histogram(image, bins=bins, density=True)
    return np.cumsum(counts), centers


def histogram_equalize(image: np.ndarray, bins: int = 256) -> np.ndarray:
    """Classic global histogram equalization (returns float in ``[0, 1]``).

    RGB input is equalized on the channel-mean intensity and the per-pixel
    gain is applied to every channel, which preserves hue reasonably well for
    the synthetic scenes used here.
    """
    img = as_float_image(image)
    gray = img if img.ndim == 2 else img.mean(axis=-1)
    cdf, centers = cumulative_histogram(gray, bins=bins)
    mapped = np.interp(gray.reshape(-1), centers, cdf).reshape(gray.shape)
    if img.ndim == 2:
        return mapped
    gain = np.divide(mapped, gray, out=np.ones_like(gray), where=gray > 1e-9)
    return np.clip(img * gain[..., None], 0.0, 1.0)

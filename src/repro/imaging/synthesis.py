"""Procedural image-synthesis primitives.

The synthetic stand-ins for PASCAL VOC 2012 and xVIEW2 (see
``DESIGN.md`` §2) are assembled from the primitives in this module: smooth
background fields, correlated (low-frequency) noise textures, and rasterized
shapes (ellipses, rectangles, convex polygons, soft blobs).  Everything is
vectorized over coordinate grids and deterministic given a seed.

Coordinates follow image conventions: ``row`` (y, downwards) then ``col``
(x, rightwards); shapes take centres and sizes in pixels.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np

from ..config import SeedLike, as_generator
from ..errors import ParameterError
from .filters import gaussian_blur

__all__ = [
    "coordinate_grid",
    "constant_field",
    "linear_gradient",
    "radial_gradient",
    "correlated_noise",
    "ellipse_mask",
    "rectangle_mask",
    "polygon_mask",
    "blob_mask",
    "checkerboard",
    "stripes",
    "composite",
    "colorize_mask",
]


def coordinate_grid(shape: Tuple[int, int]) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(rows, cols)`` index grids of the given ``(H, W)`` shape."""
    h, w = int(shape[0]), int(shape[1])
    if h < 1 or w < 1:
        raise ParameterError("shape must be positive")
    return np.meshgrid(np.arange(h), np.arange(w), indexing="ij")


def constant_field(shape: Tuple[int, int], value: float) -> np.ndarray:
    """A uniform single-channel field."""
    return np.full((int(shape[0]), int(shape[1])), float(value), dtype=np.float64)


def linear_gradient(
    shape: Tuple[int, int], start: float = 0.0, stop: float = 1.0, axis: str = "horizontal"
) -> np.ndarray:
    """A linear ramp from ``start`` to ``stop`` along the given axis."""
    h, w = int(shape[0]), int(shape[1])
    if axis == "horizontal":
        ramp = np.linspace(start, stop, w, dtype=np.float64)
        return np.broadcast_to(ramp[None, :], (h, w)).copy()
    if axis == "vertical":
        ramp = np.linspace(start, stop, h, dtype=np.float64)
        return np.broadcast_to(ramp[:, None], (h, w)).copy()
    raise ParameterError("axis must be 'horizontal' or 'vertical'")


def radial_gradient(
    shape: Tuple[int, int],
    center: Tuple[float, float] = None,
    inner: float = 1.0,
    outer: float = 0.0,
) -> np.ndarray:
    """A radial falloff from ``inner`` at the centre to ``outer`` at the corners."""
    h, w = int(shape[0]), int(shape[1])
    if center is None:
        center = ((h - 1) / 2.0, (w - 1) / 2.0)
    rows, cols = coordinate_grid((h, w))
    dist = np.hypot(rows - center[0], cols - center[1])
    max_dist = float(dist.max()) or 1.0
    t = np.clip(dist / max_dist, 0.0, 1.0)
    return inner + (outer - inner) * t


def correlated_noise(
    shape: Tuple[int, int], scale: float = 8.0, seed: SeedLike = None
) -> np.ndarray:
    """Low-frequency ("cloudy") noise in ``[0, 1]``.

    White Gaussian noise is blurred with ``sigma = scale`` and renormalized to
    the unit interval — a cheap stand-in for Perlin-style texture that gives
    natural-looking backgrounds.
    """
    if scale <= 0:
        raise ParameterError("scale must be positive")
    rng = as_generator(seed)
    base = rng.normal(0.0, 1.0, size=(int(shape[0]), int(shape[1])))
    smooth = gaussian_blur(np.clip((base - base.min()) / (np.ptp(base) or 1.0), 0, 1), sigma=scale)
    lo, hi = float(smooth.min()), float(smooth.max())
    if hi - lo < 1e-12:
        return np.zeros_like(smooth)
    return (smooth - lo) / (hi - lo)


def ellipse_mask(
    shape: Tuple[int, int],
    center: Tuple[float, float],
    radii: Tuple[float, float],
    angle: float = 0.0,
) -> np.ndarray:
    """Boolean mask of a (possibly rotated) filled ellipse.

    Parameters
    ----------
    center:
        ``(row, col)`` centre of the ellipse.
    radii:
        ``(radius_rows, radius_cols)`` semi-axes in pixels.
    angle:
        Counter-clockwise rotation in radians.
    """
    if radii[0] <= 0 or radii[1] <= 0:
        raise ParameterError("ellipse radii must be positive")
    rows, cols = coordinate_grid(shape)
    dy = rows - center[0]
    dx = cols - center[1]
    cos_a, sin_a = np.cos(angle), np.sin(angle)
    u = dy * cos_a + dx * sin_a
    v = -dy * sin_a + dx * cos_a
    return (u / radii[0]) ** 2 + (v / radii[1]) ** 2 <= 1.0


def rectangle_mask(
    shape: Tuple[int, int], top: int, left: int, height: int, width: int
) -> np.ndarray:
    """Boolean mask of an axis-aligned filled rectangle (clipped to the image)."""
    if height <= 0 or width <= 0:
        raise ParameterError("rectangle extent must be positive")
    mask = np.zeros((int(shape[0]), int(shape[1])), dtype=bool)
    r0 = max(0, int(top))
    c0 = max(0, int(left))
    r1 = min(int(shape[0]), int(top) + int(height))
    c1 = min(int(shape[1]), int(left) + int(width))
    if r1 > r0 and c1 > c0:
        mask[r0:r1, c0:c1] = True
    return mask


def polygon_mask(shape: Tuple[int, int], vertices: Sequence[Tuple[float, float]]) -> np.ndarray:
    """Boolean mask of a filled simple polygon given ``(row, col)`` vertices.

    Uses the even-odd (crossing-number) rule evaluated on the full coordinate
    grid, so it is vectorized over pixels and loops only over polygon edges.
    """
    verts = np.asarray(vertices, dtype=np.float64)
    if verts.ndim != 2 or verts.shape[0] < 3 or verts.shape[1] != 2:
        raise ParameterError("polygon needs at least three (row, col) vertices")
    rows, cols = coordinate_grid(shape)
    inside = np.zeros(rows.shape, dtype=bool)
    num = verts.shape[0]
    for i in range(num):
        r1, c1 = verts[i]
        r2, c2 = verts[(i + 1) % num]
        crosses = (r1 > rows) != (r2 > rows)
        denom = r2 - r1
        with np.errstate(divide="ignore", invalid="ignore"):
            safe_denom = np.where(denom == 0, 1, denom)
            x_at = np.where(crosses, c1 + (rows - r1) * (c2 - c1) / safe_denom, np.inf)
        inside ^= crosses & (cols < x_at)
    return inside


def blob_mask(
    shape: Tuple[int, int],
    center: Tuple[float, float],
    radius: float,
    irregularity: float = 0.3,
    seed: SeedLike = None,
    num_points: int = 12,
) -> np.ndarray:
    """Boolean mask of a soft, irregular blob (randomly perturbed star polygon).

    The blob is built by perturbing the radius of ``num_points`` control points
    around a circle and rasterizing the resulting polygon; ``irregularity``
    of 0 yields a regular polygon approximating a circle.
    """
    if radius <= 0:
        raise ParameterError("blob radius must be positive")
    if not 0.0 <= irregularity < 1.0:
        raise ParameterError("irregularity must be in [0, 1)")
    rng = as_generator(seed)
    angles = np.linspace(0.0, 2.0 * np.pi, num_points, endpoint=False)
    radii = radius * (1.0 + irregularity * rng.uniform(-1.0, 1.0, size=num_points))
    verts = np.stack(
        [center[0] + radii * np.sin(angles), center[1] + radii * np.cos(angles)], axis=-1
    )
    return polygon_mask(shape, verts)


def checkerboard(shape: Tuple[int, int], cell: int = 8) -> np.ndarray:
    """A ``[0, 1]`` checkerboard pattern with square cells of ``cell`` pixels."""
    if cell < 1:
        raise ParameterError("cell size must be positive")
    rows, cols = coordinate_grid(shape)
    return (((rows // cell) + (cols // cell)) % 2).astype(np.float64)


def stripes(shape: Tuple[int, int], period: int = 8, axis: str = "horizontal") -> np.ndarray:
    """Sinusoidal stripes in ``[0, 1]`` with the given period in pixels."""
    if period < 2:
        raise ParameterError("stripe period must be at least 2 pixels")
    rows, cols = coordinate_grid(shape)
    coord = cols if axis == "horizontal" else rows
    return 0.5 * (1.0 + np.sin(2.0 * np.pi * coord / period))


def composite(
    background: np.ndarray, layers: Iterable[Tuple[np.ndarray, Sequence[float]]]
) -> np.ndarray:
    """Paint coloured layers over an RGB background.

    Parameters
    ----------
    background:
        ``(H, W, 3)`` float image (modified copy is returned).
    layers:
        Iterable of ``(mask, color)`` pairs; ``mask`` may be boolean or a float
        alpha matte in ``[0, 1]``, ``color`` is an RGB triple in ``[0, 1]``.
    """
    canvas = np.asarray(background, dtype=np.float64).copy()
    if canvas.ndim != 3 or canvas.shape[2] != 3:
        raise ParameterError("composite() expects an RGB background")
    for mask, color in layers:
        alpha = np.asarray(mask, dtype=np.float64)
        if alpha.shape != canvas.shape[:2]:
            raise ParameterError("layer mask shape does not match the background")
        rgb = np.asarray(color, dtype=np.float64).reshape(1, 1, 3)
        canvas = canvas * (1.0 - alpha[..., None]) + rgb * alpha[..., None]
    return np.clip(canvas, 0.0, 1.0)


def colorize_mask(
    mask: np.ndarray, color: Sequence[float], background: Sequence[float] = (0, 0, 0)
) -> np.ndarray:
    """Turn a boolean mask into an RGB image with the given fore/background colours."""
    m = np.asarray(mask, dtype=bool)
    fg = np.asarray(color, dtype=np.float64).reshape(1, 1, 3)
    bg = np.asarray(background, dtype=np.float64).reshape(1, 1, 3)
    return np.where(m[..., None], fg, bg)

"""Extension-based dispatch between the PPM/PGM, PNG and BMP codecs."""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from ..errors import ImageDecodeError, ImageEncodeError
from .io_bmp import read_bmp, write_bmp
from .io_png import read_png, write_png
from .io_ppm import read_ppm, write_pgm, write_ppm

__all__ = ["read_image", "write_image", "decode_image", "IMAGE_EXTENSIONS"]

PathLike = Union[str, os.PathLike]

#: Every file extension the dispatcher can read (lower-case, with dot).
#: Directory scanners (``repro-segment batch`` / ``serve``) filter on this,
#: so the CLI and the codecs can never disagree on what counts as an image.
IMAGE_EXTENSIONS = (".ppm", ".pgm", ".pnm", ".png", ".bmp")


def read_image(path: PathLike) -> np.ndarray:
    """Read an image, choosing the codec from the file extension.

    Supported extensions: ``.ppm``, ``.pgm``, ``.pnm``, ``.png``, ``.bmp``.
    """
    ext = os.path.splitext(os.fspath(path))[1].lower()
    if ext in (".ppm", ".pgm", ".pnm"):
        return read_ppm(path)
    if ext == ".png":
        return read_png(path)
    if ext == ".bmp":
        return read_bmp(path)
    raise ImageDecodeError(f"unsupported image extension: {ext!r}")


#: Magic-byte prefixes for in-memory container sniffing (no filename needed).
_PNG_MAGIC = b"\x89PNG\r\n\x1a\n"
_BMP_MAGIC = b"BM"
_PPM_MAGICS = tuple(b"P" + str(n).encode("ascii") for n in range(1, 7))


def decode_image(data: bytes) -> np.ndarray:
    """Decode in-memory image bytes, sniffing the container from magic bytes.

    Network front ends receive image *bytes* without any filename, so the
    extension dispatch of :func:`read_image` does not apply; the PNG, BMP and
    PPM/PGM containers are all self-identifying, so the first bytes pick the
    codec instead.
    """
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise ImageDecodeError(f"expected image bytes, got {type(data).__name__}")
    data = bytes(data)
    if data.startswith(_PNG_MAGIC):
        return read_png(data)
    if data[:2] in _PPM_MAGICS:
        return read_ppm(data)
    if data.startswith(_BMP_MAGIC):
        return read_bmp(data)
    raise ImageDecodeError(
        "unrecognized image container (expected PNG, PPM/PGM/PNM, or BMP magic bytes)"
    )


def write_image(path: PathLike, pixels: np.ndarray) -> None:
    """Write an image, choosing the codec from the file extension."""
    ext = os.path.splitext(os.fspath(path))[1].lower()
    arr = np.asarray(pixels)
    if ext in (".ppm", ".pnm"):
        write_ppm(path, arr)
    elif ext == ".pgm":
        write_pgm(path, arr)
    elif ext == ".png":
        write_png(path, arr)
    elif ext == ".bmp":
        write_bmp(path, arr)
    else:
        raise ImageEncodeError(f"unsupported image extension: {ext!r}")

"""Geometric transforms: resize (nearest / bilinear), crop, pad, flip.

Resizing is used to bring synthetic samples to the resolutions reported in the
paper's runtime measurements and to build multi-scale test cases; it is
implemented with vectorized gather operations (no Python per-pixel loops).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import ParameterError, ShapeError
from .image import as_float_image

__all__ = ["resize", "crop", "pad", "flip"]


def _coords(out_size: int, in_size: int) -> np.ndarray:
    """Sample positions in input space for an output axis (align-corners=False)."""
    scale = in_size / out_size
    return (np.arange(out_size, dtype=np.float64) + 0.5) * scale - 0.5


def resize(
    image: np.ndarray, shape: Tuple[int, int], method: str = "bilinear"
) -> np.ndarray:
    """Resize ``image`` to ``shape = (new_height, new_width)``.

    Parameters
    ----------
    image:
        ``(H, W)`` or ``(H, W, C)`` array; float output in ``[0, 1]``.
    shape:
        Target ``(height, width)``.
    method:
        ``"nearest"`` (useful for label maps) or ``"bilinear"``.
    """
    new_h, new_w = (int(shape[0]), int(shape[1]))
    if new_h < 1 or new_w < 1:
        raise ParameterError("target shape must be positive")
    img = as_float_image(image)
    in_h, in_w = img.shape[:2]

    ys = _coords(new_h, in_h)
    xs = _coords(new_w, in_w)

    if method == "nearest":
        yi = np.clip(np.rint(ys).astype(int), 0, in_h - 1)
        xi = np.clip(np.rint(xs).astype(int), 0, in_w - 1)
        return img[np.ix_(yi, xi)] if img.ndim == 2 else img[np.ix_(yi, xi)]
    if method != "bilinear":
        raise ParameterError(f"unknown resize method: {method!r}")

    y0 = np.clip(np.floor(ys).astype(int), 0, in_h - 1)
    x0 = np.clip(np.floor(xs).astype(int), 0, in_w - 1)
    y1 = np.clip(y0 + 1, 0, in_h - 1)
    x1 = np.clip(x0 + 1, 0, in_w - 1)
    wy = np.clip(ys - y0, 0.0, 1.0)
    wx = np.clip(xs - x0, 0.0, 1.0)

    # Broadcastable weight grids: (new_h, new_w) optionally expanded over channels.
    wx_grid = np.broadcast_to(wx[None, :], (new_h, new_w))
    wy_grid = np.broadcast_to(wy[:, None], (new_h, new_w))
    if img.ndim == 3:
        wx_grid = wx_grid[..., None]
        wy_grid = wy_grid[..., None]

    top = img[np.ix_(y0, x0)] * (1 - wx_grid) + img[np.ix_(y0, x1)] * wx_grid
    bottom = img[np.ix_(y1, x0)] * (1 - wx_grid) + img[np.ix_(y1, x1)] * wx_grid
    out = top * (1 - wy_grid) + bottom * wy_grid
    return np.clip(out, 0.0, 1.0)


def crop(image: np.ndarray, top: int, left: int, height: int, width: int) -> np.ndarray:
    """Return the sub-image of the given extent (validates bounds)."""
    arr = np.asarray(image)
    h, w = arr.shape[:2]
    if top < 0 or left < 0 or height <= 0 or width <= 0:
        raise ParameterError("crop offsets must be non-negative and extent positive")
    if top + height > h or left + width > w:
        raise ShapeError(
            f"crop ({top}+{height}, {left}+{width}) exceeds image shape ({h}, {w})"
        )
    return arr[top : top + height, left : left + width].copy()


def pad(image: np.ndarray, amount: int, value: float = 0.0) -> np.ndarray:
    """Pad equally on all sides with a constant value."""
    if amount < 0:
        raise ParameterError("pad amount must be non-negative")
    arr = np.asarray(image)
    widths = [(amount, amount), (amount, amount)] + [(0, 0)] * (arr.ndim - 2)
    return np.pad(arr, widths, mode="constant", constant_values=value)


def flip(image: np.ndarray, axis: str = "horizontal") -> np.ndarray:
    """Flip the image horizontally (left-right) or vertically (up-down)."""
    arr = np.asarray(image)
    if axis == "horizontal":
        return arr[:, ::-1].copy()
    if axis == "vertical":
        return arr[::-1].copy()
    raise ParameterError("axis must be 'horizontal' or 'vertical'")

"""Plain and binary PPM/PGM codecs (netpbm formats P2, P3, P5, P6).

These formats are trivially parseable without any third-party dependency and
are the primary on-disk interchange format used by the examples and by
:mod:`repro.viz.export`.  Both ASCII and binary variants are supported for
reading; writing always uses the binary variants (P5/P6) unless ``ascii=True``.
"""

from __future__ import annotations

import io
import os
from typing import Tuple, Union

import numpy as np

from ..errors import ImageDecodeError, ImageEncodeError, ShapeError
from .image import as_uint8_image

__all__ = ["read_ppm", "write_ppm", "read_pgm", "write_pgm"]

PathLike = Union[str, os.PathLike]


def _read_tokens(data: bytes, count: int, offset: int) -> Tuple[list, int]:
    """Read ``count`` whitespace-separated tokens starting at ``offset``.

    Comment lines (``#`` to end of line) are skipped, per the netpbm spec.
    Returns the tokens and the offset just past the final token's trailing
    whitespace byte.
    """
    tokens = []
    i = offset
    n = len(data)
    while len(tokens) < count and i < n:
        ch = data[i : i + 1]
        if ch in b" \t\r\n":
            i += 1
            continue
        if ch == b"#":
            while i < n and data[i : i + 1] not in b"\r\n":
                i += 1
            continue
        start = i
        while i < n and data[i : i + 1] not in b" \t\r\n":
            i += 1
        tokens.append(data[start:i].decode("ascii"))
        # consume exactly one whitespace byte after the token (netpbm header rule)
        if i < n:
            i += 1
    if len(tokens) < count:
        raise ImageDecodeError("truncated netpbm header")
    return tokens, i


def _decode_netpbm(data: bytes) -> np.ndarray:
    if len(data) < 2:
        raise ImageDecodeError("file too small to be a netpbm image")
    magic = data[:2].decode("ascii", errors="replace")
    if magic not in ("P2", "P3", "P5", "P6"):
        raise ImageDecodeError(f"unsupported netpbm magic number: {magic!r}")
    channels = 3 if magic in ("P3", "P6") else 1
    tokens, offset = _read_tokens(data, 3, 2)
    width, height, maxval = (int(t) for t in tokens)
    if width <= 0 or height <= 0:
        raise ImageDecodeError("non-positive image dimensions")
    if not 0 < maxval < 65536:
        raise ImageDecodeError(f"invalid maxval {maxval}")
    count = width * height * channels

    if magic in ("P2", "P3"):
        text = data[offset:].split()
        if len(text) < count:
            raise ImageDecodeError("truncated ASCII netpbm payload")
        values = np.array([int(t) for t in text[:count]], dtype=np.int64)
    else:
        if maxval > 255:
            itemsize = 2
            dtype = ">u2"
        else:
            itemsize = 1
            dtype = "u1"
        payload = data[offset : offset + count * itemsize]
        if len(payload) < count * itemsize:
            raise ImageDecodeError("truncated binary netpbm payload")
        values = np.frombuffer(payload, dtype=dtype).astype(np.int64)

    if values.min() < 0 or values.max() > maxval:
        raise ImageDecodeError("pixel value outside declared maxval range")
    if maxval != 255:
        values = np.rint(values.astype(np.float64) * (255.0 / maxval)).astype(np.int64)
    arr = values.astype(np.uint8)
    if channels == 3:
        return arr.reshape(height, width, 3)
    return arr.reshape(height, width)


def _load_bytes(source: Union[PathLike, bytes, io.BufferedIOBase]) -> bytes:
    if isinstance(source, bytes):
        return source
    if hasattr(source, "read"):
        return source.read()
    with open(source, "rb") as fh:
        return fh.read()


def read_ppm(source: Union[PathLike, bytes, io.BufferedIOBase]) -> np.ndarray:
    """Read a PPM (colour) or PGM (gray) file and return a ``uint8`` array."""
    return _decode_netpbm(_load_bytes(source))


# PGM reading is the same decoder; the distinction only matters on write.
read_pgm = read_ppm


def _encode_header(magic: str, width: int, height: int) -> bytes:
    return f"{magic}\n{width} {height}\n255\n".encode("ascii")


def write_ppm(
    path: Union[PathLike, io.BufferedIOBase], pixels: np.ndarray, ascii: bool = False
) -> None:
    """Write an RGB image as PPM (P6 binary by default, P3 when ``ascii``)."""
    arr = as_uint8_image(pixels)
    if arr.ndim == 2:
        arr = np.stack([arr, arr, arr], axis=-1)
    if arr.ndim != 3 or arr.shape[2] != 3:
        raise ShapeError(f"write_ppm expects an RGB image, got shape {arr.shape}")
    height, width = arr.shape[:2]
    if ascii:
        body = _encode_header("P3", width, height) + _ascii_body(arr)
    else:
        body = _encode_header("P6", width, height) + arr.tobytes()
    _dump(path, body)


def write_pgm(
    path: Union[PathLike, io.BufferedIOBase], pixels: np.ndarray, ascii: bool = False
) -> None:
    """Write a grayscale image as PGM (P5 binary by default, P2 when ``ascii``)."""
    arr = as_uint8_image(pixels)
    if arr.ndim == 3:
        raise ShapeError("write_pgm expects a single-channel image")
    height, width = arr.shape
    if ascii:
        body = _encode_header("P2", width, height) + _ascii_body(arr)
    else:
        body = _encode_header("P5", width, height) + arr.tobytes()
    _dump(path, body)


def _ascii_body(arr: np.ndarray) -> bytes:
    flat = arr.reshape(-1)
    lines = []
    for start in range(0, flat.size, 16):
        lines.append(" ".join(str(int(v)) for v in flat[start : start + 16]))
    return ("\n".join(lines) + "\n").encode("ascii")


def _dump(path: Union[PathLike, io.BufferedIOBase], body: bytes) -> None:
    try:
        if hasattr(path, "write"):
            path.write(body)
        else:
            with open(path, "wb") as fh:
                fh.write(body)
    except OSError as exc:  # pragma: no cover - passthrough of OS failures
        raise ImageEncodeError(str(exc)) from exc

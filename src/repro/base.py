"""Shared segmenter interface used by the core algorithm and the baselines.

Every segmentation method in the library — the IQFT-inspired algorithms, the
K-means and Otsu baselines, and the extra region-based methods — implements the
:class:`BaseSegmenter` interface: ``segment(image) -> SegmentationResult``.
This is what lets the experiment harness sweep over methods uniformly
(Table III, the win-rate analysis, the per-image figures).
"""

from __future__ import annotations

import abc
import dataclasses
import time
from typing import Any, Dict, Optional

import numpy as np

from .errors import SegmentationError

__all__ = ["SegmentationResult", "BaseSegmenter"]


@dataclasses.dataclass
class SegmentationResult:
    """Output of a segmentation run.

    Attributes
    ----------
    labels:
        ``(H, W)`` integer label map.  Labels are small non-negative integers;
        they are *not* guaranteed to be consecutive (use
        :func:`repro.core.labels.relabel_consecutive` when that matters).
    num_segments:
        Number of distinct labels present in ``labels``.
    runtime_seconds:
        Wall-clock time spent inside ``segment()`` (set by the base class).
    method:
        Name of the producing segmenter.
    extras:
        Method-specific diagnostics (per-pixel probabilities, cluster centres,
        the threshold used, ...), never required by downstream code.
    """

    labels: np.ndarray
    num_segments: int
    runtime_seconds: float = 0.0
    method: str = ""
    extras: Dict[str, Any] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        self.labels = np.asarray(self.labels)
        if self.labels.ndim != 2:
            raise SegmentationError(
                f"label map must be 2-D, got shape {self.labels.shape}"
            )

    @property
    def shape(self) -> tuple:
        """Shape of the label map."""
        return self.labels.shape


class BaseSegmenter(abc.ABC):
    """Abstract base class for all segmentation methods.

    Subclasses implement :meth:`_segment`; the public :meth:`segment` wraps it
    with input validation, wall-clock timing and result packaging so that all
    methods report runtimes the same way (the paper's Table III compares
    per-image runtimes across methods).
    """

    #: Human-readable method name (overridden by subclasses).
    name: str = "base"

    #: True when the labelling rule is a pure per-pixel function of that
    #: pixel's value.  Pointwise methods can be tiled and stitched with
    #: results identical to whole-image processing; methods with global or
    #: neighbourhood state (clustering, global thresholds, region growing)
    #: must leave this False so the batch engine never tiles them.
    pointwise: bool = False

    def __init__(self, name: Optional[str] = None):
        if name is not None:
            self.name = name

    @abc.abstractmethod
    def _segment(self, image: np.ndarray) -> np.ndarray:
        """Return an ``(H, W)`` integer label map for ``image``."""

    def segment(self, image: np.ndarray) -> SegmentationResult:
        """Segment ``image`` and return a timed :class:`SegmentationResult`."""
        arr = np.asarray(image)
        if arr.ndim not in (2, 3):
            raise SegmentationError(
                f"expected an (H, W) or (H, W, C) image, got shape {arr.shape}"
            )
        start = time.perf_counter()
        labels = self._segment(arr)
        elapsed = time.perf_counter() - start
        labels = np.asarray(labels)
        if labels.shape != arr.shape[:2]:
            raise SegmentationError(
                f"{self.name}: label map shape {labels.shape} does not match "
                f"image shape {arr.shape[:2]}"
            )
        labels = labels.astype(np.int64, copy=False)
        return SegmentationResult(
            labels=labels,
            num_segments=int(np.unique(labels).size),
            runtime_seconds=elapsed,
            method=self.name,
            extras=self._extras(),
        )

    def _extras(self) -> Dict[str, Any]:
        """Method-specific diagnostics attached to the result (default: none)."""
        return {}

    def __call__(self, image: np.ndarray) -> SegmentationResult:
        return self.segment(image)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"

"""Command-line interface.

Six subcommands::

    repro-segment segment  INPUT OUTPUT [--method iqft-rgb] [--theta 3.1416]
    repro-segment batch    INPUT_DIR [--report report.json] [--method ...]
    repro-segment serve    SPOOL_DIR|- [--watch] [--report report.json] [...]
    repro-segment metrics  HOST:PORT [--json]
    repro-segment evaluate [--dataset voc|xview2] [--samples 20] [--methods ...]
    repro-segment experiment NAME   # table1, table2, table3, fig3, fig4, ...

``segment`` reads an image file (PPM/PGM/PNG/BMP), runs one method and writes
the colourized label map; ``batch`` runs the batched engine over a directory
of images (LUT fast path, optional tiling and process parallelism) and writes
a JSON report; ``serve`` runs the micro-batching segmentation service over a
spool directory (or JSONL job lines from stdin with ``-``) and writes per-job
results plus a ``repro-serve-report/v1`` summary; ``metrics`` scrapes a
running worker or fleet's ``/v1/metrics`` endpoint and prints a compact
human summary (throughput, latency percentiles, per-tier cache hit rates,
lane depths, adaptive state); ``evaluate`` runs the Table-III sweep on a
synthetic dataset and prints the summary table; ``experiment`` regenerates a
specific table/figure and prints it.
"""

from __future__ import annotations

import argparse
import itertools
import json
import os
import sys
from typing import List, Optional

import numpy as np

__all__ = ["build_parser", "main"]

_EXPERIMENTS = (
    "table1",
    "table2",
    "table3",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "theta-sweep",
    "robustness",
    "shots",
)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-segment",
        description="IQFT-inspired unsupervised image segmentation (IPPS 2023 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    seg = sub.add_parser("segment", help="segment a single image file")
    seg.add_argument("input", help="input image (.ppm/.pgm/.png/.bmp)")
    seg.add_argument("output", help="output label-map image")
    seg.add_argument("--method", default="iqft-rgb", help="registered method name")
    seg.add_argument("--theta", type=float, default=float(np.pi), help="angle parameter θ")

    bat = sub.add_parser(
        "batch", help="segment every image in a directory through the batch engine"
    )
    bat.add_argument(
        "input_dir",
        help="directory of images (.ppm/.pgm/.png/.bmp); incompatible images "
        "are recorded as per-image errors in the report (exit code 1)",
    )
    bat.add_argument("--report", default=None, help="write the JSON report here (default: stdout)")
    bat.add_argument("--method", default="iqft-rgb", help="registered method name")
    bat.add_argument("--theta", type=float, default=float(np.pi), help="angle parameter θ")
    bat.add_argument("--gt-dir", default=None, help="directory of same-named ground-truth masks")
    bat.add_argument("--executor", choices=("serial", "thread", "process"), default="serial")
    bat.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker count for --executor thread/process (default: library default; "
        "ignored for the serial executor)",
    )
    bat.add_argument(
        "--tile", type=int, nargs=2, metavar=("H", "W"), default=None,
        help="always tile images into H×W tiles (default: auto-tile ≥4 Mpx images)",
    )
    bat.add_argument("--no-lut", action="store_true", help="disable the LUT fast path")
    bat.add_argument("--seed", type=int, default=None, help="seed for stochastic methods")
    bat.add_argument("--limit", type=int, default=None, help="only process the first N images")

    srv = sub.add_parser(
        "serve",
        help="run the micro-batching segmentation service over a spool "
        "directory, '-' for JSONL job lines on stdin, or --http for a "
        "network front end",
    )
    srv.add_argument(
        "source",
        nargs="?",
        default=None,
        help="spool directory of images, or '-' to read JSONL job lines "
        '({"path": ..., "id": ...}) from stdin (optional with --http)',
    )
    srv.add_argument("--report", default=None, help="write the JSON summary here (default: stdout)")
    srv.add_argument(
        "--out-dir", default=None,
        help="write one result JSON per job here (default: <spool>/results for "
        "directory sources; disabled for stdin jobs)",
    )
    srv.add_argument("--method", default="iqft-rgb", help="registered method name")
    srv.add_argument("--theta", type=float, default=float(np.pi), help="angle parameter θ")
    srv.add_argument("--seed", type=int, default=None, help="seed for stochastic methods")
    srv.add_argument("--executor", choices=("serial", "thread", "process"), default="serial")
    srv.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker count for --executor thread/process (default: library default; "
        "ignored for the serial executor)",
    )
    srv.add_argument("--no-lut", action="store_true", help="disable the LUT fast path")
    srv.add_argument("--max-batch", type=int, default=16, help="micro-batch flush size")
    srv.add_argument(
        "--max-wait", type=float, default=0.01,
        help="micro-batch flush deadline in seconds after the first queued request",
    )
    srv.add_argument("--queue-size", type=int, default=64, help="bounded ingress queue capacity")
    srv.add_argument("--cache-size", type=int, default=256, help="result cache entries (LRU)")
    srv.add_argument(
        "--ttl", type=float, default=None,
        help="result cache time-to-live in seconds (with --cache-dir it "
        "applies to the disk tier as well)",
    )
    srv.add_argument("--no-cache", action="store_true", help="disable the result cache")
    srv.add_argument(
        "--cache-dir", default=None,
        help="persistent disk cache directory (L2 under the in-memory cache): "
        "warm results survive restarts and are shared across --jobs workers",
    )
    srv.add_argument(
        "--shm-mb", type=float, default=64.0,
        help="shared-memory cache ring size in MiB for --workers fleets: a "
        "same-host L1.5 tier between each worker's in-memory cache and the "
        "--cache-dir disk tier, so any worker's result is a single-memcpy "
        "hit for every other worker (0 disables, as does --no-shm)",
    )
    srv.add_argument(
        "--no-shm", action="store_true",
        help="disable the fleet's shared-memory cache tier",
    )
    srv.add_argument(
        "--async", dest="use_async", action="store_true",
        help="serve through the asyncio front end (priority lanes, per-job "
        "deadlines, deadline-aware shedding)",
    )
    srv.add_argument(
        "--priority-field", default="priority",
        help="JSONL key holding the lane (high/normal/low) for --async jobs",
    )
    srv.add_argument(
        "--default-deadline-ms", type=float, default=None,
        help="deadline in milliseconds applied to --async jobs that do not "
        "carry their own deadline_ms",
    )
    srv.add_argument(
        "--http", default=None, metavar="HOST:PORT",
        help="serve POST /v1/segment, GET /v1/metrics and GET /healthz over "
        "HTTP (implies --async; port 0 picks a free port; runs until "
        "SIGINT/SIGTERM, then drains in-flight requests before exiting)",
    )
    srv.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="run N supervised HTTP worker processes behind the same "
        "HOST:PORT via SO_REUSEPORT (requires --http; crashes are "
        "restarted with backoff; composes with --cache-dir so all "
        "workers share one disk cache)",
    )
    srv.add_argument(
        "--adaptive",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="adaptive control loop for --async/--http services: re-derive "
        "the micro-batch size and lane weights from live telemetry every "
        "control tick, bounded (--lane-weights are the floors)",
    )
    srv.add_argument(
        "--max-body-mb", type=float, default=64.0,
        help="largest HTTP request body in MiB before a 413 (--http)",
    )
    srv.add_argument(
        "--lane-weights", default=None, metavar="HIGH:NORMAL:LOW",
        help="batch slots per weighted-drain cycle for the async priority "
        "lanes, e.g. 4:2:1 (--async/--http)",
    )
    srv.add_argument(
        "--client-rate", type=float, default=None,
        help="per-client token-bucket quota in requests/second (--async/--http)",
    )
    srv.add_argument(
        "--client-burst", type=float, default=None,
        help="per-client token-bucket burst capacity (--client-rate)",
    )
    srv.add_argument(
        "--watch", action="store_true",
        help="keep polling the spool directory for new images instead of "
        "exiting after the initial scan",
    )
    srv.add_argument(
        "--poll-seconds", "--poll", dest="poll", type=float, default=0.2,
        help="spool poll interval in seconds (--watch)",
    )
    srv.add_argument(
        "--stop-file", default=".stop",
        help="watch mode exits once this file exists in the spool directory",
    )
    srv.add_argument("--limit", type=int, default=None, help="stop after N jobs")
    srv.add_argument(
        "--log-format", choices=("text", "json"), default="text",
        help="structured-log format for serve-layer events on stderr "
        "(fleet workers inherit it)",
    )
    srv.add_argument(
        "--trace-sample-rate", type=float, default=1.0, metavar="RATE",
        help="fraction of requests recorded by the flight recorder "
        "(deterministic accumulator sampling; 0 disables tracing, except "
        "requests carrying X-Repro-Trace-Id, which are always traced)",
    )
    srv.add_argument(
        "--trace-ring", type=int, default=256, metavar="N",
        help="completed traces retained per worker for GET /v1/trace/{id}",
    )
    srv.add_argument(
        "--backend", default=None, metavar="NAME[,NAME...]",
        help="array backend for the engine kernels (numpy/torch/cupy; "
        "default: $REPRO_BACKEND or numpy).  With --workers, a "
        "comma-separated list assigns backends round-robin across worker "
        "slots — labels stay bit-identical, so the mixed fleet shares one "
        "cache",
    )
    srv.add_argument(
        "--delta",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="dirty-tile incremental path for requests carrying a stream id "
        "(X-Repro-Stream-Id): only tiles changed since the stream's previous "
        "frame are re-segmented, bit-identical to a full recompute",
    )
    srv.add_argument(
        "--delta-tile", type=int, default=0, metavar="PIXELS",
        help="square delta-grid tile edge in pixels (0 = library default)",
    )
    srv.add_argument(
        "--delta-streams", type=int, default=256, metavar="N",
        help="temporal streams tracked per worker before the "
        "least-recently-updated ancestor frame is dropped",
    )

    met = sub.add_parser(
        "metrics",
        help="scrape a running /v1/metrics endpoint (worker or fleet) and "
        "print a compact human summary",
    )
    met.add_argument("address", metavar="HOST:PORT", help="the serving endpoint to scrape")
    met.add_argument("--timeout", type=float, default=10.0, help="scrape timeout in seconds")
    met.add_argument(
        "--json", action="store_true",
        help="print the raw JSON snapshot instead of the summary table",
    )

    ev = sub.add_parser("evaluate", help="run the Table-III sweep on a synthetic dataset")
    ev.add_argument("--dataset", choices=("voc", "xview2"), default="voc")
    ev.add_argument("--samples", type=int, default=10)
    ev.add_argument("--executor", choices=("serial", "thread", "process"), default="serial")

    ex = sub.add_parser("experiment", help="regenerate a specific table/figure")
    ex.add_argument("name", choices=_EXPERIMENTS)
    ex.add_argument("--samples", type=int, default=None, help="dataset size override")
    return parser


def _cmd_segment(args: argparse.Namespace) -> int:
    from .baselines.registry import get_segmenter
    from .imaging.io_dispatch import read_image
    from .viz.export import save_label_map

    image = read_image(args.input)
    kwargs = {}
    if args.method == "iqft-rgb":
        kwargs["thetas"] = args.theta
    elif args.method == "iqft-gray":
        kwargs["theta"] = args.theta
    segmenter = get_segmenter(args.method, **kwargs)
    result = segmenter.segment(image)
    save_label_map(args.output, result.labels)
    print(
        f"method={result.method} segments={result.num_segments} "
        f"runtime={result.runtime_seconds:.3f}s -> {args.output}"
    )
    return 0


from .imaging.io_dispatch import IMAGE_EXTENSIONS as _IMAGE_EXTENSIONS


def _segmenter_kwargs(args: argparse.Namespace) -> dict:
    """Method-factory keyword arguments shared by ``batch`` and ``serve``.

    Delegates to :func:`repro.baselines.registry.method_kwargs` (a leaf
    module the CLI already depends on) so the method → keyword knowledge
    lives in exactly one place for every front end, fleet workers included.
    """
    from .baselines.registry import method_kwargs

    return method_kwargs(args.method, theta=float(args.theta), seed=args.seed)


def _make_executor(kind: str, jobs: Optional[int]):
    """Build an executor, forwarding ``--jobs`` as the worker count."""
    from .parallel.executor import executor_for_jobs

    return executor_for_jobs(kind, jobs)


def _load_binary_mask(path: str) -> np.ndarray:
    """Read a ground-truth image and collapse it to a {0, 1} mask."""
    from .imaging.color import rgb_to_gray
    from .imaging.io_dispatch import read_image

    arr = read_image(path)
    if arr.ndim == 3:
        arr = rgb_to_gray(arr)
        return (arr > 0.5).astype(np.int64)
    if arr.dtype == np.uint8:
        return (arr > 127).astype(np.int64)
    return (arr.astype(np.float64) > 0.5).astype(np.int64)


def _cmd_batch(args: argparse.Namespace) -> int:
    from .baselines.registry import get_segmenter
    from .engine import BatchSegmentationEngine
    from .imaging.io_dispatch import read_image

    if not os.path.isdir(args.input_dir):
        print(f"error: {args.input_dir!r} is not a directory", file=sys.stderr)
        return 2
    names = sorted(
        entry
        for entry in os.listdir(args.input_dir)
        if entry.lower().endswith(_IMAGE_EXTENSIONS)
    )
    if args.limit is not None:
        names = names[: max(0, int(args.limit))]
    if not names:
        print(f"error: no supported images found in {args.input_dir!r}", file=sys.stderr)
        return 2

    kwargs = _segmenter_kwargs(args)
    theta_used = float(args.theta) if ("thetas" in kwargs or "theta" in kwargs) else None
    try:
        segmenter = get_segmenter(args.method, **kwargs)
        engine = BatchSegmentationEngine(
            segmenter,
            use_lut=not args.no_lut,
            tiling="always" if args.tile else "auto",
            tile_shape=tuple(args.tile) if args.tile else (512, 512),
            executor=_make_executor(args.executor, args.jobs),
        )
    except ValueError as exc:  # ParameterError is a ValueError
        print(f"error: {exc}", file=sys.stderr)
        return 2

    # Load images with per-file isolation: an unreadable file becomes a
    # per-image error entry, exactly like a segmentation failure would.
    loaded = []  # (name, image, ground_truth) for readable files
    load_errors = {}
    for name in names:
        try:
            image = read_image(os.path.join(args.input_dir, name))
            ground_truth = None
            if args.gt_dir is not None:
                mask_path = os.path.join(args.gt_dir, name)
                if os.path.exists(mask_path):
                    ground_truth = _load_binary_mask(mask_path)
            loaded.append((name, image, ground_truth))
        except Exception as exc:  # reprolint: disable=RL004 surfaces as the image's report entry
            load_errors[name] = exc

    results = engine.map(
        [image for _, image, _ in loaded],
        [ground_truth for _, _, ground_truth in loaded],
        return_errors=True,
    )
    outcome = dict(load_errors)
    outcome.update({name: result for (name, _, _), result in zip(loaded, results)})

    entries = []
    failures = 0
    for name in names:
        result = outcome[name]
        if isinstance(result, Exception):
            failures += 1
            entries.append(
                {"file": name, "error": f"{type(result).__name__}: {result}"}
            )
            continue
        seg = result.segmentation
        entry = {
            "file": name,
            "shape": [int(v) for v in seg.labels.shape],
            "num_segments": int(seg.num_segments),
            "fast_path": str(seg.extras.get("fast_path", "direct")),
            "runtime_seconds": float(seg.runtime_seconds),
            "metrics": {key: float(value) for key, value in result.metrics.items()},
        }
        entries.append(entry)

    succeeded = [entry for entry in entries if "error" not in entry]
    scored = [entry for entry in succeeded if entry["metrics"]]
    summary = {
        "num_failed": failures,
        "total_runtime_seconds": float(
            sum(entry["runtime_seconds"] for entry in succeeded)
        ),
        "mean_num_segments": (
            float(np.mean([entry["num_segments"] for entry in succeeded]))
            if succeeded
            else None
        ),
        "mean_miou": (
            float(np.mean([entry["metrics"]["miou"] for entry in scored])) if scored else None
        ),
        "mean_pixel_accuracy": (
            float(np.mean([entry["metrics"]["pixel_accuracy"] for entry in scored]))
            if scored
            else None
        ),
        "mean_dice": (
            float(np.mean([entry["metrics"]["dice"] for entry in scored])) if scored else None
        ),
    }
    report = {
        "schema": "repro-batch-report/v1",
        "method": args.method,
        "parameters": {"theta": theta_used, "seed": args.seed},
        "engine": engine.describe(),
        "num_images": len(entries),
        "images": entries,
        "summary": summary,
    }
    payload = json.dumps(report, indent=2, sort_keys=True)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            fh.write(payload + "\n")
    else:
        print(payload)
    miou_text = f"{summary['mean_miou']:.4f}" if summary["mean_miou"] is not None else "n/a"
    print(
        f"batch: {len(succeeded)}/{len(entries)} image(s) ok, method={args.method}, "
        f"mean mIOU={miou_text}, total runtime={summary['total_runtime_seconds']:.3f}s"
        + (f" -> {args.report}" if args.report else ""),
        file=sys.stderr if not args.report else sys.stdout,
    )
    return 1 if failures else 0


def _serve_cache(args: argparse.Namespace):
    """Build the cache stack for ``serve``: memory L1, optional disk L2.

    Delegates to :meth:`~repro.serve.WorkerSpec.build_cache` so the
    sync front end stacks its tiers exactly like the async/fleet workers.
    """
    from .serve import WorkerSpec

    return WorkerSpec(
        cache_entries=args.cache_size,
        ttl_seconds=args.ttl,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
    ).build_cache()


def _parse_lane_weights(text: str) -> dict:
    """``"4:2:1"`` → ``{"high": 4, "normal": 2, "low": 1}``."""
    from .errors import ParameterError

    parts = text.split(":")
    if len(parts) != 3:
        raise ParameterError(f"--lane-weights must be HIGH:NORMAL:LOW, got {text!r}")
    try:
        weights = [int(part) for part in parts]
    except ValueError:
        raise ParameterError(f"--lane-weights must be three integers, got {text!r}") from None
    return dict(zip(("high", "normal", "low"), weights))


def _parse_http_address(text: str, flag: str = "--http") -> tuple:
    """``"HOST:PORT"`` → ``(host, port)``; the host defaults to loopback."""
    from .errors import ParameterError

    host, sep, port_text = text.rpartition(":")
    if not sep:
        raise ParameterError(f"{flag} must be HOST:PORT, got {text!r}")
    try:
        port = int(port_text)
        if not 0 <= port <= 65535:
            raise ValueError
    except ValueError:
        raise ParameterError(f"invalid {flag} port {port_text!r}") from None
    return host or "127.0.0.1", port


def _run_http_serve(args: argparse.Namespace, service, theta_used, host: str, port: int) -> int:
    """Drive the HTTP front end until SIGINT/SIGTERM, then drain and report."""
    import asyncio
    import signal

    from .serve import HttpSegmentationServer

    async def _drive() -> dict:
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        hooked = []
        for signame in ("SIGINT", "SIGTERM"):
            signum = getattr(signal, signame, None)
            if signum is None:
                continue
            try:
                loop.add_signal_handler(signum, stop.set)
                hooked.append(signum)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-main thread / platform without signal support
        async with service:
            server = HttpSegmentationServer(
                service,
                host=host,
                port=port,
                max_body_bytes=int(args.max_body_mb * 1024 * 1024),
            )
            await server.start()
            print(
                f"http-serve: listening on http://{server.host}:{server.port} "
                "(SIGINT/SIGTERM drains and exits)",
                file=sys.stderr,
                flush=True,
            )
            try:
                await stop.wait()
            finally:
                for signum in hooked:
                    loop.remove_signal_handler(signum)
                print("http-serve: draining...", file=sys.stderr, flush=True)
                await server.aclose(drain=True, close_service=False)
            metrics = service.metrics()
            http_metrics = server.http_metrics()
        return {
            "schema": "repro-http-serve-report/v1",
            "method": args.method,
            "parameters": {"theta": theta_used, "seed": args.seed},
            "service": service.describe(),
            "metrics": metrics,
            "http": http_metrics,
        }

    report = asyncio.run(_drive())
    payload = json.dumps(report, indent=2, sort_keys=True)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            fh.write(payload + "\n")
    else:
        print(payload)
    print(
        f"http-serve: {report['metrics']['completed']} request(s) served, "
        f"{report['http']['requests']} HTTP request(s) total"
        + (f" -> {args.report}" if args.report else ""),
        file=sys.stderr,
        flush=True,
    )
    return 0


def _parse_backend_names(raw):
    """Split a ``--backend`` value into a list of names (``None`` passes)."""
    if raw is None:
        return None
    names = [name.strip() for name in str(raw).split(",") if name.strip()]
    if not names:
        from .errors import ParameterError

        raise ParameterError("--backend must name at least one backend")
    return names


def _build_worker_spec(args: argparse.Namespace, http_mode: bool):
    """The picklable service recipe shared by every async serve mode.

    Single-process ``--http``, the JSONL/spool ``--async`` drivers and the
    ``--workers N`` fleet all construct their service through one
    :class:`~repro.serve.WorkerSpec`, so a fleet worker is configured
    exactly like the single process it replaces.
    """
    from .serve import WorkerSpec

    return WorkerSpec(
        method=args.method,
        theta=float(args.theta),
        seed=args.seed,
        use_lut=not args.no_lut,
        executor=args.executor,
        jobs=args.jobs,
        max_batch_size=args.max_batch,
        max_wait_seconds=args.max_wait,
        queue_size=args.queue_size,
        cache_entries=args.cache_size,
        ttl_seconds=args.ttl,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        lane_weights=_parse_lane_weights(args.lane_weights) if args.lane_weights else None,
        client_rate=args.client_rate,
        client_burst=args.client_burst,
        default_deadline_seconds=(
            args.default_deadline_ms / 1000.0
            if http_mode and args.default_deadline_ms is not None
            else None
        ),
        adaptive=args.adaptive,
        max_body_bytes=int(args.max_body_mb * 1024 * 1024),
        shm_bytes=0 if args.no_shm else max(0, int(args.shm_mb * 1024 * 1024)),
        log_format=args.log_format,
        trace_sample_rate=args.trace_sample_rate,
        trace_ring=args.trace_ring,
        backend=(_parse_backend_names(getattr(args, "backend", None)) or [None])[0],
        delta=args.delta,
        delta_tile=max(0, int(args.delta_tile)),
        delta_streams=max(1, int(args.delta_streams)),
    )


def _run_fleet_serve(  # pragma: no cover - driven via subprocess in the CLI tests
    args: argparse.Namespace, spec, theta_used, host: str, port: int
) -> int:
    """Drive a supervised worker fleet until SIGINT/SIGTERM, then drain."""
    import signal
    import threading

    from .serve import ServeFleet

    names = _parse_backend_names(args.backend)
    fleet = ServeFleet(
        spec,
        host=host,
        port=port,
        workers=args.workers,
        backends=names if names and len(names) > 1 else None,
    )
    stop = threading.Event()

    def _on_signal(signum, frame):  # noqa: ARG001 - signal handler signature
        stop.set()

    previous = {}
    for signame in ("SIGINT", "SIGTERM"):
        signum = getattr(signal, signame, None)
        if signum is None:
            continue
        try:
            previous[signum] = signal.signal(signum, _on_signal)
        except (ValueError, OSError):  # non-main thread: rely on the caller
            pass
    try:
        fleet.start()
        if not fleet.wait_ready(timeout=60, workers=1):
            # Not even one worker came up: report the failure instead of
            # advertising a listening address that answers nothing.
            print("error: no fleet worker became ready within 60s", file=sys.stderr)
            return 2
        fleet.wait_ready(timeout=10)  # best effort for the remaining workers
        print(
            f"http-serve: fleet of {fleet.workers} worker(s) listening on "
            f"http://{fleet.host}:{fleet.port} (SIGINT/SIGTERM drains and exits)",
            file=sys.stderr,
            flush=True,
        )
        for slot, pid in sorted(fleet.describe_fleet()["pids"].items()):
            print(f"http-serve: worker slot={slot} pid={pid}", file=sys.stderr, flush=True)
        stop.wait()
        print("http-serve: draining fleet...", file=sys.stderr, flush=True)
        fleet.shutdown(drain=True)
        metrics = fleet.final_metrics()
    finally:
        fleet.shutdown(drain=True)  # idempotent: covers the error paths
        for signum, handler in previous.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):
                pass

    finals = metrics.get("workers", [])
    http_requests = sum(int((final.get("http") or {}).get("requests", 0)) for final in finals)
    responses: dict = {}
    for final in finals:
        for code, count in ((final.get("http") or {}).get("responses", {}) or {}).items():
            responses[code] = responses.get(code, 0) + int(count)
    report = {
        "schema": "repro-http-serve-report/v1",
        "method": spec.method,
        "parameters": {"theta": theta_used, "seed": spec.seed},
        "fleet": metrics.get("fleet", {}),
        "metrics": metrics,
        "http": {"requests": http_requests, "responses": responses, "draining": True},
    }
    payload = json.dumps(report, indent=2, sort_keys=True)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            fh.write(payload + "\n")
    else:
        print(payload)
    print(
        f"http-serve: fleet served {report['metrics'].get('completed', 0)} request(s), "
        f"{http_requests} HTTP request(s) total, "
        f"{report['fleet'].get('restarts', 0)} restart(s)"
        + (f" -> {args.report}" if args.report else ""),
        file=sys.stderr,
        flush=True,
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .baselines.registry import get_segmenter
    from .engine import BatchSegmentationEngine
    from .errors import CacheError
    from .obs import configure_logging
    from .serve import SegmentationService
    from .serve import (
        build_report,
        iter_jsonl_jobs,
        iter_spool_jobs,
        run_jobs,
        run_jobs_async,
    )

    configure_logging(format=args.log_format)
    http_mode = args.http is not None
    use_async = args.use_async or http_mode
    stdin_mode = args.source == "-"
    if http_mode and args.source is not None:
        print(
            "warning: --http serves network requests; the job source "
            f"{args.source!r} is ignored",
            file=sys.stderr,
        )
    if args.workers is not None and not http_mode:
        print("error: --workers requires --http", file=sys.stderr)
        return 2
    if not http_mode:
        if args.source is None:
            print("error: a job source is required unless --http is given", file=sys.stderr)
            return 2
        if not stdin_mode and not os.path.isdir(args.source):
            print(
                f"error: {args.source!r} is not a directory (or '-' for stdin)", file=sys.stderr
            )
            return 2

    fleet_mode = http_mode and args.workers is not None
    try:
        if args.workers is not None and args.workers < 1:
            from .errors import ParameterError

            raise ParameterError("--workers must be >= 1")
        if http_mode and int(args.max_body_mb * 1024 * 1024) < 1:
            from .errors import ParameterError

            raise ParameterError("--max-body-mb must allow at least one byte")
        if args.backend and "," in args.backend and not fleet_mode:
            from .errors import ParameterError

            raise ParameterError(
                "a comma-separated --backend list (mixed fleet) requires --workers"
            )
        if http_mode:
            http_host, http_port = _parse_http_address(args.http)
        if use_async:
            spec = _build_worker_spec(args, http_mode)
            theta_used = spec.theta_used
            if fleet_mode:
                # Validate the recipe in the parent: a bad --method or an
                # unwritable --cache-dir must exit 2 here, exactly like the
                # single-process path — not crash-loop inside the workers.
                spec.build_service()
                service = None
            else:
                service = spec.build_service()
        else:
            kwargs = _segmenter_kwargs(args)
            theta_used = float(args.theta) if ("thetas" in kwargs or "theta" in kwargs) else None
            engine = BatchSegmentationEngine(
                get_segmenter(args.method, **kwargs),
                use_lut=not args.no_lut,
                executor=_make_executor(args.executor, args.jobs),
                backend=(_parse_backend_names(args.backend) or [None])[0],
            )
            from .obs import Tracer

            service = SegmentationService(
                engine,
                max_batch_size=args.max_batch,
                max_wait_seconds=args.max_wait,
                queue_size=args.queue_size,
                cache=_serve_cache(args),
                tracer=Tracer(
                    sample_rate=args.trace_sample_rate, ring_size=args.trace_ring
                ),
            )
    except (ValueError, CacheError) as exc:  # ParameterError is a ValueError
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if http_mode:
        try:
            if fleet_mode:
                return _run_fleet_serve(args, spec, theta_used, http_host, http_port)
            return _run_http_serve(args, service, theta_used, http_host, http_port)
        except (ValueError, CacheError, OSError) as exc:
            # bind failures (port in use, privileged port) and config errors
            # follow the CLI convention: one error line, exit 2
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if stdin_mode:
        jobs = iter_jsonl_jobs(sys.stdin, priority_field=args.priority_field)
        if args.limit is not None:
            jobs = itertools.islice(jobs, max(0, int(args.limit)))
        out_dir = args.out_dir
    else:
        jobs = iter_spool_jobs(
            args.source,
            watch=args.watch,
            poll_seconds=args.poll,
            stop_file=args.stop_file,
            limit=args.limit,
        )
        out_dir = args.out_dir or os.path.join(args.source, "results")

    if use_async:

        async def _drive() -> tuple:
            async with service:
                entries = await run_jobs_async(
                    service,
                    jobs,
                    out_dir=out_dir,
                    default_deadline_ms=args.default_deadline_ms,
                )
                report = build_report(
                    service,
                    entries,
                    method=args.method,
                    parameters={"theta": theta_used, "seed": args.seed},
                )
            return entries, report

        entries, report = asyncio.run(_drive())
    else:
        with service:
            entries = run_jobs(service, jobs, out_dir=out_dir)
            report = build_report(
                service,
                entries,
                method=args.method,
                parameters={"theta": theta_used, "seed": args.seed},
            )

    payload = json.dumps(report, indent=2, sort_keys=True)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            fh.write(payload + "\n")
    else:
        print(payload)
    summary = report["summary"]
    cache_stats = report["metrics"]["cache"]
    hit_text = f"{cache_stats['hit_rate']:.0%}" if cache_stats else "off"
    failures = summary["num_failed"]
    print(
        f"serve: {len(entries) - failures}/{len(entries)} job(s) ok, "
        f"method={args.method}, cache hit rate={hit_text}, "
        f"throughput={report['metrics']['throughput_rps']:.1f} req/s"
        + (f" -> {args.report}" if args.report else ""),
        file=sys.stderr if not args.report else sys.stdout,
    )
    return 1 if failures else 0


def _format_metrics_table(snapshot: dict) -> str:
    """A compact human summary of one ``/v1/metrics`` snapshot.

    Works on a single worker's snapshot and on a fleet's merged document
    alike, and tolerates empty recorders: percentiles a fresh service has
    not earned yet render as ``n/a``, never as 0 or NaN.
    """

    def num(value) -> int:
        try:
            return int(value)
        except (TypeError, ValueError):
            return 0

    def ms(value) -> str:
        if isinstance(value, (int, float)):
            return f"{float(value) * 1000.0:.2f}ms"
        return "n/a"

    def rate(value) -> str:
        try:
            return f"{float(value):.0%}"
        except (TypeError, ValueError):
            return "n/a"

    lines = []
    fleet = snapshot.get("fleet")
    if isinstance(fleet, dict):
        lines.append(
            "fleet        "
            f"ready={num(fleet.get('ready'))}/{num(fleet.get('workers'))} "
            f"restarts={num(fleet.get('restarts'))} "
            f"scrape_failures={num(snapshot.get('scrape_failures', fleet.get('scrape_failures')))}"
        )
    lines.append(
        "requests     "
        f"completed={num(snapshot.get('completed'))} "
        f"failed={num(snapshot.get('failed'))} "
        f"cancelled={num(snapshot.get('cancelled'))} "
        f"coalesced={num(snapshot.get('coalesced'))} "
        f"queue_depth={num(snapshot.get('queue_depth'))}"
    )
    try:
        throughput = float(snapshot.get("throughput_rps") or 0.0)
        uptime = float(snapshot.get("uptime_seconds") or 0.0)
        mean_batch = float(snapshot.get("mean_batch_size") or 0.0)
    except (TypeError, ValueError):
        throughput, uptime, mean_batch = 0.0, 0.0, 0.0
    lines.append(
        f"throughput   {throughput:.2f} req/s over {uptime:.0f}s, mean batch {mean_batch:.2f}"
    )
    latency = snapshot.get("latency_seconds")
    latency = latency if isinstance(latency, dict) else {}
    lines.append(
        "latency      "
        f"p50={ms(latency.get('p50'))} p99={ms(latency.get('p99'))} "
        f"mean={ms(latency.get('mean'))} max={ms(latency.get('max'))}"
    )
    cache = snapshot.get("cache")
    if isinstance(cache, dict):
        tiers = [
            (name, cache[name])
            for name in ("l1", "shm", "l2")
            if isinstance(cache.get(name), dict)
        ]
        if tiers:
            parts = [f"{name}={rate(tier.get('hit_rate'))}" for name, tier in tiers]
            parts.append(f"overall={rate(cache.get('hit_rate'))}")
            lines.append("cache hits   " + " ".join(parts))
        else:
            lines.append(f"cache hits   memory={rate(cache.get('hit_rate'))}")
    else:
        lines.append("cache hits   off")
    lanes = snapshot.get("lanes")
    lanes = lanes if isinstance(lanes, dict) else {}
    for name in ("high", "normal", "low"):
        lane = lanes.get(name)
        if not isinstance(lane, dict):
            continue
        lane_latency = lane.get("latency_seconds")
        lane_latency = lane_latency if isinstance(lane_latency, dict) else {}
        shed = num(lane.get("shed_admission")) + num(lane.get("shed_expired"))
        lines.append(
            f"lane {name:<8}"
            f"depth={num(lane.get('depth'))} "
            f"completed={num(lane.get('completed'))} "
            f"shed={shed} "
            f"weight={num(lane.get('weight'))} "
            f"p99={ms(lane_latency.get('p99'))}"
        )
    adaptive = snapshot.get("adaptive")
    if isinstance(adaptive, dict):
        batch = adaptive.get("max_batch_size")
        if isinstance(batch, dict):
            batch_text = f"{num(batch.get('min'))}..{num(batch.get('max'))}"
        else:
            batch_text = str(num(batch))
        lines.append(
            "adaptive     "
            f"ticks={num(adaptive.get('ticks'))} "
            f"batch_adjustments={num(adaptive.get('batch_adjustments'))} "
            f"weight_adjustments={num(adaptive.get('weight_adjustments'))} "
            f"batch_size={batch_text}"
        )
    else:
        lines.append("adaptive     off")
    delta = snapshot.get("delta")
    if isinstance(delta, dict):
        lines.append(
            "delta        "
            f"frames={num(delta.get('frames'))} "
            f"tiles_reused={num(delta.get('tiles_reused'))} "
            f"tiles_recomputed={num(delta.get('tiles_recomputed'))} "
            f"reuse_ratio={float(delta.get('reuse_ratio') or 0.0):.3f}"
        )
    trace = snapshot.get("trace")
    if isinstance(trace, dict):
        lines.append(
            "traces       "
            f"recorded={num(trace.get('recorded'))} "
            f"retained={num(trace.get('retained'))} "
            f"sampled_out={num(trace.get('sampled_out'))}"
        )
    exemplar = snapshot.get("latency_exemplar")
    if isinstance(exemplar, dict) and exemplar.get("trace_id"):
        lines.append(
            f"slowest      trace_id={exemplar.get('trace_id')} "
            f"at {ms(exemplar.get('seconds'))}"
        )
    return "\n".join(lines)


def _cmd_metrics(args: argparse.Namespace) -> int:
    from .errors import ReproError
    from .serve import SegmentClient

    try:
        host, port = _parse_http_address(args.address, flag="metrics address")
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        with SegmentClient(host, port, timeout=args.timeout) as client:
            snapshot = client.metrics()
    except (ReproError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not isinstance(snapshot, dict):
        print("error: the endpoint returned a non-object metrics document", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
        return 0
    print(f"metrics      http://{host}:{port}/v1/metrics")
    print(_format_metrics_table(snapshot))
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from .datasets.synthetic_voc import SyntheticVOCDataset
    from .datasets.synthetic_xview import SyntheticXView2Dataset
    from .experiments.table3 import format_table3, run_table3
    from .parallel.executor import get_executor

    if args.dataset == "voc":
        dataset = SyntheticVOCDataset(num_samples=args.samples)
    else:
        dataset = SyntheticXView2Dataset(num_samples=args.samples)
    executor = get_executor(args.executor)
    result = run_table3(dataset, executor=executor)
    print(format_table3([result]))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from . import experiments as ex

    name = args.name
    if name == "table1":
        print(ex.format_table1(ex.run_table1()))
    elif name == "table2":
        samples = args.samples or 100_000
        print(ex.format_table2(ex.run_table2(num_samples=samples)))
    elif name == "table3":
        from .experiments.table3 import default_datasets

        samples = args.samples or 20
        datasets = default_datasets(voc_samples=samples, xview_samples=samples)
        results = [ex.run_table3(ds) for ds in datasets.values()]
        print(ex.format_table3(results))
    elif name == "fig3":
        print(ex.format_figure3(ex.run_figure3()))
    elif name == "fig4":
        print(ex.format_figure4(ex.run_figure4()))
    elif name == "fig5":
        print(ex.format_figure5(ex.run_figure5()))
    elif name == "fig6":
        print(ex.format_figure6(ex.run_figure6()))
    elif name == "fig7":
        print(ex.format_figure7(ex.run_figure7()))
    elif name == "fig8":
        print(ex.format_example_table(ex.run_figure8(), "Figure 8 — VOC-style examples"))
    elif name == "fig9":
        print(ex.format_example_table(ex.run_figure9(), "Figure 9 — xVIEW2-style examples"))
    elif name == "fig10":
        print(ex.format_figure10(ex.run_figure10()))
    elif name == "theta-sweep":
        print(ex.format_theta_sensitivity(ex.run_theta_sensitivity(num_images=args.samples or 8)))
    elif name == "robustness":
        print(ex.format_noise_robustness(ex.run_noise_robustness(num_images=args.samples or 4)))
    elif name == "shots":
        from .quantum.noise_models import NoiseModel

        result = ex.run_shot_convergence(
            shots=(1, 8, 64, 256), noise_model=NoiseModel(phase_damping=0.01, readout_error=0.01)
        )
        print(ex.format_shot_convergence(result))
    else:  # pragma: no cover - argparse already restricts choices
        raise SystemExit(f"unknown experiment {name}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "segment":
        return _cmd_segment(args)
    if args.command == "batch":
        return _cmd_batch(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "metrics":
        return _cmd_metrics(args)
    if args.command == "evaluate":
        return _cmd_evaluate(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    parser.error("unknown command")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

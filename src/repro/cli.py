"""Command-line interface.

Three subcommands::

    repro-segment segment  INPUT OUTPUT [--method iqft-rgb] [--theta 3.1416]
    repro-segment evaluate [--dataset voc|xview2] [--samples 20] [--methods ...]
    repro-segment experiment NAME   # table1, table2, table3, fig3, fig4, ...

``segment`` reads an image file (PPM/PGM/PNG/BMP), runs one method and writes
the colourized label map; ``evaluate`` runs the Table-III sweep on a synthetic
dataset and prints the summary table; ``experiment`` regenerates a specific
table/figure and prints it.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

__all__ = ["build_parser", "main"]

_EXPERIMENTS = (
    "table1",
    "table2",
    "table3",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "theta-sweep",
    "robustness",
    "shots",
)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-segment",
        description="IQFT-inspired unsupervised image segmentation (IPPS 2023 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    seg = sub.add_parser("segment", help="segment a single image file")
    seg.add_argument("input", help="input image (.ppm/.pgm/.png/.bmp)")
    seg.add_argument("output", help="output label-map image")
    seg.add_argument("--method", default="iqft-rgb", help="registered method name")
    seg.add_argument("--theta", type=float, default=float(np.pi), help="angle parameter θ")

    ev = sub.add_parser("evaluate", help="run the Table-III sweep on a synthetic dataset")
    ev.add_argument("--dataset", choices=("voc", "xview2"), default="voc")
    ev.add_argument("--samples", type=int, default=10)
    ev.add_argument("--executor", choices=("serial", "thread", "process"), default="serial")

    ex = sub.add_parser("experiment", help="regenerate a specific table/figure")
    ex.add_argument("name", choices=_EXPERIMENTS)
    ex.add_argument("--samples", type=int, default=None, help="dataset size override")
    return parser


def _cmd_segment(args: argparse.Namespace) -> int:
    from .baselines.registry import get_segmenter
    from .imaging.io_dispatch import read_image
    from .viz.export import save_label_map

    image = read_image(args.input)
    kwargs = {}
    if args.method == "iqft-rgb":
        kwargs["thetas"] = args.theta
    elif args.method == "iqft-gray":
        kwargs["theta"] = args.theta
    segmenter = get_segmenter(args.method, **kwargs)
    result = segmenter.segment(image)
    save_label_map(args.output, result.labels)
    print(
        f"method={result.method} segments={result.num_segments} "
        f"runtime={result.runtime_seconds:.3f}s -> {args.output}"
    )
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from .datasets.synthetic_voc import SyntheticVOCDataset
    from .datasets.synthetic_xview import SyntheticXView2Dataset
    from .experiments.table3 import format_table3, run_table3
    from .parallel.executor import get_executor

    if args.dataset == "voc":
        dataset = SyntheticVOCDataset(num_samples=args.samples)
    else:
        dataset = SyntheticXView2Dataset(num_samples=args.samples)
    executor = get_executor(args.executor)
    result = run_table3(dataset, executor=executor)
    print(format_table3([result]))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from . import experiments as ex

    name = args.name
    if name == "table1":
        print(ex.format_table1(ex.run_table1()))
    elif name == "table2":
        samples = args.samples or 100_000
        print(ex.format_table2(ex.run_table2(num_samples=samples)))
    elif name == "table3":
        from .experiments.table3 import default_datasets

        samples = args.samples or 20
        datasets = default_datasets(voc_samples=samples, xview_samples=samples)
        results = [ex.run_table3(ds) for ds in datasets.values()]
        print(ex.format_table3(results))
    elif name == "fig3":
        print(ex.format_figure3(ex.run_figure3()))
    elif name == "fig4":
        print(ex.format_figure4(ex.run_figure4()))
    elif name == "fig5":
        print(ex.format_figure5(ex.run_figure5()))
    elif name == "fig6":
        print(ex.format_figure6(ex.run_figure6()))
    elif name == "fig7":
        print(ex.format_figure7(ex.run_figure7()))
    elif name == "fig8":
        print(ex.format_example_table(ex.run_figure8(), "Figure 8 — VOC-style examples"))
    elif name == "fig9":
        print(ex.format_example_table(ex.run_figure9(), "Figure 9 — xVIEW2-style examples"))
    elif name == "fig10":
        print(ex.format_figure10(ex.run_figure10()))
    elif name == "theta-sweep":
        print(ex.format_theta_sensitivity(ex.run_theta_sensitivity(num_images=args.samples or 8)))
    elif name == "robustness":
        print(ex.format_noise_robustness(ex.run_noise_robustness(num_images=args.samples or 4)))
    elif name == "shots":
        from .quantum.noise_models import NoiseModel

        result = ex.run_shot_convergence(
            shots=(1, 8, 64, 256), noise_model=NoiseModel(phase_damping=0.01, readout_error=0.01)
        )
        print(ex.format_shot_convergence(result))
    else:  # pragma: no cover - argparse already restricts choices
        raise SystemExit(f"unknown experiment {name}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "segment":
        return _cmd_segment(args)
    if args.command == "evaluate":
        return _cmd_evaluate(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    parser.error("unknown command")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Figure 5: effect of the normalization step on segmentation quality.

The paper shows that skipping the line-1 normalization (dividing intensities by
255) yields "noisy" segmentation patterns.  The quantitative proxy used here:
segment the same images with and without normalization and compare

* the mIOU against the ground truth (drops without normalization), and
* the spatial fragmentation of the label map, measured as the fraction of
  4-neighbour pixel pairs with different labels (rises sharply without
  normalization because raw intensities × θ wrap many times around 2π).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np

from ..core.labels import binarize_by_overlap
from ..core.rgb_segmenter import IQFTSegmenter
from ..datasets.base import Dataset
from ..datasets.synthetic_voc import SyntheticVOCDataset
from ..metrics.iou import mean_iou
from ..metrics.report import format_table

__all__ = ["Figure5Result", "run_figure5", "format_figure5", "label_fragmentation"]


def label_fragmentation(labels: np.ndarray) -> float:
    """Fraction of horizontally/vertically adjacent pixel pairs with different labels.

    0 for a constant map, approaching ~1 for salt-and-pepper noise; a smooth
    two-region segmentation of a natural image sits well below 0.1.
    """
    arr = np.asarray(labels)
    horizontal = arr[:, 1:] != arr[:, :-1]
    vertical = arr[1:, :] != arr[:-1, :]
    total_pairs = horizontal.size + vertical.size
    if total_pairs == 0:
        return 0.0
    return float(horizontal.sum() + vertical.sum()) / total_pairs


@dataclasses.dataclass
class Figure5Result:
    """Aggregated with/without-normalization comparison."""

    miou_normalized: float
    miou_unnormalized: float
    fragmentation_normalized: float
    fragmentation_unnormalized: float
    per_image: List[Dict[str, float]]


def run_figure5(
    dataset: Optional[Dataset] = None,
    num_images: int = 2,
    theta: float = float(np.pi),
) -> Figure5Result:
    """Segment ``num_images`` samples with and without normalization."""
    data = dataset or SyntheticVOCDataset(num_samples=max(num_images, 2), seed=555)
    with_norm = IQFTSegmenter(thetas=theta, normalize=True)
    without_norm = IQFTSegmenter(thetas=theta, normalize=False)

    per_image: List[Dict[str, float]] = []
    for index in range(min(num_images, len(data))):
        sample = data[index]
        # Feed 8-bit intensities so the un-normalized variant sees raw 0..255
        # values, exactly the ablation the paper performs.
        image_uint8 = (np.clip(sample.image, 0, 1) * 255).astype(np.uint8)
        record: Dict[str, float] = {}
        for tag, segmenter in (("normalized", with_norm), ("unnormalized", without_norm)):
            labels = segmenter.segment(image_uint8).labels
            binary = binarize_by_overlap(labels, sample.mask, sample.void)
            record[f"miou_{tag}"] = mean_iou(binary, sample.mask, void_mask=sample.void)
            record[f"fragmentation_{tag}"] = label_fragmentation(labels)
        per_image.append(record)

    return Figure5Result(
        miou_normalized=float(np.mean([r["miou_normalized"] for r in per_image])),
        miou_unnormalized=float(np.mean([r["miou_unnormalized"] for r in per_image])),
        fragmentation_normalized=float(
            np.mean([r["fragmentation_normalized"] for r in per_image])
        ),
        fragmentation_unnormalized=float(
            np.mean([r["fragmentation_unnormalized"] for r in per_image])
        ),
        per_image=per_image,
    )


def format_figure5(result: Figure5Result) -> str:
    """Render the normalization ablation as a two-row table."""
    rows = [
        [
            "with normalization",
            f"{result.miou_normalized:.4f}",
            f"{result.fragmentation_normalized:.4f}",
        ],
        [
            "without normalization",
            f"{result.miou_unnormalized:.4f}",
            f"{result.fragmentation_unnormalized:.4f}",
        ],
    ]
    return format_table(
        title="Figure 5 — effect of the normalization process",
        header=["Variant", "mean mIOU", "label fragmentation"],
        rows=rows,
    )

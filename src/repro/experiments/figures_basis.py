"""Figures 1–3: basis patterns, a transformed input pattern, its probabilities.

* Figure 1 — each of the eight 3-qubit basis states visualized as the set of
  phase points of the corresponding IQFT-matrix row on the unit circle.
* Figure 2 — the eight unit-circle points of the phase vector for the paper's
  worked example ``α = 2.464, β = 0.025, γ = 0.246`` (some points coincide).
* Figure 3 — the probability that the example pattern matches each basis
  state.  The paper labels the winning state ``|100⟩``; with the literal
  matrix of equation (11) the argmax index is 1 (``|001⟩``), which is the same
  state under the circuit (bit-reversed) labeling convention — both labelings
  are reported so the comparison with the paper is explicit.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Sequence, Tuple

import numpy as np

from ..core.iqft_matrix import bit_reversed_index
from ..viz.ascii_art import ascii_histogram
from ..viz.unit_circle import (
    PAPER_EXAMPLE_PHASES,
    basis_patterns_points,
    input_pattern_points,
    probability_series,
)

__all__ = [
    "PAPER_EXAMPLE_PHASES",
    "run_figure1",
    "run_figure2",
    "run_figure3",
    "Figure3Result",
    "format_figure3",
]


def run_figure1(num_qubits: int = 3) -> Dict[str, np.ndarray]:
    """Figure 1 data: bitstring → ``(2^n, 2)`` unit-circle points."""
    return basis_patterns_points(num_qubits)


def run_figure2(phases: Sequence[float] = PAPER_EXAMPLE_PHASES) -> np.ndarray:
    """Figure 2 data: the ``(8, 2)`` points of the example phase vector."""
    return input_pattern_points(phases)


@dataclasses.dataclass
class Figure3Result:
    """Figure 3 data plus both labelings of the winning basis state."""

    probabilities: Dict[str, float]
    argmax_matrix_convention: str
    argmax_circuit_convention: str
    phases: Tuple[float, float, float]


def run_figure3(phases: Sequence[float] = PAPER_EXAMPLE_PHASES) -> Figure3Result:
    """Figure 3: probabilities of the example input over the 8 basis states."""
    probs = probability_series(phases)
    num_qubits = int(np.log2(len(probs)))
    labels = list(probs.keys())
    values = np.array([probs[k] for k in labels])
    argmax = int(np.argmax(values))
    return Figure3Result(
        probabilities=probs,
        argmax_matrix_convention=labels[argmax],
        argmax_circuit_convention=labels[bit_reversed_index(argmax, num_qubits)],
        phases=tuple(float(p) for p in phases),
    )


def format_figure3(result: Figure3Result) -> str:
    """Render the probability distribution as a text bar chart."""
    header = (
        "Figure 3 — probability distribution for "
        f"α={result.phases[0]}, β={result.phases[1]}, γ={result.phases[2]}\n"
        f"argmax (matrix convention): |{result.argmax_matrix_convention}⟩   "
        f"argmax (circuit / paper labeling): |{result.argmax_circuit_convention}⟩\n"
    )
    chart = ascii_histogram(
        list(result.probabilities.values()),
        labels=[f"|{k}⟩" for k in result.probabilities],
    )
    return header + chart

"""Figure 4: multiple thresholding — isolating the mid-intensity balls.

The task is to separate the red/green/lemon balls from both the darker and the
brighter balls in the same scene.  A single-threshold method (Otsu) cannot do
this; the IQFT grayscale method with θ = 4π realizes the four thresholds
{1/8, 3/8, 5/8, 7/8} of equation (16) and the middle band isolates exactly the
target balls.  K-means with k = 2 likewise produces a single split.

:func:`run_figure4` segments the scene with the three methods and scores each
against the target-ball mask; the IQFT method should score (near-)perfect mIOU
while the single-threshold methods cannot exceed roughly the fraction they can
capture with one cut.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple

import numpy as np

from ..baselines.kmeans import KMeansSegmenter
from ..baselines.otsu import OtsuSegmenter
from ..core.grayscale_segmenter import IQFTGrayscaleSegmenter
from ..core.labels import binarize_by_overlap
from ..datasets.balls import make_balls_image
from ..imaging.color import rgb_to_gray
from ..metrics.iou import mean_iou
from ..metrics.report import format_table

__all__ = ["Figure4Result", "run_figure4", "format_figure4"]


@dataclasses.dataclass
class Figure4Result:
    """Per-method mIOU on the multi-threshold task plus the masks themselves."""

    miou: Dict[str, float]
    masks: Dict[str, np.ndarray]
    image: np.ndarray
    target: np.ndarray
    theta: float


def run_figure4(theta: float = 4.0 * np.pi, shape: Tuple[int, int] = (120, 240)) -> Figure4Result:
    """Run K-means, Otsu and IQFT-grayscale (θ = 4π) on the balls scene."""
    image, target = make_balls_image(shape=shape)
    gray = rgb_to_gray(image)
    target = target.astype(np.int64)

    methods = {
        "kmeans": KMeansSegmenter(n_clusters=2, n_init=4, seed=0),
        "otsu": OtsuSegmenter(),
        # multiband=True labels each intensity band separately so the
        # majority-overlap binarization can pick out the middle band(s) alone.
        "iqft": IQFTGrayscaleSegmenter(theta=theta, multiband=True),
    }
    miou: Dict[str, float] = {}
    masks: Dict[str, np.ndarray] = {}
    for name, segmenter in methods.items():
        labels = segmenter.segment(gray).labels
        binary = binarize_by_overlap(labels, target)
        masks[name] = binary
        miou[name] = mean_iou(binary, target)
    return Figure4Result(miou=miou, masks=masks, image=image, target=target, theta=float(theta))


def format_figure4(result: Figure4Result) -> str:
    """Render the per-method scores of the multi-threshold task."""
    rows = [[name, f"{value:.4f}"] for name, value in result.miou.items()]
    return format_table(
        title=f"Figure 4 — multiple thresholding (θ = {result.theta / np.pi:.0f}π), "
        "mIOU against the red/green/lemon target balls",
        header=["Method", "mIOU"],
        rows=rows,
    )

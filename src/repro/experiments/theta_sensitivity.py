"""θ-sensitivity sweep: how does the choice of θ affect dataset-level mIOU?

The paper fixes θ = π for its headline numbers, shows the number of segments
each θ produces (Table II / Figure 6) and demonstrates per-image rescue
(Figure 10), but never reports the dataset-level accuracy as a *function* of
θ.  This experiment fills that gap: it sweeps a grid of θ values over a
dataset and records the average mIOU and the average number of segments of
the IQFT RGB segmenter at each value — the ablation behind the "θ = π default"
design choice called out in DESIGN.md.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.labels import binarize_by_overlap
from ..core.rgb_segmenter import IQFTSegmenter
from ..datasets.base import Dataset
from ..datasets.synthetic_voc import SyntheticVOCDataset
from ..errors import ExperimentError
from ..metrics.iou import mean_iou
from ..metrics.report import format_table

__all__ = ["ThetaSensitivityResult", "run_theta_sensitivity", "format_theta_sensitivity"]

#: Default sweep grid (fractions of π).
DEFAULT_GRID: Sequence[float] = tuple(
    float(x) * np.pi for x in (0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0)
)


@dataclasses.dataclass
class ThetaSensitivityResult:
    """Average mIOU and segment count for every θ in the sweep."""

    thetas: List[float]
    average_miou: Dict[float, float]
    average_segments: Dict[float, float]
    best_theta: float

    def miou_curve(self) -> List[float]:
        """The mIOU values in sweep order (convenient for plotting/inspection)."""
        return [self.average_miou[t] for t in self.thetas]


def run_theta_sensitivity(
    dataset: Optional[Dataset] = None,
    thetas: Sequence[float] = DEFAULT_GRID,
    num_images: int = 10,
) -> ThetaSensitivityResult:
    """Sweep θ over a dataset slice and aggregate mIOU / segment counts."""
    if not thetas:
        raise ExperimentError("need at least one theta value")
    data = dataset or SyntheticVOCDataset(num_samples=num_images, seed=987)
    count = min(num_images, len(data))
    samples = [data[i] for i in range(count)]

    average_miou: Dict[float, float] = {}
    average_segments: Dict[float, float] = {}
    for theta in thetas:
        segmenter = IQFTSegmenter(thetas=float(theta))
        scores = []
        segment_counts = []
        for sample in samples:
            result = segmenter.segment(sample.image)
            binary = binarize_by_overlap(result.labels, sample.mask, sample.void)
            scores.append(mean_iou(binary, sample.mask, void_mask=sample.void))
            segment_counts.append(result.num_segments)
        average_miou[float(theta)] = float(np.mean(scores))
        average_segments[float(theta)] = float(np.mean(segment_counts))
    best_theta = max(average_miou, key=lambda t: average_miou[t])
    return ThetaSensitivityResult(
        thetas=[float(t) for t in thetas],
        average_miou=average_miou,
        average_segments=average_segments,
        best_theta=best_theta,
    )


def format_theta_sensitivity(result: ThetaSensitivityResult) -> str:
    """Render the sweep as a θ × (mIOU, segments) table."""
    rows = [
        [
            f"{theta / np.pi:.2f}π",
            f"{result.average_miou[theta]:.4f}",
            f"{result.average_segments[theta]:.2f}",
            "« best" if theta == result.best_theta else "",
        ]
        for theta in result.thetas
    ]
    return format_table(
        title="θ-sensitivity sweep (IQFT-RGB, dataset-average)",
        header=["θ", "avg mIOU", "avg segments", ""],
        rows=rows,
    )

"""Figures 8 and 9: per-image examples where IQFT-RGB beats the baselines.

The paper shows three example images from each dataset with the per-image mIOU
of K-means, Otsu and IQFT-RGB printed underneath, chosen among the images where
the IQFT method wins.  The reproduction scores every method on a slice of the
(synthetic) dataset, selects the images with the largest IQFT-vs-best-baseline
margin and reports their per-method mIOU — the same information the figures
convey.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from ..datasets.base import Dataset
from ..datasets.synthetic_voc import SyntheticVOCDataset
from ..datasets.synthetic_xview import SyntheticXView2Dataset
from ..errors import ExperimentError
from ..metrics.report import format_table
from .runner import DEFAULT_METHODS, ExperimentRunner, MethodSpec

__all__ = ["ExampleRecord", "run_figure8", "run_figure9", "format_example_table"]


@dataclasses.dataclass
class ExampleRecord:
    """Per-method mIOU for one example image."""

    sample: str
    miou: Dict[str, float]
    margin: float  # IQFT-RGB mIOU minus the best baseline mIOU


def _select_examples(
    dataset: Dataset,
    num_examples: int,
    pool_size: int,
    methods: Sequence[MethodSpec],
    reference: str = "iqft-rgb",
) -> List[ExampleRecord]:
    if num_examples < 1:
        raise ExperimentError("num_examples must be >= 1")
    runner = ExperimentRunner(methods=methods)
    table = runner.run(dataset, limit=pool_size)
    by_sample: Dict[str, Dict[str, float]] = {}
    for score in table.scores:
        by_sample.setdefault(score.sample, {})[score.method] = score.miou
    records = []
    for sample, scores in by_sample.items():
        if reference not in scores:
            continue
        baselines = [v for k, v in scores.items() if k != reference]
        margin = scores[reference] - max(baselines) if baselines else 0.0
        records.append(ExampleRecord(sample=sample, miou=scores, margin=margin))
    records.sort(key=lambda r: r.margin, reverse=True)
    return records[:num_examples]


def run_figure8(
    dataset: Optional[Dataset] = None,
    num_examples: int = 3,
    pool_size: int = 12,
    methods: Sequence[MethodSpec] = DEFAULT_METHODS,
) -> List[ExampleRecord]:
    """Figure 8: example images from the VOC-style dataset."""
    data = dataset or SyntheticVOCDataset(num_samples=max(pool_size, num_examples))
    return _select_examples(data, num_examples, pool_size, methods)


def run_figure9(
    dataset: Optional[Dataset] = None,
    num_examples: int = 3,
    pool_size: int = 12,
    methods: Sequence[MethodSpec] = DEFAULT_METHODS,
) -> List[ExampleRecord]:
    """Figure 9: example images from the xVIEW2-style dataset."""
    data = dataset or SyntheticXView2Dataset(num_samples=max(pool_size, num_examples))
    return _select_examples(data, num_examples, pool_size, methods)


def format_example_table(records: List[ExampleRecord], title: str) -> str:
    """Render the example records as a per-image mIOU table."""
    if not records:
        return f"{title}\n(no examples selected)"
    methods = list(records[0].miou.keys())
    header = ["Image"] + methods + ["IQFT margin"]
    rows = [
        [r.sample] + [f"{r.miou[m]:.4f}" for m in methods] + [f"{r.margin:+.4f}"]
        for r in records
    ]
    return format_table(title=title, header=header, rows=rows)

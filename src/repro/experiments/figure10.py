"""Figure 10: performance improvement through per-image θ adjustment.

The paper fixes θ = π for the headline results and notes that ~1.4% of the
VOC images then score mIOU < 0.1; picking θ = 3π/4 instead rescues those
images (the figure shows mIOU jumping from 0.0084 to 0.8327 on one example).
The reproduction scans a slice of the dataset for the images where θ = π does
worst, re-runs them with a tuned θ (grid search over the Figure-6 candidates,
ground-truth-guided exactly like the paper's manual adjustment), and reports
the before/after mIOU.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.labels import binarize_by_overlap
from ..core.rgb_segmenter import IQFTSegmenter
from ..core.theta_search import DEFAULT_THETA_GRID, tune_theta_supervised
from ..datasets.base import Dataset
from ..datasets.synthetic_voc import SyntheticVOCDataset
from ..metrics.iou import mean_iou
from ..metrics.report import format_table

__all__ = ["Figure10Record", "Figure10Result", "run_figure10", "format_figure10"]


@dataclasses.dataclass
class Figure10Record:
    """Before/after mIOU for one image."""

    sample: str
    miou_default: float
    best_theta_over_pi: float
    miou_tuned: float

    @property
    def improvement(self) -> float:
        """Absolute mIOU gain from tuning."""
        return self.miou_tuned - self.miou_default


@dataclasses.dataclass
class Figure10Result:
    """Tuning results for the worst-performing images under the default θ."""

    records: List[Figure10Record]
    default_theta: float

    @property
    def mean_improvement(self) -> float:
        """Average mIOU gain over the selected images."""
        if not self.records:
            return 0.0
        return float(np.mean([r.improvement for r in self.records]))


def run_figure10(
    dataset: Optional[Dataset] = None,
    pool_size: int = 12,
    num_worst: int = 3,
    default_theta: float = float(np.pi),
    candidates: Sequence[float] = DEFAULT_THETA_GRID,
) -> Figure10Result:
    """Tune θ on the images where the default θ performs worst."""
    data = dataset or SyntheticVOCDataset(num_samples=max(pool_size, num_worst), seed=1010)
    default_segmenter = IQFTSegmenter(thetas=default_theta)

    scored: List[Dict] = []
    for index in range(min(pool_size, len(data))):
        sample = data[index]
        labels = default_segmenter.segment(sample.image).labels
        binary = binarize_by_overlap(labels, sample.mask, sample.void)
        scored.append(
            {
                "sample": sample,
                "miou": mean_iou(binary, sample.mask, void_mask=sample.void),
            }
        )
    scored.sort(key=lambda r: r["miou"])

    records: List[Figure10Record] = []
    for entry in scored[:num_worst]:
        sample = entry["sample"]
        search = tune_theta_supervised(
            sample.image, sample.mask, void_mask=sample.void, candidates=candidates
        )
        records.append(
            Figure10Record(
                sample=sample.name,
                miou_default=float(entry["miou"]),
                best_theta_over_pi=float(search.best_theta / np.pi),
                miou_tuned=float(search.best_score),
            )
        )
    return Figure10Result(records=records, default_theta=float(default_theta))


def format_figure10(result: Figure10Result) -> str:
    """Render the before/after tuning table."""
    rows = [
        [
            r.sample,
            f"{r.miou_default:.4f}",
            f"{r.best_theta_over_pi:.2f}π",
            f"{r.miou_tuned:.4f}",
            f"{r.improvement:+.4f}",
        ]
        for r in result.records
    ]
    return format_table(
        title=(
            "Figure 10 — performance improvement through θ adjustment "
            f"(default θ = {result.default_theta / np.pi:.2f}π, "
            f"mean gain {result.mean_improvement:+.4f})"
        ),
        header=["Image", "mIOU @ default θ", "best θ", "mIOU @ best θ", "gain"],
        rows=rows,
    )

"""Figure 7: IQFT-grayscale with θ matched via equation (15) is identical to Otsu.

For each image, compute Otsu's threshold ``I_th``, convert it to
``θ = π / (2·I_th)`` (equation (15) with ``k = 0``, ``+`` sign), segment the
grayscale image with the IQFT single-qubit rule at that θ, and compare the two
binary masks pixel by pixel.  The paper shows the outputs are identical (equal
mIOU); the reproduction asserts exact mask equality and reports the fraction
of differing pixels (expected 0).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np

from ..baselines.otsu import OtsuSegmenter, otsu_threshold
from ..core.grayscale_segmenter import IQFTGrayscaleSegmenter
from ..core.thresholds import theta_for_threshold
from ..datasets.base import Dataset
from ..datasets.synthetic_voc import SyntheticVOCDataset
from ..imaging.color import rgb_to_gray
from ..metrics.report import format_table

__all__ = ["Figure7Result", "run_figure7", "format_figure7"]


@dataclasses.dataclass
class Figure7Result:
    """Per-image Otsu-vs-IQFT equivalence check."""

    records: List[Dict[str, float]]

    @property
    def all_identical(self) -> bool:
        """True when every image produced exactly matching masks."""
        return all(r["differing_fraction"] == 0.0 for r in self.records)


def run_figure7(
    dataset: Optional[Dataset] = None,
    num_images: int = 4,
) -> Figure7Result:
    """Check the θ ↔ Otsu-threshold equivalence on ``num_images`` samples."""
    data = dataset or SyntheticVOCDataset(num_samples=max(num_images, 2), seed=707)
    otsu = OtsuSegmenter()
    records: List[Dict[str, float]] = []
    for index in range(min(num_images, len(data))):
        sample = data[index]
        gray = rgb_to_gray(sample.image)
        threshold = otsu_threshold(gray)
        theta = theta_for_threshold(threshold)
        iqft = IQFTGrayscaleSegmenter(theta=theta)

        otsu_mask = otsu.segment(gray).labels
        # The IQFT rule labels intensities *below* the threshold as class 0
        # (cos > 0) and above as class 1, i.e. the same polarity as Otsu's
        # "foreground = above threshold".
        iqft_mask = iqft.segment(gray).labels
        differing = float(np.mean(otsu_mask != iqft_mask))
        records.append(
            {
                "otsu_threshold": float(threshold),
                "theta_over_pi": float(theta / np.pi),
                "differing_fraction": differing,
            }
        )
    return Figure7Result(records=records)


def format_figure7(result: Figure7Result) -> str:
    """Render the per-image equivalence records."""
    rows = [
        [
            f"{r['otsu_threshold']:.4f}",
            f"{r['theta_over_pi']:.4f}π",
            f"{r['differing_fraction']:.6f}",
        ]
        for r in result.records
    ]
    title = (
        "Figure 7 — IQFT-grayscale vs Otsu with θ from eq. (15); "
        f"identical on all images: {result.all_identical}"
    )
    return format_table(
        title=title,
        header=["Otsu threshold I_th", "equivalent θ", "fraction of differing pixels"],
        rows=rows,
    )

"""Table III: mIOU and runtime of the four methods on both datasets, plus the
win-rate and failure-rate statistics quoted in the surrounding text.

The paper reports, for PASCAL VOC 2012 and xVIEW2 (joplin-tornado,
pre-disaster):

* average mIOU of K-means, Otsu, IQFT (RGB) and IQFT (grayscale);
* average per-image runtime of each method;
* the fraction of images on which the IQFT RGB method strictly outperforms
  each baseline (53.24% / 52.32% on VOC, 95.94% / 97.97% on xVIEW2);
* the fraction of images with mIOU < 0.1 for the IQFT RGB method (~1.4% on
  VOC, about twice the baselines').

:func:`run_table3` computes all of those numbers on the synthetic stand-in
datasets (see DESIGN.md §2) and returns them in one structure.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence

from ..datasets.base import Dataset
from ..datasets.synthetic_voc import SyntheticVOCDataset
from ..datasets.synthetic_xview import SyntheticXView2Dataset
from ..metrics.report import ResultTable, format_table
from ..parallel.executor import BaseExecutor
from .runner import DEFAULT_METHODS, ExperimentRunner, MethodSpec

__all__ = ["Table3Result", "run_table3", "format_table3", "default_datasets"]


@dataclasses.dataclass
class Table3Result:
    """All Table-III numbers for one dataset.

    Attributes
    ----------
    dataset:
        Dataset name.
    table:
        The per-image score table (kept for further analysis).
    average_miou / average_runtime:
        Per-method dataset averages.
    win_rate_vs:
        ``{"kmeans": ..., "otsu": ...}`` — fraction of images on which the
        IQFT RGB method strictly beats each baseline.
    failure_rate:
        Per-method fraction of images with mIOU below 0.1.
    """

    dataset: str
    table: ResultTable
    average_miou: Dict[str, float]
    average_runtime: Dict[str, float]
    win_rate_vs: Dict[str, float]
    failure_rate: Dict[str, float]


def default_datasets(
    voc_samples: int = 40, xview_samples: int = 30
) -> Dict[str, Dataset]:
    """The two synthetic evaluation datasets sized for a laptop-scale sweep."""
    return {
        "synthetic-voc2012": SyntheticVOCDataset(num_samples=voc_samples),
        "synthetic-xview2-joplin": SyntheticXView2Dataset(num_samples=xview_samples),
    }


def run_table3(
    dataset: Dataset,
    methods: Sequence[MethodSpec] = DEFAULT_METHODS,
    limit: Optional[int] = None,
    executor: Optional[BaseExecutor] = None,
    reference_method: str = "iqft-rgb",
) -> Table3Result:
    """Run the full method comparison on one dataset."""
    runner = ExperimentRunner(methods=methods, executor=executor)
    table = runner.run(dataset, limit=limit)
    method_names = table.methods()
    average_miou = {m: table.average_miou(m) for m in method_names}
    average_runtime = {m: table.average_runtime(m) for m in method_names}
    failure_rate = {m: table.failure_rate(m, threshold=0.1) for m in method_names}
    win_rate_vs = {
        m: table.win_rate(reference_method, m)
        for m in method_names
        if m != reference_method
    }
    return Table3Result(
        dataset=dataset.name,
        table=table,
        average_miou=average_miou,
        average_runtime=average_runtime,
        win_rate_vs=win_rate_vs,
        failure_rate=failure_rate,
    )


def format_table3(results: Sequence[Table3Result]) -> str:
    """Render one or more dataset results in the paper's Table-III layout."""
    header = ["Dataset", "Metric"] + list(results[0].average_miou.keys())
    rows = []
    for result in results:
        methods = list(result.average_miou.keys())
        rows.append(
            [result.dataset, "Average mIOU"]
            + [f"{result.average_miou[m]:.4f}" for m in methods]
        )
        rows.append(
            ["", "Runtime (sec.)"]
            + [f"{result.average_runtime[m]:.4f}" for m in methods]
        )
        rows.append(
            ["", "IQFT-RGB win rate vs"]
            + [
                f"{result.win_rate_vs[m]:.2%}" if m in result.win_rate_vs else "—"
                for m in methods
            ]
        )
        rows.append(
            ["", "mIOU<0.1 rate"]
            + [f"{result.failure_rate[m]:.2%}" for m in methods]
        )
    return format_table(
        title="Table III — mIOU, computation time, and derived statistics",
        header=header,
        rows=rows,
    )

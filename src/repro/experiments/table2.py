"""Table II: angle parameter θ and the possible number of segments.

Protocol (Section V-D.2): draw 100,000 random normalized RGB triples and count
how many distinct labels the IQFT RGB rule produces for each θ configuration.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from ..config import SeedLike
from ..core.theta_search import PAPER_TABLE2_THETAS, segment_count_table
from ..metrics.report import format_table

__all__ = ["run_table2", "format_table2", "PAPER_TABLE2_EXPECTED"]

ThetaTriple = Tuple[float, float, float]

#: The maximum segment counts printed in the paper's Table II, row by row.
PAPER_TABLE2_EXPECTED: Tuple[int, ...] = (1, 3, 5, 6, 8, 8, 8, 8, 2)


def run_table2(
    theta_rows: Sequence[ThetaTriple] = PAPER_TABLE2_THETAS,
    num_samples: int = 100_000,
    seed: SeedLike = 0,
) -> Dict[ThetaTriple, int]:
    """Compute the θ-configuration → max-segment-count mapping."""
    return segment_count_table(theta_rows, num_samples=num_samples, seed=seed)


def _row_label(thetas: ThetaTriple) -> str:
    ratios = [t / np.pi for t in thetas]
    if all(abs(r - ratios[0]) < 1e-12 for r in ratios):
        return f"θ1=θ2=θ3={ratios[0]:.2f}π"
    return "θ1={:.2f}π, θ2={:.2f}π, θ3={:.2f}π".format(*ratios)


def format_table2(results: Dict[ThetaTriple, int]) -> str:
    """Render the computed mapping in the paper's Table-II layout."""
    rows = [[_row_label(thetas), str(count)] for thetas, count in results.items()]
    return format_table(
        title="Table II — parameter θ and the possible number of segments",
        header=["Parameter θ", "max. number of segments"],
        rows=rows,
    )

"""Robustness studies beyond the paper's evaluation.

Two sweeps motivated by the paper's discussion:

* **Input-noise robustness** (:func:`run_noise_robustness`) — the related-work
  section criticizes Otsu for being "sensitive to the unevenness and noise in
  a grayscale image"; this sweep adds Gaussian or salt-and-pepper noise of
  increasing strength to the evaluation images and tracks each method's mIOU,
  optionally with the spatial-smoothing post-processing applied to the IQFT
  output.
* **Shot-count convergence** (:func:`run_shot_convergence`) — the paper defers
  a hardware (quantum) execution to future work; this sweep measures how many
  measurement shots per pixel the shot-based segmenter needs before its labels
  agree with the exact Algorithm-1 labels, with and without hardware noise.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.labels import binarize_by_overlap
from ..core.rgb_segmenter import IQFTSegmenter
from ..core.sampling_segmenter import ShotBasedIQFTSegmenter
from ..datasets.base import Dataset
from ..datasets.synthetic_voc import SyntheticVOCDataset
from ..errors import ExperimentError
from ..imaging.noise import add_gaussian_noise, add_salt_pepper_noise
from ..metrics.iou import mean_iou
from ..metrics.report import format_table
from ..quantum.noise_models import NoiseModel
from .runner import DEFAULT_METHODS, MethodSpec

__all__ = [
    "NoiseRobustnessResult",
    "run_noise_robustness",
    "format_noise_robustness",
    "ShotConvergenceResult",
    "run_shot_convergence",
    "format_shot_convergence",
]


@dataclasses.dataclass
class NoiseRobustnessResult:
    """mIOU of every method at every noise level."""

    noise_kind: str
    levels: List[float]
    miou: Dict[str, List[float]]  # method -> one value per level


def run_noise_robustness(
    dataset: Optional[Dataset] = None,
    levels: Sequence[float] = (0.0, 0.05, 0.1, 0.2),
    noise_kind: str = "gaussian",
    methods: Sequence[MethodSpec] = DEFAULT_METHODS,
    num_images: int = 6,
    seed: int = 0,
) -> NoiseRobustnessResult:
    """Sweep input-noise strength and score every method at every level."""
    if noise_kind not in ("gaussian", "salt-pepper"):
        raise ExperimentError("noise_kind must be 'gaussian' or 'salt-pepper'")
    data = dataset or SyntheticVOCDataset(num_samples=num_images, seed=4242)
    num_images = min(num_images, len(data))
    samples = [data[i] for i in range(num_images)]

    miou: Dict[str, List[float]] = {spec.name: [] for spec in methods}
    for level in levels:
        per_method = {spec.name: [] for spec in methods}
        for index, sample in enumerate(samples):
            if level == 0.0:
                noisy = sample.image
            elif noise_kind == "gaussian":
                noisy = add_gaussian_noise(sample.image, sigma=level, seed=seed + index)
            else:
                noisy = add_salt_pepper_noise(sample.image, amount=level, seed=seed + index)
            for spec in methods:
                segmenter = spec.build()
                labels = segmenter.segment(noisy).labels
                binary = binarize_by_overlap(labels, sample.mask, sample.void)
                per_method[spec.name].append(
                    mean_iou(binary, sample.mask, void_mask=sample.void)
                )
        for name, values in per_method.items():
            miou[name].append(float(np.mean(values)))
    return NoiseRobustnessResult(noise_kind=noise_kind, levels=list(levels), miou=miou)


def format_noise_robustness(result: NoiseRobustnessResult) -> str:
    """Render the noise sweep as a methods × levels table."""
    header = ["Method"] + [f"{result.noise_kind}={level:g}" for level in result.levels]
    rows = [
        [method] + [f"{value:.4f}" for value in values]
        for method, values in result.miou.items()
    ]
    return format_table(
        title=f"Robustness — mean mIOU under {result.noise_kind} input noise",
        header=header,
        rows=rows,
    )


@dataclasses.dataclass
class ShotConvergenceResult:
    """Agreement with the exact labels and mIOU as a function of shot count."""

    shots: List[int]
    agreement: Dict[str, List[float]]  # scenario -> per-shot agreement
    miou: Dict[str, List[float]]  # scenario -> per-shot mIOU
    exact_miou: float


def run_shot_convergence(
    dataset: Optional[Dataset] = None,
    shots: Sequence[int] = (1, 4, 16, 64, 256),
    noise_model: Optional[NoiseModel] = None,
    sample_index: int = 0,
    seed: int = 0,
) -> ShotConvergenceResult:
    """Measure shot-count convergence of the hardware-emulating segmenter.

    Two scenarios are always evaluated: an ideal device and (when
    ``noise_model`` is given) a noisy device.
    """
    data = dataset or SyntheticVOCDataset(num_samples=max(sample_index + 1, 1), seed=31415)
    sample = data[sample_index]

    exact_segmenter = IQFTSegmenter()
    exact_labels = exact_segmenter.segment(sample.image).labels
    exact_binary = binarize_by_overlap(exact_labels, sample.mask, sample.void)
    exact_miou = mean_iou(exact_binary, sample.mask, void_mask=sample.void)

    scenarios: Dict[str, Optional[NoiseModel]] = {"ideal": None}
    if noise_model is not None and not noise_model.is_noiseless:
        scenarios["noisy"] = noise_model

    agreement: Dict[str, List[float]] = {name: [] for name in scenarios}
    miou: Dict[str, List[float]] = {name: [] for name in scenarios}
    for name, model in scenarios.items():
        for shot_count in shots:
            segmenter = ShotBasedIQFTSegmenter(
                shots=int(shot_count), noise_model=model, seed=seed
            )
            labels = segmenter.segment(sample.image).labels
            agreement[name].append(float(np.mean(labels == exact_labels)))
            binary = binarize_by_overlap(labels, sample.mask, sample.void)
            miou[name].append(mean_iou(binary, sample.mask, void_mask=sample.void))
    return ShotConvergenceResult(
        shots=[int(s) for s in shots],
        agreement=agreement,
        miou=miou,
        exact_miou=float(exact_miou),
    )


def format_shot_convergence(result: ShotConvergenceResult) -> str:
    """Render the shot sweep (agreement with exact labels and mIOU per scenario)."""
    header = ["Scenario", "Metric"] + [str(s) for s in result.shots]
    rows = []
    for name in result.agreement:
        rows.append(
            [name, "label agreement"] + [f"{v:.4f}" for v in result.agreement[name]]
        )
        rows.append([name, "mIOU"] + [f"{v:.4f}" for v in result.miou[name]])
    rows.append(["exact (∞ shots)", "mIOU"] + [f"{result.exact_miou:.4f}"] * len(result.shots))
    return format_table(
        title="Shot-count convergence of the hardware-emulating IQFT segmenter",
        header=header,
        rows=rows,
    )

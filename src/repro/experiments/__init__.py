"""Experiment harness: one module per table/figure of the paper's evaluation.

Each experiment module exposes a ``run_*`` function returning plain data
structures (dicts / dataclasses / :class:`~repro.metrics.report.ResultTable`)
plus a ``format_*`` helper that renders the result as the text table or series
the paper prints.  The benchmark suite under ``benchmarks/`` calls these
functions (timing them with pytest-benchmark) and prints the regenerated
rows, and ``EXPERIMENTS.md`` records the paper-vs-measured comparison.
"""

from .runner import ExperimentRunner, MethodSpec, DEFAULT_METHODS
from .table1 import run_table1, format_table1
from .table2 import run_table2, format_table2
from .table3 import run_table3, format_table3, Table3Result
from .figures_basis import run_figure1, run_figure2, run_figure3, format_figure3
from .figure4 import run_figure4, format_figure4
from .figure5 import run_figure5, format_figure5
from .figure6 import run_figure6, format_figure6
from .figure7 import run_figure7, format_figure7
from .figure8_9 import run_figure8, run_figure9, format_example_table
from .figure10 import run_figure10, format_figure10
from .robustness import (
    run_noise_robustness,
    format_noise_robustness,
    run_shot_convergence,
    format_shot_convergence,
)
from .theta_sensitivity import run_theta_sensitivity, format_theta_sensitivity

__all__ = [
    "ExperimentRunner",
    "MethodSpec",
    "DEFAULT_METHODS",
    "run_table1",
    "format_table1",
    "run_table2",
    "format_table2",
    "run_table3",
    "format_table3",
    "Table3Result",
    "run_figure1",
    "run_figure2",
    "run_figure3",
    "format_figure3",
    "run_figure4",
    "format_figure4",
    "run_figure5",
    "format_figure5",
    "run_figure6",
    "format_figure6",
    "run_figure7",
    "format_figure7",
    "run_figure8",
    "run_figure9",
    "format_example_table",
    "run_figure10",
    "format_figure10",
    "run_noise_robustness",
    "format_noise_robustness",
    "run_shot_convergence",
    "format_shot_convergence",
    "run_theta_sensitivity",
    "format_theta_sensitivity",
]

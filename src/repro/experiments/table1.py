"""Table I: angle parameter θ and the corresponding intensity threshold(s)."""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..core.thresholds import PAPER_TABLE1_THETAS, thresholds_for_theta
from ..metrics.report import format_table

__all__ = ["run_table1", "format_table1", "PAPER_TABLE1_EXPECTED"]

#: The threshold values printed in the paper's Table I, for EXPERIMENTS.md.
PAPER_TABLE1_EXPECTED: Dict[str, List[float]] = {
    "3π/4": [0.667],
    "π": [0.500],
    "5π/4": [0.400],
    "3π/2": [0.333],
    "7π/4": [0.285, 0.857],
    "2π": [0.25, 0.75],
}


def run_table1(thetas: Sequence[float] = PAPER_TABLE1_THETAS) -> Dict[float, List[float]]:
    """Compute the θ → thresholds mapping for the listed angles."""
    return {float(theta): thresholds_for_theta(theta) for theta in thetas}


def _theta_label(theta: float) -> str:
    """Render θ as a multiple of π (e.g. ``"7π/4"``)."""
    ratio = theta / np.pi
    for denom in (1, 2, 3, 4, 6, 8):
        numer = ratio * denom
        if abs(numer - round(numer)) < 1e-9:
            numer = int(round(numer))
            if denom == 1:
                return "π" if numer == 1 else f"{numer}π"
            return f"{numer}π/{denom}" if numer != 1 else f"π/{denom}"
    return f"{ratio:.4f}π"


def format_table1(results: Dict[float, List[float]]) -> str:
    """Render the computed mapping in the paper's Table-I layout."""
    rows = [
        [_theta_label(theta), ", ".join(f"{t:.3f}" for t in thresholds) or "(none)"]
        for theta, thresholds in results.items()
    ]
    return format_table(
        title="Table I — parameter θ and the corresponding threshold value(s)",
        header=["Parameter θ", "Threshold value I_th"],
        rows=rows,
    )

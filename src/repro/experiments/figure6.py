"""Figure 6: effect of θ on the number of segments on real(istic) images.

The paper segments three photos with θ1 = θ2 = θ3 ∈ {π/4, π/2, π} and the
"mixed" configuration (π/4, π/2, π), and reports how many segments each
setting produces: π/4 always collapses everything into one segment, π/2
produces a couple, π produces 4–6, and the mixed setting always yields exactly
two.  :func:`run_figure6` repeats that sweep on samples from the synthetic VOC
dataset.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..core.rgb_segmenter import IQFTSegmenter
from ..datasets.base import Dataset
from ..datasets.synthetic_voc import SyntheticVOCDataset
from ..metrics.report import format_table

__all__ = ["Figure6Result", "run_figure6", "format_figure6", "PAPER_FIGURE6_THETAS"]

ThetaTriple = Tuple[float, float, float]

#: The θ configurations swept in Figure 6 (per-channel triples).
PAPER_FIGURE6_THETAS: Tuple[ThetaTriple, ...] = (
    (np.pi / 4, np.pi / 4, np.pi / 4),
    (np.pi / 2, np.pi / 2, np.pi / 2),
    (np.pi, np.pi, np.pi),
    (np.pi / 4, np.pi / 2, np.pi),  # the "mixed" row
)


@dataclasses.dataclass
class Figure6Result:
    """Segment counts per (image, θ configuration)."""

    segment_counts: Dict[str, Dict[ThetaTriple, int]]
    theta_rows: Tuple[ThetaTriple, ...]


def run_figure6(
    dataset: Optional[Dataset] = None,
    num_images: int = 3,
    theta_rows: Sequence[ThetaTriple] = PAPER_FIGURE6_THETAS,
) -> Figure6Result:
    """Sweep the θ configurations over ``num_images`` samples."""
    data = dataset or SyntheticVOCDataset(num_samples=max(num_images, 3), seed=606)
    counts: Dict[str, Dict[ThetaTriple, int]] = {}
    for index in range(min(num_images, len(data))):
        sample = data[index]
        per_theta: Dict[ThetaTriple, int] = {}
        for thetas in theta_rows:
            segmenter = IQFTSegmenter(thetas=thetas)
            result = segmenter.segment(sample.image)
            per_theta[tuple(float(t) for t in thetas)] = result.num_segments
        counts[sample.name] = per_theta
    return Figure6Result(segment_counts=counts, theta_rows=tuple(
        tuple(float(t) for t in row) for row in theta_rows
    ))


def _theta_label(thetas: ThetaTriple) -> str:
    ratios = [t / np.pi for t in thetas]
    if all(abs(r - ratios[0]) < 1e-12 for r in ratios):
        return f"θ={ratios[0]:.2f}π"
    return "mixed(" + ", ".join(f"{r:.2f}π" for r in ratios) + ")"


def format_figure6(result: Figure6Result) -> str:
    """Render the per-image segment counts (images as rows, θ as columns)."""
    header = ["Image"] + [_theta_label(row) for row in result.theta_rows]
    rows = []
    for name, per_theta in result.segment_counts.items():
        rows.append([name] + [str(per_theta[row]) for row in result.theta_rows])
    return format_table(
        title="Figure 6 — effect of θ on the number of segments",
        header=header,
        rows=rows,
    )

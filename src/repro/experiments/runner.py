"""Generic dataset × methods sweep producing per-image scores.

:class:`ExperimentRunner` is the machinery behind Table III and the per-image
figures: it runs every configured method on every sample of a dataset, times
each segmentation, collapses multi-way outputs to foreground/background with
the same protocol for every method (majority overlap, see
:mod:`repro.core.labels`), scores them with mIOU, and collects everything in a
:class:`~repro.metrics.report.ResultTable`.

Images can be processed serially (default) or with any executor from
:mod:`repro.parallel.executor`; results are identical either way because every
method is deterministic given its seed.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..base import BaseSegmenter
from ..baselines.registry import get_segmenter
from ..core.labels import binarize_by_overlap
from ..datasets.base import Dataset, Sample
from ..errors import ExperimentError
from ..metrics.accuracy import dice_coefficient, pixel_accuracy
from ..metrics.iou import mean_iou
from ..metrics.report import MethodScore, ResultTable
from ..parallel.executor import BaseExecutor, SerialExecutor

__all__ = ["MethodSpec", "ExperimentRunner", "DEFAULT_METHODS"]


@dataclasses.dataclass
class MethodSpec:
    """A named segmentation method plus its constructor arguments.

    ``factory`` may be a registry name (string) or a zero-argument callable
    returning a fresh :class:`~repro.base.BaseSegmenter`; constructing a fresh
    instance per runner keeps methods stateless across sweeps.
    """

    name: str
    factory: object
    kwargs: Dict = dataclasses.field(default_factory=dict)

    def build(self) -> BaseSegmenter:
        """Instantiate the segmenter."""
        if callable(self.factory):
            segmenter = self.factory(**self.kwargs)
        else:
            segmenter = get_segmenter(str(self.factory), **self.kwargs)
        segmenter.name = self.name
        return segmenter


#: The four methods of Table III.  K-means uses k=2 for the binary
#: foreground/background task; the IQFT methods use θ = π as in the paper.
DEFAULT_METHODS: Tuple[MethodSpec, ...] = (
    MethodSpec(name="kmeans", factory="kmeans", kwargs={"n_clusters": 2, "n_init": 4, "seed": 0}),
    MethodSpec(name="otsu", factory="otsu"),
    MethodSpec(name="iqft-rgb", factory="iqft-rgb", kwargs={"thetas": float(np.pi)}),
    MethodSpec(name="iqft-gray", factory="iqft-gray", kwargs={"theta": float(np.pi)}),
)


def _score_sample(args) -> List[MethodScore]:
    """Score every method on one sample (module-level for picklability)."""
    sample, specs = args
    scores: List[MethodScore] = []
    for spec in specs:
        segmenter = spec.build()
        result = segmenter.segment(sample.image)
        if sample.mask is None:
            raise ExperimentError(f"sample {sample.name!r} has no ground truth to score against")
        void = sample.void
        binary = binarize_by_overlap(result.labels, sample.mask, void)
        scores.append(
            MethodScore(
                method=spec.name,
                sample=sample.name,
                miou=mean_iou(binary, sample.mask, void_mask=void),
                runtime_seconds=result.runtime_seconds,
                extras={
                    "pixel_accuracy": pixel_accuracy(binary, sample.mask, void_mask=void),
                    "dice": dice_coefficient(binary, sample.mask, void_mask=void),
                    "num_segments": float(result.num_segments),
                },
            )
        )
    return scores


class ExperimentRunner:
    """Sweep a set of methods over a dataset and aggregate per-image scores.

    Parameters
    ----------
    methods:
        The :class:`MethodSpec` list (defaults to the paper's four methods).
    executor:
        How to distribute the per-sample work; serial by default.
    """

    def __init__(
        self,
        methods: Sequence[MethodSpec] = DEFAULT_METHODS,
        executor: Optional[BaseExecutor] = None,
    ):
        if not methods:
            raise ExperimentError("need at least one method")
        self.methods = tuple(methods)
        self.executor = executor or SerialExecutor()

    def run(self, dataset: Dataset, limit: Optional[int] = None) -> ResultTable:
        """Run every method on every (or the first ``limit``) dataset samples."""
        if len(dataset) == 0:
            raise ExperimentError("dataset is empty")
        count = len(dataset) if limit is None else min(int(limit), len(dataset))
        samples: Iterable[Sample] = (dataset[i] for i in range(count))
        jobs = [(sample, self.methods) for sample in samples]
        table = ResultTable()
        for per_sample in self.executor.map(_score_sample, jobs):
            table.extend(per_sample)
        return table

    def run_single(self, sample: Sample) -> ResultTable:
        """Score every method on one sample (used by the per-image figures)."""
        table = ResultTable()
        table.extend(_score_sample((sample, self.methods)))
        return table

"""Batched segmentation engine (LUT fast path, tiled parallelism, batch API).

The engine subsystem turns the per-image segmenters of :mod:`repro.core` into
a throughput-oriented service layer:

* :class:`BatchSegmentationEngine` — picks the cheapest *exact* strategy per
  image (value/palette LUT for quantized input, tiled matrix path for large
  float input, direct path otherwise) and maps whole batches over an executor.
* The lookup-table calculus itself lives in :mod:`repro.core.lut` and is
  re-exported here for convenience.

``repro-segment batch`` is the CLI front end; ``SegmentationPipeline.run_many``
delegates to the engine, so existing batch callers transparently benefit.

This module is also the engine's **public surface toward the serving layer**:
everything serve-side code needs from the compute core — the engine itself,
the pipeline result type, label post-processing — is re-exported here, so
``repro.serve`` never has to reach into ``repro.core`` internals (a layering
rule CI enforces with ``tools/check_layering.py``).
"""

from ..core.labels import binarize_largest_background
from ..core.lut import (
    DEFAULT_NUM_LEVELS,
    clear_lut_cache,
    grayscale_label_lut,
    grayscale_probability_lut,
    lut_cache_info,
    lut_eligible,
    pack_rgb_codes,
    rgb_palette_label_lut,
    unpack_rgb_codes,
)
from ..core.pipeline import PipelineResult, SegmentationPipeline
from .delta import (
    DEFAULT_DELTA_TILE_SHAPE,
    DEFAULT_MAX_STREAMS,
    DeltaStats,
    DeltaStreamEngine,
    StreamState,
    StreamStateStore,
)
from .engine import (
    DEFAULT_AUTO_TILE_PIXELS,
    DEFAULT_STREAM_WINDOW,
    DEFAULT_TILE_SHAPE,
    BatchSegmentationEngine,
)

__all__ = [
    "BatchSegmentationEngine",
    "DeltaStreamEngine",
    "DeltaStats",
    "StreamState",
    "StreamStateStore",
    "DEFAULT_DELTA_TILE_SHAPE",
    "DEFAULT_MAX_STREAMS",
    "PipelineResult",
    "SegmentationPipeline",
    "binarize_largest_background",
    "DEFAULT_TILE_SHAPE",
    "DEFAULT_AUTO_TILE_PIXELS",
    "DEFAULT_STREAM_WINDOW",
    "DEFAULT_NUM_LEVELS",
    "grayscale_label_lut",
    "grayscale_probability_lut",
    "rgb_palette_label_lut",
    "lut_eligible",
    "lut_cache_info",
    "clear_lut_cache",
    "pack_rgb_codes",
    "unpack_rgb_codes",
]

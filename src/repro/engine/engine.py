"""The batched segmentation engine: LUT fast path + tiling + executor fan-out.

:class:`BatchSegmentationEngine` is the throughput-oriented front end of the
library.  For each image it picks the cheapest *exact* evaluation strategy:

1. **LUT fast path** — integer-valued input is labelled through the
   segmenter's ``labels_from_lut`` hook (a 256-entry value table for the
   grayscale method, a palette lookup for RGB; see :mod:`repro.core.lut`).
   The tables are built by the exact classifier, so labels are bit-identical
   to the matrix path.
2. **Tiled matrix path** — large float images are split into tiles
   (:func:`repro.parallel.tiling.tile_map`) and segmented cooperatively by the
   engine's executor; the per-pixel rule makes stitching loss-free.
3. **Direct matrix path** — everything else runs the segmenter unchanged.

On top of the per-image strategy the engine exposes ``map(images, gts)``,
which scatters a whole batch over the executor and returns one
:class:`~repro.core.pipeline.PipelineResult` per image using the pipeline's
standard evaluation protocol.  ``SegmentationPipeline.run_many`` delegates
here, so every existing caller of the batch API gets the fast paths for free.
"""

from __future__ import annotations

import functools
import inspect
import itertools
import time
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

from ..backend.base import ArrayBackend
from ..backend.registry import resolve_backend
from ..base import BaseSegmenter, SegmentationResult
from ..core.pipeline import PipelineResult, SegmentationPipeline
from ..errors import ParameterError
from ..parallel.executor import BaseExecutor, SerialExecutor
from ..parallel.tiling import tile_map

__all__ = [
    "BatchSegmentationEngine",
    "DEFAULT_TILE_SHAPE",
    "DEFAULT_AUTO_TILE_PIXELS",
    "DEFAULT_STREAM_WINDOW",
]

#: Tile shape used when the engine decides to tile on its own.
DEFAULT_TILE_SHAPE: Tuple[int, int] = (512, 512)

#: Images with at least this many pixels are tiled in ``"auto"`` mode (4 Mpx).
DEFAULT_AUTO_TILE_PIXELS = 4_194_304

#: In-flight window of :meth:`BatchSegmentationEngine.map_stream` — the
#: maximum number of images (and their results) materialized at any moment.
DEFAULT_STREAM_WINDOW = 32

_TILING_MODES = ("auto", "always", "never")

_FLOAT_COMPUTE_MODES = ("exact", "backend")

#: Sentinel distinguishing "companion iterator exhausted" from a None item.
_EXHAUSTED = object()


@functools.lru_cache(maxsize=None)
def _hook_accepts_backend(func) -> bool:
    # Cached on the underlying function object (stable per class), so the
    # signature walk happens once per segmenter type, not once per image.
    try:
        return "backend" in inspect.signature(func).parameters
    except (TypeError, ValueError):  # pragma: no cover - exotic callables
        return False


def _segment_tile(segmenter: BaseSegmenter, block: np.ndarray) -> np.ndarray:
    # Module-level so tiled work stays picklable for process executors.
    return segmenter.segment(block).labels


def _count_segments(labels: np.ndarray) -> int:
    # Distinct-label count via bincount when labels are small non-negative
    # ints (O(N), where np.unique would sort the whole image).
    flat = labels.ravel()
    if flat.size and int(flat.min()) >= 0 and int(flat.max()) < 65536:
        return int(np.count_nonzero(np.bincount(flat)))
    return int(np.unique(flat).size)


def _run_item(engine: "BatchSegmentationEngine", return_errors: bool, item):
    image, ground_truth, void_mask = item
    if not return_errors:
        return engine.run(image, ground_truth, void_mask)
    try:
        return engine.run(image, ground_truth, void_mask)
    except Exception as exc:  # reprolint: disable=RL004 returned to the map(return_errors) caller
        return exc


class BatchSegmentationEngine:
    """Batched, fast-path-aware segmentation over any :class:`BaseSegmenter`.

    Parameters
    ----------
    segmenter:
        The method to run.  Segmenters exposing a
        ``labels_from_lut(image, extras=None)`` hook (both IQFT segmenters
        do) get the exact LUT fast path; all others are executed unchanged.
        Tiling additionally requires ``segmenter.pointwise`` to be True —
        stitching is only exact for pure per-pixel rules.
    to_grayscale, target_shape:
        Preprocessing, forwarded to the internal
        :class:`~repro.core.pipeline.SegmentationPipeline`.
    use_lut:
        Enable the LUT fast path (disable to force the matrix path, e.g. for
        benchmarking).
    tiling:
        ``"auto"`` (default) tiles images with at least ``auto_tile_pixels``
        pixels, ``"always"`` tiles whenever the image spans more than one
        tile, ``"never"`` disables tiling.
    tile_shape:
        ``(H, W)`` of each tile when tiling happens.
    auto_tile_pixels:
        Pixel-count threshold for ``"auto"`` mode.
    executor:
        A :class:`~repro.parallel.executor.BaseExecutor` used both for tiles
        within an image and for images within :meth:`map`.  Defaults to the
        serial executor (deterministic, no processes).
    backend:
        The :class:`~repro.backend.base.ArrayBackend` running the engine's
        array kernels — a backend instance, a registered name (``"numpy"``,
        ``"torch"``, ``"cupy"``), or ``None`` for the process default (the
        ``REPRO_BACKEND`` environment variable, falling back to ``"numpy"``).
        Integer kernels (LUT gather, palette dedup) are bit-exact on every
        backend, so switching backends never changes labels.
    float_compute:
        ``"exact"`` (default) keeps the float classifier kernel on the
        bit-exact NumPy reference regardless of ``backend`` — accelerators
        then serve only the memory-bound integer fast paths.  ``"backend"``
        routes the float kernel through ``backend`` too, trading bit-exact
        reproducibility for device throughput within the backend's documented
        ``float_rtol``/``float_atol``.
    """

    def __init__(
        self,
        segmenter: BaseSegmenter,
        to_grayscale: bool = False,
        target_shape: Optional[Tuple[int, int]] = None,
        use_lut: bool = True,
        tiling: str = "auto",
        tile_shape: Tuple[int, int] = DEFAULT_TILE_SHAPE,
        auto_tile_pixels: int = DEFAULT_AUTO_TILE_PIXELS,
        executor: Optional[BaseExecutor] = None,
        backend: Optional[Union[str, ArrayBackend]] = None,
        float_compute: str = "exact",
    ):
        self.pipeline = SegmentationPipeline(
            segmenter, to_grayscale=to_grayscale, target_shape=target_shape
        )
        if tiling not in _TILING_MODES:
            raise ParameterError(f"tiling must be one of {_TILING_MODES}, got {tiling!r}")
        th, tw = int(tile_shape[0]), int(tile_shape[1])
        if th < 1 or tw < 1:
            raise ParameterError("tile_shape must be positive")
        if auto_tile_pixels < 1:
            raise ParameterError("auto_tile_pixels must be positive")
        if executor is not None and not isinstance(executor, BaseExecutor):
            raise ParameterError("executor must be a BaseExecutor instance")
        if float_compute not in _FLOAT_COMPUTE_MODES:
            raise ParameterError(
                f"float_compute must be one of {_FLOAT_COMPUTE_MODES}, got {float_compute!r}"
            )
        self.use_lut = bool(use_lut)
        self.tiling = tiling
        self.tile_shape = (th, tw)
        self.auto_tile_pixels = int(auto_tile_pixels)
        self.executor = executor if executor is not None else SerialExecutor()
        self.backend = resolve_backend(backend)
        self.float_compute = float_compute
        if float_compute == "backend":
            self._wire_float_backend(self.pipeline.segmenter, self.backend)

    @staticmethod
    def _wire_float_backend(segmenter: BaseSegmenter, backend: ArrayBackend) -> None:
        # Explicit opt-in only: the classifier refuses ambient backend
        # selection, so "backend" float mode is wired here, at the one place
        # the trade-off (throughput vs bit-exactness) is a named parameter.
        classifier = getattr(segmenter, "_classifier", None)
        use = getattr(classifier, "use_backend", None)
        if use is None:
            raise ParameterError(
                f"float_compute='backend' requires a segmenter with a backend-aware "
                f"classifier; {type(segmenter).__name__} has none"
            )
        use(backend)

    @classmethod
    def from_pipeline(
        cls,
        pipeline: SegmentationPipeline,
        use_lut: bool = True,
        tiling: str = "auto",
        tile_shape: Tuple[int, int] = DEFAULT_TILE_SHAPE,
        auto_tile_pixels: int = DEFAULT_AUTO_TILE_PIXELS,
        executor: Optional[BaseExecutor] = None,
        backend: Optional[Union[str, ArrayBackend]] = None,
        float_compute: str = "exact",
    ) -> "BatchSegmentationEngine":
        """Wrap an existing pipeline (shared preprocessing and scoring)."""
        if not isinstance(pipeline, SegmentationPipeline):
            raise ParameterError("pipeline must be a SegmentationPipeline instance")
        engine = cls(
            pipeline.segmenter,
            use_lut=use_lut,
            tiling=tiling,
            tile_shape=tile_shape,
            auto_tile_pixels=auto_tile_pixels,
            executor=executor,
            backend=backend,
            float_compute=float_compute,
        )
        engine.pipeline = pipeline
        return engine

    # ------------------------------------------------------------------ #
    @property
    def segmenter(self) -> BaseSegmenter:
        """The wrapped segmentation method."""
        return self.pipeline.segmenter

    @property
    def backend_invariant(self) -> bool:
        """True when every result this engine produces is backend-independent.

        Integer fast paths are bit-exact on every backend by contract, so the
        engine's outputs depend on the backend only when the *float* kernel
        was explicitly routed there (``float_compute="backend"``) on a backend
        that does not guarantee bit-exact floats.  Cache keying relies on
        this: invariant engines share warm cache entries across backends (and
        across a mixed-backend fleet), so switching backends never cold-starts
        the cache.
        """
        return self.float_compute == "exact" or self.backend.bit_exact_float

    def describe(self) -> Dict[str, Any]:
        """A JSON-friendly description of the engine configuration."""
        info = self.pipeline.describe()
        info.update(
            {
                "use_lut": self.use_lut,
                "tiling": self.tiling,
                "tile_shape": list(self.tile_shape),
                "auto_tile_pixels": self.auto_tile_pixels,
                "executor": self.executor.name,
                "backend": self.backend.name,
                "float_compute": self.float_compute,
            }
        )
        return info

    # ------------------------------------------------------------------ #
    def _should_tile(self, prepared: np.ndarray) -> bool:
        if self.tiling == "never":
            return False
        # Stitching tiles is only exact for pure per-pixel rules; methods with
        # global or neighbourhood state (kmeans, otsu, region growing, ...)
        # must always see the whole image.
        if not getattr(self.pipeline.segmenter, "pointwise", False):
            return False
        height, width = prepared.shape[:2]
        spans_tiles = height > self.tile_shape[0] or width > self.tile_shape[1]
        if not spans_tiles:
            return False
        if self.tiling == "always":
            return True
        # Backends that keep whole images resident (device memory, fused
        # kernels) publish a cost hint raising the auto-tiling bar: splitting
        # work the device would swallow in one launch only adds overhead.
        scale = float(self.backend.cost_hints().get("tile_pixels_scale", 1.0))
        return height * width >= self.auto_tile_pixels * max(scale, 1.0)

    def _label_prepared(
        self, prepared: np.ndarray
    ) -> Tuple[np.ndarray, Dict[str, Any], str]:
        """Run the cheapest exact strategy on an *already-prepared* array.

        Returns ``(labels, extras, fast_path)``.  This is the strategy core
        of :meth:`segment` — LUT hook, tiled matrix path, direct path —
        without preprocessing or result packaging, exposed separately so the
        delta path (:mod:`repro.engine.delta`) can re-segment individual
        dirty tiles of a frame whose preprocessing already ran on the whole
        image (``target_shape`` resizing is not tile-local, so preparing a
        tile again would change the result).
        """
        segmenter = self.pipeline.segmenter
        labels: Optional[np.ndarray] = None
        extras: Dict[str, Any] = {}
        fast_path = "direct"

        if self.use_lut:
            hook = getattr(segmenter, "labels_from_lut", None)
            if hook is not None:
                # The hook fills a caller-owned extras dict so concurrent
                # map() workers sharing one segmenter never race on its
                # internal _last_extras state.  Backend-aware hooks get the
                # engine's backend (integer kernels, bit-exact everywhere);
                # older hooks without the keyword still work unchanged.
                extras_out: Dict[str, Any] = {}
                if _hook_accepts_backend(getattr(hook, "__func__", hook)):
                    labels = hook(prepared, extras=extras_out, backend=self.backend)
                else:
                    labels = hook(prepared, extras=extras_out)
                if labels is not None:
                    extras = extras_out
                    fast_path = str(extras.get("fast_path", "lut"))

        if labels is None and self._should_tile(prepared):
            labels = tile_map(
                functools.partial(_segment_tile, segmenter),
                prepared,
                tile_shape=self.tile_shape,
                executor=self.executor,
            )
            extras = {"tile_shape": self.tile_shape}
            fast_path = "tiled"

        if labels is None:
            inner = segmenter.segment(prepared)
            labels = inner.labels
            extras = dict(inner.extras)

        labels = np.asarray(labels).astype(np.int64, copy=False)
        return labels, extras, fast_path

    def segment(self, image: np.ndarray) -> SegmentationResult:
        """Segment one image through the cheapest exact strategy.

        The returned :class:`~repro.base.SegmentationResult` carries
        ``extras["fast_path"]`` (``"lut"``, ``"palette-lut"``, ``"tiled"`` or
        ``"direct"``) so callers and reports can audit which path ran.
        """
        prepare_start = time.perf_counter()
        prepared = self.pipeline._prepare(np.asarray(image))
        prepare_seconds = time.perf_counter() - prepare_start
        start = time.perf_counter()
        labels, extras, fast_path = self._label_prepared(prepared)
        elapsed = time.perf_counter() - start
        extras["fast_path"] = fast_path
        extras["backend"] = self.backend.name
        # Per-stage timing for trace spans: runtime_seconds stays label time
        # only (its historical meaning), prepare cost is reported separately.
        extras["prepare_seconds"] = prepare_seconds
        return SegmentationResult(
            labels=labels,
            num_segments=_count_segments(labels),
            runtime_seconds=elapsed,
            method=self.pipeline.segmenter.name,
            extras=extras,
        )

    def run(
        self,
        image: np.ndarray,
        ground_truth: Optional[np.ndarray] = None,
        void_mask: Optional[np.ndarray] = None,
    ) -> PipelineResult:
        """Fast-path :meth:`segment` plus the pipeline's evaluation protocol."""
        result = self.segment(image)
        return self.pipeline.score(result, ground_truth, void_mask)

    def map(
        self,
        images,
        ground_truths=None,
        void_masks=None,
        return_errors: bool = False,
    ) -> List[PipelineResult]:
        """Run the engine over a batch, scattering images across the executor.

        Results come back in input order (one
        :class:`~repro.core.pipeline.PipelineResult` per image), exactly as
        the old serial ``SegmentationPipeline.run_many`` loop produced them.

        With ``return_errors`` a failing image does not abort the batch:
        its slot holds the raised exception instance instead of a result
        (callers filter with ``isinstance(item, Exception)``).  The default
        keeps the fail-fast semantics of the serial loop.
        """
        images = list(images)
        gts = list(ground_truths) if ground_truths is not None else [None] * len(images)
        voids = list(void_masks) if void_masks is not None else [None] * len(images)
        if not (len(images) == len(gts) == len(voids)):
            raise ParameterError("images, ground_truths and void_masks lengths differ")
        if not images:
            return []
        items = list(zip(images, gts, voids))
        return self.executor.map(
            functools.partial(_run_item, self, bool(return_errors)), items
        )

    def map_stream(
        self,
        images: Iterable[np.ndarray],
        ground_truths: Optional[Iterable[np.ndarray]] = None,
        void_masks: Optional[Iterable[np.ndarray]] = None,
        window: int = DEFAULT_STREAM_WINDOW,
        return_errors: bool = False,
        stream_id: Optional[str] = None,
        delta_tile_shape: Optional[Tuple[int, int]] = None,
    ) -> Iterator[PipelineResult]:
        """Stream :meth:`map` results with a bounded in-flight window.

        Unlike :meth:`map`, which materializes the whole input list, this
        generator pulls at most ``window`` images from the (possibly lazy)
        iterables at a time, scatters that chunk over the executor, and yields
        the results in input order before pulling the next chunk — so a
        dataset far larger than memory flows through holding only
        ``O(window)`` images and results at any moment.  ``ground_truths`` /
        ``void_masks`` may be lazy iterables too; when supplied they must
        yield exactly one item per image (a shorter or longer companion
        stream raises :class:`~repro.errors.ParameterError` at the point the
        mismatch is observed).  ``return_errors`` behaves as in :meth:`map`.

        With a ``stream_id`` the images are treated as a *temporal* stream:
        consecutive frames flow through the dirty-tile delta path
        (:class:`~repro.engine.delta.DeltaStreamEngine`), so only tiles that
        changed since the previous frame are re-segmented — bit-identical to
        the full recompute, but far cheaper on slowly-changing streams.
        Frames are processed strictly in input order (frame N+1 diffs
        against frame N's committed state), and a failing frame under
        ``return_errors`` yields its exception without poisoning the cached
        ancestor — the next good frame diffs against the last good one.
        ``delta_tile_shape`` overrides the delta grid (defaults to
        :data:`~repro.engine.delta.DEFAULT_DELTA_TILE_SHAPE`).
        """
        if int(window) < 1:
            raise ParameterError("window must be >= 1")
        window = int(window)

        def _triples() -> Iterator[Tuple]:
            gt_iter = iter(ground_truths) if ground_truths is not None else None
            void_iter = iter(void_masks) if void_masks is not None else None
            for image in images:
                gt = void = None
                if gt_iter is not None:
                    gt = next(gt_iter, _EXHAUSTED)
                    if gt is _EXHAUSTED:
                        raise ParameterError("ground_truths ended before images")
                if void_iter is not None:
                    void = next(void_iter, _EXHAUSTED)
                    if void is _EXHAUSTED:
                        raise ParameterError("void_masks ended before images")
                yield (image, gt, void)
            if gt_iter is not None and next(gt_iter, _EXHAUSTED) is not _EXHAUSTED:
                raise ParameterError("ground_truths is longer than images")
            if void_iter is not None and next(void_iter, _EXHAUSTED) is not _EXHAUSTED:
                raise ParameterError("void_masks is longer than images")

        if stream_id is not None:
            from .delta import DEFAULT_DELTA_TILE_SHAPE, DeltaStreamEngine

            delta = DeltaStreamEngine(
                self,
                tile_shape=(
                    delta_tile_shape
                    if delta_tile_shape is not None
                    else DEFAULT_DELTA_TILE_SHAPE
                ),
            )
            # Temporal streams are inherently sequential — frame N+1 diffs
            # against frame N — so the executor fan-out is skipped; the delta
            # reuse is where the speedup comes from, not parallelism.
            for image, ground_truth, void_mask in _triples():
                try:
                    result = delta.segment(image, stream_id)
                    scored = self.pipeline.score(result, ground_truth, void_mask)
                except Exception as exc:  # reprolint: disable=RL004 yielded to the map_stream(return_errors) caller
                    if not return_errors:
                        raise
                    scored = exc
                yield scored
            return

        run = functools.partial(_run_item, self, bool(return_errors))
        triples = _triples()
        while True:
            chunk = list(itertools.islice(triples, window))
            if not chunk:
                return
            results = self.executor.map(run, chunk)
            del chunk  # release the images before yielding (bounded window)
            yield from results

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BatchSegmentationEngine(segmenter={self.segmenter.name!r}, "
            f"use_lut={self.use_lut}, tiling={self.tiling!r}, "
            f"executor={self.executor.name!r}, backend={self.backend.name!r})"
        )

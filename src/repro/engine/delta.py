"""Dirty-tile incremental segmentation for temporal streams.

Frame N+1 of a video, satellite-revisit or sensor stream usually differs
from frame N only in a small region.  Because the IQFT rule is strictly
per-pixel — the same property that makes :func:`repro.parallel.tiling.tile_map`
exact — a tile whose bytes did not change segments to exactly the same
labels, so re-running the segmenter on unchanged tiles is pure waste.

:class:`DeltaStreamEngine` exploits that: each *prepared* frame is cut on a
fixed tile grid, every tile is content-digested
(:func:`repro.parallel.tiling.tile_digest`), the digests are compared
against the cached ancestor frame of the same stream, and only *dirty*
tiles are re-segmented through the wrapped engine's normal strategies
(LUT / palette-LUT / tiled / direct, via
``BatchSegmentationEngine._label_prepared``).  Fresh tiles are stitched
into a copy of the ancestor's label map — bit-identical to a full
recompute, a property the Hypothesis suite asserts over grayscale and RGB
frames on every available backend.

Preprocessing runs on the **whole frame before tiling** (``target_shape``
resizing is not tile-local), so the digests address prepared content — the
same content the labels are a pure function of.

Stream state lives in a bounded thread-safe LRU keyed by a caller-chosen
stream ID (the serve stack forwards ``X-Repro-Stream-Id`` into it).  An
optional per-tile cache hook additionally lets dirty tiles hit tiles
computed by other streams or other fleet workers — the serve layer adapts
its tiered result cache into this hook (see ``repro.serve._cache`` for the
on-disk key format).

Failure isolation: stream state is committed only after *every* dirty tile
of a frame segmented successfully, so a corrupt mid-stream frame (bad
shape, bad dtype, values that make the segmenter raise) never poisons the
cached ancestor — the next good frame diffs against the last good one.
Out-of-order arrival is likewise safe: a frame diffs against whatever
ancestor is committed, and the stitched result is bit-identical to a full
recompute regardless of which ancestor that was.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..base import SegmentationResult
from ..errors import ParameterError
from ..parallel.tiling import Tile, assemble_tiles, grid_digests
from .engine import BatchSegmentationEngine, _count_segments

__all__ = [
    "DEFAULT_DELTA_TILE_SHAPE",
    "DEFAULT_MAX_STREAMS",
    "DeltaStats",
    "StreamState",
    "StreamStateStore",
    "DeltaStreamEngine",
]

#: Delta grid tile shape.  Much finer than the engine's compute tiles
#: (512×512): delta tiles bound the *blast radius* of a localized change,
#: and digesting is cheap relative to segmenting.
DEFAULT_DELTA_TILE_SHAPE: Tuple[int, int] = (64, 64)

#: Streams tracked per store before the least-recently-updated is dropped.
DEFAULT_MAX_STREAMS = 256


@dataclass(frozen=True)
class DeltaStats:
    """Per-frame accounting of the dirty-tile comparison."""

    tiles_total: int
    tiles_reused: int
    tiles_recomputed: int
    had_ancestor: bool

    @property
    def reuse_ratio(self) -> float:
        """Reused tiles over all tiles (0.0 for an empty grid)."""
        return self.tiles_reused / self.tiles_total if self.tiles_total else 0.0

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly form, merged into result extras and serve metrics."""
        return {
            "tiles_total": self.tiles_total,
            "tiles_reused": self.tiles_reused,
            "tiles_recomputed": self.tiles_recomputed,
            "reuse_ratio": self.reuse_ratio,
            "had_ancestor": self.had_ancestor,
        }


@dataclass
class StreamState:
    """The committed ancestor of one stream: digests + stitched label map.

    ``digests`` are positional (row-major grid order), so comparing frame
    N+1 against the ancestor is a tuple walk; ``labels`` is the full stitched
    ``int64`` label map clean tiles are copied out of.
    """

    frame_shape: Tuple[int, ...]
    frame_dtype: str
    tile_shape: Tuple[int, int]
    digests: Tuple[str, ...]
    labels: np.ndarray


class StreamStateStore:
    """Bounded, thread-safe LRU of per-stream ancestors.

    The store holds one full label map per stream, so the bound is a memory
    cap, not a correctness knob: a dropped stream simply pays one full
    recompute on its next frame.
    """

    def __init__(self, max_streams: int = DEFAULT_MAX_STREAMS):
        if int(max_streams) < 1:
            raise ParameterError("max_streams must be >= 1")
        self.max_streams = int(max_streams)
        self._states: "OrderedDict[str, StreamState]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, stream_id: str) -> Optional[StreamState]:
        """The committed ancestor for ``stream_id``, or ``None``."""
        with self._lock:
            state = self._states.get(stream_id)
            if state is not None:
                self._states.move_to_end(stream_id)
            return state

    def put(self, stream_id: str, state: StreamState) -> None:
        """Commit a new ancestor, evicting the LRU stream on overflow."""
        with self._lock:
            self._states[stream_id] = state
            self._states.move_to_end(stream_id)
            while len(self._states) > self.max_streams:
                self._states.popitem(last=False)

    def forget(self, stream_id: str) -> bool:
        """Drop one stream's ancestor; True if it existed."""
        with self._lock:
            return self._states.pop(stream_id, None) is not None

    def clear(self) -> None:
        """Drop every stream."""
        with self._lock:
            self._states.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._states)

    def __contains__(self, stream_id: str) -> bool:
        with self._lock:
            return stream_id in self._states


class DeltaStreamEngine:
    """Dirty-tile incremental segmentation over a :class:`BatchSegmentationEngine`.

    Parameters
    ----------
    engine:
        The wrapped engine.  Its preprocessing, LUT/tiling strategies and
        backend are used unchanged for the tiles that do need recomputing.
    tile_shape:
        ``(H, W)`` of the fixed delta grid.
    max_streams:
        Capacity of the internal :class:`StreamStateStore` (ignored when
        ``store`` is passed).
    store:
        An explicit :class:`StreamStateStore`, e.g. one shared across
        engines in tests.
    tile_cache:
        Optional cross-stream per-tile cache hook: an object with
        ``get(digest) -> Optional[labels]`` and ``put(digest, labels)``.
        The serve layer adapts its tiered result cache into this protocol
        so one worker's tiles become another worker's hits.

    Delta reuse requires a *pointwise* segmenter (the same gate whole-image
    tiling uses — stitching is only exact for pure per-pixel rules).  For
    non-pointwise segmenters :meth:`segment` transparently degrades to the
    wrapped engine's full path and reports zero reuse.
    """

    def __init__(
        self,
        engine: BatchSegmentationEngine,
        tile_shape: Tuple[int, int] = DEFAULT_DELTA_TILE_SHAPE,
        max_streams: int = DEFAULT_MAX_STREAMS,
        store: Optional[StreamStateStore] = None,
        tile_cache: Optional[Any] = None,
    ):
        if not isinstance(engine, BatchSegmentationEngine):
            raise ParameterError("engine must be a BatchSegmentationEngine instance")
        th, tw = int(tile_shape[0]), int(tile_shape[1])
        if th < 1 or tw < 1:
            raise ParameterError("tile_shape must be positive")
        if tile_cache is not None and not (
            callable(getattr(tile_cache, "get", None))
            and callable(getattr(tile_cache, "put", None))
        ):
            raise ParameterError("tile_cache must provide get(digest) and put(digest, labels)")
        self.engine = engine
        self.tile_shape = (th, tw)
        self.store = store if store is not None else StreamStateStore(max_streams)
        self.tile_cache = tile_cache

    @property
    def supports_delta(self) -> bool:
        """True when tile-local recompute is exact for the wrapped segmenter."""
        return bool(getattr(self.engine.pipeline.segmenter, "pointwise", False))

    def describe(self) -> Dict[str, Any]:
        """JSON-friendly configuration summary."""
        return {
            "tile_shape": list(self.tile_shape),
            "max_streams": self.store.max_streams,
            "streams": len(self.store),
            "supports_delta": self.supports_delta,
            "tile_cache": self.tile_cache is not None,
        }

    def forget(self, stream_id: str) -> bool:
        """Drop one stream's committed ancestor."""
        return self.store.forget(str(stream_id))

    # ------------------------------------------------------------------ #
    def segment(self, image: np.ndarray, stream_id: str) -> SegmentationResult:
        """Segment one frame of ``stream_id`` through the dirty-tile path.

        The returned result is **bit-identical** to ``engine.segment(image)``
        in its ``labels`` and ``num_segments``; ``extras["delta"]`` carries
        the :class:`DeltaStats` accounting and ``extras["fast_path"]`` is
        ``"delta"`` whenever at least one tile was reused.
        """
        if not self.supports_delta:
            result = self.engine.segment(image)
            result.extras["delta"] = DeltaStats(0, 0, 0, False).as_dict()
            return result

        start = time.perf_counter()
        prepared = self.engine.pipeline._prepare(np.asarray(image))
        tiles, digests = grid_digests(prepared, self.tile_shape)
        stream_id = str(stream_id)
        state = self.store.get(stream_id)
        compatible = (
            state is not None
            and state.frame_shape == prepared.shape
            and state.frame_dtype == str(prepared.dtype)
            and state.tile_shape == self.tile_shape
            and len(state.digests) == len(digests)
        )

        reused = recomputed = 0
        out_tiles = []
        for index, (tile, digest) in enumerate(zip(tiles, digests)):
            height, width = tile.data.shape[:2]
            if compatible and state.digests[index] == digest:
                block = state.labels[
                    tile.row : tile.row + height, tile.col : tile.col + width
                ]
                out_tiles.append(Tile(data=block, row=tile.row, col=tile.col))
                reused += 1
                continue
            cached = self.tile_cache.get(digest) if self.tile_cache is not None else None
            if cached is not None:
                block = np.asarray(cached).astype(np.int64, copy=False)
                out_tiles.append(Tile(data=block, row=tile.row, col=tile.col))
                reused += 1
                continue
            labels_tile, _extras, _fast_path = self.engine._label_prepared(tile.data)
            if self.tile_cache is not None:
                self.tile_cache.put(digest, labels_tile)
            out_tiles.append(Tile(data=labels_tile, row=tile.row, col=tile.col))
            recomputed += 1

        labels = assemble_tiles(out_tiles, prepared.shape[:2], dtype=np.int64)
        # Commit only now: every tile of this frame succeeded, so a raise
        # anywhere above leaves the previous ancestor untouched.
        self.store.put(
            stream_id,
            StreamState(
                frame_shape=prepared.shape,
                frame_dtype=str(prepared.dtype),
                tile_shape=self.tile_shape,
                digests=digests,
                labels=labels,
            ),
        )

        stats = DeltaStats(
            tiles_total=len(tiles),
            tiles_reused=reused,
            tiles_recomputed=recomputed,
            had_ancestor=bool(compatible),
        )
        extras: Dict[str, Any] = {
            "fast_path": "delta" if reused else "delta-cold",
            "backend": self.engine.backend.name,
            "delta": stats.as_dict(),
            "tile_shape": self.tile_shape,
            "stream_id": stream_id,
        }
        return SegmentationResult(
            labels=labels,
            num_segments=_count_segments(labels),
            runtime_seconds=time.perf_counter() - start,
            method=self.engine.pipeline.segmenter.name,
            extras=extras,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DeltaStreamEngine(engine={self.engine!r}, "
            f"tile_shape={self.tile_shape}, streams={len(self.store)})"
        )

"""HTTP serving quickstart: the segmenter behind a network endpoint.

Run with ``PYTHONPATH=src python examples/http_serve_quickstart.py``.

The script walks through the HTTP front end:

1. start an :class:`~repro.serve.HttpSegmentationServer` over an
   :class:`~repro.serve.AsyncSegmentationService` on a background thread
   (exactly what ``repro-segment serve --http 127.0.0.1:8080`` does);
2. segment images through the blocking :class:`~repro.serve.SegmentClient`
   — npy bodies both ways, bit-exact results, cache hits on repeats;
3. trip the per-client quota and a zero deadline to see the error mapping
   (429 :class:`~repro.errors.QuotaExceededError`,
   504 :class:`~repro.errors.DeadlineExceededError`) surface client-side
   as the same exceptions the in-process API raises;
4. read ``/v1/metrics`` and drain the server gracefully.
"""

import asyncio
import threading

import numpy as np

from repro import BatchSegmentationEngine, IQFTSegmenter
from repro.errors import DeadlineExceededError, QuotaExceededError
from repro.serve import AsyncSegmentationService, HttpSegmentationServer, SegmentClient


def make_images(count, side=48, seed=7):
    rng = np.random.default_rng(seed)
    images = []
    for _ in range(count):
        palette = (rng.random((64, 3)) * 255).astype(np.uint8)
        images.append(palette[rng.integers(0, 64, size=(side, side))])
    return images


class ServerThread:
    """The server on its own event loop — the shape a deployment has."""

    def __init__(self):
        self.port = None
        self._started = threading.Event()
        self._loop = None
        self._stop = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        async def main():
            engine = BatchSegmentationEngine(IQFTSegmenter(thetas=np.pi))
            service = AsyncSegmentationService(
                engine, max_wait_seconds=0.002, client_rate=5.0, client_burst=10
            )
            async with service:
                server = HttpSegmentationServer(service)
                await server.start()
                self.port = server.port
                self._loop = asyncio.get_running_loop()
                self._stop = asyncio.Event()
                self._started.set()
                await self._stop.wait()
                print("  draining in-flight requests before the sockets close...")
                await server.aclose(drain=True, close_service=False)

        asyncio.run(main())

    def start(self):
        self._thread.start()
        assert self._started.wait(30)
        return self

    def stop(self):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(30)


def main():
    server = ServerThread().start()
    images = make_images(6)

    print(f"=== serving on http://127.0.0.1:{server.port} ===")
    with SegmentClient("127.0.0.1", server.port) as client:
        print("health:", client.health())

        print("=== segment over the wire ===")
        for index, image in enumerate(images):
            result = client.segment(image, priority="normal", client_id="quickstart")
            if index < 3:
                print(
                    f"  image {index}: {result.num_segments} segments "
                    f"via {result.fast_path} (cache_hit={result.cache_hit})"
                )
        repeat = client.segment(images[0], client_id="quickstart")
        print(f"  repeat of image 0: cache_hit={repeat.cache_hit}")

        print("=== error mapping ===")
        try:
            for _ in range(15):  # burst of 10 at 5 req/s: the quota trips
                client.segment(images[0], client_id="greedy-tenant")
        except QuotaExceededError as exc:
            print(f"  429 over the wire -> {type(exc).__name__}: {exc}")
        try:
            client.segment(images[1], deadline_ms=0)
        except DeadlineExceededError as exc:
            print(f"  504 over the wire -> {type(exc).__name__}: {exc}")

        metrics = client.metrics()
        print("=== /v1/metrics ===")
        print(f"  completed: {metrics['completed']}")
        print(f"  quota rejections: {metrics['quota_rejections']}")
        print(f"  shed: {metrics['shed']}")
        print(f"  HTTP responses by status: {metrics['http']['responses']}")

    print("=== graceful shutdown ===")
    server.stop()
    print("  done")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Multiple thresholding with a single parameter (the Figure-4 scenario).

Task: in a scene containing balls of many brightnesses, isolate *only* the
red, green and lemon balls — objects whose intensity sits between darker and
brighter distractors.  A single threshold (Otsu, or any one cut) cannot carve
out a middle band; the IQFT grayscale rule with θ = 4π realizes the four
thresholds {1/8, 3/8, 5/8, 7/8} of the paper's equation (16) simultaneously,
so the middle band falls out of one parameter choice.

The script prints the mIOU of Otsu, K-means and the IQFT method against the
target-ball mask, shows which thresholds each effective θ implies, and writes
the segmentation masks as images.

Run with::

    python examples/multi_threshold_color_balls.py [output_dir]
"""

from __future__ import annotations

import os
import sys

import numpy as np

from repro import IQFTGrayscaleSegmenter, KMeansSegmenter, OtsuSegmenter, mean_iou
from repro.core import binarize_by_overlap
from repro.core import thresholds_for_theta
from repro.datasets import make_balls_image
from repro.imaging import rgb_to_gray, write_png
from repro.imaging import as_uint8_image
from repro.viz import colorize_labels


def main(output_dir: str) -> None:
    os.makedirs(output_dir, exist_ok=True)
    image, target = make_balls_image()
    gray = rgb_to_gray(image)
    target = target.astype(np.int64)
    write_png(os.path.join(output_dir, "balls_input.png"), as_uint8_image(image))

    print("thresholds realized by different θ (equation (15)/(16)):")
    for theta in (np.pi, 2 * np.pi, 4 * np.pi):
        cuts = ", ".join(f"{t:.3f}" for t in thresholds_for_theta(theta))
        print(f"  θ = {theta / np.pi:.0f}π  ->  {cuts}")
    print()

    methods = {
        "otsu": OtsuSegmenter(),
        "kmeans": KMeansSegmenter(n_clusters=2, n_init=4, seed=0),
        "iqft-theta-4pi": IQFTGrayscaleSegmenter(theta=4 * np.pi, multiband=True),
    }
    print(f"{'method':<16} {'mIOU vs target balls':>22}")
    for name, segmenter in methods.items():
        labels = segmenter.segment(gray).labels
        binary = binarize_by_overlap(labels, target)
        score = mean_iou(binary, target)
        print(f"{name:<16} {score:>22.4f}")
        write_png(
            os.path.join(output_dir, f"balls_{name}.png"),
            as_uint8_image(colorize_labels(labels)),
        )
    print(f"\nsegmentations written to {output_dir}/")
    print("note: only the multi-threshold IQFT setting isolates the mid-intensity balls.")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else os.path.join(os.path.dirname(__file__), "output"))

#!/usr/bin/env python
"""Serving quickstart: a streaming segmentation service with a result cache.

The script starts two :class:`repro.serve.SegmentationService` instances (one
per method — a service wraps exactly one engine), routes a mixed stream of
grayscale and RGB requests to the right one, and prints per-request outcomes
plus the service metrics: throughput, latency percentiles, micro-batch shapes
and cache hit rate.  Requests repeat, so the content-addressed cache answers
the second half of the traffic without recomputation.

Run it with::

    python examples/serve_quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import BatchSegmentationEngine, IQFTGrayscaleSegmenter, IQFTSegmenter
from repro.serve import SegmentationService


def make_traffic(rng, waves=2):
    """Mixed request waves: RGB and grayscale images, repeated across waves.

    Wave 1 is all cold traffic; every later wave repeats the same images, so
    it is answered straight from the content-addressed cache.
    """
    rgb = [(rng.random((64, 64, 3)) * 255).astype(np.uint8) for _ in range(4)]
    gray = [(rng.random((64, 64)) * 255).astype(np.uint8) for _ in range(4)]
    return [list(rgb) + list(gray) for _ in range(waves)]


def main() -> None:
    rng = np.random.default_rng(7)

    # 1. One service per method.  The engine picks the exact LUT fast paths;
    #    the service adds micro-batching, the bounded queue and the cache.
    rgb_service = SegmentationService(
        BatchSegmentationEngine(IQFTSegmenter(thetas=np.pi)),
        max_batch_size=8,
        max_wait_seconds=0.005,
    )
    gray_service = SegmentationService(
        BatchSegmentationEngine(IQFTGrayscaleSegmenter(theta=2 * np.pi)),
        max_batch_size=8,
        max_wait_seconds=0.005,
    )

    # 2. Submit wave by wave.  Within a wave the futures come back
    #    immediately and the micro-batcher coalesces what arrives together;
    #    across waves the content-addressed cache takes over.
    with rgb_service, gray_service:
        print(f"{'request':<10} {'kind':<6} {'fast path':<14} {'segments':>9} {'cached':>7}")
        counter = 0
        for wave in make_traffic(rng):
            futures = []
            for image in wave:
                service = rgb_service if image.ndim == 3 else gray_service
                futures.append(service.submit(image))
            # 3. Gather each wave in submission order.
            for future in futures:
                seg = future.result().segmentation
                kind = "rgb" if seg.extras.get("palette_size") else "gray"
                print(
                    f"{counter:<10} {kind:<6} {seg.extras['fast_path']:<14} "
                    f"{seg.num_segments:>9} {str(seg.extras['cache_hit']):>7}"
                )
                counter += 1

        # 4. Service metrics: the cache served every repeated request.
        for name, service in (("rgb", rgb_service), ("gray", gray_service)):
            metrics = service.metrics()
            cache = metrics["cache"]
            latency = metrics["latency_seconds"]
            print(
                f"\n[{name}] {metrics['completed']} requests, "
                f"{metrics['throughput_rps']:.0f} req/s, "
                f"cache hit rate {cache['hit_rate']:.0%} "
                f"({cache['hits']} hits / {cache['misses']} misses), "
                f"p50 latency {latency['p50'] * 1e3:.2f} ms, "
                f"mean batch size {metrics['batcher']['mean_batch_size']:.1f}"
            )


if __name__ == "__main__":
    main()

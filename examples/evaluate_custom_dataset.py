#!/usr/bin/env python
"""Evaluate every registered method on your own image/mask directory.

If you have a local copy of PASCAL VOC 2012, the xVIEW2 tiles, or any other
dataset converted to the simple layout below, this script runs the full
Table-III style comparison on it::

    my_dataset/
      images/  <name>.png | .ppm | .bmp      (RGB images)
      masks/   <name>.png | .pgm             (binary masks: 0 background, >0 foreground)
      void/    <name>.png | .pgm             (optional: pixels to exclude from scoring)

Without an argument the script builds a small synthetic directory first so it
can be run out of the box.

Run with::

    python examples/evaluate_custom_dataset.py [dataset_root] [--methods m1,m2,...]
"""

from __future__ import annotations

import os
import sys

import numpy as np

from repro.datasets import DirectoryDataset, SyntheticVOCDataset
from repro.experiments import ExperimentRunner, MethodSpec
from repro.imaging import as_uint8_image
from repro.imaging import write_image


def _build_demo_directory(root: str, count: int = 6) -> None:
    """Materialize a few synthetic samples in the directory layout."""
    os.makedirs(os.path.join(root, "images"), exist_ok=True)
    os.makedirs(os.path.join(root, "masks"), exist_ok=True)
    os.makedirs(os.path.join(root, "void"), exist_ok=True)
    dataset = SyntheticVOCDataset(num_samples=count, seed=404)
    for sample in dataset:
        write_image(os.path.join(root, "images", sample.name + ".png"),
                    as_uint8_image(sample.image))
        write_image(os.path.join(root, "masks", sample.name + ".pgm"),
                    as_uint8_image(sample.mask.astype(float)))
        write_image(os.path.join(root, "void", sample.name + ".pgm"),
                    as_uint8_image(sample.void.astype(float)))


def main(argv) -> None:
    method_names = ["kmeans", "otsu", "iqft-rgb", "iqft-gray"]
    root = None
    for arg in argv:
        if arg.startswith("--methods"):
            method_names = arg.split("=", 1)[1].split(",")
        else:
            root = arg
    if root is None:
        root = os.path.join(os.path.dirname(__file__), "output", "demo_dataset")
        print(f"no dataset given; materializing a synthetic demo under {root}")
        _build_demo_directory(root)

    dataset = DirectoryDataset(root, require_masks=True)
    print(f"loaded {len(dataset)} samples from {root}")

    specs = []
    for name in method_names:
        kwargs = {}
        if name == "kmeans":
            kwargs = {"n_clusters": 2, "n_init": 4, "seed": 0}
        if name == "iqft-rgb":
            kwargs = {"thetas": float(np.pi)}
        specs.append(MethodSpec(name=name, factory=name, kwargs=kwargs))

    table = ExperimentRunner(methods=specs).run(dataset)
    print()
    print(table.to_text(title=f"Results on {dataset.name}"))
    print()
    reference = "iqft-rgb" if "iqft-rgb" in method_names else method_names[0]
    for other in method_names:
        if other == reference:
            continue
        rate = table.win_rate(reference, other)
        print(f"{reference} beats {other} on {rate:.1%} of the images")


if __name__ == "__main__":
    main(sys.argv[1:])

"""Temporal-stream quickstart: dirty-tile delta segmentation.

Run with ``PYTHONPATH=src python examples/delta_stream_quickstart.py``.

The script walks through :class:`~repro.engine.DeltaStreamEngine`:

1. segment a slowly-changing synthetic "camera" stream frame by frame and
   watch the per-frame reuse accounting — only the tiles whose bytes
   changed are re-segmented, the rest stitch from the previous frame;
2. verify bit-identity: every delta result equals the full recompute
   exactly (not approximately);
3. flow the same stream through
   :meth:`~repro.engine.BatchSegmentationEngine.map_stream`, including a
   corrupt frame that fails alone without poisoning the stream;
4. serve the stream through :class:`~repro.serve.AsyncSegmentationService`
   with ``stream_id`` (what the HTTP ``X-Repro-Stream-Id`` header maps to)
   and read the service-level delta counters.
"""

import asyncio

import numpy as np

from repro import BatchSegmentationEngine, IQFTSegmenter
from repro.engine import DeltaStreamEngine
from repro.errors import ShapeError
from repro.serve import AsyncSegmentationService

SIDE = 128
TILE = 32


def make_stream(frames, seed=7):
    """A synthetic camera: static scene, one moving 24px 'object' per frame."""
    rng = np.random.default_rng(seed)
    scene = (rng.random((SIDE, SIDE, 3)) * 255).astype(np.uint8)
    out = []
    for index in range(frames):
        frame = scene.copy()
        row = (index * 24) % (SIDE - 24)
        col = (index * 40) % (SIDE - 24)
        frame[row : row + 24, col : col + 24] = rng.integers(
            0, 256, size=(24, 24, 3), dtype=np.uint8
        )
        out.append(frame)
    return out


def main():
    frames = make_stream(6)
    engine = BatchSegmentationEngine(IQFTSegmenter(thetas=np.pi))
    delta = DeltaStreamEngine(engine, tile_shape=(TILE, TILE))

    print(f"=== 1. frame-by-frame delta ({SIDE}x{SIDE}, {TILE}px grid) ===")
    for index, frame in enumerate(frames):
        result = delta.segment(frame, "cam-1")
        stats = result.extras["delta"]
        print(
            f"frame {index}: reused {stats['tiles_reused']:2d}/"
            f"{stats['tiles_total']} tiles "
            f"(reuse {stats['reuse_ratio']:.0%}, fast_path={result.extras['fast_path']})"
        )

    print("\n=== 2. bit-identity against the full recompute ===")
    for index, frame in enumerate(frames):
        full = engine.segment(frame)
        incremental = delta.segment(frame, "cam-1")
        assert np.array_equal(full.labels, incremental.labels)
        assert full.num_segments == incremental.num_segments
    print(f"all {len(frames)} frames bit-identical: True")

    print("\n=== 3. map_stream with a corrupt mid-stream frame ===")
    corrupt = np.zeros((SIDE, SIDE), dtype=np.uint8)  # 2-D input to an RGB method
    sequence = frames[:2] + [corrupt] + frames[2:]
    results = list(
        engine.map_stream(iter(sequence), stream_id="cam-2", return_errors=True)
    )
    for index, item in enumerate(results):
        if isinstance(item, Exception):
            print(f"frame {index}: failed alone -> {type(item).__name__}")
        else:
            assert np.array_equal(
                item.labels, engine.segment(sequence[index]).labels
            )
    assert isinstance(results[2], ShapeError)
    print("frames after the failure still diff against the last good ancestor")

    print("\n=== 4. the serving layer: submit(stream_id=...) ===")

    async def serve():
        async with AsyncSegmentationService(
            BatchSegmentationEngine(IQFTSegmenter(thetas=np.pi)),
            cache=None,
            max_wait_seconds=0.001,
            delta_tile_shape=(TILE, TILE),
        ) as service:
            for frame in frames:
                await service.submit(frame, stream_id="cam-1")
            return service.metrics()

    metrics = asyncio.run(serve())["delta"]
    print(
        f"service delta metrics: frames={metrics['frames']} "
        f"tiles_reused={metrics['tiles_reused']} "
        f"tiles_recomputed={metrics['tiles_recomputed']} "
        f"reuse_ratio={metrics['reuse_ratio']:.0%}"
    )
    print("\nHTTP clients get the same path by sending X-Repro-Stream-Id.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Show that the classical Algorithm 1 *is* the quantum circuit's measurement statistics.

The paper presents its method as "IQFT-inspired" and evaluates it classically.
This example makes the correspondence exact, pixel by pixel:

1. take an RGB pixel, normalize it and map the channels to qubit phases
   (γ = R·θ1, β = G·θ2, α = B·θ3),
2. prepare the 3-qubit product state (|0⟩+e^{iα}|1⟩)(|0⟩+e^{iβ}|1⟩)(|0⟩+e^{iγ}|1⟩)/√8
   with Hadamard + phase gates on the bundled statevector simulator,
3. run the textbook inverse-QFT circuit and read out the basis-state
   probabilities,
4. compare them (and the argmax label) with the classical vectorized kernel,
5. repeat with finite measurement shots to show how a real quantum backend
   would estimate the same label.

Run with::

    python examples/quantum_circuit_equivalence.py
"""

from __future__ import annotations

import numpy as np

from repro.core import IQFTClassifier, pixel_phases
from repro.quantum import (
    encode_pixel_state,
    iqft_circuit,
    probabilities,
    sample_counts,
)


def main() -> None:
    rng = np.random.default_rng(7)
    thetas = (np.pi, np.pi, np.pi)
    classifier = IQFTClassifier(num_qubits=3)
    circuit = iqft_circuit(3)

    print("pixel (R,G,B)        classical probs == circuit probs   label  "
          "top shot outcome (1024 shots)")
    print("-" * 98)
    for _ in range(5):
        rgb = rng.random(3)
        phases = pixel_phases(rgb[np.newaxis, np.newaxis, :], thetas).reshape(3)

        classical = classifier.probabilities(phases)
        state = encode_pixel_state(rgb, thetas)
        quantum = probabilities(circuit.run(state))
        agree = np.allclose(classical, quantum, atol=1e-10)

        label = int(np.argmax(classical))
        counts = sample_counts(circuit.run(state), shots=1024, seed=1)
        top = max(counts, key=counts.get)

        print(
            f"({rgb[0]:.3f}, {rgb[1]:.3f}, {rgb[2]:.3f})   "
            f"{'YES' if agree else 'NO ':<3}                               "
            f"|{label:03b}⟩   |{top}⟩ x{counts[top]}"
        )

    print()
    print("circuit used:", circuit.name, "with", len(circuit), "gates, depth", circuit.depth())
    print("every pixel's classical probabilities equal the quantum circuit's exactly;")
    print("the classical algorithm is the N→∞ shot limit of measuring that circuit.")


if __name__ == "__main__":
    main()

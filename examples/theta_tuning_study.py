#!/usr/bin/env python
"""Per-image θ tuning study (the Figure-10 scenario).

The paper fixes θ = π for its headline numbers but shows that images on which
that choice fails badly can be rescued by picking a different θ (e.g. 3π/4).
This example:

1. segments a batch of synthetic natural-scene images with the default θ = π,
2. ranks them by mIOU and picks the worst performers,
3. re-runs them with (a) oracle tuning against the ground truth (the paper's
   manual adjustment) and (b) the label-free balance heuristic,
4. prints a before/after table so the gap between the fixed-θ headline numbers
   and what per-image adaptation could achieve is visible.

Run with::

    python examples/theta_tuning_study.py [num_images]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import IQFTSegmenter, mean_iou, tune_theta_supervised, tune_theta_unsupervised
from repro.core import binarize_by_overlap
from repro.datasets import SyntheticVOCDataset


def main(num_images: int) -> None:
    dataset = SyntheticVOCDataset(num_samples=num_images, seed=1010)
    default = IQFTSegmenter(thetas=np.pi)

    scored = []
    for sample in dataset:
        labels = default.segment(sample.image).labels
        binary = binarize_by_overlap(labels, sample.mask, sample.void)
        scored.append((sample, mean_iou(binary, sample.mask, void_mask=sample.void)))
    scored.sort(key=lambda pair: pair[1])

    print(f"default θ = π over {num_images} images: "
          f"mean mIOU {np.mean([s for _, s in scored]):.4f}, "
          f"worst {scored[0][1]:.4f}, best {scored[-1][1]:.4f}")
    print()
    header = (
        f"{'image':<12} {'mIOU @ π':>10} {'oracle θ':>10} {'oracle mIOU':>12} "
        f"{'heuristic θ':>12} {'heuristic mIOU':>15}"
    )
    print(header)
    print("-" * len(header))

    for sample, default_score in scored[:3]:
        oracle = tune_theta_supervised(sample.image, sample.mask, void_mask=sample.void)
        heuristic = tune_theta_unsupervised(sample.image)
        heuristic_labels = IQFTSegmenter(thetas=heuristic.best_theta).segment(sample.image).labels
        heuristic_binary = binarize_by_overlap(heuristic_labels, sample.mask, sample.void)
        heuristic_score = mean_iou(heuristic_binary, sample.mask, void_mask=sample.void)
        print(
            f"{sample.name:<12} {default_score:>10.4f} "
            f"{oracle.best_theta / np.pi:>9.2f}π {oracle.best_score:>12.4f} "
            f"{heuristic.best_theta / np.pi:>11.2f}π {heuristic_score:>15.4f}"
        )

    print()
    print("oracle tuning is the protocol behind Figure 10 of the paper; the heuristic")
    print("column shows what a label-free criterion recovers without any ground truth.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 10)

"""Async serving quickstart: priority lanes, deadlines, and a disk cache.

Run with ``PYTHONPATH=src python examples/async_serve_quickstart.py``.

The script walks through the asyncio serving front end:

1. start an :class:`~repro.serve.AsyncSegmentationService` over a tiered
   cache (in-memory L1, persistent on-disk L2);
2. flood the LOW lane with a bulk backlog while HIGH-priority requests keep
   their latency (weighted 4:2:1 draining);
3. shed a request whose deadline cannot be met
   (:class:`~repro.errors.DeadlineExceededError`);
4. "restart" the service and answer the same workload disk-warm — zero
   recomputation, bit-identical labels.
"""

import asyncio
import tempfile

import numpy as np

from repro import BatchSegmentationEngine, IQFTSegmenter
from repro.errors import DeadlineExceededError
from repro.serve import (
    AsyncSegmentationService,
    DiskResultCache,
    ResultCache,
    TieredResultCache,
)


def make_images(count, side=48, seed=7):
    rng = np.random.default_rng(seed)
    images = []
    for _ in range(count):
        palette = (rng.random((64, 3)) * 255).astype(np.uint8)
        images.append(palette[rng.integers(0, 64, size=(side, side))])
    return images


def make_service(cache_dir):
    engine = BatchSegmentationEngine(IQFTSegmenter(thetas=np.pi))
    cache = TieredResultCache(
        l1=ResultCache(max_entries=128), l2=DiskResultCache(cache_dir)
    )
    return AsyncSegmentationService(
        engine, cache=cache, max_batch_size=8, max_wait_seconds=0.002, queue_size=512
    )


async def main():
    cache_dir = tempfile.mkdtemp(prefix="repro-disk-cache-")
    bulk = make_images(40, seed=7)
    urgent = make_images(5, seed=11)

    print("=== pass 1: cold service, mixed priorities ===")
    async with make_service(cache_dir) as service:
        low_tasks = [
            asyncio.ensure_future(service.submit(image, priority="low", client_id="bulk"))
            for image in bulk
        ]
        await asyncio.sleep(0.01)  # let the LOW backlog build up

        for index, image in enumerate(urgent):
            result = await service.submit(image, priority="high", client_id="ui")
            print(f"  HIGH request {index}: {result.segmentation.num_segments} segments")

        try:
            await service.submit(urgent[0][::-1].copy(), deadline=1e-6, priority="normal")
        except DeadlineExceededError as exc:
            print(f"  shed as promised: {exc}")

        await asyncio.gather(*low_tasks)
        metrics = service.metrics()
        high_p99 = metrics["lanes"]["high"]["latency_seconds"]["p99"]
        low_p99 = metrics["lanes"]["low"]["latency_seconds"]["p99"]
        print(f"  HIGH lane p99: {high_p99 * 1e3:.1f} ms under a saturating LOW lane")
        print(f"  LOW  lane p99: {low_p99 * 1e3:.1f} ms (its own backlog)")
        print(f"  shed counters: {metrics['shed']}")

    print("=== pass 2: restarted service, disk-warm ===")
    async with make_service(cache_dir) as service:  # fresh engine + empty L1
        results = await service.map(bulk + urgent)
        metrics = service.metrics()
        hits = sum(1 for r in results if r.segmentation.extras["cache_hit"])
        print(f"  {hits}/{len(results)} answered from the cache after the restart")
        print(f"  L2 (disk) hits: {metrics['cache']['l2']['hits']}")
        print(f"  throughput: {metrics['throughput_rps']:.0f} req/s")


if __name__ == "__main__":
    asyncio.run(main())

"""Observability quickstart: tracing, structured logs, Prometheus.

Run with ``PYTHONPATH=src python examples/observability_quickstart.py``.

The script walks through ``repro.obs`` at both levels:

1. the :class:`~repro.obs.Tracer` on its own — spans as a context manager,
   the flight-recorder ring, deterministic sampling;
2. the :class:`~repro.obs.StructuredLogger` in json and text formats;
3. the whole stack over HTTP: an :class:`~repro.serve.HttpSegmentationServer`
   with a tracer, a client-supplied ``X-Repro-Trace-Id`` round-tripped
   through ``GET /v1/trace/{id}``, the slowest-traces listing, and the
   Prometheus exposition validated with
   :func:`~repro.obs.validate_exposition` — exactly what
   ``repro-segment serve --http ... --trace-sample-rate 1.0`` wires up.
"""

import asyncio
import sys
import threading

import numpy as np

from repro import BatchSegmentationEngine, IQFTSegmenter
from repro.obs import StructuredLogger, Tracer, validate_exposition
from repro.serve import AsyncSegmentationService, HttpSegmentationServer, SegmentClient


def make_images(count, side=48, seed=11):
    rng = np.random.default_rng(seed)
    images = []
    for _ in range(count):
        palette = (rng.random((64, 3)) * 255).astype(np.uint8)
        images.append(palette[rng.integers(0, 64, size=(side, side))])
    return images


def print_tree(node, indent=1):
    millis = node["duration_seconds"] * 1000.0
    print(f"  {'  ' * indent}{node['name']:<18s} {millis:8.3f} ms")
    for child in node["children"]:
        print_tree(child, indent + 1)


def tracer_alone():
    print("=== 1. the tracer on its own ===")
    tracer = Tracer(sample_rate=1.0, ring_size=8)
    trace = tracer.begin("0123456789abcdef")  # explicit ids always sample
    with trace.span("request"):
        with trace.span("cache.probe", parent="request"):
            pass
        with trace.span("engine.compute", parent="request"):
            sum(range(50_000))  # stand-in for real work
    tracer.record(trace)

    document = tracer.get("0123456789abcdef")
    print(f"  schema={document['schema']} duration={document['duration_seconds']:.6f}s")
    print_tree(document["tree"])

    sampled = Tracer(sample_rate=0.25)
    decisions = [sampled.begin() is not None for _ in range(8)]
    print(f"  rate 0.25 samples deterministically: {decisions}")
    print(f"  counters: {tracer.counters()}")


def structured_logs():
    print("=== 2. structured logging ===")
    for fmt in ("json", "text"):
        logger = StructuredLogger(stream=sys.stdout, format=fmt, worker_id=0)
        print(f"  --log-format {fmt}:")
        logger.info("http.listen", trace_id=None, host="127.0.0.1", port=8080)
        logger.warning(
            "queue.shed", trace_id="0123456789abcdef", reason="deadline", lane="low"
        )


class ServerThread:
    """The traced server on its own event loop — the shape a deployment has."""

    def __init__(self):
        self.port = None
        self._started = threading.Event()
        self._loop = None
        self._stop = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        async def main():
            engine = BatchSegmentationEngine(IQFTSegmenter(thetas=np.pi))
            service = AsyncSegmentationService(
                engine, max_wait_seconds=0.002, tracer=Tracer(sample_rate=1.0)
            )
            async with service:
                server = HttpSegmentationServer(service)
                await server.start()
                self.port = server.port
                self._loop = asyncio.get_running_loop()
                self._stop = asyncio.Event()
                self._started.set()
                await self._stop.wait()
                await server.aclose(drain=True, close_service=False)

        asyncio.run(main())

    def start(self):
        self._thread.start()
        assert self._started.wait(30)
        return self

    def stop(self):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(30)


def over_http():
    server = ServerThread().start()
    images = make_images(4)

    print(f"=== 3. over HTTP on 127.0.0.1:{server.port} ===")
    with SegmentClient("127.0.0.1", server.port) as client:
        wanted = "feedfacefeedface"
        result = client.segment(images[0], trace_id=wanted)
        print(f"  X-Repro-Trace-Id echoed back: {result.trace_id}")
        for image in images[1:]:
            client.segment(image)
        client.segment(images[0])  # warm repeat: watch cache.probe shrink

        document = client.trace(wanted)
        print("  GET /v1/trace/{id} span tree:")
        print_tree(document["tree"])

        slowest = client.traces(slowest=3)
        print("  GET /v1/traces?slowest=3:")
        for entry in slowest:
            print(
                f"    {entry['trace_id']}  {entry['duration_seconds'] * 1000.0:8.3f} ms"
            )

        exposition = client.metrics_prometheus()
        errors = validate_exposition(exposition)
        samples = [
            line
            for line in exposition.splitlines()
            if line.startswith("repro_request_latency_seconds_")
            or line.startswith("repro_completed_total")
        ]
        print(f"  /v1/metrics?format=prometheus: valid={not errors}")
        for line in samples[:6]:
            print(f"    {line}")

    print("=== graceful shutdown ===")
    server.stop()
    print("  done")


def main():
    tracer_alone()
    structured_logs()
    over_http()


if __name__ == "__main__":
    main()

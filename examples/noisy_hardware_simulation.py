#!/usr/bin/env python
"""Emulate running the IQFT segmenter on noisy quantum hardware.

The paper evaluates its algorithm classically and leaves the quantum-hardware
implementation to future work.  This example explores what that future
implementation would face:

1. segment an image with the exact (infinite-shot, noiseless) Algorithm 1,
2. segment it again with a finite number of measurement shots per pixel on an
   ideal simulated device, sweeping the shot count,
3. repeat with a noisy device model (dephasing + depolarizing + readout
   error),
4. print, for every configuration, the per-pixel agreement with the exact
   labels and the foreground/background mIOU.

Run with::

    python examples/noisy_hardware_simulation.py [shots ...]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import IQFTSegmenter, ShotBasedIQFTSegmenter
from repro.core import binarize_by_overlap
from repro.datasets import SyntheticVOCDataset
from repro.metrics import mean_iou
from repro.quantum import NoiseModel


def main(shot_counts) -> None:
    sample = SyntheticVOCDataset(num_samples=1, seed=271828, size=(64, 80))[0]
    exact_labels = IQFTSegmenter().segment(sample.image).labels
    exact_binary = binarize_by_overlap(exact_labels, sample.mask, sample.void)
    exact_miou = mean_iou(exact_binary, sample.mask, void_mask=sample.void)
    print(f"image {sample.name}: exact Algorithm-1 mIOU = {exact_miou:.4f}")
    print()

    devices = {
        "ideal device": None,
        "noisy device (1% dephasing, 0.5% depolarizing, 1% readout)": NoiseModel(
            phase_damping=0.01, depolarizing=0.005, readout_error=0.01
        ),
    }

    header = f"{'device':<55} {'shots':>6} {'agreement':>10} {'mIOU':>8}"
    print(header)
    print("-" * len(header))
    for device_name, noise in devices.items():
        for shots in shot_counts:
            segmenter = ShotBasedIQFTSegmenter(shots=shots, noise_model=noise, seed=0)
            labels = segmenter.segment(sample.image).labels
            agreement = float(np.mean(labels == exact_labels))
            binary = binarize_by_overlap(labels, sample.mask, sample.void)
            score = mean_iou(binary, sample.mask, void_mask=sample.void)
            print(f"{device_name:<55} {shots:>6d} {agreement:>10.4f} {score:>8.4f}")
        print()

    print("with a few hundred shots per pixel the sampled labels recover the exact")
    print("classification almost everywhere; hardware noise mainly costs extra shots")
    print("because the label is a majority vote over a mixed (flattened) distribution.")


if __name__ == "__main__":
    counts = [int(arg) for arg in sys.argv[1:]] or [1, 8, 64, 512]
    main(counts)

#!/usr/bin/env python
"""Building-footprint extraction from satellite-style tiles (xVIEW2 scenario).

The paper's strongest result is on the xVIEW2 "joplin-tornado" pre-disaster
tiles, where the IQFT-inspired RGB algorithm wins against K-means and Otsu on
~96% of the images.  This example reproduces that scenario end to end on the
synthetic satellite dataset:

1. generate a batch of overhead tiles with rooftop ground truth,
2. run the four methods of Table III on every tile,
3. print the per-method average mIOU, runtime and the IQFT win rate,
4. export a side-by-side montage (input | ground truth | IQFT overlay) for the
   tile where the IQFT method wins by the largest margin.

Run with::

    python examples/satellite_building_extraction.py [num_tiles] [output_dir]
"""

from __future__ import annotations

import os
import sys

from repro.datasets import SyntheticXView2Dataset
from repro.experiments import format_table3, run_table3
from repro.imaging import as_uint8_image
from repro.viz import overlay_mask
from repro.viz import save_side_by_side


def main(num_tiles: int, output_dir: str) -> None:
    os.makedirs(output_dir, exist_ok=True)
    dataset = SyntheticXView2Dataset(num_samples=num_tiles, seed=1948)

    print(f"running the Table-III comparison on {num_tiles} synthetic satellite tiles ...")
    result = run_table3(dataset)
    print(format_table3([result]))
    print()
    print("IQFT-RGB win rates:", {k: f"{v:.0%}" for k, v in result.win_rate_vs.items()})

    # Find the tile with the largest IQFT-vs-best-baseline margin and export it.
    per_sample = {}
    for score in result.table.scores:
        per_sample.setdefault(score.sample, {})[score.method] = score.miou
    def margin(scores):
        baselines = [v for k, v in scores.items() if k != "iqft-rgb"]
        return scores["iqft-rgb"] - max(baselines)
    best_name = max(per_sample, key=lambda s: margin(per_sample[s]))
    index = [i for i in range(len(dataset)) if dataset[i].name == best_name][0]
    sample = dataset[index]

    from repro import IQFTSegmenter
    from repro.core import binarize_by_overlap

    labels = IQFTSegmenter().segment(sample.image).labels
    binary = binarize_by_overlap(labels, sample.mask)
    montage = [
        sample.image,
        overlay_mask(sample.image, sample.mask, color=(0.1, 1.0, 0.1), alpha=0.5),
        overlay_mask(sample.image, binary, color=(1.0, 0.1, 0.1), alpha=0.5),
    ]
    path = os.path.join(output_dir, f"satellite_{best_name}.png")
    save_side_by_side(path, [as_uint8_image(panel) for panel in montage])
    print(f"best-margin tile ({best_name}, margin {margin(per_sample[best_name]):+.3f}) "
          f"written to {path}")


if __name__ == "__main__":
    tiles = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    out = sys.argv[2] if len(sys.argv) > 2 else os.path.join(os.path.dirname(__file__), "output")
    main(tiles, out)

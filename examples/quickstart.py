#!/usr/bin/env python
"""Quickstart: segment an image with the IQFT-inspired algorithm.

The script builds a small synthetic scene (no downloads needed), segments it
with the paper's Algorithm 1 (``IQFTSegmenter``), compares the result against
the two baselines from the paper (K-means and Otsu), prints the mIOU of each
method and writes colourized label maps next to this script.

Run it with::

    python examples/quickstart.py [output_directory]
"""

from __future__ import annotations

import os
import sys

import numpy as np

from repro import IQFTSegmenter, KMeansSegmenter, OtsuSegmenter, mean_iou
from repro.core import binarize_by_overlap
from repro.datasets import ShapesDataset
from repro.imaging import write_png
from repro.imaging import as_uint8_image
from repro.viz import colorize_labels


def main(output_dir: str) -> None:
    os.makedirs(output_dir, exist_ok=True)

    # 1. Get an image with known ground truth (a bright shape on a dark
    #    background).  Any (H, W, 3) uint8 or float array works the same way.
    sample = ShapesDataset(num_samples=1, size=(96, 96), seed=3)[0]
    image, mask = sample.image, sample.mask

    # 2. Segment with the IQFT-inspired algorithm.  θ = π is the paper's
    #    default; the output has up to 8 segments (one per 3-qubit basis state).
    methods = {
        "iqft-rgb": IQFTSegmenter(thetas=np.pi),
        "kmeans": KMeansSegmenter(n_clusters=2, n_init=4, seed=0),
        "otsu": OtsuSegmenter(),
    }

    print(f"image: {sample.name}, shape {image.shape}")
    print(f"{'method':<12} {'segments':>8} {'runtime [ms]':>14} {'mIOU':>8}")
    for name, segmenter in methods.items():
        result = segmenter.segment(image)
        # Collapse the (possibly multi-way) output to foreground/background for
        # scoring, exactly like the evaluation protocol in the paper.
        binary = binarize_by_overlap(result.labels, mask)
        score = mean_iou(binary, mask)
        print(
            f"{name:<12} {result.num_segments:>8d} "
            f"{result.runtime_seconds * 1e3:>14.2f} {score:>8.4f}"
        )
        write_png(
            os.path.join(output_dir, f"quickstart_{name}.png"),
            as_uint8_image(colorize_labels(result.labels)),
        )

    write_png(os.path.join(output_dir, "quickstart_input.png"), as_uint8_image(image))
    print(f"label maps written to {output_dir}/")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else os.path.join(os.path.dirname(__file__), "output"))

"""Fleet serving quickstart: N worker processes behind one address.

Run with ``PYTHONPATH=src python examples/fleet_serve_quickstart.py``.

The script walks through the multi-process serving layer:

1. start a :class:`~repro.serve.ServeFleet` of 2 workers behind one
   HOST:PORT (``SO_REUSEPORT`` kernel load balancing) over a shared
   ``--cache-dir`` — exactly what
   ``repro-segment serve --http 127.0.0.1:8080 --workers 2 --cache-dir ...``
   does;
2. segment images through the ordinary :class:`~repro.serve.SegmentClient`
   — clients cannot tell a fleet from a single server;
3. SIGKILL one worker and watch the supervisor restart it (exponential
   backoff, fleet stays healthy throughout);
4. read the *aggregated* fleet metrics (counters summed across workers,
   percentiles merged from histogram sketches);
5. restart the whole fleet over the same cache directory and see the warm
   working set answered from the shared disk tier (L2 hits).
"""

import os
import signal
import tempfile
import time

import numpy as np

from repro.serve import SegmentClient, ServeFleet, WorkerSpec


def make_images(count, side=48, seed=11):
    rng = np.random.default_rng(seed)
    images = []
    for _ in range(count):
        palette = (rng.random((64, 3)) * 255).astype(np.uint8)
        images.append(palette[rng.integers(0, 64, size=(side, side))])
    return images


def main():
    images = make_images(8)
    cache_dir = os.path.join(tempfile.mkdtemp(prefix="repro-fleet-"), "l2")
    spec = WorkerSpec(
        max_wait_seconds=0.002,
        cache_dir=cache_dir,  # every worker shares this persistent L2 tier
        adaptive=True,  # per-worker control loop tunes batch size + lane weights
    )

    print(f"== fleet of 2 workers, shared L2 at {cache_dir}")
    with ServeFleet(spec, port=0, workers=2) as fleet:
        fleet.wait_ready()
        print(f"   listening on 127.0.0.1:{fleet.port}, health={fleet.health()['status']}")

        with SegmentClient("127.0.0.1", fleet.port, timeout=60) as client:
            for image in images:
                result = client.segment(image)
                print(f"   segmented {result.shape}: {result.num_segments} segments")

        print("\n== SIGKILL one worker; the supervisor restarts the slot")
        victim = fleet.worker_pids()[0]
        os.kill(victim, signal.SIGKILL)
        while not (fleet.restarts >= 1 and fleet.health()["accepting"] == 2):
            time.sleep(0.1)
        print(f"   pid {victim} replaced; restarts={fleet.restarts}, fleet healthy again")

        merged = fleet.metrics()
        print("\n== aggregated metrics across the fleet")
        print(f"   workers scraped:   {merged['workers_scraped']}")
        print(f"   completed:         {merged['completed']}")
        print(f"   fleet p99 latency: {merged['latency_seconds']['p99'] * 1e3:.2f} ms")
        print(f"   L2 entries:        {merged['cache']['l2']['currsize']}")

    print("\n== second fleet over the same cache dir: warm from disk")
    with ServeFleet(spec, port=0, workers=2) as fleet:
        fleet.wait_ready()
        with SegmentClient("127.0.0.1", fleet.port, timeout=60) as client:
            started = time.perf_counter()
            for image in images:
                client.segment(image)
            elapsed = time.perf_counter() - started
        merged = fleet.metrics()
        hits = merged["cache"]["l2"]["hits"]
        print(f"   {len(images)} repeats in {elapsed * 1e3:.0f} ms, L2 hits={hits}")
        assert hits > 0, "expected the restarted fleet to answer from the shared disk tier"
    print("\ndone")


if __name__ == "__main__":
    main()

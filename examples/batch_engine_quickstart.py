#!/usr/bin/env python
"""Batch engine quickstart: segment a whole dataset through the fast paths.

The script builds a small synthetic dataset (no downloads needed), runs the
:class:`repro.engine.BatchSegmentationEngine` over it in one call, and prints
per-image metrics together with the fast path the engine chose — the
palette-LUT for the quantized uint8 images, the exact matrix path for a float
image thrown in for contrast.  The batch API is what ``repro-segment batch``
uses under the hood.

Run it with::

    python examples/batch_engine_quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import BatchSegmentationEngine, IQFTSegmenter
from repro.datasets import ShapesDataset
from repro.imaging import as_uint8_image


def main() -> None:
    # 1. A deterministic synthetic dataset with exact ground truth.  Convert
    #    the images to uint8 storage: quantized input is what unlocks the
    #    engine's exact LUT fast path (float input silently takes the matrix
    #    path instead — same labels, more arithmetic).
    dataset = ShapesDataset(num_samples=6, size=(96, 96), seed=11)
    samples = [dataset[index] for index in range(len(dataset))]
    images = [as_uint8_image(sample.image) for sample in samples]
    masks = [sample.mask for sample in samples]
    images.append(samples[0].image)  # one float image to show the fallback
    masks.append(samples[0].mask)

    # 2. One engine call for the whole batch.  Pass
    #    executor=get_executor("process") to scatter images across CPU cores;
    #    the default stays serial and fully deterministic.
    engine = BatchSegmentationEngine(IQFTSegmenter(thetas=np.pi))
    results = engine.map(images, masks)

    # 3. Report: identical evaluation protocol as SegmentationPipeline.run,
    #    plus the fast-path audit trail in extras["fast_path"].
    print(f"{'image':<10} {'fast path':<14} {'palette':>8} {'runtime [ms]':>14} {'mIOU':>8}")
    for index, result in enumerate(results):
        seg = result.segmentation
        palette = seg.extras.get("palette_size", "-")
        print(
            f"{index:<10} {seg.extras['fast_path']:<14} {palette!s:>8} "
            f"{seg.runtime_seconds * 1e3:>14.2f} {result.metrics['miou']:>8.4f}"
        )
    mean_miou = float(np.mean([result.metrics["miou"] for result in results]))
    print(f"\nmean mIOU over {len(results)} images: {mean_miou:.4f}")


if __name__ == "__main__":
    main()

"""Ablation — spatial post-processing of the IQFT label maps.

The IQFT rule is strictly per-pixel.  This ablation measures what the optional
mode-filter + small-segment-merging post-processing buys on the two synthetic
datasets: change in average mIOU, change in label fragmentation, and the extra
runtime it costs.
"""

import numpy as np

from repro.core.labels import binarize_by_overlap
from repro.core.postprocess import SmoothedSegmenter
from repro.core.rgb_segmenter import IQFTSegmenter
from repro.datasets.synthetic_voc import SyntheticVOCDataset
from repro.datasets.synthetic_xview import SyntheticXView2Dataset
from repro.experiments.figure5 import label_fragmentation
from repro.metrics.iou import mean_iou
from repro.metrics.report import format_table


def _evaluate(dataset, segmenter, num_images):
    scores, fragments = [], []
    for index in range(min(num_images, len(dataset))):
        sample = dataset[index]
        labels = segmenter.segment(sample.image).labels
        binary = binarize_by_overlap(labels, sample.mask, sample.void)
        scores.append(mean_iou(binary, sample.mask, void_mask=sample.void))
        fragments.append(label_fragmentation(labels))
    return float(np.mean(scores)), float(np.mean(fragments))


def test_ablation_spatial_smoothing(benchmark, emit_result):
    datasets = {
        "synthetic-voc2012": SyntheticVOCDataset(num_samples=8, seed=2012),
        "synthetic-xview2": SyntheticXView2Dataset(num_samples=8, seed=1948),
    }
    raw = IQFTSegmenter()
    smoothed = SmoothedSegmenter(IQFTSegmenter(), window=3, iterations=2, min_size=16)

    def run():
        rows = {}
        for name, dataset in datasets.items():
            rows[name] = {
                "raw": _evaluate(dataset, raw, 8),
                "smoothed": _evaluate(dataset, smoothed, 8),
            }
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table_rows = []
    for dataset_name, variants in rows.items():
        for variant, (miou, frag) in variants.items():
            table_rows.append([dataset_name, variant, f"{miou:.4f}", f"{frag:.4f}"])
    emit_result(
        "Ablation — spatial smoothing of the IQFT label maps",
        format_table(
            "IQFT-RGB raw vs smoothed",
            ["Dataset", "Variant", "avg mIOU", "fragmentation"],
            table_rows,
        ),
    )

    for variants in rows.values():
        raw_miou, raw_frag = variants["raw"]
        smooth_miou, smooth_frag = variants["smoothed"]
        # Smoothing reduces fragmentation and does not wreck accuracy.
        assert smooth_frag <= raw_frag + 1e-9
        assert smooth_miou >= raw_miou - 0.05

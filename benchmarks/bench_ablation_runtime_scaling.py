"""Ablation — per-method runtime vs image size (context for Table III runtimes).

The paper reports per-image runtimes on ~500×375 (VOC) and 1024×1024 (xVIEW2)
images.  This ablation measures each method on three image sizes so the
runtime column of the regenerated Table III can be interpreted: all methods
scale roughly linearly in the pixel count, Otsu has the smallest constant,
and the IQFT kernel's constant is set by one complex 8×8 matmul per pixel.
"""

import pytest

from repro.baselines.kmeans import KMeansSegmenter
from repro.baselines.otsu import OtsuSegmenter
from repro.core.grayscale_segmenter import IQFTGrayscaleSegmenter
from repro.core.rgb_segmenter import IQFTSegmenter
from repro.datasets.synthetic_voc import SyntheticVOCDataset

_SIZES = ((64, 64), (128, 128), (256, 256))
_METHODS = {
    "otsu": lambda: OtsuSegmenter(),
    "kmeans": lambda: KMeansSegmenter(n_clusters=2, n_init=2, seed=0),
    "iqft-gray": lambda: IQFTGrayscaleSegmenter(),
    "iqft-rgb": lambda: IQFTSegmenter(),
}


@pytest.fixture(scope="module")
def images():
    return {
        size: SyntheticVOCDataset(num_samples=1, seed=42, size=size)[0].image
        for size in _SIZES
    }


@pytest.mark.parametrize("method_name", sorted(_METHODS))
@pytest.mark.parametrize("size", _SIZES, ids=[f"{h}x{w}" for h, w in _SIZES])
def test_ablation_runtime_scaling(benchmark, images, method_name, size):
    segmenter = _METHODS[method_name]()
    image = images[size]
    result = benchmark(lambda: segmenter.segment(image))
    assert result.labels.shape == size

"""Figure 7 — IQFT-grayscale with θ from equation (15) is identical to Otsu.

For each image the Otsu threshold is converted to θ = π/(2·I_th) and the two
binary masks are compared pixel by pixel; the paper shows identical outputs
(and therefore equal mIOU).
"""

from repro.experiments.figure7 import format_figure7, run_figure7


def test_fig7_otsu_equivalence(benchmark, emit_result):
    result = benchmark.pedantic(lambda: run_figure7(num_images=6), rounds=1, iterations=1)
    emit_result("Figure 7 — Otsu vs IQFT-grayscale with matched θ", format_figure7(result))

    assert result.all_identical
    for record in result.records:
        assert record["differing_fraction"] == 0.0
        assert 0.0 < record["otsu_threshold"] < 1.0

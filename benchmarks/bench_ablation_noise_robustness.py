"""Ablation — robustness of the methods to input noise.

The paper's related-work section singles out Otsu's sensitivity to noise; this
ablation adds Gaussian noise of increasing strength to the synthetic VOC
images and tracks the average mIOU of each Table-III method, plus the
spatially-smoothed IQFT variant (mode filter + small-segment merging), which
is the library's answer to the "no spatial information" limitation.
"""

import numpy as np

from repro.core.postprocess import SmoothedSegmenter
from repro.core.rgb_segmenter import IQFTSegmenter
from repro.datasets.synthetic_voc import SyntheticVOCDataset
from repro.experiments.robustness import format_noise_robustness, run_noise_robustness
from repro.experiments.runner import MethodSpec

_LEVELS = (0.0, 0.05, 0.15)

_METHODS = (
    MethodSpec(name="kmeans", factory="kmeans", kwargs={"n_clusters": 2, "n_init": 2, "seed": 0}),
    MethodSpec(name="otsu", factory="otsu"),
    MethodSpec(name="iqft-rgb", factory="iqft-rgb", kwargs={"thetas": float(np.pi)}),
    MethodSpec(
        name="iqft-rgb+smooth",
        factory=lambda **kwargs: SmoothedSegmenter(
            IQFTSegmenter(), window=3, iterations=2, min_size=16
        ),
    ),
)


def test_ablation_input_noise_robustness(benchmark, emit_result):
    dataset = SyntheticVOCDataset(num_samples=6, seed=4242)
    result = benchmark.pedantic(
        lambda: run_noise_robustness(
            dataset=dataset, levels=_LEVELS, methods=_METHODS, num_images=6
        ),
        rounds=1,
        iterations=1,
    )
    emit_result("Ablation — input-noise robustness (Gaussian noise sweep)",
                format_noise_robustness(result))

    for method, values in result.miou.items():
        assert len(values) == len(_LEVELS)
        # Strong noise never improves the clean-image score materially.
        assert values[-1] <= values[0] + 0.05, method
    # The IQFT method remains competitive with the baselines at every level.
    for idx in range(len(_LEVELS)):
        best_baseline = max(result.miou["kmeans"][idx], result.miou["otsu"][idx])
        assert result.miou["iqft-rgb"][idx] >= best_baseline - 0.1

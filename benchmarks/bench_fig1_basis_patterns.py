"""Figure 1 — visualization of the eight basis-state patterns on the unit circle.

The figure plots, for each 3-qubit basis state, the set of points
``(cos φ_k, sin φ_k)`` where ``φ_k`` are the phases of the corresponding row of
the IQFT matrix.  The benchmark regenerates those point sets and reports how
many *distinct* points each pattern contains (|000⟩ collapses to a single
point, |100⟩ to two, the odd-index states spread over all eight), which is the
structure the figure conveys.
"""

import numpy as np

from repro.experiments.figures_basis import run_figure1
from repro.metrics.report import format_table


def _distinct_points(points: np.ndarray) -> int:
    rounded = np.round(points, 9)
    return int(np.unique(rounded, axis=0).shape[0])


def test_fig1_basis_patterns(benchmark, emit_result):
    patterns = benchmark(run_figure1, 3)
    rows = [[label, str(_distinct_points(points))] for label, points in patterns.items()]
    emit_result(
        "Figure 1 — basis-state patterns (distinct unit-circle points per state)",
        format_table("Basis patterns", ["Basis state", "distinct points"], rows),
    )

    assert _distinct_points(patterns["000"]) == 1
    assert _distinct_points(patterns["100"]) == 2
    assert _distinct_points(patterns["010"]) == 4
    assert _distinct_points(patterns["001"]) == 8
    for points in patterns.values():
        assert np.allclose(np.hypot(points[:, 0], points[:, 1]), 1.0)

"""Table III (PASCAL VOC 2012 rows) — average mIOU and runtime of the four methods.

Paper values (real VOC 2012, 2913 images): K-means 0.4318 / 0.25 s,
Otsu 0.4331 / 0.01 s, IQFT-RGB 0.4354 / 3.06 s, IQFT-gray 0.4172 / 1.76 s;
IQFT-RGB beats K-means on 53.24% and Otsu on 52.32% of the images and scores
mIOU < 0.1 on ~1.4% of them.

This bench runs the identical protocol on the synthetic VOC stand-in (see
DESIGN.md §2).  The expected *shape*: IQFT-RGB ≥ both baselines in average
mIOU, Otsu fastest, and the per-method runtime ordering documented in
EXPERIMENTS.md (our vectorized IQFT is faster than the authors' per-pixel
implementation; the loop-vs-vectorized ablation quantifies that gap).
"""

from repro.datasets.synthetic_voc import SyntheticVOCDataset
from repro.experiments.table3 import format_table3, run_table3

_NUM_IMAGES = 24


def test_table3_voc(benchmark, emit_result):
    dataset = SyntheticVOCDataset(num_samples=_NUM_IMAGES, seed=2012)
    result = benchmark.pedantic(lambda: run_table3(dataset), rounds=1, iterations=1)
    emit_result(
        f"Table III — synthetic PASCAL VOC 2012 stand-in ({_NUM_IMAGES} images)",
        format_table3([result]),
    )

    miou = result.average_miou
    assert miou["iqft-rgb"] >= miou["kmeans"]
    assert miou["iqft-rgb"] >= miou["otsu"]
    assert miou["iqft-rgb"] >= miou["iqft-gray"]
    # Otsu is the cheapest method, as in the paper.
    assert result.average_runtime["otsu"] == min(result.average_runtime.values())
    # The win-rate statistic exists for both baselines.
    assert 0.0 <= result.win_rate_vs["kmeans"] <= 1.0
    assert 0.0 <= result.win_rate_vs["otsu"] <= 1.0

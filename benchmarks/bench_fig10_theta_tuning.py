"""Figure 10 — performance improvement through θ adjustment.

The paper shows an image where θ = π scores mIOU 0.0084 while θ = 3π/4 scores
0.8327.  The benchmark finds the worst-performing images under the default θ
on a synthetic-VOC pool and re-runs them with a tuned θ, asserting that tuning
never hurts and reporting the before/after scores.
"""

from repro.datasets.synthetic_voc import SyntheticVOCDataset
from repro.experiments.figure10 import format_figure10, run_figure10


def test_fig10_theta_adjustment(benchmark, emit_result):
    dataset = SyntheticVOCDataset(num_samples=12, seed=1010)
    result = benchmark.pedantic(
        lambda: run_figure10(dataset=dataset, pool_size=12, num_worst=3),
        rounds=1,
        iterations=1,
    )
    emit_result("Figure 10 — performance improvement through θ adjustment",
                format_figure10(result))

    assert len(result.records) == 3
    for record in result.records:
        assert record.miou_tuned >= record.miou_default - 1e-9
    assert result.mean_improvement >= 0.0

"""Table III (xVIEW2 rows) — average mIOU and runtime on the satellite dataset.

Paper values (148 joplin-tornado pre-disaster tiles): K-means 0.3375 / 1.74 s,
Otsu 0.4008 / 0.10 s, IQFT-RGB 0.5070 / 17.5 s, IQFT-gray 0.478 / 9.67 s;
IQFT-RGB beats K-means on 95.94% and Otsu on 97.97% of the tiles.

Expected shape on the synthetic stand-in: IQFT-RGB wins by a clear margin and
with a much higher win rate than on the VOC-style dataset.
"""

from repro.datasets.synthetic_xview import SyntheticXView2Dataset
from repro.experiments.table3 import format_table3, run_table3

_NUM_TILES = 20


def test_table3_xview2(benchmark, emit_result):
    dataset = SyntheticXView2Dataset(num_samples=_NUM_TILES, seed=1948)
    result = benchmark.pedantic(lambda: run_table3(dataset), rounds=1, iterations=1)
    emit_result(
        f"Table III — synthetic xVIEW2 joplin-tornado stand-in ({_NUM_TILES} tiles)",
        format_table3([result]),
    )

    miou = result.average_miou
    assert miou["iqft-rgb"] > miou["kmeans"] + 0.05
    assert miou["iqft-rgb"] > miou["otsu"] + 0.05
    # The satellite dataset is where the IQFT method wins most often (paper: ~96–98%).
    assert result.win_rate_vs["kmeans"] >= 0.6
    assert result.win_rate_vs["otsu"] >= 0.6
    assert result.average_runtime["otsu"] == min(result.average_runtime.values())

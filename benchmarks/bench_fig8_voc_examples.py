"""Figure 8 — example VOC-style images where IQFT-RGB beats the baselines.

The paper shows three PASCAL VOC images with per-method mIOU printed under
each segmentation; all three are cases where the IQFT method wins.  The
benchmark scores a pool of synthetic-VOC samples, picks the three with the
largest IQFT-vs-best-baseline margin and reports their per-method mIOU.
"""

from repro.datasets.synthetic_voc import SyntheticVOCDataset
from repro.experiments.figure8_9 import format_example_table, run_figure8


def test_fig8_voc_examples(benchmark, emit_result):
    dataset = SyntheticVOCDataset(num_samples=10, seed=88)
    records = benchmark.pedantic(
        lambda: run_figure8(dataset=dataset, num_examples=3, pool_size=10),
        rounds=1,
        iterations=1,
    )
    emit_result(
        "Figure 8 — per-image examples (synthetic VOC stand-in)",
        format_example_table(records, "Figure 8 — VOC-style examples"),
    )

    assert len(records) == 3
    # The selected examples are exactly the "IQFT wins" showcases of the figure.
    assert records[0].margin > 0
    for record in records:
        assert set(record.miou) == {"kmeans", "otsu", "iqft-rgb", "iqft-gray"}
        assert 0.0 <= record.miou["iqft-rgb"] <= 1.0

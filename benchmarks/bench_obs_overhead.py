"""Observability overhead benchmark — tracing must be (nearly) free.

The tentpole claim of the tracing layer is that spans are cheap enough to
leave on in production: plain tuples, no locks on the hot path, one ring
insert per request.  This benchmark measures async serving throughput with
the tracer fully on (``sample_rate=1.0`` — every request records a full
span tree) against the same service with sampling off, interleaving the
passes A/B/A/B so clock drift and cache warmup hit both sides equally.

Full mode asserts the traced run keeps at least 95% of the untraced
throughput (the ISSUE's ≤5% overhead budget).  Smoke mode runs the same
shape on a tiny workload and still asserts the *accounting*: every request
traced at rate 1.0, none at rate 0.0.
"""

import asyncio
import time

import numpy as np
import pytest

from repro import BatchSegmentationEngine, IQFTSegmenter
from repro.metrics.report import format_table
from repro.obs import Tracer
from repro.serve import AsyncSegmentationService

_THETA = np.pi


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(20260807)


def _distinct_images(rng, count, side):
    images = []
    for _ in range(count):
        palette = (rng.random((256, 3)) * 255).astype(np.uint8)
        images.append(palette[rng.integers(0, 256, size=(side, side))])
    return images


def _run_pass(images, sample_rate):
    """One full serve pass; returns (elapsed_seconds, metrics)."""

    async def scenario():
        engine = BatchSegmentationEngine(IQFTSegmenter(thetas=_THETA))
        service = AsyncSegmentationService(
            engine,
            cache=None,  # every request computes: measure the serve path, not the cache
            max_batch_size=8,
            max_wait_seconds=0.001,
            tracer=Tracer(sample_rate=sample_rate),
        )
        async with service:
            start = time.perf_counter()
            results = await service.map(images)
            elapsed = time.perf_counter() - start
            metrics = service.metrics()
        assert len(results) == len(images)
        return elapsed, metrics

    return asyncio.run(scenario())


def test_tracing_overhead_within_budget(rng, smoke_mode, emit_result, emit_json_result):
    count = 12 if smoke_mode else 48
    side = 32 if smoke_mode else 64
    rounds = 1 if smoke_mode else 3
    images = _distinct_images(rng, count, side)

    _run_pass(images, 0.0)  # warmup: JIT-ish costs (LUTs, allocator) off the books
    traced_seconds = 0.0
    untraced_seconds = 0.0
    traced_metrics = untraced_metrics = None
    for _ in range(rounds):
        elapsed, untraced_metrics = _run_pass(images, 0.0)
        untraced_seconds += elapsed
        elapsed, traced_metrics = _run_pass(images, 1.0)
        traced_seconds += elapsed

    total = rounds * count
    untraced_rps = total / untraced_seconds
    traced_rps = total / traced_seconds
    ratio = traced_rps / untraced_rps

    # accounting: rate 1.0 records every request, rate 0.0 records none
    assert traced_metrics["trace"]["recorded"] == count
    assert traced_metrics["trace"]["retained"] > 0
    assert untraced_metrics["trace"]["recorded"] == 0
    assert untraced_metrics["trace"]["sampled_out"] == count

    rows = [
        ["sampling off", f"{untraced_rps:.1f}", ""],
        ["tracing every request", f"{traced_rps:.1f}", f"{(1 - ratio) * 100:+.1f}%"],
    ]
    emit_result(
        f"Tracing overhead — {total} requests/side, {side}x{side} uint8 RGB, "
        f"{rounds} interleaved rounds",
        format_table("Traced vs untraced throughput", ["Mode", "req/s", "overhead"], rows),
    )
    emit_json_result(
        "bench_obs_overhead",
        {
            "schema": "repro-bench-obs-overhead/v1",
            "smoke": smoke_mode,
            "count": total,
            "side": side,
            "untraced_rps": untraced_rps,
            "traced_rps": traced_rps,
            "traced_over_untraced": ratio,
        },
    )

    if not smoke_mode:
        assert ratio >= 0.95, (
            f"tracing overhead exceeded the 5% budget: traced {traced_rps:.1f} req/s "
            f"vs untraced {untraced_rps:.1f} req/s ({(1 - ratio) * 100:.1f}% slower)"
        )

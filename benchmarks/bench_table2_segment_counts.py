"""Table II — parameter θ and the possible number of segments.

Protocol: classify 100,000 random normalized RGB triples for each θ
configuration and count the distinct labels.  Paper values: 1, 3, 5, 6, 8, 8,
8, 8 for θ = π/4 … 2π and 2 (constant) for the mixed configuration.
"""

from repro.experiments.table2 import PAPER_TABLE2_EXPECTED, format_table2, run_table2


def test_table2_segment_counts(benchmark, emit_result):
    results = benchmark.pedantic(
        lambda: run_table2(num_samples=100_000, seed=0), rounds=1, iterations=1
    )
    emit_result("Table II — θ vs maximum number of segments (100,000 random pixels)",
                format_table2(results))
    assert tuple(results.values()) == PAPER_TABLE2_EXPECTED
